//! # ham
//!
//! Facade crate of the HAM reproduction workspace: re-exports the public API
//! of every member crate so applications can depend on a single crate.
//!
//! * [`tensor`] — dense matrix math substrate.
//! * [`autograd`] — tape-based reverse-mode automatic differentiation.
//! * [`data`] — datasets, preprocessing, splits, windows, negative sampling
//!   and the synthetic benchmark generators.
//! * [`core`] — the Hybrid Associations Models (the paper's contribution).
//! * [`baselines`] — Caser, SASRec, HGN, PopRec and BPR-MF.
//! * [`eval`] — Recall/NDCG metrics, evaluation protocol, significance tests
//!   and run-time measurement.
//! * [`serve`] — the online serving subsystem: sharded catalogue scoring,
//!   micro-batching request queue, hot-swappable model registry.
//! * [`online`] — the incremental training loop closing train → publish →
//!   serve: delta-window retraining with warm-started Adam, published through
//!   the registry while a live server keeps answering.
//! * [`experiments`] — the harness regenerating every table and figure of the
//!   paper.
//!
//! ## Quickstart
//!
//! ```
//! use ham::data::synthetic::DatasetProfile;
//! use ham::data::split::{split_dataset, EvalSetting};
//! use ham::core::{train, HamConfig, HamVariant, TrainConfig};
//!
//! let data = DatasetProfile::tiny("facade-doc").generate(1);
//! let split = split_dataset(&data, EvalSetting::Cut8020);
//! let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(16, 4, 2, 2, 1);
//! let model = train(&split.train, data.num_items, &config, &TrainConfig { epochs: 1, ..Default::default() }, 7);
//! let top5 = model.recommend_top_k(0, &split.train[0], 5, true);
//! assert_eq!(top5.len(), 5);
//! ```

#![warn(missing_docs)]

pub use ham_autograd as autograd;
pub use ham_baselines as baselines;
pub use ham_core as core;
pub use ham_data as data;
pub use ham_eval as eval;
pub use ham_experiments as experiments;
pub use ham_online as online;
pub use ham_serve as serve;
pub use ham_tensor as tensor;

pub use ham_core::{HamConfig, HamModel, HamVariant, TrainConfig};
pub use ham_data::synthetic::DatasetProfile;
pub use ham_data::{EvalSetting, SequenceDataset};
