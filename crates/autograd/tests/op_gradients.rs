//! Exhaustive finite-difference checks: every differentiable operation of the
//! tape is exercised in isolation (and a few in combination) against central
//! finite differences.

use ham_autograd::gradcheck::check_gradient;
use ham_autograd::{Graph, ParamId, ParamStore, VarId};
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks one scalar-valued graph builder against finite differences for
/// every parameter it declares.
fn assert_gradients_match(
    build_params: impl Fn(&mut ParamStore, &mut StdRng) -> Vec<ParamId>,
    build_loss: impl Fn(&ParamStore, &mut Graph, &[ParamId]) -> VarId,
    label: &str,
) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut params = ParamStore::new();
    let ids = build_params(&mut params, &mut rng);

    let mut graph = Graph::new();
    let loss = build_loss(&params, &mut graph, &ids);
    let grads = graph.backward(loss);

    for &id in &ids {
        let analytic = grads.to_dense(id, params.value(id));
        let ids_clone = ids.clone();
        let report = check_gradient(&mut params, id, &analytic, 20, 1e-2, |p| {
            let mut g = Graph::new();
            let l = build_loss(p, &mut g, &ids_clone);
            g.value(l).get(0, 0)
        });
        assert!(report.passes(2e-2), "{label}: gradient mismatch for param {} ({report:?})", params.name(id));
    }
}

#[test]
fn matmul_chain_gradients() {
    assert_gradients_match(
        |p, rng| {
            vec![
                p.add_dense("A", Matrix::xavier_uniform(3, 4, rng)),
                p.add_dense("B", Matrix::xavier_uniform(4, 2, rng)),
            ]
        },
        |p, g, ids| {
            let a = g.param(p, ids[0]);
            let b = g.param(p, ids[1]);
            let c = g.matmul(a, b);
            let s = g.sigmoid(c);
            g.sum_all(s)
        },
        "matmul→sigmoid→sum",
    );
}

#[test]
fn matmul_transposed_and_dot_rows_gradients() {
    assert_gradients_match(
        |p, rng| {
            vec![
                p.add_dense("A", Matrix::xavier_uniform(3, 5, rng)),
                p.add_dense("B", Matrix::xavier_uniform(4, 5, rng)),
                p.add_dense("C", Matrix::xavier_uniform(3, 5, rng)),
            ]
        },
        |p, g, ids| {
            let a = g.param(p, ids[0]);
            let b = g.param(p, ids[1]);
            let c = g.param(p, ids[2]);
            let scores = g.matmul_transposed(a, b); // 3x4
            let tan = g.tanh(scores);
            let reduced = g.mean_all(tan);
            let dots = g.dot_rows(a, c); // 3x1
            let dots_sum = g.mean_all(dots);
            let total = g.add(reduced, dots_sum);
            g.sum_all(total)
        },
        "matmul_transposed + dot_rows",
    );
}

#[test]
fn pooling_and_softmax_gradients() {
    assert_gradients_match(
        |p, rng| vec![p.add_embedding("V", Matrix::xavier_uniform(7, 4, rng))],
        |p, g, ids| {
            let rows = g.gather(p, ids[0], &[0, 3, 5, 3]);
            let mean = g.mean_rows(rows);
            let max = g.max_rows(rows);
            let both = g.concat_rows(&[mean, max]);
            let soft = g.row_softmax(both);
            let sp = g.softplus(soft);
            g.mean_all(sp)
        },
        "gather→pooling→softmax→softplus",
    );
}

#[test]
fn broadcast_scale_neg_relu_gradients() {
    assert_gradients_match(
        |p, rng| {
            vec![
                p.add_dense("X", Matrix::xavier_uniform(4, 3, rng)),
                p.add_dense("b", Matrix::xavier_uniform(1, 3, rng)),
            ]
        },
        |p, g, ids| {
            let x = g.param(p, ids[0]);
            let b = g.param(p, ids[1]);
            let shifted = g.add_row_broadcast(x, b);
            let scaled = g.scale(shifted, 0.7);
            let neg = g.neg(scaled);
            let act = g.relu(neg);
            g.sum_all(act)
        },
        "broadcast→scale→neg→relu",
    );
}

#[test]
fn reshape_slice_concat_transpose_gradients() {
    assert_gradients_match(
        |p, rng| vec![p.add_dense("X", Matrix::xavier_uniform(4, 6, rng))],
        |p, g, ids| {
            let x = g.param(p, ids[0]);
            let head = g.slice_rows(x, 0, 2);
            let tail = g.slice_rows(x, 2, 2);
            let swapped = g.concat_rows(&[tail, head]);
            let reshaped = g.reshape(swapped, 6, 4);
            let transposed = g.transpose(reshaped);
            let squashed = g.tanh(transposed);
            g.mean_all(squashed)
        },
        "slice→concat→reshape→transpose",
    );
}

#[test]
fn hadamard_and_sub_gradients() {
    assert_gradients_match(
        |p, rng| {
            vec![
                p.add_dense("A", Matrix::xavier_uniform(2, 5, rng)),
                p.add_dense("B", Matrix::xavier_uniform(2, 5, rng)),
            ]
        },
        |p, g, ids| {
            let a = g.param(p, ids[0]);
            let b = g.param(p, ids[1]);
            let prod = g.hadamard(a, b);
            let diff = g.sub(prod, a);
            let sq = g.hadamard(diff, diff);
            g.sum_all(sq)
        },
        "hadamard + sub",
    );
}

#[test]
fn conv_full_width_with_concat_cols_gradients() {
    assert_gradients_match(
        |p, rng| {
            vec![
                p.add_embedding("E", Matrix::xavier_uniform(6, 3, rng)),
                p.add_dense("F1", Matrix::xavier_uniform(1, 3, rng)),
                p.add_dense("F2", Matrix::xavier_uniform(3, 3, rng)),
            ]
        },
        |p, g, ids| {
            let rows = g.gather(p, ids[0], &[0, 1, 2, 3, 4]);
            let f1 = g.param(p, ids[1]);
            let f2 = g.param(p, ids[2]);
            let c1 = g.conv_full_width(rows, f1);
            let c2 = g.conv_full_width(rows, f2);
            let p1 = g.max_rows(c1);
            let p2 = g.max_rows(c2);
            let cat = g.concat_cols(&[p1, p2]);
            let act = g.sigmoid(cat);
            g.sum_all(act)
        },
        "two convolutions → max pool → concat_cols",
    );
}

#[test]
fn duplicate_gather_indices_accumulate_correctly() {
    // When the same embedding row is gathered several times, its sparse
    // gradient must be the sum of all paths; finite differences confirm it.
    assert_gradients_match(
        |p, rng| vec![p.add_embedding("V", Matrix::xavier_uniform(3, 4, rng))],
        |p, g, ids| {
            let rows = g.gather(p, ids[0], &[1, 1, 1, 2]);
            let pooled = g.mean_rows(rows);
            let squared = g.hadamard(pooled, pooled);
            g.sum_all(squared)
        },
        "duplicate gather indices",
    );
}
