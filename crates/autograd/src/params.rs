//! Trainable-parameter storage and gradient accumulation.
//!
//! Embedding matrices in recommendation models are tall (tens of thousands of
//! items) while each training step only touches a handful of rows, so their
//! gradients are accumulated *sparsely* as `(row index, row gradient)` pairs.
//! Small dense weight matrices (gating weights, attention projections, biases)
//! accumulate dense gradients.

use ham_tensor::Matrix;
use std::collections::HashMap;

/// Handle to a parameter stored in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter inside its store.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Whether a parameter's gradient is accumulated densely or sparsely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Gradient has the full shape of the parameter.
    Dense,
    /// Gradient is a set of `(row, row-gradient)` pairs (embedding tables).
    SparseRows,
}

#[derive(Debug, Clone)]
struct Param {
    name: String,
    value: Matrix,
    kind: ParamKind,
}

/// Owns every trainable parameter of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dense parameter (weights, biases) and returns its handle.
    pub fn add_dense(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.push(name.into(), value, ParamKind::Dense)
    }

    /// Registers an embedding table whose gradient is accumulated sparsely.
    pub fn add_embedding(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.push(name.into(), value, ParamKind::SparseRows)
    }

    fn push(&mut self, name: String, value: Matrix, kind: ParamKind) -> ParamId {
        self.params.push(Param { name, value, kind });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar values across all parameters.
    pub fn num_values(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to the value of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Appends rows to a parameter's value matrix. Embedding tables grow
    /// row-wise when unseen users/items arrive in an online-training stream;
    /// existing rows (and any sparse gradients indexed against them) are
    /// unaffected.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn append_rows(&mut self, id: ParamId, rows: &Matrix) {
        self.params[id.0].value.append_rows(rows);
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// The gradient-accumulation kind of a parameter.
    pub fn kind(&self, id: ParamId) -> ParamKind {
        self.params[id.0].kind
    }

    /// Iterates over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.params.len()).map(ParamId)
    }

    /// Sum of squared values over all parameters (used for reporting the L2
    /// term; the optimizers apply decoupled weight decay instead).
    pub fn l2_norm_sq(&self) -> f32 {
        self.params.iter().map(|p| p.value.frobenius_norm_sq()).sum()
    }
}

/// Sparse row-wise gradient for an embedding table.
#[derive(Debug, Clone, Default)]
pub struct SparseGrad {
    rows: HashMap<usize, Vec<f32>>,
    cols: usize,
}

impl SparseGrad {
    /// Creates an empty sparse gradient for a table with `cols` columns.
    pub fn new(cols: usize) -> Self {
        Self { rows: HashMap::new(), cols }
    }

    /// Accumulates `grad` into the gradient of `row`.
    pub fn add_row(&mut self, row: usize, grad: &[f32]) {
        self.add_scaled_row(row, grad, 1.0);
    }

    /// Accumulates `scale * grad` into the gradient of `row` without
    /// materialising the scaled row.
    pub fn add_scaled_row(&mut self, row: usize, grad: &[f32], scale: f32) {
        assert_eq!(grad.len(), self.cols, "SparseGrad::add_scaled_row: width mismatch");
        let entry = self.rows.entry(row).or_insert_with(|| vec![0.0; self.cols]);
        for (e, g) in entry.iter_mut().zip(grad) {
            *e += scale * g;
        }
    }

    /// Number of distinct rows with a non-empty gradient.
    pub fn touched_rows(&self) -> usize {
        self.rows.len()
    }

    /// Width (number of columns) of each row gradient.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Iterates over `(row index, row gradient)` pairs in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f32])> + '_ {
        self.rows.iter().map(|(&r, g)| (r, g.as_slice()))
    }

    /// Folds another sparse gradient into this one, row by row.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn merge(&mut self, other: SparseGrad) {
        assert_eq!(self.cols, other.cols, "SparseGrad::merge: width mismatch {} vs {}", self.cols, other.cols);
        for (row, grad) in other.rows {
            match self.rows.get_mut(&row) {
                Some(entry) => {
                    for (e, g) in entry.iter_mut().zip(&grad) {
                        *e += g;
                    }
                }
                None => {
                    self.rows.insert(row, grad);
                }
            }
        }
    }

    /// Materialises the sparse gradient as a dense matrix of the given number
    /// of rows (used by gradient checking and tests).
    pub fn to_dense(&self, rows: usize) -> Matrix {
        let mut out = Matrix::zeros(rows, self.cols);
        for (r, g) in self.iter() {
            assert!(r < rows, "SparseGrad::to_dense: row {r} out of bounds for {rows} rows");
            for (o, v) in out.row_mut(r).iter_mut().zip(g) {
                *o += v;
            }
        }
        out
    }
}

/// The gradients produced by one backward pass, keyed by [`ParamId`].
#[derive(Debug, Default)]
pub struct GradStore {
    dense: HashMap<usize, Matrix>,
    sparse: HashMap<usize, SparseGrad>,
}

impl GradStore {
    /// Creates an empty gradient store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates a dense gradient for `id`.
    pub fn accumulate_dense(&mut self, id: ParamId, grad: &Matrix) {
        match self.dense.get_mut(&id.0) {
            Some(existing) => existing.add_assign(grad),
            None => {
                self.dense.insert(id.0, grad.clone());
            }
        }
    }

    /// Accumulates a sparse (row-indexed) gradient for `id`.
    pub fn accumulate_sparse(&mut self, id: ParamId, indices: &[usize], rows: &Matrix) {
        assert_eq!(indices.len(), rows.rows(), "accumulate_sparse: index / row count mismatch");
        let entry = self.sparse.entry(id.0).or_insert_with(|| SparseGrad::new(rows.cols()));
        for (i, &idx) in indices.iter().enumerate() {
            entry.add_row(idx, rows.row(i));
        }
    }

    /// Accumulates `scale * grad` into sparse row `row` of `id` directly from
    /// a slice — the zero-allocation path the manual trainer uses per
    /// training pair (no `Matrix::row_vector` temporary).
    pub fn accumulate_scaled_row(&mut self, id: ParamId, row: usize, grad: &[f32], scale: f32) {
        let entry = self.sparse.entry(id.0).or_insert_with(|| SparseGrad::new(grad.len()));
        entry.add_scaled_row(row, grad, scale);
    }

    /// Folds another gradient store into this one (dense gradients add
    /// element-wise, sparse gradients merge row-wise).
    ///
    /// The mini-batched trainer computes per-block gradients — possibly in
    /// parallel on the worker pool — and merges them **in block order**, so
    /// the result is deterministic and independent of how many threads ran
    /// the blocks.
    pub fn merge(&mut self, other: GradStore) {
        for (id, grad) in other.dense {
            match self.dense.get_mut(&id) {
                Some(existing) => existing.add_assign(&grad),
                None => {
                    self.dense.insert(id, grad);
                }
            }
        }
        for (id, grad) in other.sparse {
            match self.sparse.get_mut(&id) {
                Some(existing) => existing.merge(grad),
                None => {
                    self.sparse.insert(id, grad);
                }
            }
        }
    }

    /// Dense gradient for `id`, if any was accumulated.
    pub fn dense(&self, id: ParamId) -> Option<&Matrix> {
        self.dense.get(&id.0)
    }

    /// Sparse gradient for `id`, if any was accumulated.
    pub fn sparse(&self, id: ParamId) -> Option<&SparseGrad> {
        self.sparse.get(&id.0)
    }

    /// Whether any gradient at all was recorded for `id`.
    pub fn contains(&self, id: ParamId) -> bool {
        self.dense.contains_key(&id.0) || self.sparse.contains_key(&id.0)
    }

    /// Total gradient of `id` as a dense matrix shaped like `shape_like`
    /// (combines dense and sparse contributions; used by tests/gradcheck).
    pub fn to_dense(&self, id: ParamId, shape_like: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(shape_like.rows(), shape_like.cols());
        if let Some(d) = self.dense(id) {
            out.add_assign(d);
        }
        if let Some(s) = self.sparse(id) {
            out.add_assign(&s.to_dense(shape_like.rows()));
        }
        out
    }

    /// Iterates over parameter indices that received dense gradients.
    pub fn dense_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        self.dense.keys().map(|&k| ParamId(k))
    }

    /// Iterates over parameter indices that received sparse gradients.
    pub fn sparse_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        self.sparse.keys().map(|&k| ParamId(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_params() {
        let mut store = ParamStore::new();
        let a = store.add_dense("w", Matrix::zeros(2, 3));
        let b = store.add_embedding("V", Matrix::zeros(10, 4));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_values(), 6 + 40);
        assert_eq!(store.name(a), "w");
        assert_eq!(store.kind(b), ParamKind::SparseRows);
        assert_eq!(store.value(b).shape(), (10, 4));
        store.value_mut(a).set(0, 0, 5.0);
        assert_eq!(store.value(a).get(0, 0), 5.0);
        assert_eq!(store.ids().count(), 2);
    }

    #[test]
    fn append_rows_grows_an_embedding_table() {
        let mut store = ParamStore::new();
        let v = store.add_embedding("V", Matrix::full(2, 3, 1.0));
        store.append_rows(v, &Matrix::full(2, 3, 5.0));
        assert_eq!(store.value(v).shape(), (4, 3));
        assert_eq!(store.value(v).row(1), &[1.0, 1.0, 1.0]);
        assert_eq!(store.value(v).row(3), &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn sparse_grad_accumulates_and_densifies() {
        let mut g = SparseGrad::new(2);
        g.add_row(3, &[1.0, 2.0]);
        g.add_row(3, &[0.5, 0.5]);
        g.add_row(0, &[1.0, 0.0]);
        assert_eq!(g.touched_rows(), 2);
        let dense = g.to_dense(5);
        assert_eq!(dense.row(3), &[1.5, 2.5]);
        assert_eq!(dense.row(0), &[1.0, 0.0]);
        assert_eq!(dense.row(4), &[0.0, 0.0]);
    }

    #[test]
    fn grad_store_combines_dense_and_sparse() {
        let mut params = ParamStore::new();
        let v = params.add_embedding("V", Matrix::zeros(4, 2));
        let mut grads = GradStore::new();
        grads.accumulate_dense(v, &Matrix::full(4, 2, 1.0));
        grads.accumulate_sparse(v, &[2], &Matrix::row_vector(&[3.0, 3.0]));
        let total = grads.to_dense(v, params.value(v));
        assert_eq!(total.row(0), &[1.0, 1.0]);
        assert_eq!(total.row(2), &[4.0, 4.0]);
        assert!(grads.contains(v));
    }

    #[test]
    fn grad_store_merge_combines_blocks() {
        let mut params = ParamStore::new();
        let w = params.add_dense("w", Matrix::zeros(1, 2));
        let v = params.add_embedding("V", Matrix::zeros(4, 2));

        let mut a = GradStore::new();
        a.accumulate_dense(w, &Matrix::row_vector(&[1.0, 2.0]));
        a.accumulate_scaled_row(v, 1, &[1.0, 1.0], 2.0);

        let mut b = GradStore::new();
        b.accumulate_dense(w, &Matrix::row_vector(&[0.5, -1.0]));
        b.accumulate_scaled_row(v, 1, &[1.0, 0.0], 1.0);
        b.accumulate_scaled_row(v, 3, &[0.0, 4.0], 1.0);

        a.merge(b);
        assert_eq!(a.dense(w).unwrap().as_slice(), &[1.5, 1.0]);
        let dense = a.sparse(v).unwrap().to_dense(4);
        assert_eq!(dense.row(1), &[3.0, 2.0]);
        assert_eq!(dense.row(3), &[0.0, 4.0]);
        assert_eq!(dense.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn l2_norm_sums_all_params() {
        let mut params = ParamStore::new();
        params.add_dense("a", Matrix::full(1, 2, 2.0));
        params.add_dense("b", Matrix::full(1, 1, 3.0));
        assert_eq!(params.l2_norm_sq(), 8.0 + 9.0);
    }
}
