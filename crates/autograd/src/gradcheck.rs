//! Finite-difference gradient checking.
//!
//! Every differentiable operation in this crate, the manual-gradient HAM
//! trainer in `ham-core` and the baselines in `ham-baselines` are validated
//! against central finite differences through this module.

use crate::params::{ParamId, ParamStore};

/// Result of a gradient check for a single parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Largest relative difference (`|a - n| / max(1, |a|, |n|)`).
    pub max_rel_diff: f32,
    /// Number of scalar entries compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the analytic gradient matches within `tol` (relative).
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_diff <= tol
    }
}

/// Checks the analytic gradient of `param` for the scalar loss computed by
/// `loss_fn` against central finite differences.
///
/// `loss_fn` must be a pure function of the parameter store (it is invoked
/// many times with perturbed parameter values). `analytic` is the gradient to
/// validate, flattened in row-major order and shaped like the parameter.
///
/// Only the first `max_entries` scalar entries are perturbed (checking every
/// entry of a large embedding table would be quadratic in practice).
pub fn check_gradient(
    params: &mut ParamStore,
    param: ParamId,
    analytic: &ham_tensor::Matrix,
    max_entries: usize,
    epsilon: f32,
    mut loss_fn: impl FnMut(&ParamStore) -> f32,
) -> GradCheckReport {
    assert_eq!(
        analytic.shape(),
        params.value(param).shape(),
        "check_gradient: analytic gradient must be shaped like the parameter"
    );
    let n = params.value(param).len().min(max_entries);
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..n {
        let original = params.value(param).as_slice()[i];
        params.value_mut(param).as_mut_slice()[i] = original + epsilon;
        let plus = loss_fn(params);
        params.value_mut(param).as_mut_slice()[i] = original - epsilon;
        let minus = loss_fn(params);
        params.value_mut(param).as_mut_slice()[i] = original;

        let numeric = (plus - minus) / (2.0 * epsilon);
        let a = analytic.as_slice()[i];
        let abs = (a - numeric).abs();
        let rel = abs / 1.0f32.max(a.abs()).max(numeric.abs());
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport { max_abs_diff: max_abs, max_rel_diff: max_rel, checked: n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use ham_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a small but representative graph exercising most operations and
    /// checks every parameter's gradient numerically.
    #[test]
    fn composite_graph_passes_gradcheck() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut params = ParamStore::new();
        let emb = params.add_embedding("V", Matrix::xavier_uniform(6, 4, &mut rng));
        let w = params.add_dense("W", Matrix::xavier_uniform(4, 3, &mut rng));
        let b = params.add_dense("b", Matrix::xavier_uniform(1, 3, &mut rng));

        let forward = |p: &ParamStore| -> (Graph, crate::graph::VarId) {
            let mut g = Graph::new();
            let rows = g.gather(p, emb, &[0, 2, 3, 2]);
            let pooled_mean = g.mean_rows(rows);
            let pooled_max = g.max_rows(rows);
            let mixed = g.hadamard(pooled_mean, pooled_max);
            let added = g.add(mixed, pooled_mean);
            let wv = g.param(p, w);
            let bv = g.param(p, b);
            let hidden = g.matmul(added, wv);
            let hidden = g.add_row_broadcast(hidden, bv);
            let act = g.tanh(hidden);
            let sm = g.row_softmax(act);
            let sp = g.softplus(sm);
            let loss = g.mean_all(sp);
            (g, loss)
        };

        let (g, loss) = forward(&params);
        let grads = g.backward(loss);

        for (id, name) in [(emb, "V"), (w, "W"), (b, "b")] {
            let analytic = grads.to_dense(id, params.value(id));
            let report = check_gradient(&mut params, id, &analytic, 24, 1e-2, |p| {
                let (g, loss) = forward(p);
                g.value(loss).get(0, 0)
            });
            assert!(report.passes(2e-2), "gradient check failed for {name}: {report:?}");
            assert!(report.checked > 0);
        }
    }

    /// Convolution gradients are the trickiest rule; check them separately.
    #[test]
    fn conv_full_width_passes_gradcheck() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut params = ParamStore::new();
        let emb = params.add_embedding("E", Matrix::xavier_uniform(5, 3, &mut rng));
        let filter = params.add_dense("F", Matrix::xavier_uniform(2, 3, &mut rng));

        let forward = |p: &ParamStore| -> (Graph, crate::graph::VarId) {
            let mut g = Graph::new();
            let rows = g.gather(p, emb, &[0, 1, 2, 3, 4]);
            let f = g.param(p, filter);
            let conv = g.conv_full_width(rows, f);
            let pooled = g.max_rows(conv);
            let act = g.relu(pooled);
            let loss = g.sum_all(act);
            (g, loss)
        };

        let (g, loss) = forward(&params);
        let grads = g.backward(loss);
        for id in [emb, filter] {
            let analytic = grads.to_dense(id, params.value(id));
            let report = check_gradient(&mut params, id, &analytic, 15, 1e-2, |p| {
                let (g, loss) = forward(p);
                g.value(loss).get(0, 0)
            });
            assert!(report.passes(2e-2), "conv gradient check failed: {report:?}");
        }
    }

    #[test]
    fn report_pass_threshold_behaviour() {
        let report = GradCheckReport { max_abs_diff: 0.5, max_rel_diff: 0.01, checked: 3 };
        assert!(report.passes(0.02));
        assert!(!report.passes(0.001));
    }
}
