//! # ham-autograd
//!
//! A small tape-based reverse-mode automatic-differentiation engine over
//! [`ham_tensor::Matrix`], purpose-built for the HAM reproduction.
//!
//! The HAM models themselves have simple analytic gradients, but the paper
//! compares against deep baselines — Caser (convolutions), SASRec
//! (self-attention) and HGN (gating) — whose training requires a general
//! gradient engine. Rather than pulling in `tch`/`burn`, this crate implements
//! the minimal set of differentiable operations those models need, from
//! scratch:
//!
//! * embedding **gather** with sparse gradient accumulation (the embedding
//!   matrices are large; their gradients are kept as `(row index, row grad)`
//!   pairs and applied with a lazy/sparse Adam update),
//! * dense matrix products (plain and against a transposed right operand),
//! * element-wise arithmetic, sigmoid / tanh / relu / softplus,
//! * mean / max pooling over rows, row-wise softmax, full-width 1-D
//!   convolution (for Caser), reshape / concatenation / slicing,
//! * scalar reductions used as losses.
//!
//! ## Architecture
//!
//! * [`ParamStore`] owns the trainable parameters ([`ParamId`] handles).
//! * [`Graph`] is a tape: every operation appends a node holding its forward
//!   value and enough information to run the backward rule.
//! * [`Graph::backward`] walks the tape in reverse and produces a
//!   [`GradStore`] holding a dense or sparse gradient per touched parameter.
//! * [`optim::Adam`] / [`optim::Sgd`] apply a `GradStore` to a `ParamStore`.
//! * [`gradcheck`] provides finite-difference checking used extensively by the
//!   test-suites of this crate and of the model crates built on top of it.
//!
//! ## Example
//!
//! ```
//! use ham_autograd::{Graph, ParamStore};
//! use ham_tensor::Matrix;
//!
//! let mut params = ParamStore::new();
//! let w = params.add_dense("w", Matrix::from_rows(&[&[0.5, -0.25], &[1.0, 2.0]]));
//!
//! let mut g = Graph::new();
//! let x = g.constant(Matrix::row_vector(&[1.0, 2.0]));
//! let wv = g.param(&params, w);
//! let y = g.matmul(x, wv);          // 1x2 · 2x2
//! let loss = g.sum_all(y);
//! let grads = g.backward(loss);
//!
//! let gw = grads.dense(w).expect("w received a gradient");
//! assert_eq!(gw.shape(), (2, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gradcheck;
pub mod graph;
pub mod optim;
pub mod params;

pub use graph::{Graph, VarId};
pub use optim::{Adam, AdamConfig, AdamState, Optimizer, Sgd};
pub use params::{GradStore, ParamId, ParamStore, SparseGrad};
