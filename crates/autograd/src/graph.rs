//! The computation tape: forward operation constructors and the reverse-mode
//! backward pass.
//!
//! A [`Graph`] is rebuilt for every training example / mini-batch (define-by-
//! run, like PyTorch). Each operation appends a node storing its forward value
//! plus whatever the backward rule needs (input ids, gather indices, arg-max
//! positions, …). [`Graph::backward`] walks the tape in reverse and returns a
//! [`GradStore`] with per-parameter gradients.

use crate::params::{GradStore, ParamId, ParamStore};
use ham_tensor::matrix::dot;
use ham_tensor::ops as tops;
use ham_tensor::Matrix;

/// Handle to a node (intermediate value) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input; no gradient flows past it.
    Constant,
    /// Dense parameter leaf.
    Param {
        param: ParamId,
    },
    /// Embedding-lookup leaf: rows of `param` selected by `indices`.
    Gather {
        param: ParamId,
        indices: Vec<usize>,
    },
    Add {
        a: VarId,
        b: VarId,
    },
    Sub {
        a: VarId,
        b: VarId,
    },
    Hadamard {
        a: VarId,
        b: VarId,
    },
    Scale {
        a: VarId,
        factor: f32,
    },
    Neg {
        a: VarId,
    },
    MatMul {
        a: VarId,
        b: VarId,
    },
    /// `a · bᵀ`
    MatMulT {
        a: VarId,
        b: VarId,
    },
    Sigmoid {
        a: VarId,
    },
    Tanh {
        a: VarId,
    },
    Relu {
        a: VarId,
    },
    /// `softplus(x) = ln(1 + e^x)`; `-log σ(x) = softplus(-x)`.
    Softplus {
        a: VarId,
    },
    MeanRows {
        a: VarId,
    },
    MaxRows {
        a: VarId,
        argmax: Vec<usize>,
    },
    /// Mean pooling over consecutive row blocks of size `block`
    /// (`(b·block, d)` → `(b, d)`; the batched form of [`Op::MeanRows`]).
    MeanRowBlocks {
        a: VarId,
        block: usize,
    },
    /// Max pooling over consecutive row blocks; `argmax[b·d + c]` is the
    /// within-block row offset that attained the maximum of output `(b, c)`.
    MaxRowBlocks {
        a: VarId,
        block: usize,
        argmax: Vec<usize>,
    },
    /// Each row of `a` repeated `times` times consecutively
    /// (`(b, d)` → `(b·times, d)`).
    RepeatRows {
        a: VarId,
        times: usize,
    },
    SumAll {
        a: VarId,
    },
    MeanAll {
        a: VarId,
    },
    RowSoftmax {
        a: VarId,
    },
    Transpose {
        a: VarId,
    },
    Reshape {
        a: VarId,
    },
    ConcatRows {
        parts: Vec<VarId>,
    },
    ConcatCols {
        parts: Vec<VarId>,
    },
    SliceRows {
        a: VarId,
        start: usize,
    },
    /// Row-wise dot product of two equally-shaped matrices → column vector.
    DotRows {
        a: VarId,
        b: VarId,
    },
    /// Adds a `1 x d` row vector `b` to every row of `a`.
    AddRowBroadcast {
        a: VarId,
        b: VarId,
    },
    /// Full-width 1-D convolution of `input (L x d)` with `filter (h x d)`,
    /// producing `(L - h + 1) x 1` window scores (Caser's horizontal filters).
    ConvFullWidth {
        input: VarId,
        filter: VarId,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    op: Op,
}

/// A define-by-run computation tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: VarId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Shape of a node's value.
    pub fn shape(&self, id: VarId) -> (usize, usize) {
        self.nodes[id.0].value.shape()
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        self.nodes.push(Node { value, op });
        VarId(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Records a constant (non-trainable) input.
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.push(value, Op::Constant)
    }

    /// Records a dense parameter leaf (the parameter value is copied onto the
    /// tape; intended for small weight matrices and biases).
    pub fn param(&mut self, params: &ParamStore, id: ParamId) -> VarId {
        self.push(params.value(id).clone(), Op::Param { param: id })
    }

    /// Records an embedding lookup: the rows of `param` selected by `indices`.
    /// The gradient is accumulated sparsely per selected row.
    pub fn gather(&mut self, params: &ParamStore, id: ParamId, indices: &[usize]) -> VarId {
        let value = params.value(id).gather_rows(indices);
        self.push(value, Op::Gather { param: id, indices: indices.to_vec() })
    }

    // ------------------------------------------------------------------
    // Element-wise / arithmetic
    // ------------------------------------------------------------------

    /// Element-wise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add { a, b })
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub { a, b })
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).hadamard(self.value(b));
        self.push(value, Op::Hadamard { a, b })
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&mut self, a: VarId, factor: f32) -> VarId {
        let value = self.value(a).scale(factor);
        self.push(value, Op::Scale { a, factor })
    }

    /// Negation.
    pub fn neg(&mut self, a: VarId) -> VarId {
        let value = self.value(a).scale(-1.0);
        self.push(value, Op::Neg { a })
    }

    /// Adds the `1 x d` row vector `b` to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: VarId, b: VarId) -> VarId {
        assert_eq!(self.shape(b).0, 1, "add_row_broadcast: b must be a row vector");
        let value = self.value(a).add_row_broadcast(self.value(b).row(0));
        self.push(value, Op::AddRowBroadcast { a, b })
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::MatMul { a, b })
    }

    /// Matrix product against a transposed right operand, `a · bᵀ`.
    pub fn matmul_transposed(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).matmul_transposed(self.value(b));
        self.push(value, Op::MatMulT { a, b })
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let value = self.value(a).transpose();
        self.push(value, Op::Transpose { a })
    }

    /// Row-wise dot product of two equally-shaped matrices, producing an
    /// `n x 1` column of scores.
    pub fn dot_rows(&mut self, a: VarId, b: VarId) -> VarId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "dot_rows: shape mismatch");
        let mut out = Matrix::zeros(va.rows(), 1);
        for r in 0..va.rows() {
            out.set(r, 0, dot(va.row(r), vb.row(r)));
        }
        self.push(out, Op::DotRows { a, b })
    }

    // ------------------------------------------------------------------
    // Non-linearities
    // ------------------------------------------------------------------

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let value = tops::sigmoid(self.value(a));
        self.push(value, Op::Sigmoid { a })
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let value = tops::tanh(self.value(a));
        self.push(value, Op::Tanh { a })
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let value = tops::relu(self.value(a));
        self.push(value, Op::Relu { a })
    }

    /// Element-wise softplus `ln(1 + e^x)`; note `-log σ(x) = softplus(-x)`,
    /// which is how the BPR loss is expressed on the tape.
    pub fn softplus(&mut self, a: VarId) -> VarId {
        let value = self.value(a).map(|x| {
            // numerically stable softplus
            if x > 0.0 {
                x + (-x).exp().ln_1p()
            } else {
                x.exp().ln_1p()
            }
        });
        self.push(value, Op::Softplus { a })
    }

    /// Row-wise softmax.
    pub fn row_softmax(&mut self, a: VarId) -> VarId {
        let value = tops::softmax_rows(self.value(a));
        self.push(value, Op::RowSoftmax { a })
    }

    // ------------------------------------------------------------------
    // Pooling / reductions
    // ------------------------------------------------------------------

    /// Mean pooling over rows, producing a `1 x d` vector.
    pub fn mean_rows(&mut self, a: VarId) -> VarId {
        let pooled = ham_tensor::pool::mean_pool_rows(self.value(a));
        self.push(Matrix::row_vector(&pooled), Op::MeanRows { a })
    }

    /// Max pooling over rows, producing a `1 x d` vector.
    pub fn max_rows(&mut self, a: VarId) -> VarId {
        let (pooled, argmax) = ham_tensor::pool::max_pool_rows(self.value(a));
        self.push(Matrix::row_vector(&pooled), Op::MaxRows { a, argmax })
    }

    /// Mean pooling over consecutive row blocks of size `block`: pools a
    /// `(b·block, d)` value into `(b, d)`, each output row the mean of one
    /// block. This is the batched form of [`Self::mean_rows`] — one node
    /// pools every instance window of a mini-batch (bit-identical to pooling
    /// each block alone).
    ///
    /// # Panics
    /// Panics if `block == 0` or the row count is not a multiple of `block`.
    pub fn mean_pool_blocks(&mut self, a: VarId, block: usize) -> VarId {
        let pooled = ham_tensor::pool::mean_pool_row_blocks(self.value(a), block);
        self.push(pooled, Op::MeanRowBlocks { a, block })
    }

    /// Max pooling over consecutive row blocks of size `block` (the batched
    /// form of [`Self::max_rows`]; see [`Self::mean_pool_blocks`]).
    ///
    /// # Panics
    /// Panics if `block == 0` or the row count is not a multiple of `block`.
    pub fn max_pool_blocks(&mut self, a: VarId, block: usize) -> VarId {
        let (pooled, argmax) = ham_tensor::pool::max_pool_row_blocks(self.value(a), block);
        self.push(pooled, Op::MaxRowBlocks { a, block, argmax })
    }

    /// Repeats every row of `a` `times` times consecutively, producing a
    /// `(rows·times, cols)` value; the backward rule sums each group back
    /// onto its source row. Used to expand a batch's query matrix to pair
    /// granularity (`n_p` score pairs per instance).
    ///
    /// # Panics
    /// Panics if `times == 0`.
    pub fn repeat_rows(&mut self, a: VarId, times: usize) -> VarId {
        assert!(times > 0, "repeat_rows: times must be positive");
        let v = self.value(a);
        let (rows, cols) = v.shape();
        let mut out = Matrix::zeros(rows * times, cols);
        for r in 0..rows {
            for t in 0..times {
                out.row_mut(r * times + t).copy_from_slice(v.row(r));
            }
        }
        self.push(out, Op::RepeatRows { a, times })
    }

    /// Sum of every element, producing a `1 x 1` scalar node.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let value = Matrix::full(1, 1, self.value(a).sum());
        self.push(value, Op::SumAll { a })
    }

    /// Mean of every element, producing a `1 x 1` scalar node.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let value = Matrix::full(1, 1, self.value(a).mean());
        self.push(value, Op::MeanAll { a })
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterprets the value with a new shape holding the same number of
    /// elements (row-major order preserved).
    pub fn reshape(&mut self, a: VarId, rows: usize, cols: usize) -> VarId {
        let v = self.value(a);
        assert_eq!(v.len(), rows * cols, "reshape: element count mismatch");
        let value = Matrix::from_vec(rows, cols, v.as_slice().to_vec());
        self.push(value, Op::Reshape { a })
    }

    /// Stacks matrices with equal column counts on top of each other.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_rows: need at least one part");
        let cols = self.shape(parts[0]).1;
        let mut data = Vec::new();
        let mut rows = 0;
        for &p in parts {
            let v = self.value(p);
            assert_eq!(v.cols(), cols, "concat_rows: column mismatch");
            data.extend_from_slice(v.as_slice());
            rows += v.rows();
        }
        self.push(Matrix::from_vec(rows, cols, data), Op::ConcatRows { parts: parts.to_vec() })
    }

    /// Concatenates matrices with equal row counts side by side.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_cols: need at least one part");
        let rows = self.shape(parts[0]).0;
        let total_cols: usize = parts.iter().map(|&p| self.shape(p).1).sum();
        let mut out = Matrix::zeros(rows, total_cols);
        let mut offset = 0;
        for &p in parts {
            let v = self.value(p);
            assert_eq!(v.rows(), rows, "concat_cols: row mismatch");
            for r in 0..rows {
                out.row_mut(r)[offset..offset + v.cols()].copy_from_slice(v.row(r));
            }
            offset += v.cols();
        }
        self.push(out, Op::ConcatCols { parts: parts.to_vec() })
    }

    /// Selects the contiguous row range `start..start + len`.
    pub fn slice_rows(&mut self, a: VarId, start: usize, len: usize) -> VarId {
        let v = self.value(a);
        assert!(start + len <= v.rows(), "slice_rows: range out of bounds");
        let indices: Vec<usize> = (start..start + len).collect();
        let value = v.gather_rows(&indices);
        self.push(value, Op::SliceRows { a, start })
    }

    // ------------------------------------------------------------------
    // Convolution (Caser)
    // ------------------------------------------------------------------

    /// Full-width 1-D convolution: slides `filter (h x d)` over the rows of
    /// `input (L x d)` and produces the `(L - h + 1) x 1` column of window
    /// activations `out[p] = Σ_{i,c} input[p + i, c] * filter[i, c]`.
    pub fn conv_full_width(&mut self, input: VarId, filter: VarId) -> VarId {
        let (inp, fil) = (self.value(input), self.value(filter));
        assert_eq!(inp.cols(), fil.cols(), "conv_full_width: embedding width mismatch");
        assert!(
            fil.rows() >= 1 && fil.rows() <= inp.rows(),
            "conv_full_width: filter height must be in 1..=input rows"
        );
        let positions = inp.rows() - fil.rows() + 1;
        let mut out = Matrix::zeros(positions, 1);
        for p in 0..positions {
            let mut acc = 0.0;
            for i in 0..fil.rows() {
                acc += dot(inp.row(p + i), fil.row(i));
            }
            out.set(p, 0, acc);
        }
        self.push(out, Op::ConvFullWidth { input, filter })
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs the reverse pass from the scalar node `loss` and returns the
    /// accumulated per-parameter gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 x 1` node.
    pub fn backward(&self, loss: VarId) -> GradStore {
        assert_eq!(self.shape(loss), (1, 1), "backward: loss must be a 1x1 scalar node");
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));
        let mut store = GradStore::new();

        for idx in (0..=loss.0).rev() {
            let Some(grad) = grads[idx].take() else { continue };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Constant => {}
                Op::Param { param } => store.accumulate_dense(*param, &grad),
                Op::Gather { param, indices } => store.accumulate_sparse(*param, indices, &grad),
                Op::Add { a, b } => {
                    accumulate(&mut grads, *a, grad.clone());
                    accumulate(&mut grads, *b, grad);
                }
                Op::Sub { a, b } => {
                    accumulate(&mut grads, *a, grad.clone());
                    accumulate(&mut grads, *b, grad.scale(-1.0));
                }
                Op::Hadamard { a, b } => {
                    let ga = grad.hadamard(self.value(*b));
                    let gb = grad.hadamard(self.value(*a));
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Scale { a, factor } => accumulate(&mut grads, *a, grad.scale(*factor)),
                Op::Neg { a } => accumulate(&mut grads, *a, grad.scale(-1.0)),
                Op::MatMul { a, b } => {
                    // C = A·B  =>  dA = dC·Bᵀ, dB = Aᵀ·dC
                    let ga = grad.matmul_transposed(self.value(*b));
                    let gb = self.value(*a).transpose().matmul(&grad);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::MatMulT { a, b } => {
                    // C = A·Bᵀ  =>  dA = dC·B, dB = dCᵀ·A
                    let ga = grad.matmul(self.value(*b));
                    let gb = grad.transpose().matmul(self.value(*a));
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Sigmoid { a } => {
                    let s = &node.value;
                    let local = s.map(|v| v * (1.0 - v));
                    accumulate(&mut grads, *a, grad.hadamard(&local));
                }
                Op::Tanh { a } => {
                    let t = &node.value;
                    let local = t.map(|v| 1.0 - v * v);
                    accumulate(&mut grads, *a, grad.hadamard(&local));
                }
                Op::Relu { a } => {
                    let local = self.value(*a).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    accumulate(&mut grads, *a, grad.hadamard(&local));
                }
                Op::Softplus { a } => {
                    let local = self.value(*a).map(tops::sigmoid_scalar);
                    accumulate(&mut grads, *a, grad.hadamard(&local));
                }
                Op::MeanRows { a } => {
                    let (rows, cols) = self.shape(*a);
                    let mut ga = Matrix::zeros(rows, cols);
                    if rows > 0 {
                        let inv = 1.0 / rows as f32;
                        for r in 0..rows {
                            for (g, o) in grad.row(0).iter().zip(ga.row_mut(r)) {
                                *o = g * inv;
                            }
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MaxRows { a, argmax } => {
                    let (rows, cols) = self.shape(*a);
                    let mut ga = Matrix::zeros(rows, cols);
                    if rows > 0 {
                        for (c, &r) in argmax.iter().enumerate() {
                            let v = ga.get(r, c) + grad.get(0, c);
                            ga.set(r, c, v);
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MeanRowBlocks { a, block } => {
                    let (rows, cols) = self.shape(*a);
                    let mut ga = Matrix::zeros(rows, cols);
                    let inv = 1.0 / *block as f32;
                    for r in 0..rows {
                        for (g, o) in grad.row(r / block).iter().zip(ga.row_mut(r)) {
                            *o = g * inv;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MaxRowBlocks { a, block, argmax } => {
                    let (rows, cols) = self.shape(*a);
                    let mut ga = Matrix::zeros(rows, cols);
                    for b in 0..rows / block {
                        for c in 0..cols {
                            let r = b * block + argmax[b * cols + c];
                            let v = ga.get(r, c) + grad.get(b, c);
                            ga.set(r, c, v);
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::RepeatRows { a, times } => {
                    let (rows, cols) = self.shape(*a);
                    let mut ga = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        for t in 0..*times {
                            for (o, g) in ga.row_mut(r).iter_mut().zip(grad.row(r * times + t)) {
                                *o += g;
                            }
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumAll { a } => {
                    let (rows, cols) = self.shape(*a);
                    accumulate(&mut grads, *a, Matrix::full(rows, cols, grad.get(0, 0)));
                }
                Op::MeanAll { a } => {
                    let (rows, cols) = self.shape(*a);
                    let n = (rows * cols).max(1) as f32;
                    accumulate(&mut grads, *a, Matrix::full(rows, cols, grad.get(0, 0) / n));
                }
                Op::RowSoftmax { a } => {
                    // dX_row = (dY_row - (dY_row · Y_row)) ∘ Y_row
                    let y = &node.value;
                    let mut ga = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let inner = dot(grad.row(r), y.row(r));
                        for c in 0..y.cols() {
                            ga.set(r, c, (grad.get(r, c) - inner) * y.get(r, c));
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Transpose { a } => accumulate(&mut grads, *a, grad.transpose()),
                Op::Reshape { a } => {
                    let (rows, cols) = self.shape(*a);
                    accumulate(&mut grads, *a, Matrix::from_vec(rows, cols, grad.as_slice().to_vec()));
                }
                Op::ConcatRows { parts } => {
                    let mut offset = 0;
                    for &p in parts {
                        let (rows, cols) = self.shape(p);
                        let mut gp = Matrix::zeros(rows, cols);
                        for r in 0..rows {
                            gp.row_mut(r).copy_from_slice(grad.row(offset + r));
                        }
                        accumulate(&mut grads, p, gp);
                        offset += rows;
                    }
                }
                Op::ConcatCols { parts } => {
                    let mut offset = 0;
                    for &p in parts {
                        let (rows, cols) = self.shape(p);
                        let mut gp = Matrix::zeros(rows, cols);
                        for r in 0..rows {
                            gp.row_mut(r).copy_from_slice(&grad.row(r)[offset..offset + cols]);
                        }
                        accumulate(&mut grads, p, gp);
                        offset += cols;
                    }
                }
                Op::SliceRows { a, start } => {
                    let (rows, cols) = self.shape(*a);
                    let mut ga = Matrix::zeros(rows, cols);
                    for r in 0..grad.rows() {
                        ga.row_mut(start + r).copy_from_slice(grad.row(r));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::DotRows { a, b } => {
                    let (va, vb) = (self.value(*a), self.value(*b));
                    let mut ga = Matrix::zeros(va.rows(), va.cols());
                    let mut gb = Matrix::zeros(vb.rows(), vb.cols());
                    for r in 0..va.rows() {
                        let g = grad.get(r, 0);
                        for c in 0..va.cols() {
                            ga.set(r, c, g * vb.get(r, c));
                            gb.set(r, c, g * va.get(r, c));
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::AddRowBroadcast { a, b } => {
                    accumulate(&mut grads, *a, grad.clone());
                    // gradient of the broadcast row vector: column-wise sum
                    let mut gb = Matrix::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        for (o, g) in gb.row_mut(0).iter_mut().zip(grad.row(r)) {
                            *o += g;
                        }
                    }
                    accumulate(&mut grads, *b, gb);
                }
                Op::ConvFullWidth { input, filter } => {
                    let (inp, fil) = (self.value(*input), self.value(*filter));
                    let positions = inp.rows() - fil.rows() + 1;
                    let mut gi = Matrix::zeros(inp.rows(), inp.cols());
                    let mut gf = Matrix::zeros(fil.rows(), fil.cols());
                    for p in 0..positions {
                        let g = grad.get(p, 0);
                        if g == 0.0 {
                            continue;
                        }
                        for i in 0..fil.rows() {
                            for c in 0..fil.cols() {
                                let v = gi.get(p + i, c) + g * fil.get(i, c);
                                gi.set(p + i, c, v);
                                let w = gf.get(i, c) + g * inp.get(p + i, c);
                                gf.set(i, c, w);
                            }
                        }
                    }
                    accumulate(&mut grads, *input, gi);
                    accumulate(&mut grads, *filter, gf);
                }
            }
        }
        store
    }
}

fn accumulate(grads: &mut [Option<Matrix>], id: VarId, grad: Matrix) {
    match &mut grads[id.0] {
        Some(existing) => existing.add_assign(&grad),
        slot @ None => *slot = Some(grad),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn forward_values_are_recorded() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = g.constant(Matrix::row_vector(&[3.0, 4.0]));
        let c = g.add(a, b);
        assert_eq!(g.value(c).as_slice(), &[4.0, 6.0]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn simple_linear_gradient() {
        // loss = sum(x · W), d loss / d W = xᵀ · 1
        let mut params = ParamStore::new();
        let w = params.add_dense("w", Matrix::from_rows(&[&[0.5, -0.25], &[1.0, 2.0]]));
        let mut g = Graph::new();
        let x = g.constant(Matrix::row_vector(&[1.0, 2.0]));
        let wv = g.param(&params, w);
        let y = g.matmul(x, wv);
        let loss = g.sum_all(y);
        assert!(close(g.value(loss).get(0, 0), (0.5 + 2.0) + (-0.25 + 4.0)));
        let grads = g.backward(loss);
        let gw = grads.dense(w).unwrap();
        assert_eq!(gw.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn gather_produces_sparse_gradients() {
        let mut params = ParamStore::new();
        let v = params.add_embedding("V", Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]));
        let mut g = Graph::new();
        let rows = g.gather(&params, v, &[2, 0]);
        let pooled = g.mean_rows(rows);
        let loss = g.sum_all(pooled);
        let grads = g.backward(loss);
        let sg = grads.sparse(v).unwrap();
        assert_eq!(sg.touched_rows(), 2);
        let dense = sg.to_dense(3);
        assert_eq!(dense.row(0), &[0.5, 0.5]);
        assert_eq!(dense.row(1), &[0.0, 0.0]);
        assert_eq!(dense.row(2), &[0.5, 0.5]);
    }

    #[test]
    fn hadamard_gradient() {
        let mut params = ParamStore::new();
        let a = params.add_dense("a", Matrix::row_vector(&[2.0, 3.0]));
        let b = params.add_dense("b", Matrix::row_vector(&[5.0, 7.0]));
        let mut g = Graph::new();
        let av = g.param(&params, a);
        let bv = g.param(&params, b);
        let prod = g.hadamard(av, bv);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        assert_eq!(grads.dense(a).unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(grads.dense(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn max_rows_routes_gradient_to_argmax() {
        let mut params = ParamStore::new();
        let v = params.add_embedding("V", Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0]]));
        let mut g = Graph::new();
        let rows = g.gather(&params, v, &[0, 1]);
        let pooled = g.max_rows(rows);
        let loss = g.sum_all(pooled);
        let grads = g.backward(loss);
        let dense = grads.sparse(v).unwrap().to_dense(2);
        assert_eq!(dense.row(0), &[0.0, 1.0]);
        assert_eq!(dense.row(1), &[1.0, 0.0]);
    }

    #[test]
    fn mean_pool_blocks_matches_per_block_mean_rows() {
        let mut params = ParamStore::new();
        let v = params.add_embedding(
            "V",
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[-1.0, 0.0], &[7.0, -2.0], &[0.5, 0.5]]),
        );
        // blocked: pool rows [0,1,2] and [3,4,5] in one node
        let mut g = Graph::new();
        let rows = g.gather(&params, v, &[0, 1, 2, 3, 4, 5]);
        let pooled = g.mean_pool_blocks(rows, 3);
        assert_eq!(g.shape(pooled), (2, 2));
        let loss = g.sum_all(pooled);
        let grads = g.backward(loss);

        // reference: two independent mean_rows graphs
        let mut gr = Graph::new();
        let r0 = gr.gather(&params, v, &[0, 1, 2]);
        let r1 = gr.gather(&params, v, &[3, 4, 5]);
        let p0 = gr.mean_rows(r0);
        let p1 = gr.mean_rows(r1);
        let cat = gr.concat_rows(&[p0, p1]);
        assert_eq!(gr.value(cat).as_slice(), g.value(pooled).as_slice());
        let ref_loss = gr.sum_all(cat);
        let ref_grads = gr.backward(ref_loss);

        let dense = grads.sparse(v).unwrap().to_dense(6);
        let ref_dense = ref_grads.sparse(v).unwrap().to_dense(6);
        assert_eq!(dense.as_slice(), ref_dense.as_slice());
    }

    #[test]
    fn max_pool_blocks_routes_gradients_within_blocks() {
        let mut params = ParamStore::new();
        let v = params.add_embedding("V", Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0], &[0.0, 7.0], &[4.0, 1.0]]));
        let mut g = Graph::new();
        let rows = g.gather(&params, v, &[0, 1, 2, 3]);
        let pooled = g.max_pool_blocks(rows, 2);
        assert_eq!(g.value(pooled).as_slice(), &[3.0, 5.0, 4.0, 7.0]);
        let loss = g.sum_all(pooled);
        let dense = g.backward(loss).sparse(v).unwrap().to_dense(4);
        // block 0: col 0 max at row 1, col 1 max at row 0;
        // block 1: col 0 max at row 3, col 1 max at row 2.
        assert_eq!(dense.as_slice(), &[0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn repeat_rows_forward_and_backward() {
        let mut params = ParamStore::new();
        let a = params.add_dense("a", Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mut g = Graph::new();
        let av = g.param(&params, a);
        let rep = g.repeat_rows(av, 3);
        assert_eq!(g.shape(rep), (6, 2));
        assert_eq!(g.value(rep).row(2), &[1.0, 2.0]);
        assert_eq!(g.value(rep).row(3), &[3.0, 4.0]);
        // weight each repeated copy differently so the backward sum is visible
        let weights =
            g.constant(Matrix::from_vec(6, 2, vec![1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 1.0, 1.0, 0.0, 0.0, 3.0, 3.0]));
        let prod = g.hadamard(rep, weights);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        assert_eq!(grads.dense(a).unwrap().as_slice(), &[7.0, 7.0, 4.0, 4.0]);
    }

    #[test]
    fn bpr_style_loss_gradient_signs() {
        // loss = softplus(-(pos - neg)); d loss/d pos < 0, d loss/d neg > 0
        let mut params = ParamStore::new();
        let pos = params.add_dense("pos", Matrix::full(1, 1, 0.2));
        let neg = params.add_dense("neg", Matrix::full(1, 1, 0.5));
        let mut g = Graph::new();
        let p = g.param(&params, pos);
        let n = g.param(&params, neg);
        let diff = g.sub(p, n);
        let ndiff = g.neg(diff);
        let sp = g.softplus(ndiff);
        let loss = g.sum_all(sp);
        let grads = g.backward(loss);
        assert!(grads.dense(pos).unwrap().get(0, 0) < 0.0);
        assert!(grads.dense(neg).unwrap().get(0, 0) > 0.0);
    }

    #[test]
    fn branching_graph_accumulates_gradients() {
        // y = a + a  =>  dy/da = 2
        let mut params = ParamStore::new();
        let a = params.add_dense("a", Matrix::full(1, 1, 3.0));
        let mut g = Graph::new();
        let av = g.param(&params, a);
        let y = g.add(av, av);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.dense(a).unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn concat_and_slice_shapes() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = g.constant(Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let cat = g.concat_rows(&[a, b]);
        assert_eq!(g.shape(cat), (3, 2));
        let sl = g.slice_rows(cat, 1, 2);
        assert_eq!(g.value(sl).row(0), &[3.0, 4.0]);
        let side = g.concat_cols(&[a, a]);
        assert_eq!(g.shape(side), (1, 4));
    }

    #[test]
    fn conv_full_width_forward_values() {
        let mut g = Graph::new();
        let input = g.constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]));
        let filter = g.constant(Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]));
        let out = g.conv_full_width(input, filter);
        // position 0: 1*1 + 0*1 + 0*2 + 1*2 = 3 ; position 1: 0+1 + 2+2 = 5
        assert_eq!(g.value(out).as_slice(), &[3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1 scalar")]
    fn backward_requires_scalar_loss() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::zeros(2, 2));
        let _ = g.backward(a);
    }

    #[test]
    fn row_softmax_rows_sum_to_one_on_tape() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let s = g.row_softmax(a);
        let sum: f32 = g.value(s).row(0).iter().sum();
        assert!(close(sum, 1.0));
    }
}
