//! Optimizers: Adam (with lazy/sparse updates for embedding tables, as the
//! paper trains all models with Adam) and plain SGD used in tests.

use crate::params::{GradStore, ParamId, ParamStore};
use ham_tensor::Matrix;
use std::collections::HashMap;

/// A gradient-descent optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update step using the gradients in `grads`.
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore);
}

/// Configuration of the [`Adam`] optimizer.
///
/// Defaults follow the paper's Appendix B: learning rate `1e-3`,
/// regularization factor `1e-3`, and the standard Adam moment decay rates.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Step size.
    pub learning_rate: f32,
    /// Exponential decay rate of the first-moment estimate.
    pub beta1: f32,
    /// Exponential decay rate of the second-moment estimate.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub epsilon: f32,
    /// Decoupled L2 weight decay (the paper's `λ‖Θ‖²` regularizer).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { learning_rate: 1e-3, beta1: 0.9, beta2: 0.999, epsilon: 1e-8, weight_decay: 1e-3 }
    }
}

/// Adam optimizer with sparse (per-touched-row) updates for embedding tables.
///
/// Rows of an embedding table that did not appear in the current mini-batch
/// are left untouched (lazy Adam); weight decay is likewise only applied to
/// touched rows, which is the standard behaviour for sparse recommenders and
/// avoids decaying embeddings of items that are never observed.
#[derive(Debug)]
pub struct Adam {
    config: AdamConfig,
    step: u64,
    /// First / second moment estimates, keyed by parameter index.
    m: HashMap<usize, Matrix>,
    v: HashMap<usize, Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the given configuration.
    pub fn new(config: AdamConfig) -> Self {
        Self { config, step: 0, m: HashMap::new(), v: HashMap::new() }
    }

    /// Creates an Adam optimizer with [`AdamConfig::default`].
    pub fn with_defaults() -> Self {
        Self::new(AdamConfig::default())
    }

    /// The number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    fn moments(&mut self, id: ParamId, shape: (usize, usize)) -> (&mut Matrix, &mut Matrix) {
        let m = self.m.entry(id.index()).or_insert_with(|| Matrix::zeros(shape.0, shape.1));
        let v = self.v.entry(id.index()).or_insert_with(|| Matrix::zeros(shape.0, shape.1));
        (m, v)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        self.step += 1;
        let t = self.step as f32;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);

        // Dense updates.
        let dense_ids: Vec<ParamId> = grads.dense_ids().collect();
        for id in dense_ids {
            let shape = params.value(id).shape();
            let grad = grads.dense(id).expect("dense id must have a dense grad").clone();
            let (m, v) = self.moments(id, shape);
            let value = params.value_mut(id);
            for i in 0..value.len() {
                let g = grad.as_slice()[i] + c.weight_decay * value.as_slice()[i];
                let mi = c.beta1 * m.as_slice()[i] + (1.0 - c.beta1) * g;
                let vi = c.beta2 * v.as_slice()[i] + (1.0 - c.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                value.as_mut_slice()[i] -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
            }
        }

        // Sparse (row-wise) updates. `grads`, the moments and the parameter
        // values live in three distinct structures, so the row gradients are
        // read in place — no per-row clone on the per-batch hot path.
        let sparse_ids: Vec<ParamId> = grads.sparse_ids().collect();
        for id in sparse_ids {
            let shape = params.value(id).shape();
            let sparse = grads.sparse(id).expect("sparse id must have a sparse grad");
            let (m, v) = self.moments(id, shape);
            let value = params.value_mut(id);
            let cols = shape.1;
            for (row, grad_row) in sparse.iter() {
                for (col, &raw_g) in grad_row.iter().enumerate() {
                    let i = row * cols + col;
                    let g = raw_g + c.weight_decay * value.as_slice()[i];
                    let mi = c.beta1 * m.as_slice()[i] + (1.0 - c.beta1) * g;
                    let vi = c.beta2 * v.as_slice()[i] + (1.0 - c.beta2) * g * g;
                    m.as_mut_slice()[i] = mi;
                    v.as_mut_slice()[i] = vi;
                    let m_hat = mi / bias1;
                    let v_hat = vi / bias2;
                    value.as_mut_slice()[i] -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
                }
            }
        }
    }
}

/// Plain stochastic gradient descent; mainly used to keep optimizer behaviour
/// observable in tests and ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Step size.
    pub learning_rate: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and no decay.
    pub fn new(learning_rate: f32) -> Self {
        Self { learning_rate, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        let dense_ids: Vec<ParamId> = grads.dense_ids().collect();
        for id in dense_ids {
            let grad = grads.dense(id).expect("dense id must have a dense grad").clone();
            let value = params.value_mut(id);
            for i in 0..value.len() {
                let g = grad.as_slice()[i] + self.weight_decay * value.as_slice()[i];
                value.as_mut_slice()[i] -= self.learning_rate * g;
            }
        }
        let sparse_ids: Vec<ParamId> = grads.sparse_ids().collect();
        for id in sparse_ids {
            let sparse = grads.sparse(id).expect("sparse id must have a sparse grad");
            let cols = params.value(id).cols();
            let value = params.value_mut(id);
            for (row, grad_row) in sparse.iter() {
                for (col, &raw_g) in grad_row.iter().enumerate() {
                    let i = row * cols + col;
                    let g = raw_g + self.weight_decay * value.as_slice()[i];
                    value.as_mut_slice()[i] -= self.learning_rate * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimises `(w - 3)^2` with Adam and checks convergence.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamStore::new();
        let w = params.add_dense("w", Matrix::full(1, 1, 0.0));
        let mut adam = Adam::new(AdamConfig { learning_rate: 0.1, weight_decay: 0.0, ..Default::default() });
        for _ in 0..500 {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let target = g.constant(Matrix::full(1, 1, 3.0));
            let diff = g.sub(wv, target);
            let sq = g.hadamard(diff, diff);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            adam.step(&mut params, &grads);
        }
        assert!((params.value(w).get(0, 0) - 3.0).abs() < 0.05);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut params = ParamStore::new();
        let w = params.add_dense("w", Matrix::full(1, 1, 1.0));
        let mut grads = GradStore::new();
        grads.accumulate_dense(w, &Matrix::full(1, 1, 2.0));
        let mut sgd = Sgd::new(0.5);
        sgd.step(&mut params, &grads);
        assert_eq!(params.value(w).get(0, 0), 0.0);
    }

    #[test]
    fn sparse_adam_only_touches_gradient_rows() {
        let mut params = ParamStore::new();
        let v = params.add_embedding("V", Matrix::full(4, 2, 1.0));
        let mut grads = GradStore::new();
        grads.accumulate_sparse(v, &[1], &Matrix::row_vector(&[1.0, -1.0]));
        let mut adam = Adam::with_defaults();
        adam.step(&mut params, &grads);
        let value = params.value(v);
        // untouched rows keep their original values exactly
        assert_eq!(value.row(0), &[1.0, 1.0]);
        assert_eq!(value.row(2), &[1.0, 1.0]);
        assert_eq!(value.row(3), &[1.0, 1.0]);
        // the touched row moved opposite to the gradient sign
        assert!(value.get(1, 0) < 1.0);
        assert!(value.get(1, 1) > 1.0);
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient_signal() {
        let mut params = ParamStore::new();
        let w = params.add_dense("w", Matrix::full(1, 1, 1.0));
        let mut adam = Adam::new(AdamConfig { weight_decay: 0.1, ..Default::default() });
        for _ in 0..50 {
            let mut grads = GradStore::new();
            grads.accumulate_dense(w, &Matrix::zeros(1, 1));
            adam.step(&mut params, &grads);
        }
        assert!(params.value(w).get(0, 0) < 1.0);
    }
}
