//! Optimizers: Adam (with lazy/sparse updates for embedding tables, as the
//! paper trains all models with Adam) and plain SGD used in tests.

use crate::params::{GradStore, ParamId, ParamStore};
use ham_tensor::Matrix;
use std::collections::HashMap;

/// A gradient-descent optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update step using the gradients in `grads`.
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore);
}

/// Configuration of the [`Adam`] optimizer.
///
/// Defaults follow the paper's Appendix B: learning rate `1e-3`,
/// regularization factor `1e-3`, and the standard Adam moment decay rates.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Step size.
    pub learning_rate: f32,
    /// Exponential decay rate of the first-moment estimate.
    pub beta1: f32,
    /// Exponential decay rate of the second-moment estimate.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub epsilon: f32,
    /// Decoupled L2 weight decay (the paper's `λ‖Θ‖²` regularizer).
    pub weight_decay: f32,
    /// Bias-correct each sparse row by its **own** update count instead of
    /// the optimizer's global step count.
    ///
    /// With the default global correction, a row whose moments are lazily
    /// created at global step `t` is divided by `1 - βᵗ ≈ 1`, so a cold row
    /// warm-started late (an item first seen mid-stream in online training)
    /// gets an effectively *uncorrected* — i.e. several times oversized —
    /// first update. Per-row correction gives every row the same damped
    /// first-step magnitude it would have had at step 1.
    ///
    /// `false` by default: offline training from scratch touches hot rows
    /// within the first few steps, where the two schemes are numerically
    /// close, and the batched-trainer bit-exactness pins rely on the global
    /// behaviour. The online trainer turns this on.
    pub per_row_bias_correction: bool,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 1e-3,
            per_row_bias_correction: false,
        }
    }
}

/// Adam optimizer with sparse (per-touched-row) updates for embedding tables.
///
/// Rows of an embedding table that did not appear in the current mini-batch
/// are left untouched (lazy Adam); weight decay is likewise only applied to
/// touched rows, which is the standard behaviour for sparse recommenders and
/// avoids decaying embeddings of items that are never observed.
#[derive(Debug)]
pub struct Adam {
    config: AdamConfig,
    step: u64,
    /// First / second moment estimates, keyed by parameter index.
    m: HashMap<usize, Matrix>,
    v: HashMap<usize, Matrix>,
    /// Per-row update counts of sparse tables, keyed by parameter index;
    /// only maintained when [`AdamConfig::per_row_bias_correction`] is on.
    row_steps: HashMap<usize, Vec<u64>>,
}

/// A snapshot of an [`Adam`] optimizer's mutable state (step counter, moment
/// estimates, per-row step counts), used to warm-start a later training run
/// — e.g. the next incremental round of an online trainer, or the same
/// stream resumed in a fresh process.
#[derive(Debug, Clone, Default)]
pub struct AdamState {
    step: u64,
    m: HashMap<usize, Matrix>,
    v: HashMap<usize, Matrix>,
    row_steps: HashMap<usize, Vec<u64>>,
}

impl AdamState {
    /// The global step count recorded in this snapshot.
    pub fn steps(&self) -> u64 {
        self.step
    }
}

impl Adam {
    /// Creates an Adam optimizer with the given configuration.
    pub fn new(config: AdamConfig) -> Self {
        Self { config, step: 0, m: HashMap::new(), v: HashMap::new(), row_steps: HashMap::new() }
    }

    /// Creates an Adam optimizer with [`AdamConfig::default`].
    pub fn with_defaults() -> Self {
        Self::new(AdamConfig::default())
    }

    /// Recreates an optimizer from a state snapshot: stepping the resumed
    /// optimizer is bit-identical to stepping the one that exported `state`.
    pub fn resume(config: AdamConfig, state: AdamState) -> Self {
        Self { config, step: state.step, m: state.m, v: state.v, row_steps: state.row_steps }
    }

    /// Snapshots the optimizer's mutable state for a later [`Adam::resume`].
    pub fn export_state(&self) -> AdamState {
        AdamState { step: self.step, m: self.m.clone(), v: self.v.clone(), row_steps: self.row_steps.clone() }
    }

    /// The number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// The moment matrices of `id`, created on first touch and grown row-wise
    /// (zero-filled, like a fresh lazy row) when the parameter gained rows
    /// since the last step — embedding tables grow when unseen users/items
    /// arrive in an online stream.
    fn moments(&mut self, id: ParamId, shape: (usize, usize)) -> (&mut Matrix, &mut Matrix) {
        let m = self.m.entry(id.index()).or_insert_with(|| Matrix::zeros(shape.0, shape.1));
        let v = self.v.entry(id.index()).or_insert_with(|| Matrix::zeros(shape.0, shape.1));
        if m.rows() < shape.0 {
            m.resize_rows(shape.0);
            v.resize_rows(shape.0);
        }
        (m, v)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        self.step += 1;
        let t = self.step as f32;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);

        // Dense updates.
        let dense_ids: Vec<ParamId> = grads.dense_ids().collect();
        for id in dense_ids {
            let shape = params.value(id).shape();
            let grad = grads.dense(id).expect("dense id must have a dense grad").clone();
            let (m, v) = self.moments(id, shape);
            let value = params.value_mut(id);
            for i in 0..value.len() {
                let g = grad.as_slice()[i] + c.weight_decay * value.as_slice()[i];
                let mi = c.beta1 * m.as_slice()[i] + (1.0 - c.beta1) * g;
                let vi = c.beta2 * v.as_slice()[i] + (1.0 - c.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                value.as_mut_slice()[i] -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
            }
        }

        // Sparse (row-wise) updates. `grads`, the moments and the parameter
        // values live in three distinct structures, so the row gradients are
        // read in place — no per-row clone on the per-batch hot path.
        let sparse_ids: Vec<ParamId> = grads.sparse_ids().collect();
        for id in sparse_ids {
            let shape = params.value(id).shape();
            let sparse = grads.sparse(id).expect("sparse id must have a sparse grad");
            // Disjoint field borrows (the `moments` method would tie up all
            // of `self`, and the per-row step counts live in a third map).
            let m = self.m.entry(id.index()).or_insert_with(|| Matrix::zeros(shape.0, shape.1));
            let v = self.v.entry(id.index()).or_insert_with(|| Matrix::zeros(shape.0, shape.1));
            if m.rows() < shape.0 {
                m.resize_rows(shape.0);
                v.resize_rows(shape.0);
            }
            let mut row_steps = c.per_row_bias_correction.then(|| {
                let steps = self.row_steps.entry(id.index()).or_default();
                if steps.len() < shape.0 {
                    steps.resize(shape.0, 0);
                }
                steps
            });
            let value = params.value_mut(id);
            let cols = shape.1;
            for (row, grad_row) in sparse.iter() {
                // Each row appears at most once per gradient store, so the
                // per-row counts are independent of the (unspecified) sparse
                // iteration order.
                let (bias1, bias2) = match row_steps.as_mut() {
                    Some(steps) => {
                        steps[row] += 1;
                        let rt = steps[row] as f32;
                        (1.0 - c.beta1.powf(rt), 1.0 - c.beta2.powf(rt))
                    }
                    None => (bias1, bias2),
                };
                for (col, &raw_g) in grad_row.iter().enumerate() {
                    let i = row * cols + col;
                    let g = raw_g + c.weight_decay * value.as_slice()[i];
                    let mi = c.beta1 * m.as_slice()[i] + (1.0 - c.beta1) * g;
                    let vi = c.beta2 * v.as_slice()[i] + (1.0 - c.beta2) * g * g;
                    m.as_mut_slice()[i] = mi;
                    v.as_mut_slice()[i] = vi;
                    let m_hat = mi / bias1;
                    let v_hat = vi / bias2;
                    value.as_mut_slice()[i] -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
                }
            }
        }
    }
}

/// Plain stochastic gradient descent; mainly used to keep optimizer behaviour
/// observable in tests and ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Step size.
    pub learning_rate: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and no decay.
    pub fn new(learning_rate: f32) -> Self {
        Self { learning_rate, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        let dense_ids: Vec<ParamId> = grads.dense_ids().collect();
        for id in dense_ids {
            let grad = grads.dense(id).expect("dense id must have a dense grad").clone();
            let value = params.value_mut(id);
            for i in 0..value.len() {
                let g = grad.as_slice()[i] + self.weight_decay * value.as_slice()[i];
                value.as_mut_slice()[i] -= self.learning_rate * g;
            }
        }
        let sparse_ids: Vec<ParamId> = grads.sparse_ids().collect();
        for id in sparse_ids {
            let sparse = grads.sparse(id).expect("sparse id must have a sparse grad");
            let cols = params.value(id).cols();
            let value = params.value_mut(id);
            for (row, grad_row) in sparse.iter() {
                for (col, &raw_g) in grad_row.iter().enumerate() {
                    let i = row * cols + col;
                    let g = raw_g + self.weight_decay * value.as_slice()[i];
                    value.as_mut_slice()[i] -= self.learning_rate * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimises `(w - 3)^2` with Adam and checks convergence.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamStore::new();
        let w = params.add_dense("w", Matrix::full(1, 1, 0.0));
        let mut adam = Adam::new(AdamConfig { learning_rate: 0.1, weight_decay: 0.0, ..Default::default() });
        for _ in 0..500 {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let target = g.constant(Matrix::full(1, 1, 3.0));
            let diff = g.sub(wv, target);
            let sq = g.hadamard(diff, diff);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            adam.step(&mut params, &grads);
        }
        assert!((params.value(w).get(0, 0) - 3.0).abs() < 0.05);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut params = ParamStore::new();
        let w = params.add_dense("w", Matrix::full(1, 1, 1.0));
        let mut grads = GradStore::new();
        grads.accumulate_dense(w, &Matrix::full(1, 1, 2.0));
        let mut sgd = Sgd::new(0.5);
        sgd.step(&mut params, &grads);
        assert_eq!(params.value(w).get(0, 0), 0.0);
    }

    #[test]
    fn sparse_adam_only_touches_gradient_rows() {
        let mut params = ParamStore::new();
        let v = params.add_embedding("V", Matrix::full(4, 2, 1.0));
        let mut grads = GradStore::new();
        grads.accumulate_sparse(v, &[1], &Matrix::row_vector(&[1.0, -1.0]));
        let mut adam = Adam::with_defaults();
        adam.step(&mut params, &grads);
        let value = params.value(v);
        // untouched rows keep their original values exactly
        assert_eq!(value.row(0), &[1.0, 1.0]);
        assert_eq!(value.row(2), &[1.0, 1.0]);
        assert_eq!(value.row(3), &[1.0, 1.0]);
        // the touched row moved opposite to the gradient sign
        assert!(value.get(1, 0) < 1.0);
        assert!(value.get(1, 1) > 1.0);
    }

    /// Trains row 0 for `steps - 1` steps, then touches row 1 for the first
    /// time on the final global step (same gradient as row 0's first step).
    /// Returns the first-update magnitudes of (row 0 at step 1, row 1 at
    /// step `steps`).
    fn cold_row_first_updates(steps: usize, per_row: bool) -> (f32, f32) {
        let mut params = ParamStore::new();
        let v = params.add_embedding("V", Matrix::zeros(2, 1));
        let config = AdamConfig { weight_decay: 0.0, per_row_bias_correction: per_row, ..Default::default() };
        let mut adam = Adam::new(config);
        let g = Matrix::row_vector(&[0.5]);
        let mut first_update_row0 = 0.0;
        for step in 1..=steps {
            let mut grads = GradStore::new();
            grads.accumulate_sparse(v, &[0], &g);
            if step == steps {
                grads.accumulate_sparse(v, &[1], &g);
            }
            adam.step(&mut params, &grads);
            if step == 1 {
                first_update_row0 = params.value(v).get(0, 0).abs();
            }
        }
        (first_update_row0, params.value(v).get(1, 0).abs())
    }

    /// The cold-row bugfix: with per-row bias correction, a row first touched
    /// at a late global step gets exactly the damped first update a row
    /// touched at step 1 gets; with the global correction its first update is
    /// oversized by up to `(1-β₁)/√(1-β₂) ≈ 3.16x`.
    #[test]
    fn per_row_correction_equalises_cold_row_first_updates() {
        for steps in [100, 2000] {
            let (warm, cold) = cold_row_first_updates(steps, true);
            assert_eq!(warm.to_bits(), cold.to_bits(), "per-row: cold row at step {steps} must match step 1 exactly");
        }
        // Contrast: under the global correction the same cold row's first
        // update is several times too large once `1 - β₂ᵗ` has saturated.
        let (warm, cold) = cold_row_first_updates(2000, false);
        assert!(cold > 2.0 * warm, "global correction should overshoot cold rows: warm {warm}, cold {cold}");
    }

    /// Resuming from an exported state is bit-identical to never pausing.
    #[test]
    fn export_and_resume_match_uninterrupted_training() {
        let grad = Matrix::row_vector(&[0.3, -0.7]);
        let run = |resume_at: Option<usize>| {
            let mut params = ParamStore::new();
            let v = params.add_embedding("V", Matrix::full(3, 2, 1.0));
            let config = AdamConfig { per_row_bias_correction: true, ..Default::default() };
            let mut adam = Adam::new(config);
            for step in 0..20 {
                if resume_at == Some(step) {
                    adam = Adam::resume(config, adam.export_state());
                }
                let mut grads = GradStore::new();
                grads.accumulate_sparse(v, &[step % 3], &grad);
                adam.step(&mut params, &grads);
            }
            (adam.steps(), params.value(v).clone())
        };
        let (steps_a, a) = run(None);
        let (steps_b, b) = run(Some(11));
        assert_eq!(steps_a, steps_b);
        assert!(a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    /// Growing an embedding table between steps grows the moment matrices
    /// too; the new rows behave like freshly lazy-created ones.
    #[test]
    fn moments_grow_with_the_parameter_table() {
        let mut params = ParamStore::new();
        let v = params.add_embedding("V", Matrix::zeros(2, 2));
        let config = AdamConfig { weight_decay: 0.0, per_row_bias_correction: true, ..Default::default() };
        let mut adam = Adam::new(config);
        let g = Matrix::row_vector(&[1.0, -1.0]);
        let mut grads = GradStore::new();
        grads.accumulate_sparse(v, &[0], &g);
        adam.step(&mut params, &grads);
        let first_update = params.value(v).get(0, 0).abs();
        // the table gains two rows mid-stream
        params.append_rows(v, &Matrix::zeros(2, 2));
        let mut grads = GradStore::new();
        grads.accumulate_sparse(v, &[3], &g);
        adam.step(&mut params, &grads);
        let grown_update = params.value(v).get(3, 0).abs();
        assert_eq!(first_update.to_bits(), grown_update.to_bits(), "a grown row's first update matches a cold start");
        assert_eq!(params.value(v).row(2), &[0.0, 0.0], "untouched grown row stays zero");
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient_signal() {
        let mut params = ParamStore::new();
        let w = params.add_dense("w", Matrix::full(1, 1, 1.0));
        let mut adam = Adam::new(AdamConfig { weight_decay: 0.1, ..Default::default() });
        for _ in 0..50 {
            let mut grads = GradStore::new();
            grads.accumulate_dense(w, &Matrix::zeros(1, 1));
            adam.step(&mut params, &grads);
        }
        assert!(params.value(w).get(0, 0) < 1.0);
    }
}
