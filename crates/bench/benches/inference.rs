//! Table 14 shape: per-user test-time scoring latency of HAMs_m against the
//! Caser, SASRec and HGN baselines (all scoring the full catalogue).

use criterion::{criterion_group, criterion_main, Criterion};
use ham_baselines::{
    BaselineTrainConfig, Caser, CaserConfig, Hgn, HgnConfig, SasRec, SasRecConfig, SequentialRecommender,
};
use ham_bench::{bench_dataset, quick_ham};
use ham_core::HamVariant;
use std::hint::black_box;

fn inference_benchmarks(c: &mut Criterion) {
    let data = bench_dataset();
    let d = 32;
    let tc = BaselineTrainConfig { epochs: 1, batch_size: 256, ..BaselineTrainConfig::default() };

    let ham = quick_ham(&data, HamVariant::HamSM, d);
    let hgn = Hgn::fit(&data.sequences, data.num_items, &HgnConfig { d, seq_len: 5, targets: 3 }, &tc, 1);
    let sasrec = SasRec::fit(&data.sequences, data.num_items, &SasRecConfig { d, seq_len: 5, targets: 3 }, &tc, 1);
    let caser = Caser::fit(
        &data.sequences,
        data.num_items,
        &CaserConfig { d, seq_len: 5, targets: 3, vertical_filters: 2, horizontal_filters: 4 },
        &tc,
        1,
    );

    let history: Vec<usize> = data.sequences[0].clone();
    let mut group = c.benchmark_group("score_all_per_user");
    group.sample_size(20);
    group.bench_function("HAMs_m", |b| b.iter(|| black_box(ham.score_all(0, black_box(&history)))));
    group.bench_function("HGN", |b| b.iter(|| black_box(hgn.score_all(0, black_box(&history)))));
    group.bench_function("SASRec", |b| b.iter(|| black_box(sasrec.score_all(0, black_box(&history)))));
    group.bench_function("Caser", |b| b.iter(|| black_box(caser.score_all(0, black_box(&history)))));
    group.finish();
}

criterion_group!(benches, inference_benchmarks);
criterion_main!(benches);
