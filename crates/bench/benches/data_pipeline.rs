//! Throughput of the data substrate: synthetic generation, splitting and
//! sliding-window extraction (the pipeline every experiment pays before any
//! training starts).

use criterion::{criterion_group, criterion_main, Criterion};
use ham_data::split::{split_dataset, EvalSetting};
use ham_data::synthetic::DatasetProfile;
use ham_data::window::sliding_windows;
use std::hint::black_box;

fn data_pipeline(c: &mut Criterion) {
    let profile = {
        let mut p = DatasetProfile::tiny("bench-pipeline");
        p.num_users = 500;
        p.num_items = 1000;
        p.mean_seq_len = 40.0;
        p
    };
    let dataset = profile.generate(9);
    let split = split_dataset(&dataset, EvalSetting::Cut8020);

    let mut group = c.benchmark_group("data_pipeline");
    group.sample_size(10);
    group.bench_function("generate_500_users", |b| b.iter(|| black_box(profile.generate(black_box(9)))));
    group.bench_function("split_80_20", |b| {
        b.iter(|| black_box(split_dataset(black_box(&dataset), EvalSetting::Cut8020)))
    });
    group.bench_function("sliding_windows_nh5_np3", |b| {
        b.iter(|| black_box(sliding_windows(black_box(&split.train), 5, 3)))
    });
    group.finish();
}

criterion_group!(benches, data_pipeline);
criterion_main!(benches);
