//! Cost of one epoch of mini-batched BPR training per method, across the
//! batch sizes the pipeline is designed around (1 = the bit-exact legacy
//! per-instance path, 32 = one GEMM block per batch, 256 = multi-block
//! batches), plus the manual vs autograd gradient paths for HAM (the
//! fast-path ablation called out in DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use ham_bench::bench_dataset;
use ham_core::{train_with_history, HamConfig, HamVariant, TrainConfig};
use ham_data::dataset::SequenceDataset;
use std::hint::black_box;

fn one_epoch(data: &SequenceDataset, config: &HamConfig, batch_size: usize, force_autograd: bool) {
    let tc = TrainConfig { epochs: 1, batch_size, force_autograd, ..TrainConfig::default() };
    let (_, history) = train_with_history(&data.sequences, data.num_items, config, &tc, 3);
    black_box(history);
}

fn training_benchmarks(c: &mut Criterion) {
    let data = bench_dataset();
    // keep the benchmark epoch small by truncating users
    let data =
        SequenceDataset::new(data.name.clone(), data.sequences.iter().take(60).cloned().collect(), data.num_items);

    let mut group = c.benchmark_group("train_one_epoch");
    group.sample_size(10);

    let plain = HamConfig::for_variant(HamVariant::HamM).with_dimensions(32, 5, 2, 3, 1);
    let synergy = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(32, 5, 2, 3, 3);
    for batch_size in [1usize, 32, 256] {
        group.bench_function(format!("HAMm_manual_gradients_b{batch_size}"), |b| {
            b.iter(|| one_epoch(&data, &plain, batch_size, false))
        });
        group.bench_function(format!("HAMm_autograd_reference_b{batch_size}"), |b| {
            b.iter(|| one_epoch(&data, &plain, batch_size, true))
        });
        group.bench_function(format!("HAMs_m_autograd_b{batch_size}"), |b| {
            b.iter(|| one_epoch(&data, &synergy, batch_size, true))
        });
    }

    group.bench_function("HGN_autograd", |b| {
        b.iter(|| {
            let cfg = ham_baselines::HgnConfig { d: 32, seq_len: 5, targets: 3 };
            let tc = ham_baselines::BaselineTrainConfig { epochs: 1, batch_size: 256, ..Default::default() };
            black_box(ham_baselines::Hgn::fit(&data.sequences, data.num_items, &cfg, &tc, 3));
        })
    });
    group.finish();
}

criterion_group!(benches, training_benchmarks);
criterion_main!(benches);
