//! The scoring-kernel ladder behind Table 14's efficiency story: the seed's
//! naive per-item dot loop vs the fused one-user pass
//! (`matvec_transposed`) vs the batched `Q·Wᵀ` GEMM, at catalogue sizes
//! 1k / 10k / 50k with d = 32.
//!
//! The batched entry is timed over a 64-user batch and reported per batch;
//! divide by 64 to compare per-user cost against the other two rungs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ham_tensor::kernels::{matmul_transposed, matvec_transposed};
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const D: usize = 32;
const BATCH: usize = 64;
const CATALOGUE_SIZES: [usize; 3] = [1_000, 10_000, 50_000];

/// The seed's scoring loop: one single-accumulator dot per catalogue item.
fn naive_score_all(w: &Matrix, q: &[f32]) -> Vec<f32> {
    (0..w.rows())
        .map(|j| {
            let row = w.row(j);
            let mut acc = 0.0f32;
            for (x, y) in row.iter().zip(q) {
                acc += x * y;
            }
            acc
        })
        .collect()
}

fn scoring_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut group = c.benchmark_group("score_catalogue_d32");
    group.sample_size(20);

    for n in CATALOGUE_SIZES {
        let w = Matrix::xavier_uniform(n, D, &mut rng);
        let q: Vec<f32> = (0..D).map(|k| (k as f32 * 0.37).sin()).collect();
        let queries = Matrix::xavier_uniform(BATCH, D, &mut rng);

        group.bench_with_input(BenchmarkId::new("naive_dot_loop", n), &n, |b, _| {
            b.iter(|| black_box(naive_score_all(black_box(&w), black_box(&q))))
        });
        group.bench_with_input(BenchmarkId::new("matvec_transposed", n), &n, |b, _| {
            b.iter(|| black_box(matvec_transposed(black_box(&w), black_box(&q))))
        });
        group.bench_with_input(BenchmarkId::new("batched_qwt_64users", n), &n, |b, _| {
            b.iter(|| black_box(matmul_transposed(black_box(&queries), black_box(&w))))
        });
    }
    group.finish();
}

criterion_group!(benches, scoring_kernels);
criterion_main!(benches);
