//! The design-choice ablation the paper motivates: aggregating a window of
//! item embeddings with simplistic pooling (HAM) versus a parameterised
//! attention layer (SASRec-style), measured at the operation level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ham_tensor::ops::softmax_rows;
use ham_tensor::pool::{max_pool_rows, mean_pool_rows};
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A single-head self-attention pass over the window (Q=K=V projections,
/// scaled dot-product, softmax, context mix) — what SASRec/HGN-style models
/// pay per window where HAM pays one pooling pass.
fn attention_aggregate(window: &Matrix, wq: &Matrix, wk: &Matrix, wv: &Matrix) -> Vec<f32> {
    let q = window.matmul(wq);
    let k = window.matmul(wk);
    let v = window.matmul(wv);
    let scores = q.matmul_transposed(&k).scale(1.0 / (window.cols() as f32).sqrt());
    let attn = softmax_rows(&scores);
    let context = attn.matmul(&v);
    context.row(context.rows() - 1).to_vec()
}

fn pooling_vs_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let d = 64;
    let mut group = c.benchmark_group("window_aggregation");
    for &window_len in &[5usize, 10, 20] {
        let window = Matrix::xavier_uniform(window_len, d, &mut rng);
        let wq = Matrix::xavier_uniform(d, d, &mut rng);
        let wk = Matrix::xavier_uniform(d, d, &mut rng);
        let wv = Matrix::xavier_uniform(d, d, &mut rng);

        group.bench_with_input(BenchmarkId::new("mean_pooling", window_len), &window, |b, w| {
            b.iter(|| black_box(mean_pool_rows(black_box(w))))
        });
        group.bench_with_input(BenchmarkId::new("max_pooling", window_len), &window, |b, w| {
            b.iter(|| black_box(max_pool_rows(black_box(w)).0))
        });
        group.bench_with_input(BenchmarkId::new("self_attention", window_len), &window, |b, w| {
            b.iter(|| black_box(attention_aggregate(black_box(w), &wq, &wk, &wv)))
        });
    }
    group.finish();
}

criterion_group!(benches, pooling_vs_attention);
criterion_main!(benches);
