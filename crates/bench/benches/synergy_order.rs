//! Cost of the recursive item synergies (Eq. 5) as the order `p` grows — the
//! `p` rows of Tables 10–12 trade accuracy against this cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ham_bench::{bench_dataset, quick_ham};
use ham_core::synergy::{apply_latent_cross, synergy_terms};
use ham_core::HamVariant;
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn synergy_benchmarks(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let window = Matrix::xavier_uniform(8, 64, &mut rng);
    let h = window.mean_rows();

    let mut group = c.benchmark_group("synergy_computation");
    for order in 1usize..=4 {
        group.bench_with_input(BenchmarkId::new("synergy_terms", order), &order, |b, &p| {
            b.iter(|| {
                let terms = synergy_terms(black_box(&window), p);
                black_box(apply_latent_cross(&h, &terms))
            })
        });
    }
    group.finish();

    // End-to-end: full-catalogue scoring with and without the synergy term.
    let data = bench_dataset();
    let plain = quick_ham(&data, HamVariant::HamM, 32);
    let synergy = quick_ham(&data, HamVariant::HamSM, 32);
    let history = data.sequences[0].clone();
    let mut group = c.benchmark_group("score_all_by_variant");
    group.sample_size(20);
    group.bench_function("HAMm", |b| b.iter(|| black_box(plain.score_all(0, black_box(&history)))));
    group.bench_function("HAMs_m", |b| b.iter(|| black_box(synergy.score_all(0, black_box(&history)))));
    group.finish();
}

criterion_group!(benches, synergy_benchmarks);
criterion_main!(benches);
