//! Generates `BENCH_scoring.json`: before/after numbers for the batched
//! scoring kernel layer.
//!
//! * **Kernel ladder** — per-call wall time of the seed's naive per-item dot
//!   loop vs the fused `matvec_transposed` pass vs the batched `Q·Wᵀ` GEMM
//!   (64-user batch, reported per user), at catalogue sizes 1k / 10k / 50k
//!   with d = 32.
//! * **End-to-end evaluation** — the full protocol on the bench dataset
//!   (200 users, 10k items, d = 32): the seed configuration (per-user scalar
//!   dot loop, single-threaded) against the batched configuration
//!   (`score_batch` + `evaluate_batch` with 4 worker threads), plus the two
//!   intermediate rungs so each layer's contribution is visible.
//!
//! Run from the repository root: `cargo run --release -p ham-bench --bin
//! scoring_report` (the JSON is written to the current directory).

use ham_core::{HamConfig, HamModel, HamVariant};
use ham_data::dataset::SequenceDataset;
use ham_data::split::{split_dataset, EvalSetting};
use ham_eval::protocol::{evaluate, evaluate_batch, EvalConfig};
use ham_tensor::kernels::{active_tier, matmul_transposed, matvec_transposed, quantized_matvec_into};
use ham_tensor::{Matrix, QuantizedMatrix, QuantizedQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const D: usize = 32;
const BATCH: usize = 64;
const EVAL_ITEMS: usize = 10_000;
const EVAL_USERS: usize = 200;

/// The seed's scoring loop: one single-accumulator dot per catalogue item.
fn naive_score_all(w: &Matrix, q: &[f32]) -> Vec<f32> {
    (0..w.rows())
        .map(|j| {
            let row = w.row(j);
            let mut acc = 0.0f32;
            for (x, y) in row.iter().zip(q) {
                acc += x * y;
            }
            acc
        })
        .collect()
}

/// The seed's ranking path: materialise the full `0..n` index vector, then
/// quickselect and sort the head (no partial selection).
fn seed_top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let cmp =
        |a: &usize, b: &usize| scores[*b].partial_cmp(&scores[*a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b));
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_by(cmp);
    idx
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct KernelRow {
    catalogue: usize,
    naive_us: f64,
    matvec_us: f64,
    batched_per_user_us: f64,
    quantized_matvec_us: f64,
}

fn kernel_ladder() -> Vec<KernelRow> {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut rows = Vec::new();
    for n in [1_000usize, 10_000, 50_000] {
        let w = Matrix::xavier_uniform(n, D, &mut rng);
        let q: Vec<f32> = (0..D).map(|k| (k as f32 * 0.37).sin()).collect();
        let queries = Matrix::xavier_uniform(BATCH, D, &mut rng);
        // Inner repetition keeps each sample above timer resolution.
        let inner = (2_000_000 / n).max(1);
        let naive = time_best(5, || {
            for _ in 0..inner {
                black_box(naive_score_all(black_box(&w), black_box(&q)));
            }
        }) / inner as f64;
        let matvec = time_best(5, || {
            for _ in 0..inner {
                black_box(matvec_transposed(black_box(&w), black_box(&q)));
            }
        }) / inner as f64;
        let gemm_inner = (inner / BATCH).max(1);
        let batched = time_best(5, || {
            for _ in 0..gemm_inner {
                black_box(matmul_transposed(black_box(&queries), black_box(&w)));
            }
        }) / gemm_inner as f64
            / BATCH as f64;
        let qw = QuantizedMatrix::quantize(&w);
        let qq = QuantizedQuery::quantize(&q);
        let mut qscores = vec![0.0f32; n];
        let quantized = time_best(5, || {
            for _ in 0..inner {
                quantized_matvec_into(black_box(&qw), black_box(&qq), black_box(&mut qscores));
            }
        }) / inner as f64;
        rows.push(KernelRow {
            catalogue: n,
            naive_us: naive * 1e6,
            matvec_us: matvec * 1e6,
            batched_per_user_us: batched * 1e6,
            quantized_matvec_us: quantized * 1e6,
        });
    }
    rows
}

struct EvalRow {
    label: &'static str,
    seconds_total: f64,
    seconds_per_user: f64,
}

fn end_to_end() -> (Vec<EvalRow>, f64) {
    let sequences: Vec<Vec<usize>> =
        (0..EVAL_USERS).map(|u| (0..40).map(|t| (u * 131 + t * 17) % EVAL_ITEMS).collect()).collect();
    let data = SequenceDataset::new("bench-10k", sequences, EVAL_ITEMS);
    let split = split_dataset(&data, EvalSetting::Cut8020);
    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(D, 5, 2, 3, 2);
    let model = HamModel::new(EVAL_USERS, EVAL_ITEMS, config, 7);
    let w = model.candidate_item_embeddings();

    let seq_cfg = EvalConfig::default();
    let par_cfg = EvalConfig { num_threads: 4, ..EvalConfig::default() };

    let mut rows = Vec::new();
    let mut run = |label: &'static str, f: &dyn Fn()| {
        let seconds = time_best(3, f);
        rows.push(EvalRow { label, seconds_total: seconds, seconds_per_user: seconds / EVAL_USERS as f64 });
    };

    // The seed's evaluation loop, replicated end to end: sequential users,
    // a scalar dot per catalogue item, history masking, and the seed's
    // full-index-vector quickselect ranking.
    let histories = split.train_with_val();
    run("seed_per_user_dot_loop_1thread", &|| {
        let mut metric_guard = 0.0f64;
        #[allow(clippy::needless_range_loop)]
        for user in 0..EVAL_USERS {
            let history = &histories[user];
            if split.test[user].is_empty() || history.is_empty() {
                continue;
            }
            let truth: std::collections::HashSet<usize> = split.test[user].iter().copied().collect();
            let mut scores = naive_score_all(w, &model.query_vector(user, history));
            for &seen in history {
                scores[seen] = f32::NEG_INFINITY;
            }
            let ranked = seed_top_k(&scores, 10);
            metric_guard += ham_eval::metrics::MetricSet::from_ranking(&ranked, &truth).recall_at_10;
        }
        black_box(metric_guard);
    });
    run("fused_matvec_1thread", &|| {
        black_box(evaluate(&split, &seq_cfg, |u, h| model.score_all(u, h)));
    });
    run("batched_gemm_1thread", &|| {
        black_box(evaluate_batch(&split, &seq_cfg, |users, hists| model.score_batch(users, hists)));
    });
    run("batched_gemm_4threads", &|| {
        black_box(evaluate_batch(&split, &par_cfg, |users, hists| model.score_batch(users, hists)));
    });

    let before = rows[0].seconds_total;
    let after = rows[3].seconds_total;
    (rows, before / after)
}

fn main() {
    eprintln!("measuring kernel ladder (d = {D})...");
    let kernels = kernel_ladder();
    eprintln!("measuring end-to-end evaluation ({EVAL_USERS} users, {EVAL_ITEMS} items, d = {D})...");
    let (eval_rows, speedup) = end_to_end();

    let mut out = String::from("{\n");
    out.push_str("  \"description\": \"Batched scoring kernel layer: before/after numbers. Kernel times are per score_all-equivalent call (microseconds), including the int8 quantized GEMV rung on the dispatched tier; the end-to-end section times the full evaluation protocol on 200 users / 10k items / d=32.\",\n");
    out.push_str(&format!("  \"d\": {D},\n  \"batch_size\": {BATCH},\n"));
    out.push_str(&format!("  \"active_tier\": \"{}\",\n  \"quantized\": true,\n", active_tier()));
    out.push_str("  \"kernel_ladder_us_per_call\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"catalogue\": {}, \"naive_dot_loop\": {:.2}, \"matvec_transposed\": {:.2}, \"batched_qwt_per_user\": {:.2}, \"quantized_matvec\": {:.2}, \"speedup_matvec\": {:.2}, \"speedup_batched\": {:.2}, \"speedup_quantized\": {:.2}}}{}\n",
            r.catalogue,
            r.naive_us,
            r.matvec_us,
            r.batched_per_user_us,
            r.quantized_matvec_us,
            r.naive_us / r.matvec_us,
            r.naive_us / r.batched_per_user_us,
            r.naive_us / r.quantized_matvec_us,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"end_to_end_eval\": {{\"users\": {EVAL_USERS}, \"items\": {EVAL_ITEMS}, \"rows\": [\n"));
    for (i, r) in eval_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"seconds_total\": {:.6}, \"seconds_per_user\": {:.9}}}{}\n",
            r.label,
            r.seconds_total,
            r.seconds_per_user,
            if i + 1 < eval_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]},\n");
    out.push_str(&format!("  \"speedup_batched_4threads_over_seed_loop\": {speedup:.2}\n"));
    out.push_str("}\n");

    std::fs::write("BENCH_scoring.json", &out).expect("failed to write BENCH_scoring.json");
    println!("{out}");
    eprintln!("wrote BENCH_scoring.json (end-to-end speedup: {speedup:.2}x)");
}
