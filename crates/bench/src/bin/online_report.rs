//! Generates `BENCH_online.json`: end-to-end numbers for the online
//! training loop (`ham-online`) — train → publish → serve in one process.
//!
//! Four measurements:
//!
//! * **Incremental vs full retrain** — the headline: wall-clock cost of
//!   consuming a 10% fresh slice through incremental rounds (fresh windows
//!   only, warm Adam moments) vs one from-scratch retrain on the cumulative
//!   stream at the same epoch budget.
//! * **Publish latency** — seconds from "round finished training" to "new
//!   version live in the registry" (dominated by freezing/sharding the
//!   snapshot; the registry swap itself is nanoseconds).
//! * **Staleness** — wall-clock gap between successive published versions
//!   (ingest + train + publish of a round): how old the serving model gets
//!   between refreshes on this cadence.
//! * **Served-version mix** — client threads hammer the `RecServer` across
//!   both incremental rounds; the responses-per-version histogram shows the
//!   hot-swap serving every version with no pause and no shed.
//!
//! A quality section scores the stale (bootstrap), incremental and
//! full-retrain models on a held-out fresh slice (each user's final
//! interaction): incremental training on only the fresh windows should
//! recover most of the full retrain's lift over the stale model.
//!
//! Run from the repository root: `cargo run --release -p ham-bench --bin
//! online_report` (append `-- --quick` for the CI smoke configuration).

use ham_core::{train, HamConfig, HamModel, HamVariant, TrainConfig};
use ham_data::synthetic::DatasetProfile;
use ham_online::{OnlineConfig, OnlineTrainer, RoundReport};
use ham_serve::{RecServer, RecommendRequest, ServerConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const K: usize = 10;
const SEED: u64 = 20260731;

struct BenchScale {
    profile_scale: f64,
    d: usize,
    epochs_per_round: usize,
    clients: usize,
}

impl BenchScale {
    fn new(quick: bool) -> Self {
        if quick {
            Self { profile_scale: 1.0, d: 16, epochs_per_round: 2, clients: 2 }
        } else {
            Self { profile_scale: 6.0, d: 32, epochs_per_round: 3, clients: 2 }
        }
    }
}

/// Splits each user's sequence into (initial 90%, fresh 10%, held-out last
/// item). The fresh slice is what the online loop ingests; the held-out item
/// is the quality probe.
struct StreamSplit {
    initial: Vec<Vec<usize>>,
    fresh: Vec<(usize, usize)>,
    holdout: Vec<(usize, Vec<usize>, usize)>,
    num_items: usize,
}

fn split_stream(profile_scale: f64) -> StreamSplit {
    let data = DatasetProfile::tiny("online-bench").with_scale(profile_scale).generate(SEED);
    let mut initial = Vec::with_capacity(data.num_users());
    let mut fresh = Vec::new();
    let mut holdout = Vec::new();
    for (user, seq) in data.sequences.iter().enumerate() {
        if seq.len() < 12 {
            initial.push(seq.clone());
            continue;
        }
        let (working, target) = seq.split_at(seq.len() - 1);
        let cut = working.len() - working.len().div_ceil(10); // last ~10% is fresh
        initial.push(working[..cut].to_vec());
        for &item in &working[cut..] {
            fresh.push((user, item));
        }
        holdout.push((user, working.to_vec(), target[0]));
    }
    StreamSplit { initial, fresh, holdout, num_items: data.num_items }
}

/// Fraction of held-out next items ranked in the model's top-k.
fn hit_rate(model: &HamModel, holdout: &[(usize, Vec<usize>, usize)]) -> f64 {
    let mut hits = 0usize;
    for (user, history, target) in holdout {
        if model.recommend_top_k(*user, history, K, false).contains(target) {
            hits += 1;
        }
    }
    hits as f64 / holdout.len().max(1) as f64
}

struct RoundRow {
    report: RoundReport,
    staleness_seconds: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = BenchScale::new(quick);
    let split = split_stream(scale.profile_scale);
    let num_users = split.initial.len();
    let fresh_fraction =
        split.fresh.len() as f64 / (split.fresh.len() + split.initial.iter().map(Vec::len).sum::<usize>()) as f64;
    eprintln!(
        "online_report: {} users, {} items, {} fresh interactions ({:.1}% of the stream), d = {}{}",
        num_users,
        split.num_items,
        split.fresh.len(),
        fresh_fraction * 100.0,
        scale.d,
        if quick { " (quick)" } else { "" }
    );

    let config = OnlineConfig {
        model: HamConfig::for_variant(HamVariant::HamM).with_dimensions(scale.d, 5, 2, 3, 1),
        train: TrainConfig { epochs: scale.epochs_per_round, batch_size: 256, ..TrainConfig::default() },
        shards: 2,
        quantize_serving: false,
        ivf: None,
        seed: SEED,
        gate: ham_online::PublishGate::default(),
    };

    // Bootstrap: full training on the initial 90%, published as version 1.
    eprintln!("bootstrapping on the initial stream...");
    let bootstrap_started = Instant::now();
    let initial_data = ham_data::SequenceDataset::new("online-bench-initial", split.initial.clone(), split.num_items);
    let mut trainer = OnlineTrainer::bootstrap(&initial_data, config);
    let bootstrap_seconds = bootstrap_started.elapsed().as_secs_f64();
    let stale_model = trainer.model();

    // Clients hammer the server across both incremental rounds; the
    // responses-per-version histogram is the served mix during the swaps.
    let server = Arc::new(RecServer::start(trainer.registry(), ServerConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..scale.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let histories = split.initial.clone();
            std::thread::spawn(move || {
                let mut by_version: BTreeMap<u64, usize> = BTreeMap::new();
                let mut sheds = 0usize;
                let mut r = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let user = (c * 31 + r * 7) % histories.len();
                    match server.submit(RecommendRequest::new(user, histories[user].clone(), K)) {
                        Ok(response) => *by_version.entry(response.model_version).or_insert(0) += 1,
                        Err(_) => sheds += 1,
                    }
                    r += 1;
                }
                (by_version, sheds)
            })
        })
        .collect();

    // Two incremental rounds, each consuming half the fresh slice; the gap
    // between publishes is the staleness of the serving model on this
    // cadence.
    eprintln!("running incremental rounds while {} clients stay connected...", scale.clients);
    let half = split.fresh.len() / 2;
    let mut rows: Vec<RoundRow> = Vec::new();
    let mut last_publish = Instant::now();
    for wave in [&split.fresh[..half], &split.fresh[half..]] {
        for &(user, item) in wave {
            trainer.ingest(user, item);
        }
        let report = trainer.run_round();
        let staleness_seconds = last_publish.elapsed().as_secs_f64();
        last_publish = Instant::now();
        eprintln!(
            "  round {}: {} fresh -> {} instances in {:.3}s train + {:.4}s publish (version {})",
            report.round,
            report.fresh_interactions,
            report.instances_trained,
            report.train_seconds,
            report.publish_seconds,
            report.version
        );
        rows.push(RoundRow { report, staleness_seconds });
    }
    let incremental_model = trainer.model();
    stop.store(true, Ordering::SeqCst);
    let mut served_mix: BTreeMap<u64, usize> = BTreeMap::new();
    let mut sheds = 0usize;
    for client in clients {
        let (by_version, client_sheds) = client.join().expect("client thread panicked");
        for (version, count) in by_version {
            *served_mix.entry(version).or_insert(0) += count;
        }
        sheds += client_sheds;
    }

    // The from-scratch reference: one full retrain on the cumulative stream
    // at the same epoch budget.
    eprintln!("full retrain on the cumulative stream (reference)...");
    let mut cumulative = split.initial.clone();
    for &(user, item) in &split.fresh {
        cumulative[user].push(item);
    }
    let full_started = Instant::now();
    let full_model = train(&cumulative, split.num_items, &config.model, &config.train, SEED);
    let full_seconds = full_started.elapsed().as_secs_f64();

    let incremental_seconds: f64 = rows.iter().map(|r| r.report.train_seconds + r.report.publish_seconds).sum();
    let speedup = full_seconds / incremental_seconds;
    let publish_mean = rows.iter().map(|r| r.report.publish_seconds).sum::<f64>() / rows.len() as f64;
    let staleness_mean = rows.iter().map(|r| r.staleness_seconds).sum::<f64>() / rows.len() as f64;

    let quality_stale = hit_rate(&stale_model, &split.holdout);
    let quality_incremental = hit_rate(&incremental_model, &split.holdout);
    let quality_full = hit_rate(&full_model, &split.holdout);

    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"Online training loop: cost of consuming a ~10% fresh slice through \
         incremental rounds (fresh windows only, warm-started Adam with per-row bias correction) vs one \
         full retrain on the cumulative stream; publish latency, staleness between published versions, \
         the served-version mix while clients stay connected through the hot-swaps, and hit@10 on each \
         user's held-out final interaction.\",\n",
    );
    out.push_str(&format!(
        "  \"quick\": {quick},\n  \"users\": {num_users},\n  \"items\": {},\n  \"d\": {},\n  \"epochs_per_round\": {},\n",
        split.num_items, scale.d, scale.epochs_per_round
    ));
    out.push_str(&format!(
        "  \"fresh_interactions\": {},\n  \"fresh_fraction\": {:.4},\n  \"bootstrap_seconds\": {:.4},\n",
        split.fresh.len(),
        fresh_fraction,
        bootstrap_seconds
    ));
    out.push_str("  \"rounds\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"round\": {}, \"version\": {}, \"fresh_interactions\": {}, \"instances_trained\": {}, \
             \"train_seconds\": {:.4}, \"publish_seconds\": {:.6}, \"staleness_seconds\": {:.4}}}{}\n",
            row.report.round,
            row.report.version,
            row.report.fresh_interactions,
            row.report.instances_trained,
            row.report.train_seconds,
            row.report.publish_seconds,
            row.staleness_seconds,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"full_retrain_seconds\": {full_seconds:.4},\n  \"incremental_total_seconds\": {incremental_seconds:.4},\n  \
         \"incremental_speedup_vs_full\": {speedup:.2},\n  \"publish_seconds_mean\": {publish_mean:.6},\n  \
         \"staleness_seconds_mean\": {staleness_mean:.4},\n"
    ));
    out.push_str(&format!(
        "  \"served_version_mix\": {{{}}},\n  \"client_sheds\": {sheds},\n",
        served_mix.iter().map(|(version, count)| format!("\"v{version}\": {count}")).collect::<Vec<_>>().join(", ")
    ));
    out.push_str(&format!(
        "  \"holdout_hit_at_{K}\": {{\"stale_bootstrap\": {quality_stale:.4}, \"incremental\": {quality_incremental:.4}, \
         \"full_retrain\": {quality_full:.4}}}\n"
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_online.json", &out).expect("failed to write BENCH_online.json");
    println!("{out}");
    eprintln!(
        "wrote BENCH_online.json (incremental rounds {speedup:.1}x faster than full retrain; \
         hit@{K} stale {quality_stale:.3} -> incremental {quality_incremental:.3} vs full {quality_full:.3})"
    );
}
