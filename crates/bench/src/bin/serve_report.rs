//! Generates `BENCH_serving.json`: throughput and latency numbers for the
//! sharded serving subsystem (`ham-serve`).
//!
//! Three sections:
//!
//! * **Single-node baseline** — the PR 1 configuration at the same thread
//!   budget: full-catalogue `score_batch` GEMM over 64-user chunks fanned
//!   out on the shared worker pool, fused masked top-k per user. This is the
//!   number sharded serving has to meet or beat.
//! * **Sharded offline sweep** — `ServingModel::recommend_batch` throughput
//!   across shard counts × micro-batch sizes, shards scored in parallel on
//!   the same pool.
//! * **Online serving** — requests pushed through the [`RecServer`]
//!   micro-batching queue from concurrent client threads, with per-request
//!   latency percentiles (p50/p95/p99) and a model hot-swap mid-run.
//!
//! Run from the repository root: `cargo run --release -p ham-bench --bin
//! serve_report` (append `-- --quick` for the CI smoke configuration). The
//! JSON is written to the current directory.

use ham_core::{HamConfig, HamModel, HamVariant};
use ham_eval::ranking::top_k_excluding;
use ham_serve::{LatencyStats, ModelRegistry, RecServer, RecommendRequest, ServerConfig, ServingModel};
use ham_tensor::kernels::active_tier;
use ham_tensor::pool::global_pool;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const D: usize = 32;
const K: usize = 10;

struct BenchScale {
    items: usize,
    users: usize,
    offline_reps: usize,
    online_requests_per_client: usize,
    clients: usize,
}

impl BenchScale {
    fn new(quick: bool) -> Self {
        if quick {
            Self { items: 2_000, users: 64, offline_reps: 4, online_requests_per_client: 40, clients: 2 }
        } else {
            Self { items: 10_000, users: 200, offline_reps: 9, online_requests_per_client: 250, clients: 4 }
        }
    }
}

fn bench_model(scale: &BenchScale) -> (Arc<HamModel>, Vec<Vec<usize>>) {
    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(D, 5, 2, 3, 2);
    let model = Arc::new(HamModel::new(scale.users, scale.items, config, 7));
    let histories: Vec<Vec<usize>> =
        (0..scale.users).map(|u| (0..40).map(|t| (u * 131 + t * 17) % scale.items).collect()).collect();
    (model, histories)
}

/// One pass of the PR 1 single-node path at the pool's thread budget: users
/// chunked over the shared pool, each chunk scored against the **full**
/// catalogue with the batched GEMM and ranked with the fused masked top-k.
fn single_node_pass(model: &HamModel, histories: &[Vec<usize>], threads: usize) {
    let users: Vec<usize> = (0..histories.len()).collect();
    let chunk = users.len().div_ceil(threads);
    let parts: Vec<&[usize]> = users.chunks(chunk).collect();
    global_pool().scope(|scope| {
        for part in parts {
            scope.spawn(move || {
                let mut seen = vec![false; model.num_items()];
                for batch in part.chunks(64) {
                    let hist: Vec<&[usize]> = batch.iter().map(|&u| histories[u].as_slice()).collect();
                    let scores = model.score_batch(batch, &hist);
                    for (i, &u) in batch.iter().enumerate() {
                        black_box(top_k_excluding(scores.row(i), K, &histories[u], &mut seen));
                    }
                }
            });
        }
    });
}

/// One pass of offline sharded serving: all users served through
/// `ServingModel::recommend_batch` in micro-batches of `batch`.
fn sharded_pass(serving: &ServingModel, requests: &[RecommendRequest], batch: usize) {
    for group in requests.chunks(batch) {
        black_box(serving.recommend_batch(group, Some(global_pool())));
    }
}

struct ShardRow {
    shards: usize,
    batch: usize,
    quantized: bool,
    seconds: f64,
    users_per_second: f64,
}

struct OnlineRow {
    label: String,
    throughput_rps: f64,
    stats: LatencyStats,
    versions_seen: Vec<u64>,
}

/// Pushes requests through the micro-batching server from concurrent client
/// threads; publishes a hot-swapped model halfway through.
fn online_run(model: &Arc<HamModel>, histories: &[Vec<usize>], scale: &BenchScale, shards: usize) -> OnlineRow {
    let registry = Arc::new(ModelRegistry::new(
        ServingModel::from_scorer("ham-sm-v1", Arc::clone(model), shards).expect("HAM has a linear head"),
    ));
    let server = Arc::new(RecServer::start(Arc::clone(&registry), ServerConfig::default()));
    let started = Instant::now();
    let total_requests = scale.clients * scale.online_requests_per_client;
    let handles: Vec<_> = (0..scale.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let histories = histories.to_vec();
            let per_client = scale.online_requests_per_client;
            std::thread::spawn(move || {
                let mut samples = Vec::with_capacity(per_client);
                let mut versions = Vec::new();
                for r in 0..per_client {
                    let user = (c * 31 + r * 7) % histories.len();
                    let response = server
                        .submit(RecommendRequest::new(user, histories[user].clone(), K))
                        .expect("bench requests stay within the queue bound");
                    samples.push(response.total_micros());
                    if versions.last() != Some(&response.model_version) {
                        versions.push(response.model_version);
                    }
                }
                (samples, versions)
            })
        })
        .collect();
    // Hot-swap a retrained model while the clients are mid-flight.
    let swap = {
        let registry = Arc::clone(&registry);
        let model = Arc::clone(model);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            registry.publish(ServingModel::from_scorer("ham-sm-v2", model, shards).expect("HAM has a linear head"));
        })
    };
    let mut samples = Vec::with_capacity(total_requests);
    let mut versions_seen = Vec::new();
    for handle in handles {
        let (client_samples, client_versions) = handle.join().expect("client thread panicked");
        samples.extend(client_samples);
        for v in client_versions {
            if !versions_seen.contains(&v) {
                versions_seen.push(v);
            }
        }
    }
    swap.join().expect("publisher thread panicked");
    let elapsed = started.elapsed().as_secs_f64();
    versions_seen.sort_unstable();
    OnlineRow {
        label: format!("{}_shards_{}_clients", shards, scale.clients),
        throughput_rps: total_requests as f64 / elapsed,
        stats: LatencyStats::from_micros(samples).expect("at least one sample"),
        versions_seen,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = BenchScale::new(quick);
    let threads = global_pool().threads();
    eprintln!(
        "serve_report: {} items, {} users, d = {D}, pool threads = {threads}{}",
        scale.items,
        scale.users,
        if quick { " (quick)" } else { "" }
    );

    let (model, histories) = bench_model(&scale);

    // Paired measurement: the shared VM's throughput drifts over seconds, so
    // the baseline and every sharded configuration are measured round-robin
    // inside the same rep loop (best-of per configuration) instead of in
    // separate blocks minutes apart — ratios then compare like with like.
    let shard_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let batch_sizes: &[usize] = &[1, 16, 64];
    // Each shard count is measured twice: exact f32 catalogues and int8
    // quantized catalogues with the exact re-rank (identical results, less
    // catalogue traffic).
    let servings: Vec<(usize, bool, ServingModel)> = shard_counts
        .iter()
        .flat_map(|&s| {
            let build = || ServingModel::from_scorer("ham-sm", Arc::clone(&model), s).expect("HAM has a linear head");
            [(s, false, build()), (s, true, build().with_quantized_catalog())]
        })
        .collect();
    let requests: Vec<RecommendRequest> =
        (0..histories.len()).map(|u| RecommendRequest::new(u, histories[u].clone(), K)).collect();
    eprintln!(
        "measuring offline throughput, paired round-robin ({} reps): single-node baseline + {} sharded configs...",
        scale.offline_reps,
        servings.len() * batch_sizes.len()
    );
    // Warm-up pass so first-touch page faults and cold caches hit no one.
    single_node_pass(&model, &histories, threads);
    let mut single_seconds = f64::INFINITY;
    let mut sharded_best = vec![f64::INFINITY; servings.len() * batch_sizes.len()];
    for _ in 0..scale.offline_reps {
        let start = Instant::now();
        single_node_pass(&model, &histories, threads);
        single_seconds = single_seconds.min(start.elapsed().as_secs_f64());
        for (si, (_, _, serving)) in servings.iter().enumerate() {
            for (bi, &batch) in batch_sizes.iter().enumerate() {
                let start = Instant::now();
                sharded_pass(serving, &requests, batch);
                let slot = &mut sharded_best[si * batch_sizes.len() + bi];
                *slot = slot.min(start.elapsed().as_secs_f64());
            }
        }
    }
    let single_ups = scale.users as f64 / single_seconds;
    let mut rows: Vec<ShardRow> = Vec::new();
    for (si, (shards, quantized, _)) in servings.iter().enumerate() {
        for (bi, &batch) in batch_sizes.iter().enumerate() {
            let seconds = sharded_best[si * batch_sizes.len() + bi];
            rows.push(ShardRow {
                shards: *shards,
                batch,
                quantized: *quantized,
                seconds,
                users_per_second: scale.users as f64 / seconds,
            });
        }
    }
    let best_sharded = rows.iter().map(|r| r.users_per_second).fold(0.0f64, f64::max);

    eprintln!("measuring online serving through the micro-batching queue...");
    let online_shards = if quick { 2 } else { 4 };
    let online = online_run(&model, &histories, &scale, online_shards);

    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"Sharded serving subsystem: single-node baseline vs sharded offline \
         throughput (users/s, k=10, seen-items masked) and online micro-batched serving with latency \
         percentiles. Sharded results are exact (bit-identical ids to the single-node ranking); rows with \
         quantized=true score candidates against int8 panels and re-rank the top-2k through the exact f32 \
         kernel, which keeps the served ranking bit-identical too.\",\n",
    );
    out.push_str(&format!(
        "  \"d\": {D},\n  \"k\": {K},\n  \"items\": {},\n  \"users\": {},\n  \"pool_threads\": {threads},\n  \
         \"active_tier\": \"{}\",\n  \"quick\": {quick},\n",
        scale.items,
        scale.users,
        active_tier()
    ));
    out.push_str(&format!(
        "  \"single_node_baseline\": {{\"threads\": {threads}, \"seconds\": {:.6}, \"users_per_second\": {:.1}}},\n",
        single_seconds, single_ups
    ));
    out.push_str("  \"sharded_offline\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"batch\": {}, \"quantized\": {}, \"seconds\": {:.6}, \"users_per_second\": {:.1}, \"vs_single_node\": {:.3}}}{}\n",
            r.shards,
            r.batch,
            r.quantized,
            r.seconds,
            r.users_per_second,
            r.users_per_second / single_ups,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"best_sharded_over_single_node\": {:.3},\n", best_sharded / single_ups));
    out.push_str(&format!(
        "  \"online\": {{\"config\": \"{}\", \"throughput_rps\": {:.1}, \"latency_micros\": {{\"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \"requests\": {}, \"model_versions_served\": {:?}}}\n",
        online.label,
        online.throughput_rps,
        online.stats.mean_micros,
        online.stats.p50_micros,
        online.stats.p95_micros,
        online.stats.p99_micros,
        online.stats.max_micros,
        online.stats.count,
        online.versions_seen
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_serving.json", &out).expect("failed to write BENCH_serving.json");
    println!("{out}");
    eprintln!(
        "wrote BENCH_serving.json (best sharded throughput {:.2}x the single-node baseline)",
        best_sharded / single_ups
    );
}
