//! Generates `BENCH_serving.json`: throughput and latency numbers for the
//! sharded serving subsystem (`ham-serve`).
//!
//! Three sections:
//!
//! * **Single-node baseline** — the PR 1 configuration at the same thread
//!   budget: full-catalogue `score_batch` GEMM over 64-user chunks fanned
//!   out on the shared worker pool, fused masked top-k per user. This is the
//!   number sharded serving has to meet or beat.
//! * **Sharded offline sweep** — `ServingModel::recommend_batch` throughput
//!   across shard counts × micro-batch sizes, shards scored in parallel on
//!   the same pool.
//! * **Online serving** — requests pushed through the [`RecServer`]
//!   micro-batching queue from concurrent client threads, with per-request
//!   latency percentiles (p50/p95/p99) and a model hot-swap mid-run.
//! * **IVF retrieval sweep** — cluster-routed approximate candidate
//!   generation on the largest benchmarked catalogue: recall@10 vs
//!   throughput across `nprobe` settings, measured paired against the exact
//!   (unclustered) serving path, with the `nprobe = all` endpoint checked
//!   bit-identical to exact serving.
//!
//! Run from the repository root: `cargo run --release -p ham-bench --bin
//! serve_report` (append `-- --quick` for the CI smoke configuration). The
//! JSON is written to the current directory.

use ham_core::{HamConfig, HamModel, HamVariant};
use ham_eval::ranking::top_k_excluding;
use ham_serve::{
    IvfConfig, LatencyStats, ModelRegistry, RecServer, RecommendRequest, ServerConfig, ServingModel, ShardedCatalog,
    PROBE_ALL,
};
use ham_tensor::kernels::active_tier;
use ham_tensor::pool::global_pool;
use ham_tensor::Matrix;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const D: usize = 32;
const K: usize = 10;

struct BenchScale {
    items: usize,
    users: usize,
    offline_reps: usize,
    online_requests_per_client: usize,
    clients: usize,
}

impl BenchScale {
    fn new(quick: bool) -> Self {
        if quick {
            Self { items: 2_000, users: 64, offline_reps: 4, online_requests_per_client: 40, clients: 2 }
        } else {
            Self { items: 10_000, users: 200, offline_reps: 9, online_requests_per_client: 250, clients: 4 }
        }
    }
}

fn bench_model(scale: &BenchScale) -> (Arc<HamModel>, Vec<Vec<usize>>) {
    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(D, 5, 2, 3, 2);
    let model = Arc::new(HamModel::new(scale.users, scale.items, config, 7));
    let histories: Vec<Vec<usize>> =
        (0..scale.users).map(|u| (0..40).map(|t| (u * 131 + t * 17) % scale.items).collect()).collect();
    (model, histories)
}

/// One pass of the PR 1 single-node path at the pool's thread budget: users
/// chunked over the shared pool, each chunk scored against the **full**
/// catalogue with the batched GEMM and ranked with the fused masked top-k.
fn single_node_pass(model: &HamModel, histories: &[Vec<usize>], threads: usize) {
    let users: Vec<usize> = (0..histories.len()).collect();
    let chunk = users.len().div_ceil(threads);
    let parts: Vec<&[usize]> = users.chunks(chunk).collect();
    global_pool().scope(|scope| {
        for part in parts {
            scope.spawn(move || {
                let mut seen = vec![false; model.num_items()];
                for batch in part.chunks(64) {
                    let hist: Vec<&[usize]> = batch.iter().map(|&u| histories[u].as_slice()).collect();
                    let scores = model.score_batch(batch, &hist);
                    for (i, &u) in batch.iter().enumerate() {
                        black_box(top_k_excluding(scores.row(i), K, &histories[u], &mut seen));
                    }
                }
            });
        }
    });
}

/// One pass of offline sharded serving: all users served through
/// `ServingModel::recommend_batch` in micro-batches of `batch`.
fn sharded_pass(serving: &ServingModel, requests: &[RecommendRequest], batch: usize) {
    for group in requests.chunks(batch) {
        black_box(serving.recommend_batch(group, Some(global_pool())));
    }
}

struct ShardRow {
    shards: usize,
    batch: usize,
    quantized: bool,
    seconds: f64,
    users_per_second: f64,
}

struct OnlineRow {
    label: String,
    throughput_rps: f64,
    stats: LatencyStats,
    versions_seen: Vec<u64>,
}

/// Pushes requests through the micro-batching server from concurrent client
/// threads; publishes a hot-swapped model halfway through.
fn online_run(model: &Arc<HamModel>, histories: &[Vec<usize>], scale: &BenchScale, shards: usize) -> OnlineRow {
    let registry = Arc::new(ModelRegistry::new(
        ServingModel::from_scorer("ham-sm-v1", Arc::clone(model), shards).expect("HAM has a linear head"),
    ));
    let server = Arc::new(RecServer::start(Arc::clone(&registry), ServerConfig::default()));
    let started = Instant::now();
    let total_requests = scale.clients * scale.online_requests_per_client;
    let handles: Vec<_> = (0..scale.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let histories = histories.to_vec();
            let per_client = scale.online_requests_per_client;
            std::thread::spawn(move || {
                let mut samples = Vec::with_capacity(per_client);
                let mut versions = Vec::new();
                for r in 0..per_client {
                    let user = (c * 31 + r * 7) % histories.len();
                    let response = server
                        .submit(RecommendRequest::new(user, histories[user].clone(), K))
                        .expect("bench requests stay within the queue bound");
                    samples.push(response.total_micros());
                    if versions.last() != Some(&response.model_version) {
                        versions.push(response.model_version);
                    }
                }
                (samples, versions)
            })
        })
        .collect();
    // Hot-swap a retrained model while the clients are mid-flight.
    let swap = {
        let registry = Arc::clone(&registry);
        let model = Arc::clone(model);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            registry.publish(ServingModel::from_scorer("ham-sm-v2", model, shards).expect("HAM has a linear head"));
        })
    };
    let mut samples = Vec::with_capacity(total_requests);
    let mut versions_seen = Vec::new();
    for handle in handles {
        let (client_samples, client_versions) = handle.join().expect("client thread panicked");
        samples.extend(client_samples);
        for v in client_versions {
            if !versions_seen.contains(&v) {
                versions_seen.push(v);
            }
        }
    }
    swap.join().expect("publisher thread panicked");
    let elapsed = started.elapsed().as_secs_f64();
    versions_seen.sort_unstable();
    OnlineRow {
        label: format!("{}_shards_{}_clients", shards, scale.clients),
        throughput_rps: total_requests as f64 / elapsed,
        stats: LatencyStats::from_micros(samples).expect("at least one sample"),
        versions_seen,
    }
}

/// Scale of the IVF retrieval sweep. Deliberately the **largest** catalogue
/// in the report: approximate retrieval pays off exactly where exact scans
/// hurt, so the recall/throughput trade is measured where it matters.
struct IvfScale {
    items: usize,
    queries: usize,
    prototypes: usize,
    reps: usize,
    shards: usize,
}

impl IvfScale {
    fn new(quick: bool) -> Self {
        if quick {
            Self { items: 20_000, queries: 128, prototypes: 64, reps: 3, shards: 4 }
        } else {
            Self { items: 120_000, queries: 384, prototypes: 256, reps: 5, shards: 4 }
        }
    }
}

/// splitmix64 — the same deterministic generator the k-means seeding uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f32 in [-1, 1).
fn uniform(state: &mut u64) -> f32 {
    (splitmix64(state) >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
}

/// A clustered catalogue: `prototypes` anchor directions, every item is an
/// anchor plus item-level noise, every query is an anchor plus tighter
/// noise. Real recommendation catalogues are clustered (genres, franchises,
/// price bands) — a uniform-random catalogue would understate IVF recall,
/// a noiseless one would overstate it.
fn ivf_catalogue(scale: &IvfScale) -> (Matrix, Vec<Vec<f32>>) {
    let mut state = 0x1D1A_7E57_C0FF_EE00u64;
    let protos: Vec<Vec<f32>> = (0..scale.prototypes).map(|_| (0..D).map(|_| uniform(&mut state)).collect()).collect();
    let mut w = Vec::with_capacity(scale.items * D);
    for i in 0..scale.items {
        let proto = &protos[(i * 7 + 3) % scale.prototypes];
        w.extend((0..D).map(|c| proto[c] + 0.25 * uniform(&mut state)));
    }
    let queries = (0..scale.queries)
        .map(|q| {
            let proto = &protos[(q * 13 + 1) % scale.prototypes];
            (0..D).map(|c| proto[c] + 0.1 * uniform(&mut state)).collect()
        })
        .collect();
    (Matrix::from_vec(scale.items, D, w), queries)
}

struct IvfRow {
    nprobe: usize,
    clusters_probed: usize,
    recall_at_10: f64,
    seconds: f64,
    users_per_second: f64,
}

/// Mean recall@K of `approx` against the exact `truth` ranking.
fn recall_at_k(truth: &[Vec<ham_serve::ScoredItem>], approx: &[Vec<ham_serve::ScoredItem>]) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (t, a) in truth.iter().zip(approx) {
        total += t.len();
        hits += t.iter().filter(|item| a.iter().any(|cand| cand.item == item.item)).count();
    }
    hits as f64 / total.max(1) as f64
}

/// The IVF retrieval sweep: recall@10 vs throughput across `nprobe`
/// settings, paired round-robin against the exact (unclustered) arm inside
/// the same rep loop. Returns the exact arm's best seconds and the sweep
/// rows (the `nprobe = all` endpoint is asserted bit-identical to exact).
fn ivf_sweep(scale: &IvfScale) -> (f64, Vec<IvfRow>) {
    let (w, queries) = ivf_catalogue(scale);
    let queries = Arc::new(queries);
    let make_model = |name: &str, catalog: ShardedCatalog| {
        let queries = Arc::clone(&queries);
        ServingModel::from_catalog(name, catalog, move |user, _history| queries[user].clone())
    };
    let exact = make_model("ivf-exact", ShardedCatalog::from_matrix(&w, scale.shards));
    // One k-means build (`nprobe = all`); every sweep point re-dials the
    // probe width on a clone of the built index — no rebuild per point.
    let build_started = Instant::now();
    let clustered = ShardedCatalog::from_matrix(&w, scale.shards).with_cluster_index(&IvfConfig::auto());
    eprintln!(
        "  built {} clusters over {} rows in {:.2}s",
        clustered.num_clusters(),
        scale.items,
        build_started.elapsed().as_secs_f64()
    );
    // `nprobe` is a per-shard dial: points at or past the per-shard cluster
    // count would just repeat the `all` endpoint.
    let mut nprobes: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64]
        .iter()
        .copied()
        .filter(|&n| n * scale.shards < clustered.num_clusters())
        .collect();
    nprobes.push(PROBE_ALL);
    let models: Vec<ServingModel> =
        nprobes.iter().map(|&n| make_model(&format!("ivf-nprobe-{n}"), clustered.clone().with_nprobe(n))).collect();
    let requests: Vec<RecommendRequest> = (0..scale.queries).map(|q| RecommendRequest::new(q, Vec::new(), K)).collect();

    // Ground truth + recall first (unmeasured), and the exactness check of
    // the `nprobe = all` endpoint: identical ids, order and score bits.
    let serve_all = |model: &ServingModel| {
        let mut out = Vec::with_capacity(requests.len());
        for group in requests.chunks(64) {
            out.extend(model.recommend_batch(group, Some(global_pool())));
        }
        out
    };
    let truth = serve_all(&exact);
    let recalls: Vec<f64> = models.iter().map(|m| recall_at_k(&truth, &serve_all(m))).collect();
    let endpoint = serve_all(models.last().expect("nprobe sweep is never empty"));
    for (t, a) in truth.iter().zip(&endpoint) {
        assert_eq!(t.len(), a.len(), "nprobe=all endpoint diverged from exact serving");
        for (ti, ai) in t.iter().zip(a) {
            assert_eq!(ti.item, ai.item, "nprobe=all endpoint diverged from exact serving");
            assert_eq!(ti.score.to_bits(), ai.score.to_bits(), "nprobe=all endpoint diverged from exact serving");
        }
    }

    // Paired throughput: exact + every nprobe point measured round-robin in
    // the same rep loop (best-of per arm), so VM drift hits all arms alike.
    // Timed at batch-of-1 — the latency-critical serving path, and the one
    // where cluster routing is sub-linear per request. (Batched scoring
    // unions the batch's visited clusters per shard, so its win depends on
    // the batch sharing clusters; these queries deliberately spread across
    // every prototype, the worst case for batching.)
    sharded_pass(&exact, &requests, 1); // warm-up
    let mut exact_seconds = f64::INFINITY;
    let mut point_seconds = vec![f64::INFINITY; models.len()];
    for _ in 0..scale.reps {
        let start = Instant::now();
        sharded_pass(&exact, &requests, 1);
        exact_seconds = exact_seconds.min(start.elapsed().as_secs_f64());
        for (i, model) in models.iter().enumerate() {
            let start = Instant::now();
            sharded_pass(model, &requests, 1);
            point_seconds[i] = point_seconds[i].min(start.elapsed().as_secs_f64());
        }
    }
    let rows = nprobes
        .iter()
        .zip(&models)
        .zip(recalls)
        .zip(point_seconds)
        .map(|(((&nprobe, model), recall_at_10), seconds)| IvfRow {
            nprobe,
            clusters_probed: model.clusters_probed(),
            recall_at_10,
            seconds,
            users_per_second: scale.queries as f64 / seconds,
        })
        .collect();
    (exact_seconds, rows)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = BenchScale::new(quick);
    let threads = global_pool().threads();
    eprintln!(
        "serve_report: {} items, {} users, d = {D}, pool threads = {threads}{}",
        scale.items,
        scale.users,
        if quick { " (quick)" } else { "" }
    );

    let (model, histories) = bench_model(&scale);

    // Paired measurement: the shared VM's throughput drifts over seconds, so
    // the baseline and every sharded configuration are measured round-robin
    // inside the same rep loop (best-of per configuration) instead of in
    // separate blocks minutes apart — ratios then compare like with like.
    let shard_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let batch_sizes: &[usize] = &[1, 16, 64];
    // Each shard count is measured twice: exact f32 catalogues and int8
    // quantized catalogues with the exact re-rank (identical results, less
    // catalogue traffic).
    let servings: Vec<(usize, bool, ServingModel)> = shard_counts
        .iter()
        .flat_map(|&s| {
            let build = || ServingModel::from_scorer("ham-sm", Arc::clone(&model), s).expect("HAM has a linear head");
            [(s, false, build()), (s, true, build().with_quantized_catalog())]
        })
        .collect();
    let requests: Vec<RecommendRequest> =
        (0..histories.len()).map(|u| RecommendRequest::new(u, histories[u].clone(), K)).collect();
    eprintln!(
        "measuring offline throughput, paired round-robin ({} reps): single-node baseline + {} sharded configs...",
        scale.offline_reps,
        servings.len() * batch_sizes.len()
    );
    // Warm-up pass so first-touch page faults and cold caches hit no one.
    single_node_pass(&model, &histories, threads);
    let mut single_seconds = f64::INFINITY;
    let mut sharded_best = vec![f64::INFINITY; servings.len() * batch_sizes.len()];
    for _ in 0..scale.offline_reps {
        let start = Instant::now();
        single_node_pass(&model, &histories, threads);
        single_seconds = single_seconds.min(start.elapsed().as_secs_f64());
        for (si, (_, _, serving)) in servings.iter().enumerate() {
            for (bi, &batch) in batch_sizes.iter().enumerate() {
                let start = Instant::now();
                sharded_pass(serving, &requests, batch);
                let slot = &mut sharded_best[si * batch_sizes.len() + bi];
                *slot = slot.min(start.elapsed().as_secs_f64());
            }
        }
    }
    let single_ups = scale.users as f64 / single_seconds;
    let mut rows: Vec<ShardRow> = Vec::new();
    for (si, (shards, quantized, _)) in servings.iter().enumerate() {
        for (bi, &batch) in batch_sizes.iter().enumerate() {
            let seconds = sharded_best[si * batch_sizes.len() + bi];
            rows.push(ShardRow {
                shards: *shards,
                batch,
                quantized: *quantized,
                seconds,
                users_per_second: scale.users as f64 / seconds,
            });
        }
    }
    let best_sharded = rows.iter().map(|r| r.users_per_second).fold(0.0f64, f64::max);

    eprintln!("measuring online serving through the micro-batching queue...");
    let online_shards = if quick { 2 } else { 4 };
    let online = online_run(&model, &histories, &scale, online_shards);

    let ivf_scale = IvfScale::new(quick);
    eprintln!(
        "measuring IVF retrieval sweep: {} items, {} queries, {} shards...",
        ivf_scale.items, ivf_scale.queries, ivf_scale.shards
    );
    let (ivf_exact_seconds, ivf_rows) = ivf_sweep(&ivf_scale);
    let ivf_exact_ups = ivf_scale.queries as f64 / ivf_exact_seconds;

    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"Sharded serving subsystem: single-node baseline vs sharded offline \
         throughput (users/s, k=10, seen-items masked) and online micro-batched serving with latency \
         percentiles. Sharded results are exact (bit-identical ids to the single-node ranking); rows with \
         quantized=true score candidates against int8 panels and re-rank the top-2k through the exact f32 \
         kernel, which keeps the served ranking bit-identical too.\",\n",
    );
    out.push_str(&format!(
        "  \"d\": {D},\n  \"k\": {K},\n  \"items\": {},\n  \"users\": {},\n  \"pool_threads\": {threads},\n  \
         \"active_tier\": \"{}\",\n  \"quick\": {quick},\n",
        scale.items,
        scale.users,
        active_tier()
    ));
    out.push_str(&format!(
        "  \"single_node_baseline\": {{\"threads\": {threads}, \"seconds\": {:.6}, \"users_per_second\": {:.1}}},\n",
        single_seconds, single_ups
    ));
    out.push_str("  \"sharded_offline\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"batch\": {}, \"quantized\": {}, \"seconds\": {:.6}, \"users_per_second\": {:.1}, \"vs_single_node\": {:.3}}}{}\n",
            r.shards,
            r.batch,
            r.quantized,
            r.seconds,
            r.users_per_second,
            r.users_per_second / single_ups,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"best_sharded_over_single_node\": {:.3},\n", best_sharded / single_ups));
    out.push_str(&format!(
        "  \"online\": {{\"config\": \"{}\", \"throughput_rps\": {:.1}, \"latency_micros\": {{\"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \"requests\": {}, \"model_versions_served\": {:?}}},\n",
        online.label,
        online.throughput_rps,
        online.stats.mean_micros,
        online.stats.p50_micros,
        online.stats.p95_micros,
        online.stats.p99_micros,
        online.stats.max_micros,
        online.stats.count,
        online.versions_seen
    ));
    out.push_str(&format!(
        "  \"ivf\": {{\n    \"description\": \"Cluster-routed approximate retrieval on the largest \
         benchmarked catalogue: per-shard k-means index, centroid-routed top-nprobe cluster scans, exact f32 \
         re-rank. recall@10 is measured against the exact ranking; the nprobe=all row is asserted \
         bit-identical to exact serving (ids, order, score bits) before timing. Throughput is the \
         per-request (batch-of-1) serving path, where cluster routing is sub-linear in the catalogue.\",\n    \
         \"items\": {}, \"queries\": {}, \"shards\": {},\n    \
         \"exact_baseline\": {{\"seconds\": {:.6}, \"users_per_second\": {:.1}}},\n    \"sweep\": [\n",
        ivf_scale.items, ivf_scale.queries, ivf_scale.shards, ivf_exact_seconds, ivf_exact_ups
    ));
    for (i, r) in ivf_rows.iter().enumerate() {
        let nprobe = if r.nprobe == PROBE_ALL { "\"all\"".to_string() } else { r.nprobe.to_string() };
        out.push_str(&format!(
            "      {{\"nprobe\": {nprobe}, \"clusters_probed\": {}, \"recall_at_10\": {:.4}, \"seconds\": {:.6}, \
             \"users_per_second\": {:.1}, \"speedup_vs_exact\": {:.3}, \"exact\": {}}}{}\n",
            r.clusters_probed,
            r.recall_at_10,
            r.seconds,
            r.users_per_second,
            r.users_per_second / ivf_exact_ups,
            r.nprobe == PROBE_ALL,
            if i + 1 < ivf_rows.len() { "," } else { "" }
        ));
    }
    // The headline the acceptance bar reads: the best speedup among sweep
    // points that keep recall@10 at or above 0.95.
    let best_accurate = ivf_rows
        .iter()
        .filter(|r| r.recall_at_10 >= 0.95 && r.nprobe != PROBE_ALL)
        .map(|r| (r.nprobe, r.users_per_second / ivf_exact_ups, r.recall_at_10))
        .fold(None::<(usize, f64, f64)>, |best, row| match best {
            Some(b) if b.1 >= row.1 => Some(b),
            _ => Some(row),
        });
    match best_accurate {
        Some((nprobe, speedup, recall)) => out.push_str(&format!(
            "    ],\n    \"best_at_recall_0_95\": {{\"nprobe\": {nprobe}, \"recall_at_10\": {recall:.4}, \
             \"speedup_vs_exact\": {speedup:.3}}}\n  }}\n",
        )),
        None => out.push_str("    ],\n    \"best_at_recall_0_95\": null\n  }\n"),
    }
    out.push_str("}\n");

    std::fs::write("BENCH_serving.json", &out).expect("failed to write BENCH_serving.json");
    println!("{out}");
    eprintln!(
        "wrote BENCH_serving.json (best sharded throughput {:.2}x the single-node baseline)",
        best_sharded / single_ups
    );
}
