//! Generates `BENCH_kernels.json`: GFLOP/s of the kernel tiers side by side.
//!
//! For each kernel (per-candidate [`dot`] loop, the fused GEMV
//! [`matvec_transposed_into`], the batched `Q·Wᵀ` GEMM
//! [`matmul_transposed`]) at d = 32/64 and catalogue sizes n = 10k/100k,
//! the portable reference tier and the explicit AVX2+FMA tier (when the CPU
//! has it) are timed on identical inputs via the `*_with_tier` entry points
//! — no global tier forcing, so the numbers are directly comparable within
//! one process.
//!
//! This is the portability check of the kernel subsystem: on a build
//! **without** `-C target-cpu=native` the portable tier loses its
//! auto-vectorization quality while the AVX2 tier is unaffected, and the
//! reported speedup shows what runtime dispatch buys such a build.
//!
//! Run from the repository root (`--quick` shrinks repetitions for CI):
//! `cargo run --release -p ham-bench --bin kernel_report [-- --quick]`.
//!
//! [`dot`]: ham_tensor::kernels::dot
//! [`matvec_transposed_into`]: ham_tensor::kernels::matvec_transposed_into
//! [`matmul_transposed`]: ham_tensor::kernels::matmul_transposed

use ham_tensor::kernels::{
    dot_with_tier, matmul_transposed_into_with_tier, matvec_transposed_into_with_tier, KernelTier,
};
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Rows of the query batch in the GEMM measurement (matches the serving
/// layer's default max batch).
const BATCH: usize = 64;

struct Config {
    d: usize,
    n: usize,
}

struct Row {
    kernel: &'static str,
    d: usize,
    n: usize,
    portable_gflops: f64,
    avx2_gflops: Option<f64>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.avx2_gflops.map(|fast| fast / self.portable_gflops)
    }
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// GFLOP/s of `f`, which performs `flops` floating-point operations per call
/// and is repeated `inner` times per timing sample.
fn gflops<F: FnMut()>(reps: usize, inner: usize, flops: f64, mut f: F) -> f64 {
    let seconds = time_best(reps, || {
        for _ in 0..inner {
            f();
        }
    }) / inner as f64;
    flops / seconds / 1e9
}

fn measure(config: &Config, tiers: &[KernelTier], reps: usize, rows: &mut Vec<Row>) {
    let Config { d, n } = *config;
    let mut rng = StdRng::seed_from_u64(42 + (d * 1000 + n) as u64);
    let w = Matrix::xavier_uniform(n, d, &mut rng);
    let q: Vec<f32> = (0..d).map(|k| (k as f32 * 0.37).sin()).collect();
    let queries = Matrix::xavier_uniform(BATCH, d, &mut rng);
    let mut scores = vec![0.0f32; n];
    let mut gemm_out = Matrix::zeros(BATCH, n);
    // Keep each timing sample above timer resolution without letting the
    // 100k-row GEMM dominate the wall clock.
    let inner = (2_000_000 / n).max(1);
    let gemm_inner = (inner / 8).max(1);

    let pass_flops = 2.0 * n as f64 * d as f64;
    for (kernel, flops) in
        [("dot", pass_flops), ("matvec_transposed", pass_flops), ("matmul_transposed", pass_flops * BATCH as f64)]
    {
        let mut row = Row { kernel, d, n, portable_gflops: 0.0, avx2_gflops: None };
        for &tier in tiers {
            let value = match kernel {
                // The per-candidate loop the serving layer replaced: one
                // dispatched dot per catalogue row.
                "dot" => gflops(reps, inner, pass_flops, || {
                    let mut acc = 0.0f32;
                    for j in 0..n {
                        acc += dot_with_tier(tier, black_box(w.row(j)), black_box(&q));
                    }
                    black_box(acc);
                }),
                "matvec_transposed" => gflops(reps, inner, pass_flops, || {
                    matvec_transposed_into_with_tier(tier, black_box(&w), black_box(&q), black_box(&mut scores));
                }),
                _ => gflops(reps, gemm_inner, flops, || {
                    matmul_transposed_into_with_tier(
                        tier,
                        black_box(&queries),
                        black_box(&w),
                        black_box(&mut gemm_out),
                    );
                }),
            };
            match tier {
                KernelTier::Portable => row.portable_gflops = value,
                KernelTier::Avx2 => row.avx2_gflops = Some(value),
            }
        }
        rows.push(row);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 7 };
    let mut tiers = vec![KernelTier::Portable];
    if KernelTier::Avx2.supported() {
        tiers.push(KernelTier::Avx2);
    }
    let configs = [
        Config { d: 32, n: 10_000 },
        Config { d: 64, n: 10_000 },
        Config { d: 32, n: 100_000 },
        Config { d: 64, n: 100_000 },
    ];

    let mut rows = Vec::new();
    for config in &configs {
        eprintln!("measuring d={} n={} ({} tiers)...", config.d, config.n, tiers.len());
        measure(config, &tiers, reps, &mut rows);
    }

    // Worst-case speedups over the shapes measured, per kernel — the
    // headline "what does runtime dispatch buy a portable build" numbers.
    let min_speedup = |kernel: &str| -> Option<f64> {
        rows.iter()
            .filter(|r| r.kernel == kernel)
            .filter_map(Row::speedup)
            .min_by(|a, b| a.partial_cmp(b).expect("speedups are finite"))
    };

    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"Kernel tier comparison: GFLOP/s of the portable reference tier vs the explicit AVX2+FMA tier on identical inputs (dot = per-candidate loop, matvec = fused GEMV, matmul_transposed = 64-row QWt GEMM). Generated by kernel_report; run on a build without -C target-cpu=native to see what runtime dispatch buys portable binaries.\",\n",
    );
    out.push_str(&format!(
        "  \"compiled_with_avx2\": {},\n  \"avx2_tier_available\": {},\n  \"active_tier\": \"{}\",\n  \"batch_rows\": {},\n",
        cfg!(target_feature = "avx2"),
        KernelTier::Avx2.supported(),
        ham_tensor::kernels::active_tier(),
        BATCH
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let avx2 = r.avx2_gflops.map_or("null".to_string(), |v| format!("{v:.3}"));
        let speedup = r.speedup().map_or("null".to_string(), |v| format!("{v:.3}"));
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"d\": {}, \"n\": {}, \"portable_gflops\": {:.3}, \"avx2_gflops\": {}, \"speedup_avx2\": {}}}{}\n",
            r.kernel,
            r.d,
            r.n,
            r.portable_gflops,
            avx2,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    for (label, kernel) in [
        ("min_speedup_dot", "dot"),
        ("min_speedup_matvec", "matvec_transposed"),
        ("min_speedup_gemm", "matmul_transposed"),
    ] {
        let value = min_speedup(kernel).map_or("null".to_string(), |v| format!("{v:.3}"));
        out.push_str(&format!("  \"{label}\": {value},\n"));
    }
    out.push_str(&format!("  \"quick\": {quick}\n"));
    out.push_str("}\n");

    std::fs::write("BENCH_kernels.json", &out).expect("failed to write BENCH_kernels.json");
    println!("{out}");
    eprintln!("wrote BENCH_kernels.json");
}
