//! Generates `BENCH_kernels.json`: GFLOP/s **and** memory bandwidth of the
//! kernel tiers side by side.
//!
//! For each f32 kernel (per-candidate [`dot`] loop, the fused GEMV
//! [`matvec_transposed_into`], the batched `Q·Wᵀ` GEMM
//! [`matmul_transposed`]) and each quantized kernel (int8 GEMV
//! [`quantized_matvec_into`], int8 GEMM [`quantized_matmul_transposed_into`])
//! at d = 32/64 and catalogue sizes n = 10k/100k, every tier the CPU
//! supports — portable, AVX2+FMA, AVX-512 — is timed on identical inputs via
//! the `*_with_tier` entry points, so the numbers are directly comparable
//! within one process.
//!
//! Two throughput views per measurement:
//!
//! * **GFLOP/s** — arithmetic throughput (multiply-accumulates, counting
//!   integer MACs for the quantized kernels).
//! * **Effective GB/s** — the f32-equivalent catalogue bytes (`n·d·4`)
//!   divided by wall time. Candidate scoring is memory-bound at serving
//!   sizes, so this is the number that predicts latency; the quantized
//!   kernels stream 1 byte per element instead of 4, which shows up here as
//!   effective bandwidth beyond what the memory system can physically move.
//!   `*_gbps` is the *actual* traffic (1 byte/element + per-row
//!   scale/zero-point for the quantized panels).
//!
//! The acceptance headline is `quantized_*_effective_bandwidth_ratio`: the
//! quantized GEMV/GEMM effective GB/s on the active tier over the f32
//! portable tier at n = 100k (worst case over d) — the speedup the serving
//! layer's int8 pre-selection gets from quartering the catalogue traffic.
//!
//! Run from the repository root (`--quick` shrinks repetitions for CI):
//! `cargo run --release -p ham-bench --bin kernel_report [-- --quick]`.
//!
//! [`dot`]: ham_tensor::kernels::dot
//! [`matvec_transposed_into`]: ham_tensor::kernels::matvec_transposed_into
//! [`matmul_transposed`]: ham_tensor::kernels::matmul_transposed
//! [`quantized_matvec_into`]: ham_tensor::kernels::quantized_matvec_into
//! [`quantized_matmul_transposed_into`]: ham_tensor::kernels::quantized_matmul_transposed_into

use ham_tensor::kernels::{
    dot_with_tier, matmul_transposed_into_with_tier, matvec_transposed_into_with_tier,
    quantized_matmul_transposed_into_with_tier, quantized_matvec_into_with_tier, KernelTier,
};
use ham_tensor::{Matrix, QuantizedMatrix, QuantizedQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Rows of the query batch in the GEMM measurements (matches the serving
/// layer's default max batch).
const BATCH: usize = 64;

const KERNELS: [&str; 5] = ["dot", "matvec_transposed", "matmul_transposed", "quantized_matvec", "quantized_matmul"];

struct Config {
    d: usize,
    n: usize,
}

/// One (kernel, shape) measurement: best wall time per pass, per tier.
struct Row {
    kernel: &'static str,
    quantized: bool,
    d: usize,
    n: usize,
    /// Seconds per pass, indexed like `tiers` in `main` (portable first).
    seconds: Vec<f64>,
}

impl Row {
    fn flops(&self) -> f64 {
        let pass = 2.0 * self.n as f64 * self.d as f64;
        if self.kernel.contains("matmul") {
            pass * BATCH as f64
        } else {
            pass
        }
    }

    /// Actual catalogue bytes streamed per pass. A GEMM streams the
    /// catalogue once for the whole batch, so its per-pass traffic equals
    /// the GEMV's — that is exactly why the batch path wins.
    fn bytes(&self) -> f64 {
        let elements = (self.n * self.d) as f64;
        if self.quantized {
            elements + self.n as f64 * 8.0 // u8 payload + f32 scale + i32 zero-point per row
        } else {
            elements * 4.0
        }
    }

    /// f32-equivalent catalogue bytes per pass — the serving-latency view.
    fn effective_bytes(&self) -> f64 {
        (self.n * self.d) as f64 * 4.0
    }

    fn gflops(&self, tier: usize) -> f64 {
        self.flops() / self.seconds[tier] / 1e9
    }

    fn gbps(&self, tier: usize) -> f64 {
        self.bytes() / self.seconds[tier] / 1e9
    }

    fn effective_gbps(&self, tier: usize) -> f64 {
        self.effective_bytes() / self.seconds[tier] / 1e9
    }

    fn speedup(&self, tier: usize) -> f64 {
        self.seconds[0] / self.seconds[tier]
    }
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Best seconds per single pass of `f`, with `inner` passes per sample to
/// stay above timer resolution.
fn seconds_per_pass<F: FnMut()>(reps: usize, inner: usize, mut f: F) -> f64 {
    time_best(reps, || {
        for _ in 0..inner {
            f();
        }
    }) / inner as f64
}

fn measure(config: &Config, tiers: &[KernelTier], reps: usize, rows: &mut Vec<Row>) {
    let Config { d, n } = *config;
    let mut rng = StdRng::seed_from_u64(42 + (d * 1000 + n) as u64);
    let w = Matrix::xavier_uniform(n, d, &mut rng);
    let qw = QuantizedMatrix::quantize(&w);
    let q: Vec<f32> = (0..d).map(|k| (k as f32 * 0.37).sin()).collect();
    let qq = QuantizedQuery::quantize(&q);
    let queries = Matrix::xavier_uniform(BATCH, d, &mut rng);
    let qqueries: Vec<QuantizedQuery> = (0..BATCH).map(|b| QuantizedQuery::quantize(queries.row(b))).collect();
    let mut scores = vec![0.0f32; n];
    let mut gemm_out = Matrix::zeros(BATCH, n);
    // Keep each timing sample above timer resolution without letting the
    // 100k-row GEMM dominate the wall clock.
    let inner = (2_000_000 / n).max(1);
    let gemm_inner = (inner / 8).max(1);

    for kernel in KERNELS {
        let mut row = Row { kernel, quantized: kernel.starts_with("quantized"), d, n, seconds: Vec::new() };
        for &tier in tiers {
            let secs = match kernel {
                // The per-candidate loop the serving layer replaced: one
                // dispatched dot per catalogue row.
                "dot" => seconds_per_pass(reps, inner, || {
                    let mut acc = 0.0f32;
                    for j in 0..n {
                        acc += dot_with_tier(tier, black_box(w.row(j)), black_box(&q));
                    }
                    black_box(acc);
                }),
                "matvec_transposed" => seconds_per_pass(reps, inner, || {
                    matvec_transposed_into_with_tier(tier, black_box(&w), black_box(&q), black_box(&mut scores));
                }),
                "matmul_transposed" => seconds_per_pass(reps, gemm_inner, || {
                    matmul_transposed_into_with_tier(
                        tier,
                        black_box(&queries),
                        black_box(&w),
                        black_box(&mut gemm_out),
                    );
                }),
                "quantized_matvec" => seconds_per_pass(reps, inner, || {
                    quantized_matvec_into_with_tier(tier, black_box(&qw), black_box(&qq), black_box(&mut scores));
                }),
                _ => seconds_per_pass(reps, gemm_inner, || {
                    quantized_matmul_transposed_into_with_tier(
                        tier,
                        black_box(&qqueries),
                        black_box(&qw),
                        black_box(&mut gemm_out),
                    );
                }),
            };
            row.seconds.push(secs);
        }
        rows.push(row);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 7 };
    let mut tiers = vec![KernelTier::Portable];
    for simd in [KernelTier::Avx2, KernelTier::Avx512] {
        if simd.supported() {
            tiers.push(simd);
        }
    }
    let configs = [
        Config { d: 32, n: 10_000 },
        Config { d: 64, n: 10_000 },
        Config { d: 32, n: 100_000 },
        Config { d: 64, n: 100_000 },
    ];

    let mut rows = Vec::new();
    for config in &configs {
        eprintln!("measuring d={} n={} ({} tiers)...", config.d, config.n, tiers.len());
        measure(config, &tiers, reps, &mut rows);
    }

    // Worst-case speedups over the shapes measured, per kernel — the
    // headline "what does runtime dispatch buy a portable build" numbers.
    let min_speedup = |kernel: &str, tier: KernelTier| -> Option<f64> {
        let idx = tiers.iter().position(|&t| t == tier)?;
        rows.iter()
            .filter(|r| r.kernel == kernel)
            .map(|r| r.speedup(idx))
            .min_by(|a, b| a.partial_cmp(b).expect("speedups are finite"))
    };

    // The acceptance headline: quantized effective bandwidth on the active
    // tier over f32 portable at n = 100k, worst case over d.
    let active = ham_tensor::kernels::active_tier();
    let active_idx = tiers.iter().position(|&t| t == active).unwrap_or(0);
    let bandwidth_ratio = |quant_kernel: &str, f32_kernel: &str| -> f64 {
        configs
            .iter()
            .filter(|c| c.n == 100_000)
            .map(|c| {
                let find = |kernel: &str| {
                    rows.iter().find(|r| r.kernel == kernel && r.d == c.d && r.n == c.n).expect("row was measured")
                };
                find(quant_kernel).effective_gbps(active_idx) / find(f32_kernel).effective_gbps(0)
            })
            .min_by(|a, b| a.partial_cmp(b).expect("ratios are finite"))
            .expect("n = 100k is measured")
    };
    let gemv_ratio = bandwidth_ratio("quantized_matvec", "matvec_transposed");
    let gemm_ratio = bandwidth_ratio("quantized_matmul", "matmul_transposed");

    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"Kernel tier comparison on identical inputs: GFLOP/s and catalogue bandwidth of the portable reference tier vs the explicit AVX2+FMA and AVX-512 tiers (dot = per-candidate loop, matvec = fused GEMV, matmul_transposed = 64-row QWt GEMM, quantized_* = int8 candidate scoring). effective_gbps is f32-equivalent catalogue bytes (n*d*4) over wall time - the serving-latency view in which the int8 kernels' 1-byte elements show up as bandwidth beyond what memory can physically move. Generated by kernel_report.\",\n",
    );
    out.push_str(&format!(
        "  \"compiled_with_avx2\": {},\n  \"avx2_tier_available\": {},\n  \"avx512_tier_available\": {},\n  \
         \"active_tier\": \"{active}\",\n  \"batch_rows\": {BATCH},\n",
        cfg!(target_feature = "avx2"),
        KernelTier::Avx2.supported(),
        KernelTier::Avx512.supported(),
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mut fields =
            format!("\"kernel\": \"{}\", \"quantized\": {}, \"d\": {}, \"n\": {}", r.kernel, r.quantized, r.d, r.n);
        for (t, &tier) in tiers.iter().enumerate() {
            fields.push_str(&format!(
                ", \"{tier}_gflops\": {:.3}, \"{tier}_gbps\": {:.3}, \"{tier}_effective_gbps\": {:.3}",
                r.gflops(t),
                r.gbps(t),
                r.effective_gbps(t)
            ));
            if t > 0 {
                fields.push_str(&format!(", \"speedup_{tier}\": {:.3}", r.speedup(t)));
            }
        }
        out.push_str(&format!("    {{{fields}}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    out.push_str("  ],\n");
    for (label, kernel) in [
        ("min_speedup_dot", "dot"),
        ("min_speedup_matvec", "matvec_transposed"),
        ("min_speedup_gemm", "matmul_transposed"),
        ("min_speedup_quantized_matvec", "quantized_matvec"),
        ("min_speedup_quantized_gemm", "quantized_matmul"),
    ] {
        for tier in [KernelTier::Avx2, KernelTier::Avx512] {
            let value = min_speedup(kernel, tier).map_or("null".to_string(), |v| format!("{v:.3}"));
            out.push_str(&format!("  \"{label}_{tier}\": {value},\n"));
        }
    }
    out.push_str(&format!(
        "  \"quantized_gemv_effective_bandwidth_ratio\": {gemv_ratio:.3},\n  \
         \"quantized_gemm_effective_bandwidth_ratio\": {gemm_ratio:.3},\n"
    ));
    out.push_str(&format!("  \"quick\": {quick}\n"));
    out.push_str("}\n");

    std::fs::write("BENCH_kernels.json", &out).expect("failed to write BENCH_kernels.json");
    println!("{out}");
    eprintln!(
        "wrote BENCH_kernels.json (quantized effective bandwidth vs f32 portable at n=100k: \
         GEMV {gemv_ratio:.2}x, GEMM {gemm_ratio:.2}x)"
    );
}
