//! Generates `BENCH_telemetry.json`: the cost and the coverage of the
//! `ham-telemetry` layer.
//!
//! Two sections:
//!
//! * **Serve overhead** — the same online micro-batched serving run measured
//!   with a disabled telemetry handle and with a fully enabled one (all
//!   counters, histograms, stage spans and the flight recorder live). The
//!   two arms are measured round-robin inside the same rep loop (best-of
//!   per arm) so the shared VM's drift hits both alike. The headline is the
//!   p50 overhead of the enabled arm, which must stay within 2%.
//! * **Full-loop snapshot** — one train → publish → serve round through
//!   [`OnlineTrainer`] with a global telemetry handle installed, a shed-
//!   provoking flood against a tiny admission queue, and a staleness
//!   refresh after a real wait. The resulting [`MetricsSnapshot`] — with
//!   the kernel-dispatch tier counters joined in — is embedded verbatim,
//!   proving the shed / publish / staleness / per-tier metrics are nonzero
//!   on a real run.
//!
//! Run from the repository root: `cargo run --release -p ham-bench --bin
//! telemetry_report` (append `-- --quick` for the CI smoke configuration).
//! The JSON is written to the current directory.

use ham_core::{HamConfig, HamModel, HamVariant, TrainConfig};
use ham_data::SequenceDataset;
use ham_online::{OnlineConfig, OnlineTrainer};
use ham_serve::{LatencyStats, ModelRegistry, RecServer, RecommendRequest, ServerConfig, ServingModel};
use ham_telemetry::{MetricsSnapshot, Telemetry};
use ham_tensor::kernels::active_tier;
use ham_tensor::pool::global_pool;
use std::sync::Arc;
use std::time::Duration;

const D: usize = 32;
const K: usize = 10;

struct BenchScale {
    items: usize,
    users: usize,
    reps: usize,
    requests_per_client: usize,
    clients: usize,
}

impl BenchScale {
    fn new(quick: bool) -> Self {
        if quick {
            Self { items: 2_000, users: 64, reps: 3, requests_per_client: 60, clients: 2 }
        } else {
            Self { items: 10_000, users: 200, reps: 7, requests_per_client: 250, clients: 4 }
        }
    }
}

fn bench_model(scale: &BenchScale) -> (Arc<HamModel>, Vec<Vec<usize>>) {
    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(D, 5, 2, 3, 2);
    let model = Arc::new(HamModel::new(scale.users, scale.items, config, 7));
    let histories: Vec<Vec<usize>> =
        (0..scale.users).map(|u| (0..40).map(|t| (u * 131 + t * 17) % scale.items).collect()).collect();
    (model, histories)
}

/// One serving pass: `clients` threads push `requests_per_client` requests
/// each through the micro-batching queue; returns every request's total
/// latency in microseconds.
fn serve_pass(server: &Arc<RecServer>, histories: &[Vec<usize>], scale: &BenchScale) -> Vec<u64> {
    let handles: Vec<_> = (0..scale.clients)
        .map(|c| {
            let server = Arc::clone(server);
            let histories = histories.to_vec();
            let per_client = scale.requests_per_client;
            std::thread::spawn(move || {
                let mut samples = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let user = (c * 31 + r * 7) % histories.len();
                    let response = server
                        .submit(RecommendRequest::new(user, histories[user].clone(), K))
                        .expect("bench requests stay within the queue bound");
                    samples.push(response.total_micros());
                }
                samples
            })
        })
        .collect();
    let mut samples = Vec::new();
    for handle in handles {
        samples.extend(handle.join().expect("client thread panicked"));
    }
    samples
}

/// Measures serve latency with telemetry off vs fully on, paired round-robin
/// with best-of-`reps` p50 per arm. Returns (off, on) stats.
fn measure_overhead(scale: &BenchScale) -> (LatencyStats, LatencyStats) {
    let (model, histories) = bench_model(scale);
    let shards = 2;
    let build_server = |telemetry: Telemetry| {
        let registry = Arc::new(ModelRegistry::new(
            ServingModel::from_scorer("ham-sm", Arc::clone(&model), shards).expect("HAM has a linear head"),
        ));
        Arc::new(RecServer::start_with_telemetry(registry, ServerConfig::default(), telemetry))
    };
    let server_off = build_server(Telemetry::disabled());
    let server_on = build_server(Telemetry::enabled());
    // Warm-up both arms: first-touch page faults and cold caches hit no one.
    serve_pass(&server_off, &histories, scale);
    serve_pass(&server_on, &histories, scale);

    let mut best_off: Option<LatencyStats> = None;
    let mut best_on: Option<LatencyStats> = None;
    let keep_best = |slot: &mut Option<LatencyStats>, stats: LatencyStats| {
        if slot.is_none_or(|b| stats.p50_micros < b.p50_micros) {
            *slot = Some(stats);
        }
    };
    for _ in 0..scale.reps {
        let off = LatencyStats::from_micros(serve_pass(&server_off, &histories, scale)).expect("samples");
        keep_best(&mut best_off, off);
        let on = LatencyStats::from_micros(serve_pass(&server_on, &histories, scale)).expect("samples");
        keep_best(&mut best_on, on);
    }
    (best_off.unwrap(), best_on.unwrap())
}

/// Floods a tiny admission queue until at least one request sheds; the
/// admitted ones are all answered. Retries (bounded) because shedding needs
/// a submit to race the dispatcher's drain.
fn provoke_shed(server: &Arc<RecServer>, histories: &[Vec<usize>]) -> u64 {
    for _ in 0..20 {
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let server = Arc::clone(server);
                let history = histories[c % histories.len()].clone();
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        let _ = server.submit(RecommendRequest::new(c % 4, history.clone(), K));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("flood thread panicked");
        }
        let shed = server.stats().shed;
        if shed > 0 {
            return shed;
        }
    }
    server.stats().shed
}

/// Runs the full train → publish → serve round with a global enabled
/// telemetry handle and returns the final joined snapshot.
fn full_loop_snapshot(quick: bool) -> MetricsSnapshot {
    assert!(
        ham_telemetry::install_global(Telemetry::enabled()),
        "telemetry_report must be the first global install in this process"
    );
    let telemetry = ham_telemetry::global();

    let users = if quick { 24 } else { 64 };
    let items = if quick { 200 } else { 1_000 };
    let initial = SequenceDataset::new("telemetry-loop", vec![(0..20).map(|t| t % items).collect(); users], items);
    let config = OnlineConfig {
        model: HamConfig::for_variant(HamVariant::HamM).with_dimensions(16, 4, 2, 2, 1),
        train: TrainConfig { epochs: 1, batch_size: 64, ..TrainConfig::default() },
        shards: 2,
        quantize_serving: true,
        seed: 7,
        gate: ham_online::PublishGate::default(),
    };
    let mut trainer = OnlineTrainer::bootstrap_with_telemetry(&initial, config, telemetry.clone());

    // Fresh traffic, then a full incremental round: grow → train → publish.
    for u in 0..users {
        for t in 0..6 {
            trainer.ingest(u, (u * 13 + t * 3) % items);
        }
    }
    let report = trainer.run_round();
    eprintln!(
        "full loop: round {} published v{} ({} fresh, {} instances)",
        report.round, report.version, report.fresh_interactions, report.instances_trained
    );

    // Serve through a server that records into the same registry; a tiny
    // queue makes the flood below shed deterministically enough.
    let server_config = ServerConfig { max_queue: 1, coalesce_wait: Duration::from_micros(500), ..Default::default() };
    let server = Arc::new(RecServer::start_with_telemetry(trainer.registry(), server_config, telemetry.clone()));
    let histories: Vec<Vec<usize>> = (0..users).map(|u| (0..8).map(|t| (u * 13 + t) % items).collect()).collect();
    let shed = provoke_shed(&server, &histories);
    eprintln!("flood: {} requests shed by the max_queue=1 admission gate", shed);

    // Let the published snapshot age a little so staleness is a real number.
    std::thread::sleep(Duration::from_millis(1_200));
    let staleness = trainer.refresh_staleness();
    eprintln!("staleness: {staleness}s since the round's publish");

    let mut snapshot = telemetry.snapshot().expect("enabled handle");
    // Join the kernel-dispatch tier counters (self-contained in ham-tensor).
    for tier in ham_tensor::kernels::counters::snapshot() {
        snapshot.push_counter(&format!("kernel_{}_calls_total", tier.tier), tier.calls);
        snapshot.push_counter(&format!("kernel_{}_bytes_total", tier.tier), tier.bytes);
    }
    snapshot
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = BenchScale::new(quick);
    let threads = global_pool().threads();
    eprintln!(
        "telemetry_report: {} items, {} users, d = {D}, pool threads = {threads}{}",
        scale.items,
        scale.users,
        if quick { " (quick)" } else { "" }
    );

    eprintln!("measuring serve p50 with telemetry off vs on, paired round-robin ({} reps)...", scale.reps);
    let (off, on) = measure_overhead(&scale);
    let overhead_pct = (on.p50_micros as f64 - off.p50_micros as f64) / off.p50_micros as f64 * 100.0;
    eprintln!("p50 off {}us, on {}us: overhead {:.2}%", off.p50_micros, on.p50_micros, overhead_pct);

    eprintln!("running the instrumented train → publish → serve loop...");
    let snapshot = full_loop_snapshot(quick);
    let total_tier_calls: u64 =
        snapshot.counters.iter().filter(|c| c.name.starts_with("kernel_")).map(|c| c.value).sum();
    let shed = snapshot.counter("serve_requests_shed_total").unwrap_or(0);
    let publishes = snapshot.counter("online_publishes_total").unwrap_or(0);
    let staleness = snapshot.gauge("online_serving_staleness_seconds").unwrap_or(0);

    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"ham-telemetry cost and coverage: online serve p50 measured with a disabled vs \
         fully enabled telemetry handle (paired round-robin, best-of per arm; counters, latency histograms, \
         stage spans and the flight recorder all live on the enabled arm), plus the full metrics snapshot of \
         one instrumented train->publish->serve round with kernel-dispatch tier counters joined in.\",\n",
    );
    out.push_str(&format!(
        "  \"d\": {D},\n  \"k\": {K},\n  \"items\": {},\n  \"users\": {},\n  \"pool_threads\": {threads},\n  \
         \"active_tier\": \"{}\",\n  \"quick\": {quick},\n",
        scale.items,
        scale.users,
        active_tier()
    ));
    out.push_str(&format!(
        "  \"serve_overhead\": {{\"reps\": {}, \"requests_per_rep\": {}, \
         \"p50_off_micros\": {}, \"p50_on_micros\": {}, \"p99_off_micros\": {}, \"p99_on_micros\": {}, \
         \"p50_overhead_pct\": {:.2}, \"within_2pct\": {}}},\n",
        scale.reps,
        scale.clients * scale.requests_per_client,
        off.p50_micros,
        on.p50_micros,
        off.p99_micros,
        on.p99_micros,
        overhead_pct,
        on.p50_micros as f64 <= off.p50_micros as f64 * 1.02
    ));
    out.push_str(&format!(
        "  \"full_round\": {{\"shed\": {shed}, \"publishes\": {publishes}, \
         \"staleness_seconds\": {staleness}, \"kernel_tier_calls\": {total_tier_calls}}},\n"
    ));
    let snapshot_json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    out.push_str(&format!("  \"snapshot\": {snapshot_json}\n"));
    out.push_str("}\n");

    std::fs::write("BENCH_telemetry.json", &out).expect("failed to write BENCH_telemetry.json");
    println!("{out}");
    eprintln!(
        "wrote BENCH_telemetry.json (p50 overhead {:.2}%; shed {shed}, publishes {publishes}, staleness {staleness}s)",
        overhead_pct
    );
}
