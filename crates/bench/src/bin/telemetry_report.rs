//! Generates `BENCH_telemetry.json`: the cost and the coverage of the
//! `ham-telemetry` layer.
//!
//! Two sections:
//!
//! * **Serve overhead** — the same online micro-batched serving run measured
//!   with a disabled telemetry handle and with a fully enabled one (all
//!   counters, histograms, stage spans and the flight recorder live). The
//!   arms are interleaved inside every rep (the arm order alternating
//!   rep-to-rep so slow drift cancels instead of taxing one arm), and the
//!   headline is the **median of the per-rep paired p50 differences** — a
//!   best-of per independent arm would let two unrelated lucky minima
//!   fabricate an overhead (or a speedup) out of scheduler noise. The
//!   median paired overhead must stay within 2%.
//! * **Full-loop snapshot** — one train → publish → serve round through
//!   [`OnlineTrainer`] with a global telemetry handle installed, a shed-
//!   provoking flood against a tiny admission queue, and a staleness
//!   refresh after a real wait. The resulting [`MetricsSnapshot`] — with
//!   the kernel-dispatch tier counters joined in — is embedded verbatim,
//!   proving the shed / publish / staleness / per-tier metrics are nonzero
//!   on a real run.
//!
//! Run from the repository root: `cargo run --release -p ham-bench --bin
//! telemetry_report` (append `-- --quick` for the CI smoke configuration).
//! The JSON is written to the current directory.

use ham_core::{HamConfig, HamModel, HamVariant, TrainConfig};
use ham_data::SequenceDataset;
use ham_online::{OnlineConfig, OnlineTrainer};
use ham_serve::{LatencyStats, ModelRegistry, RecServer, RecommendRequest, ServerConfig, ServingModel};
use ham_telemetry::{MetricsSnapshot, Telemetry};
use ham_tensor::kernels::active_tier;
use ham_tensor::pool::global_pool;
use std::sync::Arc;
use std::time::Duration;

const D: usize = 32;
const K: usize = 10;

struct BenchScale {
    items: usize,
    users: usize,
    reps: usize,
    requests_per_client: usize,
    clients: usize,
}

impl BenchScale {
    fn new(quick: bool) -> Self {
        if quick {
            Self { items: 2_000, users: 64, reps: 3, requests_per_client: 60, clients: 2 }
        } else {
            Self { items: 10_000, users: 200, reps: 7, requests_per_client: 250, clients: 4 }
        }
    }
}

fn bench_model(scale: &BenchScale) -> (Arc<HamModel>, Vec<Vec<usize>>) {
    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(D, 5, 2, 3, 2);
    let model = Arc::new(HamModel::new(scale.users, scale.items, config, 7));
    let histories: Vec<Vec<usize>> =
        (0..scale.users).map(|u| (0..40).map(|t| (u * 131 + t * 17) % scale.items).collect()).collect();
    (model, histories)
}

/// One serving pass: `clients` threads push `requests_per_client` requests
/// each through the micro-batching queue; returns every request's total
/// latency in microseconds.
fn serve_pass(server: &Arc<RecServer>, histories: &[Vec<usize>], scale: &BenchScale) -> Vec<u64> {
    let handles: Vec<_> = (0..scale.clients)
        .map(|c| {
            let server = Arc::clone(server);
            let histories = histories.to_vec();
            let per_client = scale.requests_per_client;
            std::thread::spawn(move || {
                let mut samples = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let user = (c * 31 + r * 7) % histories.len();
                    let response = server
                        .submit(RecommendRequest::new(user, histories[user].clone(), K))
                        .expect("bench requests stay within the queue bound");
                    samples.push(response.total_micros());
                }
                samples
            })
        })
        .collect();
    let mut samples = Vec::new();
    for handle in handles {
        samples.extend(handle.join().expect("client thread panicked"));
    }
    samples
}

/// One paired overhead measurement: per-rep (off, on) latency stats and the
/// per-rep paired p50 difference, summarized by its median.
struct OverheadMeasurement {
    rep_off: Vec<LatencyStats>,
    rep_on: Vec<LatencyStats>,
    /// Per-rep paired p50 overhead, percent: `(on − off) / off · 100`.
    rep_overhead_pct: Vec<f64>,
    /// Median of the per-rep paired differences — the gated headline.
    median_overhead_pct: f64,
}

fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("overhead percentages are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Measures serve latency with telemetry off vs fully on. The two arms are
/// interleaved inside every rep and the rep's **paired** p50 difference is
/// what gets summarized — two independent best-ofs would each chase their
/// own lucky scheduler window, and their difference would measure noise, not
/// telemetry (a previously committed run "passed" the gate at −3.99% that
/// way: the instrumented arm cannot actually be 4% faster). Alternating
/// which arm runs first cancels slow drift (cache warmth, turbo, noisy
/// neighbours) within the pair instead of always taxing the second arm.
fn measure_overhead(scale: &BenchScale) -> OverheadMeasurement {
    let (model, histories) = bench_model(scale);
    let shards = 2;
    let build_server = |telemetry: Telemetry| {
        let registry = Arc::new(ModelRegistry::new(
            ServingModel::from_scorer("ham-sm", Arc::clone(&model), shards).expect("HAM has a linear head"),
        ));
        Arc::new(RecServer::start_with_telemetry(registry, ServerConfig::default(), telemetry))
    };
    let server_off = build_server(Telemetry::disabled());
    let server_on = build_server(Telemetry::enabled());
    // Warm-up both arms: first-touch page faults and cold caches hit no one.
    serve_pass(&server_off, &histories, scale);
    serve_pass(&server_on, &histories, scale);

    let mut rep_off = Vec::with_capacity(scale.reps);
    let mut rep_on = Vec::with_capacity(scale.reps);
    let mut rep_overhead_pct = Vec::with_capacity(scale.reps);
    for rep in 0..scale.reps {
        let stats = |samples: Vec<u64>| LatencyStats::from_micros(samples).expect("samples");
        let (off, on) = if rep % 2 == 0 {
            let off = stats(serve_pass(&server_off, &histories, scale));
            let on = stats(serve_pass(&server_on, &histories, scale));
            (off, on)
        } else {
            let on = stats(serve_pass(&server_on, &histories, scale));
            let off = stats(serve_pass(&server_off, &histories, scale));
            (off, on)
        };
        rep_overhead_pct.push((on.p50_micros as f64 - off.p50_micros as f64) / off.p50_micros as f64 * 100.0);
        rep_off.push(off);
        rep_on.push(on);
    }
    let median_overhead_pct = median(&rep_overhead_pct);
    OverheadMeasurement { rep_off, rep_on, rep_overhead_pct, median_overhead_pct }
}

/// Floods a tiny admission queue until at least one request sheds; the
/// admitted ones are all answered. Retries (bounded) because shedding needs
/// a submit to race the dispatcher's drain.
fn provoke_shed(server: &Arc<RecServer>, histories: &[Vec<usize>]) -> u64 {
    for _ in 0..20 {
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let server = Arc::clone(server);
                let history = histories[c % histories.len()].clone();
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        let _ = server.submit(RecommendRequest::new(c % 4, history.clone(), K));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("flood thread panicked");
        }
        let shed = server.stats().shed;
        if shed > 0 {
            return shed;
        }
    }
    server.stats().shed
}

/// Runs the full train → publish → serve round with a global enabled
/// telemetry handle and returns the final joined snapshot.
fn full_loop_snapshot(quick: bool) -> MetricsSnapshot {
    assert!(
        ham_telemetry::install_global(Telemetry::enabled()),
        "telemetry_report must be the first global install in this process"
    );
    let telemetry = ham_telemetry::global();

    let users = if quick { 24 } else { 64 };
    let items = if quick { 200 } else { 1_000 };
    let initial = SequenceDataset::new("telemetry-loop", vec![(0..20).map(|t| t % items).collect(); users], items);
    let config = OnlineConfig {
        model: HamConfig::for_variant(HamVariant::HamM).with_dimensions(16, 4, 2, 2, 1),
        train: TrainConfig { epochs: 1, batch_size: 64, ..TrainConfig::default() },
        shards: 2,
        quantize_serving: true,
        ivf: None,
        seed: 7,
        gate: ham_online::PublishGate::default(),
    };
    let mut trainer = OnlineTrainer::bootstrap_with_telemetry(&initial, config, telemetry.clone());

    // Fresh traffic, then a full incremental round: grow → train → publish.
    for u in 0..users {
        for t in 0..6 {
            trainer.ingest(u, (u * 13 + t * 3) % items);
        }
    }
    let report = trainer.run_round();
    eprintln!(
        "full loop: round {} published v{} ({} fresh, {} instances)",
        report.round, report.version, report.fresh_interactions, report.instances_trained
    );

    // Serve through a server that records into the same registry; a tiny
    // queue makes the flood below shed deterministically enough.
    let server_config = ServerConfig { max_queue: 1, coalesce_wait: Duration::from_micros(500), ..Default::default() };
    let server = Arc::new(RecServer::start_with_telemetry(trainer.registry(), server_config, telemetry.clone()));
    let histories: Vec<Vec<usize>> = (0..users).map(|u| (0..8).map(|t| (u * 13 + t) % items).collect()).collect();
    let shed = provoke_shed(&server, &histories);
    eprintln!("flood: {} requests shed by the max_queue=1 admission gate", shed);

    // Let the published snapshot age a little so staleness is a real number.
    std::thread::sleep(Duration::from_millis(1_200));
    let staleness = trainer.refresh_staleness();
    eprintln!("staleness: {staleness}s since the round's publish");

    let mut snapshot = telemetry.snapshot().expect("enabled handle");
    // Join the kernel-dispatch tier counters (self-contained in ham-tensor).
    for tier in ham_tensor::kernels::counters::snapshot() {
        snapshot.push_counter(&format!("kernel_{}_calls_total", tier.tier), tier.calls);
        snapshot.push_counter(&format!("kernel_{}_bytes_total", tier.tier), tier.bytes);
    }
    snapshot
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = BenchScale::new(quick);
    let threads = global_pool().threads();
    eprintln!(
        "telemetry_report: {} items, {} users, d = {D}, pool threads = {threads}{}",
        scale.items,
        scale.users,
        if quick { " (quick)" } else { "" }
    );

    eprintln!(
        "measuring serve p50 with telemetry off vs on, paired per rep ({} reps, alternating order)...",
        scale.reps
    );
    let overhead = measure_overhead(&scale);
    let overhead_pct = overhead.median_overhead_pct;
    eprintln!(
        "per-rep paired p50 overhead {:?}%: median {:.2}%",
        overhead.rep_overhead_pct.iter().map(|p| (p * 100.0).round() / 100.0).collect::<Vec<_>>(),
        overhead_pct
    );

    eprintln!("running the instrumented train → publish → serve loop...");
    let snapshot = full_loop_snapshot(quick);
    let total_tier_calls: u64 =
        snapshot.counters.iter().filter(|c| c.name.starts_with("kernel_")).map(|c| c.value).sum();
    let shed = snapshot.counter("serve_requests_shed_total").unwrap_or(0);
    let publishes = snapshot.counter("online_publishes_total").unwrap_or(0);
    let staleness = snapshot.gauge("online_serving_staleness_seconds").unwrap_or(0);

    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"ham-telemetry cost and coverage: online serve p50 measured with a disabled vs \
         fully enabled telemetry handle (arms interleaved within every rep, order alternating rep-to-rep; \
         the gated headline is the median of the per-rep paired p50 differences, so unrelated lucky minima \
         in the two arms cannot fabricate an overhead or a speedup; counters, latency histograms, stage \
         spans and the flight recorder all live on the enabled arm), plus the full metrics snapshot of one \
         instrumented train->publish->serve round with kernel-dispatch tier counters joined in.\",\n",
    );
    out.push_str(&format!(
        "  \"d\": {D},\n  \"k\": {K},\n  \"items\": {},\n  \"users\": {},\n  \"pool_threads\": {threads},\n  \
         \"active_tier\": \"{}\",\n  \"quick\": {quick},\n",
        scale.items,
        scale.users,
        active_tier()
    ));
    let p50s = |reps: &[LatencyStats]| reps.iter().map(|s| s.p50_micros).collect::<Vec<_>>();
    let median_p50 = |reps: &[LatencyStats]| median(&reps.iter().map(|s| s.p50_micros as f64).collect::<Vec<_>>());
    let median_p99 = |reps: &[LatencyStats]| median(&reps.iter().map(|s| s.p99_micros as f64).collect::<Vec<_>>());
    out.push_str(&format!(
        "  \"serve_overhead\": {{\"reps\": {}, \"requests_per_rep\": {}, \
         \"rep_p50_off_micros\": {:?}, \"rep_p50_on_micros\": {:?}, \
         \"median_p50_off_micros\": {:.1}, \"median_p50_on_micros\": {:.1}, \
         \"median_p99_off_micros\": {:.1}, \"median_p99_on_micros\": {:.1}, \
         \"rep_paired_overhead_pct\": [{}], \
         \"median_paired_overhead_pct\": {:.2}, \"within_2pct\": {}}},\n",
        scale.reps,
        scale.clients * scale.requests_per_client,
        p50s(&overhead.rep_off),
        p50s(&overhead.rep_on),
        median_p50(&overhead.rep_off),
        median_p50(&overhead.rep_on),
        median_p99(&overhead.rep_off),
        median_p99(&overhead.rep_on),
        overhead.rep_overhead_pct.iter().map(|p| format!("{p:.2}")).collect::<Vec<_>>().join(", "),
        overhead_pct,
        overhead_pct <= 2.0
    ));
    out.push_str(&format!(
        "  \"full_round\": {{\"shed\": {shed}, \"publishes\": {publishes}, \
         \"staleness_seconds\": {staleness}, \"kernel_tier_calls\": {total_tier_calls}}},\n"
    ));
    let snapshot_json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    out.push_str(&format!("  \"snapshot\": {snapshot_json}\n"));
    out.push_str("}\n");

    std::fs::write("BENCH_telemetry.json", &out).expect("failed to write BENCH_telemetry.json");
    println!("{out}");
    eprintln!(
        "wrote BENCH_telemetry.json (p50 overhead {:.2}%; shed {shed}, publishes {publishes}, staleness {staleness}s)",
        overhead_pct
    );
}
