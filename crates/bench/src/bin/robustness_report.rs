//! Generates `BENCH_robustness.json`: the serving layer's behaviour under an
//! injected slow shard versus a healthy run, plus rollback latency and a
//! shadow-gate rejection demonstration.
//!
//! Two serving arms, identical workload and configuration, both on the
//! deadline-bounded path:
//!
//! * **healthy** — a generous deadline nothing hits; measures the bounded
//!   path's baseline latency percentiles.
//! * **slow shard** — shard 0 is slowed far past any budget
//!   (`ham-faults`), and the default deadline is set to a small multiple of
//!   the healthy p99. The slow shard misses its budget on every batch and
//!   is dropped from the merge: responses come back **flagged degraded**
//!   with deterministic surviving-shard results, and the p99 stays bounded
//!   by the deadline — the report's `p99_slow_over_healthy` pins the
//!   "degrade, don't hang" contract (target: ≤ 2×).
//!
//! Run from the repository root: `cargo run --release -p ham-bench --bin
//! robustness_report` (append `-- --quick` for the CI smoke configuration).

use ham_core::{HamConfig, HamModel, HamVariant, TrainConfig};
use ham_data::SequenceDataset;
use ham_faults::FaultInjector;
use ham_online::{OnlineConfig, OnlineTrainer, PublishGate};
use ham_serve::{LatencyStats, ModelRegistry, RecServer, RecommendRequest, ServerConfig, ServingModel, SubmitError};
use ham_telemetry::Telemetry;
use std::sync::Arc;
use std::time::{Duration, Instant};

const D: usize = 32;
const K: usize = 10;
const SHARDS: usize = 4;

struct BenchScale {
    items: usize,
    users: usize,
    clients: usize,
    requests_per_client: usize,
}

impl BenchScale {
    fn new(quick: bool) -> Self {
        if quick {
            Self { items: 2_000, users: 64, clients: 2, requests_per_client: 60 }
        } else {
            Self { items: 10_000, users: 200, clients: 3, requests_per_client: 250 }
        }
    }
}

#[derive(Default)]
struct ArmOutcome {
    samples: Vec<u64>,
    served: u64,
    degraded: u64,
    shed_queue_full: u64,
    shed_deadline: u64,
    seconds: f64,
}

impl ArmOutcome {
    fn attempted(&self) -> u64 {
        self.served + self.shed_queue_full + self.shed_deadline
    }
}

/// Pushes the whole workload through a server from concurrent clients and
/// tallies served / degraded / shed outcomes.
fn run_arm(model: &Arc<HamModel>, scale: &BenchScale, config: ServerConfig, fault_spec: Option<&str>) -> ArmOutcome {
    let faults = match fault_spec {
        Some(spec) => FaultInjector::parse(spec).expect("valid fault spec"),
        None => FaultInjector::disabled(),
    };
    let registry = Arc::new(ModelRegistry::new(
        ServingModel::from_scorer("robustness", Arc::clone(model), SHARDS).expect("HAM has a linear head"),
    ));
    let server = Arc::new(RecServer::start_instrumented(registry, config, Telemetry::disabled(), faults));
    let started = Instant::now();
    let handles: Vec<_> = (0..scale.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let users = scale.users;
            let per_client = scale.requests_per_client;
            std::thread::spawn(move || {
                let mut outcome = ArmOutcome::default();
                for r in 0..per_client {
                    let user = (c * 31 + r * 7) % users;
                    let history = vec![(user * 13) % 97, (user * 29 + 1) % 97];
                    match server.submit(RecommendRequest::new(user, history, K)) {
                        Ok(response) => {
                            outcome.samples.push(response.total_micros());
                            outcome.served += 1;
                            if response.degraded {
                                outcome.degraded += 1;
                            }
                        }
                        Err(SubmitError::QueueFull { .. }) => outcome.shed_queue_full += 1,
                        Err(SubmitError::DeadlineExpired { .. }) => outcome.shed_deadline += 1,
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
                outcome
            })
        })
        .collect();
    let mut total = ArmOutcome::default();
    for handle in handles {
        let outcome = handle.join().expect("client thread panicked");
        total.samples.extend(outcome.samples);
        total.served += outcome.served;
        total.degraded += outcome.degraded;
        total.shed_queue_full += outcome.shed_queue_full;
        total.shed_deadline += outcome.shed_deadline;
    }
    total.seconds = started.elapsed().as_secs_f64();
    total
}

fn arm_json(label: &str, arm: &ArmOutcome, deadline: Duration, fault_spec: Option<&str>) -> String {
    let stats = LatencyStats::from_micros(arm.samples.clone()).expect("arm served at least one request");
    format!(
        "  \"{label}\": {{\"fault_spec\": {}, \"deadline_micros\": {}, \"throughput_rps\": {:.1}, \
         \"attempted\": {}, \"served\": {}, \"degraded\": {}, \"degraded_rate\": {:.4}, \
         \"shed_queue_full\": {}, \"shed_deadline_expired\": {}, \"shed_rate\": {:.4}, \
         \"latency_micros\": {{\"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}}}",
        match fault_spec {
            Some(spec) => format!("\"{spec}\""),
            None => "null".to_string(),
        },
        deadline.as_micros(),
        arm.attempted() as f64 / arm.seconds,
        arm.attempted(),
        arm.served,
        arm.degraded,
        arm.degraded as f64 / arm.served.max(1) as f64,
        arm.shed_queue_full,
        arm.shed_deadline,
        (arm.shed_queue_full + arm.shed_deadline) as f64 / arm.attempted().max(1) as f64,
        stats.mean_micros,
        stats.p50_micros,
        stats.p95_micros,
        stats.p99_micros,
        stats.max_micros,
    )
}

fn p99(arm: &ArmOutcome) -> u64 {
    LatencyStats::from_micros(arm.samples.clone()).expect("arm served at least one request").p99_micros
}

/// Measures `rollback_to` latency under an archive of published versions.
fn rollback_micros() -> (Vec<u64>, u64, f64) {
    let w = ham_tensor::Matrix::from_vec(512, 4, (0..2048).map(|i| (i % 89) as f32 * 0.01).collect());
    let registry = ModelRegistry::new(ServingModel::from_parts("r1", &w, SHARDS, |_, _| vec![1.0, 0.5, 0.25, 0.1]));
    for _ in 0..3 {
        registry.publish(ServingModel::from_parts("rn", &w, SHARDS, |_, _| vec![1.0, 0.5, 0.25, 0.1]));
    }
    let archived = registry.history_versions();
    let started = Instant::now();
    let restored = registry.rollback_to(2).expect("version 2 is archived");
    let micros = started.elapsed().as_secs_f64() * 1e6;
    (archived, restored, micros)
}

/// Demonstrates the shadow gate: a corrupted round-2 candidate is rejected
/// and never reaches the registry. Mirrors the online chaos suite's setup,
/// where the rejection is pinned deterministically.
fn gate_demo() -> String {
    let users = 16;
    let items = 48;
    let sequences: Vec<Vec<usize>> = (0..users).map(|u| (0..12).map(|t| (u * 3 + t % 3) % items).collect()).collect();
    let initial = SequenceDataset::new("robustness-gate", sequences, items);
    let config = OnlineConfig {
        model: HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1),
        train: TrainConfig { epochs: 2, batch_size: 32, ..TrainConfig::default() },
        shards: 2,
        quantize_serving: false,
        ivf: None,
        seed: 42,
        gate: PublishGate { probe_k: items / 2, min_probes: 4, tolerance: 0.0, ..PublishGate::default() },
    };
    let faults = FaultInjector::parse("seed=7;snapshot_corrupt=r2").expect("valid spec");
    let mut trainer = OnlineTrainer::bootstrap_instrumented(&initial, config, Telemetry::disabled(), faults);
    let healthy_version = trainer.registry().version();
    for u in 0..users {
        trainer.ingest(u, (u * 3 + 1) % items);
    }
    let report = trainer.run_round();
    let shadow = report.shadow.expect("round 2 shadow-evaluates");
    format!(
        "  \"publish_gate\": {{\"fault_spec\": \"seed=7;snapshot_corrupt=r2\", \"round\": {}, \"probes\": {}, \
         \"candidate_hits\": {}, \"live_hits\": {}, \"rejected\": {}, \"published\": {}, \
         \"served_version_after\": {}, \"corrupt_snapshot_reached_registry\": {}}}",
        report.round,
        shadow.probes,
        shadow.candidate_hits,
        shadow.live_hits,
        report.publish_rejected,
        report.published,
        trainer.registry().version(),
        trainer.registry().version() != healthy_version,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = BenchScale::new(quick);
    eprintln!(
        "robustness_report: {} items, {} users, {} shards, {} clients x {} requests{}",
        scale.items,
        scale.users,
        SHARDS,
        scale.clients,
        scale.requests_per_client,
        if quick { " (quick)" } else { "" }
    );

    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(D, 5, 2, 3, 2);
    let model = Arc::new(HamModel::new(scale.users, scale.items, config, 7));
    // Both arms keep the dispatcher batching concurrent submitters so queue
    // time is a real part of the measured latency.
    let coalesce = Duration::from_micros(500);

    // Healthy arm: the bounded path under a deadline nothing hits.
    let healthy_deadline = Duration::from_millis(500);
    eprintln!("measuring the healthy arm...");
    let warm = ServerConfig { coalesce_wait: coalesce, default_deadline: Some(healthy_deadline), ..Default::default() };
    run_arm(&model, &BenchScale { requests_per_client: 20, ..BenchScale::new(true) }, warm, None);
    let healthy_config =
        ServerConfig { coalesce_wait: coalesce, default_deadline: Some(healthy_deadline), ..Default::default() };
    let healthy = run_arm(&model, &scale, healthy_config, None);
    let healthy_p99 = p99(&healthy).max(1);

    // Slow-shard arm: the deadline is 1.6x the healthy p99 — tight enough
    // that a shard slowed far beyond it is always dropped, generous enough
    // that the surviving shards fit their budget. The injected delay is 4x
    // the deadline (and at least 4ms), so the slow shard can never answer.
    let slow_deadline = Duration::from_micros((healthy_p99 as f64 * 1.6) as u64).max(Duration::from_millis(1));
    let injected_delay_us = (slow_deadline.as_micros() as u64 * 4).max(4_000);
    let fault_spec = format!("seed=7;shard_slow=0:{injected_delay_us}us");
    eprintln!("measuring the slow-shard arm ({fault_spec}, deadline {slow_deadline:?})...");
    let slow_config =
        ServerConfig { coalesce_wait: coalesce, default_deadline: Some(slow_deadline), ..Default::default() };
    let slow = run_arm(&model, &scale, slow_config, Some(&fault_spec));
    let ratio = p99(&slow) as f64 / healthy_p99 as f64;

    let (archived, restored, rb_micros) = rollback_micros();
    eprintln!("gate demonstration (corrupted candidate vs shadow gate)...");
    let gate = gate_demo();

    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"Graceful degradation under deterministic fault injection: identical \
         workloads on the deadline-bounded serving path, healthy vs a shard slowed past any budget. \
         The slow shard is dropped from the k-way merge (responses flagged degraded, surviving-shard \
         results deterministic), requests that expire in-queue are shed with an explicit reason, and \
         p99 stays bounded by the deadline instead of the injected delay. Plus: registry rollback \
         latency and a shadow-gate rejection of a corrupted candidate snapshot.\",\n",
    );
    out.push_str(&format!(
        "  \"d\": {D},\n  \"k\": {K},\n  \"shards\": {SHARDS},\n  \"items\": {},\n  \"users\": {},\n  \
         \"clients\": {},\n  \"requests_per_client\": {},\n  \"quick\": {quick},\n",
        scale.items, scale.users, scale.clients, scale.requests_per_client
    ));
    out.push_str(&arm_json("healthy", &healthy, healthy_deadline, None));
    out.push_str(",\n");
    out.push_str(&arm_json("slow_shard", &slow, slow_deadline, Some(&fault_spec)));
    out.push_str(",\n");
    out.push_str(&format!("  \"p99_slow_over_healthy\": {ratio:.3},\n"));
    out.push_str(&format!(
        "  \"rollback\": {{\"archived_versions\": {archived:?}, \"restored_as_version\": {restored}, \
         \"rollback_micros\": {rb_micros:.1}}},\n"
    ));
    out.push_str(&gate);
    out.push_str("\n}\n");

    std::fs::write("BENCH_robustness.json", &out).expect("failed to write BENCH_robustness.json");
    println!("{out}");
    eprintln!(
        "wrote BENCH_robustness.json (slow-shard p99 {:.2}x healthy, {:.1}% degraded, {:.1}% shed)",
        ratio,
        slow.degraded as f64 / slow.served.max(1) as f64 * 100.0,
        (slow.shed_queue_full + slow.shed_deadline) as f64 / slow.attempted().max(1) as f64 * 100.0
    );
}
