//! # ham-bench
//!
//! Criterion benchmarks for the HAM reproduction. The crate's library part
//! only hosts shared fixture helpers; the benchmarks themselves live under
//! `benches/`:
//!
//! * `inference` — per-user test-time scoring latency of HAMs_m vs Caser,
//!   SASRec and HGN (the shape of Table 14).
//! * `training_step` — cost of one mini-batch training step per method, and
//!   manual vs autograd gradients for HAM.
//! * `pooling_vs_attention` — the design-choice ablation the paper motivates:
//!   mean/max pooling vs a parameterised attention layer over the same window.
//! * `synergy_order` — cost of the recursive synergies for `p = 1..4`
//!   (the `p` rows of Tables 10–12).
//! * `data_pipeline` — synthetic generation, splitting and sliding-window
//!   extraction throughput.
//! * `scoring_kernels` — the scoring-kernel ladder (naive per-item dot loop
//!   vs fused `matvec_transposed` vs batched `Q·Wᵀ`) at catalogue sizes
//!   1k / 10k / 50k; the `scoring_report` binary writes the same comparison
//!   plus end-to-end evaluation numbers to `BENCH_scoring.json`.
//!
//! Report binaries under `src/bin/` write JSON artifacts: `scoring_report`
//! (above), `serve_report` (`BENCH_serving.json`, the sharded online
//! subsystem) and `kernel_report` (`BENCH_kernels.json`, portable vs
//! explicit-AVX2 kernel tiers in GFLOP/s — run it on a build without
//! `-C target-cpu=native` to see what runtime dispatch buys a portable
//! binary).

#![forbid(unsafe_code)]

use ham_core::{train, HamConfig, HamModel, HamVariant, TrainConfig};
use ham_data::dataset::SequenceDataset;
use ham_data::synthetic::DatasetProfile;

/// A small but non-trivial dataset used by all benchmarks: ~200 users over a
/// few hundred items so per-user scoring cost is measurable.
pub fn bench_dataset() -> SequenceDataset {
    let mut profile = DatasetProfile::tiny("bench");
    profile.num_users = 200;
    profile.num_items = 400;
    profile.mean_seq_len = 40.0;
    profile.generate(2024)
}

/// Trains a small HAM model of the given variant on the benchmark dataset.
pub fn quick_ham(dataset: &SequenceDataset, variant: HamVariant, d: usize) -> HamModel {
    let config = HamConfig::for_variant(variant).with_dimensions(d, 5, 2, 3, if d >= 2 { 2 } else { 1 });
    let train_cfg = TrainConfig { epochs: 1, batch_size: 128, ..TrainConfig::default() };
    train(&dataset.sequences, dataset.num_items, &config, &train_cfg, 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_usable() {
        let data = bench_dataset();
        assert!(data.num_users() >= 150);
        let model = quick_ham(&data, HamVariant::HamSM, 8);
        assert_eq!(model.num_items(), data.num_items);
    }
}
