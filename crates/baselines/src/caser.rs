//! Caser — Convolutional Sequence Embedding Recommendation (Tang & Wang,
//! WSDM'18).
//!
//! Caser treats the embedding matrix of the `L` most recent items as an
//! "image" and applies
//!
//! * **horizontal filters** of every height `h ∈ 1..=L` spanning the full
//!   embedding width, max-pooled over the sliding positions, capturing
//!   union-level sequential patterns, and
//! * **vertical filters** that form weighted sums over the `L` item
//!   embeddings per dimension,
//!
//! concatenates both outputs through a fully-connected layer into a sequence
//! representation `z`, and scores candidates against `[z ; p_u]` where `p_u`
//! is the user's long-term embedding.

use crate::common::{bpr_pairwise_loss, fixed_window, train_bpr, BaselineTrainConfig, SequentialRecommender};
use ham_autograd::{Graph, ParamId, ParamStore, VarId};
use ham_data::dataset::ItemId;
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of [`Caser`] (Table A2 reports `d`, `L`, `T`, `n_v`, `n_h`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaserConfig {
    /// Embedding dimension.
    pub d: usize,
    /// Length of the recent-item window (`L`).
    pub seq_len: usize,
    /// Number of target items per training window (`T`).
    pub targets: usize,
    /// Number of vertical filters (`n_v`).
    pub vertical_filters: usize,
    /// Number of horizontal filters per height (`n_h`).
    pub horizontal_filters: usize,
}

impl Default for CaserConfig {
    fn default() -> Self {
        Self { d: 64, seq_len: 5, targets: 3, vertical_filters: 2, horizontal_filters: 4 }
    }
}

/// Identifiers of all Caser parameters (shared between training closure and
/// inference).
#[derive(Debug, Clone)]
struct CaserParams {
    users: ParamId,
    items_in: ParamId,
    items_out: ParamId,
    /// `horizontal[h - 1]` holds the filters of height `h`.
    horizontal: Vec<Vec<ParamId>>,
    vertical: ParamId,
    fc_weight: ParamId,
    fc_bias: ParamId,
}

/// The convolutional sequence embedding recommender.
#[derive(Debug)]
pub struct Caser {
    config: CaserConfig,
    params: ParamStore,
    ids: CaserParams,
    num_items: usize,
}

impl Caser {
    /// Trains Caser on per-user training sequences.
    pub fn fit(
        train_sequences: &[Vec<ItemId>],
        num_items: usize,
        config: &CaserConfig,
        train_config: &BaselineTrainConfig,
        seed: u64,
    ) -> Self {
        assert!(config.seq_len > 0, "Caser: seq_len must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d;
        let mut params = ParamStore::new();
        let users = params.add_embedding("P", Matrix::xavier_uniform(train_sequences.len(), d, &mut rng));
        let items_in = params.add_embedding("Q", Matrix::xavier_uniform(num_items, d, &mut rng));
        let items_out = params.add_embedding("W", Matrix::xavier_uniform(num_items, 2 * d, &mut rng));
        let mut horizontal = Vec::with_capacity(config.seq_len);
        for h in 1..=config.seq_len {
            let filters = (0..config.horizontal_filters)
                .map(|f| params.add_dense(format!("F_h{h}_{f}"), Matrix::xavier_uniform(h, d, &mut rng)))
                .collect();
            horizontal.push(filters);
        }
        let vertical =
            params.add_dense("F_v", Matrix::xavier_uniform(config.vertical_filters, config.seq_len, &mut rng));
        let horizontal_out = config.seq_len * config.horizontal_filters;
        let vertical_out = config.vertical_filters * d;
        let fc_weight = params.add_dense("W_fc", Matrix::xavier_uniform(horizontal_out + vertical_out, d, &mut rng));
        let fc_bias = params.add_dense("b_fc", Matrix::zeros(1, d));

        let ids = CaserParams { users, items_in, items_out, horizontal, vertical, fc_weight, fc_bias };
        let loss_ids = ids.clone();
        let cfg = *config;
        train_bpr(
            &mut params,
            train_sequences,
            num_items,
            config.seq_len,
            config.targets,
            train_config,
            seed,
            move |store, g, inst| {
                let q = Self::query_node(store, g, &loss_ids, &cfg, inst.user, &inst.input);
                bpr_pairwise_loss(g, store, loss_ids.items_out, q, inst)
            },
        );

        Self { config: *config, params, ids, num_items }
    }

    /// Builds the `[z ; p_u]` query representation on the tape.
    fn query_node(
        store: &ParamStore,
        g: &mut Graph,
        ids: &CaserParams,
        config: &CaserConfig,
        user: usize,
        input: &[ItemId],
    ) -> VarId {
        debug_assert_eq!(input.len(), config.seq_len, "Caser input must have length L");
        let window = g.gather(store, ids.items_in, input);

        // Horizontal convolutions: relu(conv) max-pooled over positions.
        let mut horizontal_outputs: Vec<VarId> = Vec::new();
        for filters in &ids.horizontal {
            for &filter in filters {
                let f = g.param(store, filter);
                let conv = g.conv_full_width(window, f);
                let act = g.relu(conv);
                let pooled = g.max_rows(act);
                horizontal_outputs.push(pooled);
            }
        }
        let o_h = g.concat_cols(&horizontal_outputs);

        // Vertical convolutions: weighted sums of the L embeddings.
        let fv = g.param(store, ids.vertical);
        let o_v_mat = g.matmul(fv, window);
        let o_v = g.reshape(o_v_mat, 1, config.vertical_filters * config.d);

        // Fully-connected layer into the sequence representation z.
        let concat = g.concat_cols(&[o_h, o_v]);
        let w_fc = g.param(store, ids.fc_weight);
        let b_fc = g.param(store, ids.fc_bias);
        let hidden = g.matmul(concat, w_fc);
        let hidden = g.add_row_broadcast(hidden, b_fc);
        let z = g.relu(hidden);

        // Final query: [z ; p_u]
        let p_u = g.gather(store, ids.users, &[user]);
        g.concat_cols(&[z, p_u])
    }

    /// The model's configuration.
    pub fn config(&self) -> &CaserConfig {
        &self.config
    }

    /// Computes the query vector for a user and history with a forward-only
    /// tape evaluation.
    fn query_vector(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        let window = fixed_window(sequence, self.config.seq_len);
        let mut g = Graph::new();
        let q = Self::query_node(&self.params, &mut g, &self.ids, &self.config, user, &window);
        g.value(q).row(0).to_vec()
    }
}

impl SequentialRecommender for Caser {
    fn name(&self) -> &'static str {
        "Caser"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score_all(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        let q = self.query_vector(user, sequence);
        self.params.value(self.ids.items_out).matvec_transposed(&q)
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> ham_tensor::Matrix {
        let w = self.params.value(self.ids.items_out);
        crate::common::batched_query_scores(users, sequences, w.cols(), w, |u, s| self.query_vector(u, s))
    }

    fn linear_head(&self) -> Option<ham_core::LinearHead<'_>> {
        Some(ham_core::LinearHead::new(self.params.value(self.ids.items_out), move |u, s| self.query_vector(u, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_data::synthetic::DatasetProfile;

    fn small_model() -> (Caser, Vec<Vec<usize>>) {
        let data = DatasetProfile::tiny("caser-test").generate(6);
        let cfg = CaserConfig { d: 8, seq_len: 4, targets: 2, vertical_filters: 2, horizontal_filters: 2 };
        let tc = BaselineTrainConfig { epochs: 1, batch_size: 64, ..Default::default() };
        (Caser::fit(&data.sequences, data.num_items, &cfg, &tc, 5), data.sequences.clone())
    }

    #[test]
    fn scores_cover_the_catalogue_and_are_finite() {
        let (model, seqs) = small_model();
        let scores = model.score_all(1, &seqs[1]);
        assert_eq!(scores.len(), model.num_items());
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(model.name(), "Caser");
        assert_eq!(model.config().horizontal_filters, 2);
    }

    #[test]
    fn query_depends_on_the_sequence_and_the_user() {
        let (model, _) = small_model();
        let a = model.score_all(0, &[1, 2, 3, 4]);
        let b = model.score_all(0, &[5, 6, 7, 8]);
        let c = model.score_all(1, &[1, 2, 3, 4]);
        assert_ne!(a, b, "different histories must give different scores");
        assert_ne!(a, c, "different users must give different scores");
    }

    #[test]
    fn short_histories_are_padded() {
        let (model, _) = small_model();
        let scores = model.score_all(0, &[2]);
        assert_eq!(scores.len(), model.num_items());
    }

    #[test]
    fn training_reduces_the_loss() {
        let data = DatasetProfile::tiny("caser-loss").generate(9);
        let cfg = CaserConfig { d: 8, seq_len: 4, targets: 2, vertical_filters: 1, horizontal_filters: 1 };
        let tc = BaselineTrainConfig { epochs: 3, batch_size: 64, ..Default::default() };
        // Re-run the internal harness to observe the loss trajectory.
        let mut rng = StdRng::seed_from_u64(1);
        let d = cfg.d;
        let mut params = ParamStore::new();
        let users = params.add_embedding("P", Matrix::xavier_uniform(data.num_users(), d, &mut rng));
        let items_in = params.add_embedding("Q", Matrix::xavier_uniform(data.num_items, d, &mut rng));
        let items_out = params.add_embedding("W", Matrix::xavier_uniform(data.num_items, 2 * d, &mut rng));
        let horizontal = (1..=cfg.seq_len)
            .map(|h| vec![params.add_dense(format!("F_h{h}"), Matrix::xavier_uniform(h, d, &mut rng))])
            .collect();
        let vertical = params.add_dense("F_v", Matrix::xavier_uniform(1, cfg.seq_len, &mut rng));
        let fc_weight = params.add_dense("W_fc", Matrix::xavier_uniform(cfg.seq_len + d, d, &mut rng));
        let fc_bias = params.add_dense("b_fc", Matrix::zeros(1, d));
        let ids = CaserParams { users, items_in, items_out, horizontal, vertical, fc_weight, fc_bias };
        let losses =
            train_bpr(&mut params, &data.sequences, data.num_items, cfg.seq_len, cfg.targets, &tc, 2, |s, g, inst| {
                let q = Caser::query_node(s, g, &ids, &cfg, inst.user, &inst.input);
                bpr_pairwise_loss(g, s, ids.items_out, q, inst)
            });
        assert!(losses.last().unwrap() < losses.first().unwrap(), "Caser loss should decrease: {losses:?}");
    }
}
