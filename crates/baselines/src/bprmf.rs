//! BPR matrix factorisation: a non-sequential personalised baseline
//! (`r_ij = u_i · q_j`), trained with the shared BPR harness.

use crate::common::{bpr_pairwise_loss, train_bpr, BaselineTrainConfig, SequentialRecommender};
use ham_autograd::{ParamId, ParamStore};
use ham_data::dataset::ItemId;
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of [`BprMf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BprMfConfig {
    /// Embedding dimension.
    pub d: usize,
    /// Sliding-window length used only to enumerate training pairs.
    pub seq_len: usize,
    /// Targets per window.
    pub targets: usize,
}

impl Default for BprMfConfig {
    fn default() -> Self {
        Self { d: 32, seq_len: 3, targets: 2 }
    }
}

/// BPR matrix factorisation model.
#[derive(Debug)]
pub struct BprMf {
    config: BprMfConfig,
    params: ParamStore,
    users: ParamId,
    items: ParamId,
    num_items: usize,
}

impl BprMf {
    /// Trains the model on per-user training sequences.
    pub fn fit(
        train_sequences: &[Vec<ItemId>],
        num_items: usize,
        config: &BprMfConfig,
        train_config: &BaselineTrainConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamStore::new();
        let users = params.add_embedding("U", Matrix::xavier_uniform(train_sequences.len(), config.d, &mut rng));
        let items = params.add_embedding("Q", Matrix::xavier_uniform(num_items, config.d, &mut rng));

        train_bpr(
            &mut params,
            train_sequences,
            num_items,
            config.seq_len,
            config.targets,
            train_config,
            seed,
            |store, g, inst| {
                let u = g.gather(store, users, &[inst.user]);
                bpr_pairwise_loss(g, store, items, u, inst)
            },
        );
        Self { config: *config, params, users, items, num_items }
    }

    /// The model's configuration.
    pub fn config(&self) -> &BprMfConfig {
        &self.config
    }
}

impl SequentialRecommender for BprMf {
    fn name(&self) -> &'static str {
        "BPR-MF"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score_all(&self, user: usize, _sequence: &[ItemId]) -> Vec<f32> {
        let u = self.params.value(self.users).row(user);
        self.params.value(self.items).matvec_transposed(u)
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> ham_tensor::Matrix {
        assert_eq!(
            users.len(),
            sequences.len(),
            "score_batch: {} users but {} sequences",
            users.len(),
            sequences.len()
        );
        // Q is just the gathered user-factor rows; one GEMM scores the batch.
        let queries = self.params.value(self.users).gather_rows(users);
        queries.matmul_transposed(self.params.value(self.items))
    }

    fn linear_head(&self) -> Option<ham_core::LinearHead<'_>> {
        Some(ham_core::LinearHead::new(self.params.value(self.items), move |u, _s| {
            self.params.value(self.users).row(u).to_vec()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_score_shapes() {
        let seqs: Vec<Vec<usize>> = (0..6).map(|u| (0..12).map(|t| (u + t) % 20).collect()).collect();
        let cfg = BprMfConfig { d: 8, ..Default::default() };
        let tc = BaselineTrainConfig { epochs: 1, ..Default::default() };
        let model = BprMf::fit(&seqs, 20, &cfg, &tc, 3);
        let scores = model.score_all(2, &seqs[2]);
        assert_eq!(scores.len(), 20);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(model.name(), "BPR-MF");
        assert_eq!(model.config().d, 8);
    }

    #[test]
    fn scores_are_personalised() {
        let seqs: Vec<Vec<usize>> = (0..6).map(|u| (0..12).map(|t| (u * 3 + t) % 20).collect()).collect();
        let cfg = BprMfConfig { d: 8, ..Default::default() };
        let tc = BaselineTrainConfig { epochs: 2, ..Default::default() };
        let model = BprMf::fit(&seqs, 20, &cfg, &tc, 3);
        assert_ne!(model.score_all(0, &[]), model.score_all(5, &[]));
    }
}
