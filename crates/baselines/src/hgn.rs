//! HGN — Hierarchical Gating Networks (Ma et al., KDD'19), the paper's
//! strongest baseline.
//!
//! HGN scores a candidate item `j` for user `i` with three terms:
//!
//! ```text
//! r_ij = u_i·w_j + agg·w_j + (Σ_l e_l)·w_j
//! ```
//!
//! where `e_l` are the embeddings of the `L` most recent items,
//! *feature gating* modulates each embedding dimension-wise
//! (`gated_l = e_l ∘ σ(e_l·W_f + u_i·U_f)`), *instance gating* weights the
//! items (`a = σ(gated·w_inst + u_i·u_inst)`), and
//! `agg = Σ_l a_l · gated_l / L`.
//!
//! The instance-gating weights `a` are exactly the weights analysed in
//! Figure 4 of the paper; [`Hgn::instance_gating_weights`] exposes them for
//! the reproduction of that study.

use crate::common::{
    bpr_pairwise_loss, fixed_window, train_bpr, BaselineTrainConfig, SequentialRecommender, TrainInstance,
};
use ham_autograd::{Graph, ParamId, ParamStore, VarId};
use ham_data::dataset::ItemId;
use ham_tensor::matrix::dot;
use ham_tensor::ops::sigmoid_scalar;
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of [`Hgn`] (the paper's Table A2 reports `d`, `L`, `T`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HgnConfig {
    /// Embedding dimension.
    pub d: usize,
    /// Length of the recent-item window (`L`).
    pub seq_len: usize,
    /// Number of target items per training window (`T`).
    pub targets: usize,
}

impl Default for HgnConfig {
    fn default() -> Self {
        Self { d: 64, seq_len: 5, targets: 3 }
    }
}

/// The hierarchical gating network model.
#[derive(Debug)]
pub struct Hgn {
    config: HgnConfig,
    params: ParamStore,
    users: ParamId,
    items_in: ParamId,
    items_out: ParamId,
    feat_gate_item: ParamId,
    feat_gate_user: ParamId,
    inst_gate_item: ParamId,
    inst_gate_user: ParamId,
    num_items: usize,
}

impl Hgn {
    /// Trains HGN on per-user training sequences.
    pub fn fit(
        train_sequences: &[Vec<ItemId>],
        num_items: usize,
        config: &HgnConfig,
        train_config: &BaselineTrainConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d;
        let mut params = ParamStore::new();
        let users = params.add_embedding("U", Matrix::xavier_uniform(train_sequences.len(), d, &mut rng));
        let items_in = params.add_embedding("E", Matrix::xavier_uniform(num_items, d, &mut rng));
        let items_out = params.add_embedding("W", Matrix::xavier_uniform(num_items, d, &mut rng));
        let feat_gate_item = params.add_dense("W_f", Matrix::xavier_uniform(d, d, &mut rng));
        let feat_gate_user = params.add_dense("U_f", Matrix::xavier_uniform(d, d, &mut rng));
        let inst_gate_item = params.add_dense("w_inst", Matrix::xavier_uniform(d, 1, &mut rng));
        let inst_gate_user = params.add_dense("u_inst", Matrix::xavier_uniform(d, 1, &mut rng));

        let model_ids = (users, items_in, items_out, feat_gate_item, feat_gate_user, inst_gate_item, inst_gate_user);
        train_bpr(
            &mut params,
            train_sequences,
            num_items,
            config.seq_len,
            config.targets,
            train_config,
            seed,
            |store, g, inst| Self::instance_loss(store, g, inst, model_ids, config.seq_len),
        );

        Self {
            config: *config,
            params,
            users,
            items_in,
            items_out,
            feat_gate_item,
            feat_gate_user,
            inst_gate_item,
            inst_gate_user,
            num_items,
        }
    }

    #[allow(clippy::type_complexity)]
    fn instance_loss(
        store: &ParamStore,
        g: &mut Graph,
        inst: &TrainInstance,
        ids: (ParamId, ParamId, ParamId, ParamId, ParamId, ParamId, ParamId),
        seq_len: usize,
    ) -> VarId {
        let (users, items_in, items_out, w_f, u_f, w_inst, u_inst) = ids;
        let u = g.gather(store, users, &[inst.user]);
        let window = g.gather(store, items_in, &inst.input);

        // Feature gating: gated = E ∘ σ(E·W_f + u·U_f)
        let wf = g.param(store, w_f);
        let uf = g.param(store, u_f);
        let item_part = g.matmul(window, wf);
        let user_part = g.matmul(u, uf);
        let gate_pre = g.add_row_broadcast(item_part, user_part);
        let gate = g.sigmoid(gate_pre);
        let gated = g.hadamard(window, gate);

        // Instance gating: a = σ(gated·w_inst + u·u_inst), agg = aᵀ·gated / L
        let wi = g.param(store, w_inst);
        let ui = g.param(store, u_inst);
        let item_scores = g.matmul(gated, wi);
        let user_score = g.matmul(u, ui);
        let inst_pre = g.add_row_broadcast(item_scores, user_score);
        let weights = g.sigmoid(inst_pre);
        let weights_t = g.transpose(weights);
        let agg_raw = g.matmul(weights_t, gated);
        let agg = g.scale(agg_raw, 1.0 / seq_len as f32);

        // Item–item term: Σ_l e_l
        let mean_e = g.mean_rows(window);
        let sum_e = g.scale(mean_e, inst.input.len() as f32);

        // q = u + agg + Σ e_l
        let q0 = g.add(u, agg);
        let q = g.add(q0, sum_e);
        bpr_pairwise_loss(g, store, items_out, q, inst)
    }

    /// The model's configuration.
    pub fn config(&self) -> &HgnConfig {
        &self.config
    }

    /// The instance-gating weights of the user's most recent `L` items — the
    /// quantity whose distribution Figure 4 of the paper studies.
    pub fn instance_gating_weights(&self, user: usize, sequence: &[ItemId]) -> Vec<(ItemId, f32)> {
        let window = fixed_window(sequence, self.config.seq_len);
        let (gated, weights) = self.gated_window(user, &window);
        debug_assert_eq!(gated.rows(), weights.len());
        window.into_iter().zip(weights).collect()
    }

    /// Computes the feature-gated window embeddings and the instance-gating
    /// weights with plain matrix math (used at inference time).
    fn gated_window(&self, user: usize, window: &[ItemId]) -> (Matrix, Vec<f32>) {
        let u = self.params.value(self.users).row(user);
        let e = self.params.value(self.items_in).gather_rows(window);
        let w_f = self.params.value(self.feat_gate_item);
        let u_f = self.params.value(self.feat_gate_user);
        let w_inst = self.params.value(self.inst_gate_item);
        let u_inst = self.params.value(self.inst_gate_user);

        let user_part = Matrix::row_vector(u).matmul(u_f);
        let gate_pre = e.matmul(w_f).add_row_broadcast(user_part.row(0));
        let gate = ham_tensor::ops::sigmoid(&gate_pre);
        let gated = e.hadamard(&gate);

        let user_score = dot(u, u_inst.transpose().row(0));
        let weights: Vec<f32> = (0..gated.rows())
            .map(|l| sigmoid_scalar(dot(gated.row(l), w_inst.transpose().row(0)) + user_score))
            .collect();
        (gated, weights)
    }

    /// The final query vector `q = u + agg + Σ e_l` scored against the output
    /// item embeddings (shared by the per-user and batched scoring paths).
    fn query_vector(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        let window = fixed_window(sequence, self.config.seq_len);
        let (gated, weights) = self.gated_window(user, &window);

        // agg = Σ_l a_l · gated_l / L
        let d = self.config.d;
        let mut agg = vec![0.0f32; d];
        for (l, w) in weights.iter().enumerate() {
            for (a, v) in agg.iter_mut().zip(gated.row(l)) {
                *a += w * v;
            }
        }
        agg.iter_mut().for_each(|a| *a /= self.config.seq_len as f32);

        // q = u + agg + Σ e_l
        let e = self.params.value(self.items_in).gather_rows(&window);
        let mut q = self.params.value(self.users).row(user).to_vec();
        for (qi, ai) in q.iter_mut().zip(&agg) {
            *qi += ai;
        }
        for l in 0..e.rows() {
            for (qi, ei) in q.iter_mut().zip(e.row(l)) {
                *qi += ei;
            }
        }
        q
    }
}

impl SequentialRecommender for Hgn {
    fn name(&self) -> &'static str {
        "HGN"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score_all(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        let q = self.query_vector(user, sequence);
        self.params.value(self.items_out).matvec_transposed(&q)
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> ham_tensor::Matrix {
        let w_out = self.params.value(self.items_out);
        crate::common::batched_query_scores(users, sequences, w_out.cols(), w_out, |u, s| self.query_vector(u, s))
    }

    fn linear_head(&self) -> Option<ham_core::LinearHead<'_>> {
        Some(ham_core::LinearHead::new(self.params.value(self.items_out), move |u, s| self.query_vector(u, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_data::synthetic::DatasetProfile;

    fn small_model() -> (Hgn, Vec<Vec<usize>>) {
        let data = DatasetProfile::tiny("hgn-test").generate(2);
        let cfg = HgnConfig { d: 8, seq_len: 4, targets: 2 };
        let tc = BaselineTrainConfig { epochs: 1, batch_size: 64, ..Default::default() };
        (Hgn::fit(&data.sequences, data.num_items, &cfg, &tc, 11), data.sequences.clone())
    }

    #[test]
    fn scores_cover_the_catalogue_and_are_finite() {
        let (model, seqs) = small_model();
        let scores = model.score_all(3, &seqs[3]);
        assert_eq!(scores.len(), model.num_items());
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(model.name(), "HGN");
    }

    #[test]
    fn gating_weights_are_probabilities_over_the_window() {
        let (model, seqs) = small_model();
        let weights = model.instance_gating_weights(0, &seqs[0]);
        assert_eq!(weights.len(), model.config().seq_len);
        for (_, w) in weights {
            assert!((0.0..=1.0).contains(&w), "gating weight {w} outside (0, 1)");
        }
    }

    #[test]
    fn scores_depend_on_the_recent_window() {
        let (model, _) = small_model();
        let a = model.score_all(0, &[1, 2, 3, 4]);
        let b = model.score_all(0, &[9, 10, 11, 12]);
        assert_ne!(a, b);
    }

    #[test]
    fn training_improves_the_bpr_objective() {
        let data = DatasetProfile::tiny("hgn-loss").generate(4);
        let cfg = HgnConfig { d: 8, seq_len: 4, targets: 2 };
        // fit twice with different epoch budgets and compare scores' spread on
        // trained items as a cheap convergence signal: instead track the loss
        // returned by the shared harness directly.
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ParamStore::new();
        let users = params.add_embedding("U", Matrix::xavier_uniform(data.num_users(), cfg.d, &mut rng));
        let items_in = params.add_embedding("E", Matrix::xavier_uniform(data.num_items, cfg.d, &mut rng));
        let items_out = params.add_embedding("W", Matrix::xavier_uniform(data.num_items, cfg.d, &mut rng));
        let w_f = params.add_dense("W_f", Matrix::xavier_uniform(cfg.d, cfg.d, &mut rng));
        let u_f = params.add_dense("U_f", Matrix::xavier_uniform(cfg.d, cfg.d, &mut rng));
        let w_i = params.add_dense("w_inst", Matrix::xavier_uniform(cfg.d, 1, &mut rng));
        let u_i = params.add_dense("u_inst", Matrix::xavier_uniform(cfg.d, 1, &mut rng));
        let ids = (users, items_in, items_out, w_f, u_f, w_i, u_i);
        let tc = BaselineTrainConfig { epochs: 4, batch_size: 64, ..Default::default() };
        let losses =
            train_bpr(&mut params, &data.sequences, data.num_items, cfg.seq_len, cfg.targets, &tc, 7, |s, g, inst| {
                Hgn::instance_loss(s, g, inst, ids, cfg.seq_len)
            });
        assert!(losses.last().unwrap() < losses.first().unwrap(), "HGN loss should decrease: {losses:?}");
    }
}
