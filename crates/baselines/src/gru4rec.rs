//! GRU4Rec — session-based recommendations with recurrent neural networks
//! (Hidasi et al., ICLR'16).
//!
//! GRU4Rec is one of the methods the paper's literature review covers and the
//! comparison set HGN was shown to outperform; it is included here so the
//! reproduction's baseline suite spans all four mechanism families the paper
//! discusses (recurrence, convolution, attention, gating).
//!
//! The implementation unrolls a single-layer GRU over the `L` most recent
//! item embeddings on the autograd tape and scores candidates against the
//! shared item-embedding matrix from the final hidden state, trained with the
//! shared BPR harness (the original paper's ranking losses — BPR / TOP1 —
//! include BPR, so this matches one of its configurations).

use crate::common::{
    bpr_pairwise_loss, fixed_window, train_bpr, BaselineTrainConfig, SequentialRecommender, TrainInstance,
};
use ham_autograd::{Graph, ParamId, ParamStore, VarId};
use ham_data::dataset::ItemId;
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of [`Gru4Rec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gru4RecConfig {
    /// Embedding / hidden dimension.
    pub d: usize,
    /// Length of the recent-item window the GRU is unrolled over.
    pub seq_len: usize,
    /// Number of target items per training window.
    pub targets: usize,
}

impl Default for Gru4RecConfig {
    fn default() -> Self {
        Self { d: 64, seq_len: 5, targets: 3 }
    }
}

#[derive(Debug, Clone, Copy)]
struct GruParams {
    items: ParamId,
    w_update: ParamId,
    u_update: ParamId,
    b_update: ParamId,
    w_reset: ParamId,
    u_reset: ParamId,
    b_reset: ParamId,
    w_cand: ParamId,
    u_cand: ParamId,
    b_cand: ParamId,
}

/// The recurrent session-based recommender.
#[derive(Debug)]
pub struct Gru4Rec {
    config: Gru4RecConfig,
    params: ParamStore,
    ids: GruParams,
    num_items: usize,
}

impl Gru4Rec {
    /// Trains GRU4Rec on per-user training sequences.
    pub fn fit(
        train_sequences: &[Vec<ItemId>],
        num_items: usize,
        config: &Gru4RecConfig,
        train_config: &BaselineTrainConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d;
        let mut params = ParamStore::new();
        let items = params.add_embedding("E", Matrix::xavier_uniform(num_items, d, &mut rng));
        let ids = GruParams {
            items,
            w_update: params.add_dense("W_z", Matrix::xavier_uniform(d, d, &mut rng)),
            u_update: params.add_dense("U_z", Matrix::xavier_uniform(d, d, &mut rng)),
            b_update: params.add_dense("b_z", Matrix::zeros(1, d)),
            w_reset: params.add_dense("W_r", Matrix::xavier_uniform(d, d, &mut rng)),
            u_reset: params.add_dense("U_r", Matrix::xavier_uniform(d, d, &mut rng)),
            b_reset: params.add_dense("b_r", Matrix::zeros(1, d)),
            w_cand: params.add_dense("W_h", Matrix::xavier_uniform(d, d, &mut rng)),
            u_cand: params.add_dense("U_h", Matrix::xavier_uniform(d, d, &mut rng)),
            b_cand: params.add_dense("b_h", Matrix::zeros(1, d)),
        };

        let cfg = *config;
        train_bpr(
            &mut params,
            train_sequences,
            num_items,
            config.seq_len,
            config.targets,
            train_config,
            seed,
            move |store, g, inst: &TrainInstance| {
                let q = Self::hidden_state_node(store, g, &ids, &cfg, &inst.input);
                bpr_pairwise_loss(g, store, ids.items, q, inst)
            },
        );

        Self { config: *config, params, ids, num_items }
    }

    /// Unrolls the GRU over the window and returns the final hidden state.
    fn hidden_state_node(
        store: &ParamStore,
        g: &mut Graph,
        ids: &GruParams,
        config: &Gru4RecConfig,
        input: &[ItemId],
    ) -> VarId {
        debug_assert_eq!(input.len(), config.seq_len);
        let d = config.d;
        let w_z = g.param(store, ids.w_update);
        let u_z = g.param(store, ids.u_update);
        let b_z = g.param(store, ids.b_update);
        let w_r = g.param(store, ids.w_reset);
        let u_r = g.param(store, ids.u_reset);
        let b_r = g.param(store, ids.b_reset);
        let w_h = g.param(store, ids.w_cand);
        let u_h = g.param(store, ids.u_cand);
        let b_h = g.param(store, ids.b_cand);
        let ones = g.constant(Matrix::full(1, d, 1.0));

        let mut hidden = g.constant(Matrix::zeros(1, d));
        for &item in input {
            let x = g.gather(store, ids.items, &[item]);

            // update gate z = σ(x·W_z + h·U_z + b_z)
            let xz = g.matmul(x, w_z);
            let hz = g.matmul(hidden, u_z);
            let z_pre = g.add(xz, hz);
            let z_pre = g.add_row_broadcast(z_pre, b_z);
            let z = g.sigmoid(z_pre);

            // reset gate r = σ(x·W_r + h·U_r + b_r)
            let xr = g.matmul(x, w_r);
            let hr = g.matmul(hidden, u_r);
            let r_pre = g.add(xr, hr);
            let r_pre = g.add_row_broadcast(r_pre, b_r);
            let r = g.sigmoid(r_pre);

            // candidate state h~ = tanh(x·W_h + (r ∘ h)·U_h + b_h)
            let xh = g.matmul(x, w_h);
            let reset_hidden = g.hadamard(r, hidden);
            let hh = g.matmul(reset_hidden, u_h);
            let cand_pre = g.add(xh, hh);
            let cand_pre = g.add_row_broadcast(cand_pre, b_h);
            let candidate = g.tanh(cand_pre);

            // h' = (1 − z) ∘ h + z ∘ h~
            let one_minus_z = g.sub(ones, z);
            let keep = g.hadamard(one_minus_z, hidden);
            let write = g.hadamard(z, candidate);
            hidden = g.add(keep, write);
        }
        hidden
    }

    /// The model's configuration.
    pub fn config(&self) -> &Gru4RecConfig {
        &self.config
    }

    fn hidden_state(&self, sequence: &[ItemId]) -> Vec<f32> {
        let window = fixed_window(sequence, self.config.seq_len);
        let mut g = Graph::new();
        let h = Self::hidden_state_node(&self.params, &mut g, &self.ids, &self.config, &window);
        g.value(h).row(0).to_vec()
    }
}

impl SequentialRecommender for Gru4Rec {
    fn name(&self) -> &'static str {
        "GRU4Rec"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score_all(&self, _user: usize, sequence: &[ItemId]) -> Vec<f32> {
        let h = self.hidden_state(sequence);
        self.params.value(self.ids.items).matvec_transposed(&h)
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> ham_tensor::Matrix {
        let e = self.params.value(self.ids.items);
        crate::common::batched_query_scores(users, sequences, e.cols(), e, |_, s| self.hidden_state(s))
    }

    fn linear_head(&self) -> Option<ham_core::LinearHead<'_>> {
        Some(ham_core::LinearHead::new(self.params.value(self.ids.items), move |_u, s| self.hidden_state(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_data::synthetic::DatasetProfile;

    fn small_model() -> (Gru4Rec, Vec<Vec<usize>>) {
        let data = DatasetProfile::tiny("gru-test").generate(14);
        let cfg = Gru4RecConfig { d: 8, seq_len: 4, targets: 2 };
        let tc = BaselineTrainConfig { epochs: 1, batch_size: 64, ..Default::default() };
        (Gru4Rec::fit(&data.sequences, data.num_items, &cfg, &tc, 4), data.sequences.clone())
    }

    #[test]
    fn scores_cover_the_catalogue_and_are_finite() {
        let (model, seqs) = small_model();
        let scores = model.score_all(0, &seqs[0]);
        assert_eq!(scores.len(), model.num_items());
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(model.name(), "GRU4Rec");
        assert_eq!(model.config().seq_len, 4);
    }

    #[test]
    fn hidden_state_depends_on_item_order() {
        // A recurrent model must distinguish [a, b] from [b, a]; pooling-based
        // models cannot — this is the defining property of the GRU baseline.
        let (model, _) = small_model();
        let forward = model.score_all(0, &[1, 2, 3, 4]);
        let reversed = model.score_all(0, &[4, 3, 2, 1]);
        assert_ne!(forward, reversed);
    }

    #[test]
    fn short_histories_are_padded() {
        let (model, _) = small_model();
        assert_eq!(model.score_all(0, &[7]).len(), model.num_items());
    }

    #[test]
    fn gru_training_reduces_the_loss() {
        let data = DatasetProfile::tiny("gru-loss").generate(15);
        let cfg = Gru4RecConfig { d: 8, seq_len: 4, targets: 2 };
        let mut rng = StdRng::seed_from_u64(1);
        let d = cfg.d;
        let mut params = ParamStore::new();
        let items = params.add_embedding("E", Matrix::xavier_uniform(data.num_items, d, &mut rng));
        let ids = GruParams {
            items,
            w_update: params.add_dense("W_z", Matrix::xavier_uniform(d, d, &mut rng)),
            u_update: params.add_dense("U_z", Matrix::xavier_uniform(d, d, &mut rng)),
            b_update: params.add_dense("b_z", Matrix::zeros(1, d)),
            w_reset: params.add_dense("W_r", Matrix::xavier_uniform(d, d, &mut rng)),
            u_reset: params.add_dense("U_r", Matrix::xavier_uniform(d, d, &mut rng)),
            b_reset: params.add_dense("b_r", Matrix::zeros(1, d)),
            w_cand: params.add_dense("W_h", Matrix::xavier_uniform(d, d, &mut rng)),
            u_cand: params.add_dense("U_h", Matrix::xavier_uniform(d, d, &mut rng)),
            b_cand: params.add_dense("b_h", Matrix::zeros(1, d)),
        };
        let tc = BaselineTrainConfig { epochs: 3, batch_size: 64, ..Default::default() };
        let losses =
            train_bpr(&mut params, &data.sequences, data.num_items, cfg.seq_len, cfg.targets, &tc, 8, |s, g, inst| {
                let q = Gru4Rec::hidden_state_node(s, g, &ids, &cfg, &inst.input);
                bpr_pairwise_loss(g, s, ids.items, q, inst)
            });
        assert!(losses.last().unwrap() < losses.first().unwrap(), "GRU4Rec loss should decrease: {losses:?}");
    }
}
