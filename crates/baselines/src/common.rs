//! Shared infrastructure for the baselines: the scoring trait used by the
//! evaluation harness and the generic BPR training loop.

use ham_autograd::{Adam, AdamConfig, Graph, Optimizer, ParamStore, VarId};
use ham_data::dataset::ItemId;
use ham_data::negative::NegativeSampler;
use ham_data::window::sliding_windows;
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A sequential recommender that can score every catalogue item for a user
/// given the user's interaction history. Implemented by every baseline; the
/// HAM models expose the same shape of API (the `Scorer` trait) in
/// `ham-core`.
pub trait SequentialRecommender {
    /// Human-readable method name as used in the paper's tables.
    fn name(&self) -> &'static str;
    /// Number of items the model can score.
    fn num_items(&self) -> usize;
    /// Scores every item for `user` given the user's chronological history.
    fn score_all(&self, user: usize, sequence: &[ItemId]) -> Vec<f32>;
    /// Scores every item for a batch of users; row `i` equals
    /// `score_all(users[i], sequences[i])` within float rounding (≤ 1e-5).
    ///
    /// The default loops over `score_all`; models with a linear scoring head
    /// override it to build their query matrix once and answer with a single
    /// blocked `Q · Wᵀ` GEMM.
    ///
    /// # Panics
    /// Panics if `users` and `sequences` differ in length.
    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> Matrix {
        score_batch_rows(self.num_items(), users, sequences, |u, s| self.score_all(u, s))
    }

    /// The model's linear scoring head (`r = q · Wᵀ`), when it has one.
    ///
    /// Every baseline in this crate scores through such a head — even PopRec,
    /// whose "query" is the constant `[1.0]` against an `n × 1` popularity
    /// column — so all of them can be served from the sharded catalogue in
    /// `ham-serve`. The default is `None` for future scorers without a
    /// factorised head.
    fn linear_head(&self) -> Option<ham_core::LinearHead<'_>> {
        None
    }
}

/// Assembles a batch score matrix from a per-user scoring closure (the
/// default body of [`SequentialRecommender::score_batch`]).
pub fn score_batch_rows(
    num_items: usize,
    users: &[usize],
    sequences: &[&[ItemId]],
    score_all: impl Fn(usize, &[ItemId]) -> Vec<f32>,
) -> Matrix {
    assert_eq!(users.len(), sequences.len(), "score_batch: {} users but {} sequences", users.len(), sequences.len());
    let mut out = Matrix::zeros(users.len(), num_items);
    for (i, (&user, sequence)) in users.iter().zip(sequences).enumerate() {
        out.row_mut(i).copy_from_slice(&score_all(user, sequence));
    }
    out
}

/// Builds the query matrix `Q` (one query per user, via `query_vector`) and
/// scores the whole batch against `candidates` with one blocked GEMM — the
/// shared body of the baselines' `score_batch` overrides.
pub fn batched_query_scores(
    users: &[usize],
    sequences: &[&[ItemId]],
    d: usize,
    candidates: &Matrix,
    query_vector: impl Fn(usize, &[ItemId]) -> Vec<f32>,
) -> Matrix {
    assert_eq!(users.len(), sequences.len(), "score_batch: {} users but {} sequences", users.len(), sequences.len());
    let mut queries = Matrix::zeros(users.len(), d);
    for (i, (&user, sequence)) in users.iter().zip(sequences).enumerate() {
        queries.row_mut(i).copy_from_slice(&query_vector(user, sequence));
    }
    queries.matmul_transposed(candidates)
}

/// Training hyper-parameters shared by all baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineTrainConfig {
    /// Number of passes over the sliding windows.
    pub epochs: usize,
    /// Windows per Adam step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Default for BaselineTrainConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 128, learning_rate: 1e-3, weight_decay: 1e-3 }
    }
}

/// One training window with sampled negatives, shared by every baseline.
#[derive(Debug, Clone)]
pub struct TrainInstance {
    /// Dense user id.
    pub user: usize,
    /// The `L` input items (chronological).
    pub input: Vec<ItemId>,
    /// The `T` positive targets.
    pub targets: Vec<ItemId>,
    /// One sampled negative per target.
    pub negatives: Vec<ItemId>,
}

/// Generic BPR training loop over sliding windows.
///
/// `build_loss` appends the loss of one instance to the tape and returns its
/// `1 x 1` node; the harness batches instances, averages their losses, runs
/// the backward pass and applies sparse Adam — exactly the protocol used for
/// the HAM models, so method comparisons share the data path.
#[allow(clippy::too_many_arguments)]
pub fn train_bpr(
    store: &mut ParamStore,
    train_sequences: &[Vec<ItemId>],
    num_items: usize,
    seq_len: usize,
    targets: usize,
    config: &BaselineTrainConfig,
    seed: u64,
    build_loss: impl Fn(&ParamStore, &mut Graph, &TrainInstance) -> VarId,
) -> Vec<f32> {
    assert!(!train_sequences.is_empty(), "train_bpr: need at least one user sequence");
    let windows = sliding_windows(train_sequences, seq_len, targets);
    let samplers: Vec<Option<NegativeSampler>> = train_sequences
        .iter()
        .map(|seq| {
            let distinct: std::collections::HashSet<ItemId> = seq.iter().copied().collect();
            (distinct.len() < num_items).then(|| NegativeSampler::new(num_items, distinct))
        })
        .collect();

    let mut adam = Adam::new(AdamConfig {
        learning_rate: config.learning_rate,
        weight_decay: config.weight_decay,
        ..AdamConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E_11E5);
    let mut order: Vec<usize> = (0..windows.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let batch: Vec<TrainInstance> = chunk
                .iter()
                .filter_map(|&idx| {
                    let w = &windows[idx];
                    let sampler = samplers[w.user].as_ref()?;
                    Some(TrainInstance {
                        user: w.user,
                        input: w.input.clone(),
                        targets: w.targets.clone(),
                        negatives: sampler.sample_many(w.targets.len(), &mut rng),
                    })
                })
                .collect();
            if batch.is_empty() {
                continue;
            }
            let mut g = Graph::new();
            let losses: Vec<VarId> = batch.iter().map(|inst| build_loss(store, &mut g, inst)).collect();
            let stacked = g.concat_rows(&losses);
            let batch_loss = g.mean_all(stacked);
            epoch_loss += g.value(batch_loss).get(0, 0) as f64;
            batches += 1;
            let grads = g.backward(batch_loss);
            adam.step(store, &grads);
        }
        epoch_losses.push(if batches > 0 { (epoch_loss / batches as f64) as f32 } else { 0.0 });
    }
    epoch_losses
}

/// Builds the standard BPR loss `mean_t softplus(-(q·w_pos - q·w_neg))` for a
/// query vector node `q` and candidate-embedding parameter `w`, shared by the
/// baselines.
pub fn bpr_pairwise_loss(
    g: &mut Graph,
    store: &ParamStore,
    candidate_param: ham_autograd::ParamId,
    query: VarId,
    instance: &TrainInstance,
) -> VarId {
    let w_pos = g.gather(store, candidate_param, &instance.targets);
    let w_neg = g.gather(store, candidate_param, &instance.negatives);
    let pos = g.matmul_transposed(query, w_pos);
    let neg = g.matmul_transposed(query, w_neg);
    let margin = g.sub(pos, neg);
    let neg_margin = g.neg(margin);
    let sp = g.softplus(neg_margin);
    g.mean_all(sp)
}

/// Pads or truncates a history to exactly `len` items (front-padding by
/// repeating the earliest item), the input convention shared by the sequence
/// baselines at inference time.
pub fn fixed_window(sequence: &[ItemId], len: usize) -> Vec<ItemId> {
    ham_data::window::recent_window(sequence, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_tensor::Matrix;
    use rand::SeedableRng;

    #[test]
    fn train_bpr_reduces_loss_for_a_simple_mf_objective() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let users = store.add_embedding("U", Matrix::xavier_uniform(10, 8, &mut rng));
        let items = store.add_embedding("I", Matrix::xavier_uniform(30, 8, &mut rng));

        // simple structured data: user u prefers items u*3..u*3+3
        let seqs: Vec<Vec<usize>> = (0..10).map(|u| (0..12).map(|t| (u * 3 + t % 3) % 30).collect()).collect();
        let cfg = BaselineTrainConfig { epochs: 8, batch_size: 8, learning_rate: 2e-2, ..Default::default() };
        let losses = train_bpr(&mut store, &seqs, 30, 3, 2, &cfg, 5, |store, g, inst| {
            let u = g.gather(store, users, &[inst.user]);
            bpr_pairwise_loss(g, store, items, u, inst)
        });
        assert_eq!(losses.len(), 8);
        assert!(losses.last().unwrap() < losses.first().unwrap(), "loss should decrease: {losses:?}");
    }

    #[test]
    fn fixed_window_pads_and_truncates() {
        assert_eq!(fixed_window(&[1, 2, 3, 4], 2), vec![3, 4]);
        assert_eq!(fixed_window(&[5], 3), vec![5, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_training_data_panics() {
        let mut store = ParamStore::new();
        let _ = train_bpr(&mut store, &[], 5, 2, 1, &BaselineTrainConfig::default(), 1, |_, g, _| {
            g.constant(Matrix::full(1, 1, 0.0))
        });
    }
}
