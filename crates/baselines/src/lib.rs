//! # ham-baselines
//!
//! The baseline sequential recommenders the HAM paper compares against,
//! re-implemented from scratch on the `ham-autograd` substrate:
//!
//! * [`Caser`] — convolutional sequence embeddings (horizontal full-width
//!   filters of every height plus vertical filters), Tang & Wang (WSDM'18);
//! * [`SasRec`] — a single-block causal self-attention recommender with
//!   position embeddings and a point-wise feed-forward layer, Kang & McAuley
//!   (ICDM'18);
//! * [`Hgn`] — hierarchical gating (feature gating + instance gating + the
//!   item–item product term), Ma et al. (KDD'19), the paper's state-of-the-art
//!   baseline;
//! * [`PopRec`] and [`BprMf`] — non-sequential sanity baselines (popularity
//!   ranking and BPR matrix factorisation).
//!
//! All trainable baselines share one BPR training harness
//! ([`common::train_bpr`]) built on sliding windows, per-user negative
//! sampling and sparse Adam — the same pipeline the HAM models use — so
//! run-time and accuracy comparisons across methods exercise identical data
//! paths.
//!
//! These are architectural reproductions, not bit-exact ports of the authors'
//! PyTorch code (see DESIGN.md §4, substitution 2): each model keeps the
//! mechanism the paper credits it for (convolution / attention / gating) with
//! a single block and the hyper-parameters exposed through its config struct.
//!
//! ## Example
//!
//! ```
//! use ham_baselines::{Hgn, HgnConfig, SequentialRecommender};
//! use ham_baselines::common::BaselineTrainConfig;
//! use ham_data::synthetic::DatasetProfile;
//!
//! let data = DatasetProfile::tiny("baseline-doc").generate(3);
//! let cfg = HgnConfig { d: 8, seq_len: 4, targets: 2, ..HgnConfig::default() };
//! let train_cfg = BaselineTrainConfig { epochs: 1, ..BaselineTrainConfig::default() };
//! let model = Hgn::fit(&data.sequences, data.num_items, &cfg, &train_cfg, 7);
//! let scores = model.score_all(0, &data.sequences[0]);
//! assert_eq!(scores.len(), data.num_items);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bprmf;
pub mod caser;
pub mod common;
pub mod gru4rec;
pub mod hgn;
pub mod poprec;
pub mod sasrec;

pub use bprmf::{BprMf, BprMfConfig};
pub use caser::{Caser, CaserConfig};
pub use common::{BaselineTrainConfig, SequentialRecommender};
pub use gru4rec::{Gru4Rec, Gru4RecConfig};
pub use hgn::{Hgn, HgnConfig};
pub use poprec::PopRec;
pub use sasrec::{SasRec, SasRecConfig};
