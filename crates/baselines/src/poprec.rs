//! Popularity ranking: recommends the globally most frequent items.
//!
//! Not part of the paper's comparison but a standard sanity baseline; any
//! sequential model that does not beat popularity on the synthetic data has a
//! training problem, so the integration tests use it as a floor.

use crate::common::SequentialRecommender;
use ham_data::dataset::ItemId;

/// A non-personalised popularity recommender.
///
/// The counts are stored as an `n × 1` matrix so popularity fits the same
/// linear scoring head as every other model: the "query" is the constant
/// `[1.0]` and `r_j = 1.0 · count_j` reproduces the counts exactly, which
/// lets the sharded serving layer treat PopRec like any factorised scorer.
#[derive(Debug, Clone)]
pub struct PopRec {
    scores: ham_tensor::Matrix,
}

impl PopRec {
    /// Fits the popularity counts on training sequences.
    pub fn fit(train_sequences: &[Vec<ItemId>], num_items: usize) -> Self {
        let mut counts = vec![0.0f32; num_items];
        for seq in train_sequences {
            for &item in seq {
                counts[item] += 1.0;
            }
        }
        Self { scores: ham_tensor::Matrix::from_vec(num_items, 1, counts) }
    }

    /// The raw popularity count of an item.
    pub fn popularity(&self, item: ItemId) -> f32 {
        self.scores.get(item, 0)
    }
}

impl SequentialRecommender for PopRec {
    fn name(&self) -> &'static str {
        "PopRec"
    }

    fn num_items(&self) -> usize {
        self.scores.rows()
    }

    fn score_all(&self, _user: usize, _sequence: &[ItemId]) -> Vec<f32> {
        self.scores.as_slice().to_vec()
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> ham_tensor::Matrix {
        assert_eq!(
            users.len(),
            sequences.len(),
            "score_batch: {} users but {} sequences",
            users.len(),
            sequences.len()
        );
        // Popularity is user-independent: tile the same score row.
        let mut out = ham_tensor::Matrix::zeros(users.len(), self.scores.rows());
        for i in 0..users.len() {
            out.row_mut(i).copy_from_slice(self.scores.as_slice());
        }
        out
    }

    fn linear_head(&self) -> Option<ham_core::LinearHead<'_>> {
        Some(ham_core::LinearHead::new(&self.scores, |_u, _s| vec![1.0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_counts_training_occurrences() {
        let model = PopRec::fit(&[vec![0, 1, 1], vec![1, 2]], 4);
        assert_eq!(model.popularity(1), 3.0);
        assert_eq!(model.popularity(3), 0.0);
        assert_eq!(model.num_items(), 4);
        assert_eq!(model.name(), "PopRec");
    }

    #[test]
    fn scores_are_identical_for_every_user() {
        let model = PopRec::fit(&[vec![0, 1]], 3);
        assert_eq!(model.score_all(0, &[0]), model.score_all(5, &[2]));
    }
}
