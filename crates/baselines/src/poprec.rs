//! Popularity ranking: recommends the globally most frequent items.
//!
//! Not part of the paper's comparison but a standard sanity baseline; any
//! sequential model that does not beat popularity on the synthetic data has a
//! training problem, so the integration tests use it as a floor.

use crate::common::SequentialRecommender;
use ham_data::dataset::ItemId;

/// A non-personalised popularity recommender.
#[derive(Debug, Clone)]
pub struct PopRec {
    scores: Vec<f32>,
}

impl PopRec {
    /// Fits the popularity counts on training sequences.
    pub fn fit(train_sequences: &[Vec<ItemId>], num_items: usize) -> Self {
        let mut counts = vec![0.0f32; num_items];
        for seq in train_sequences {
            for &item in seq {
                counts[item] += 1.0;
            }
        }
        Self { scores: counts }
    }

    /// The raw popularity count of an item.
    pub fn popularity(&self, item: ItemId) -> f32 {
        self.scores[item]
    }
}

impl SequentialRecommender for PopRec {
    fn name(&self) -> &'static str {
        "PopRec"
    }

    fn num_items(&self) -> usize {
        self.scores.len()
    }

    fn score_all(&self, _user: usize, _sequence: &[ItemId]) -> Vec<f32> {
        self.scores.clone()
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> ham_tensor::Matrix {
        assert_eq!(
            users.len(),
            sequences.len(),
            "score_batch: {} users but {} sequences",
            users.len(),
            sequences.len()
        );
        // Popularity is user-independent: tile the same score row.
        let mut out = ham_tensor::Matrix::zeros(users.len(), self.scores.len());
        for i in 0..users.len() {
            out.row_mut(i).copy_from_slice(&self.scores);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_counts_training_occurrences() {
        let model = PopRec::fit(&[vec![0, 1, 1], vec![1, 2]], 4);
        assert_eq!(model.popularity(1), 3.0);
        assert_eq!(model.popularity(3), 0.0);
        assert_eq!(model.num_items(), 4);
        assert_eq!(model.name(), "PopRec");
    }

    #[test]
    fn scores_are_identical_for_every_user() {
        let model = PopRec::fit(&[vec![0, 1]], 3);
        assert_eq!(model.score_all(0, &[0]), model.score_all(5, &[2]));
    }
}
