//! SASRec — Self-Attentive Sequential Recommendation (Kang & McAuley,
//! ICDM'18).
//!
//! A single-block causal self-attention encoder over the `n` most recent item
//! embeddings with learned position embeddings, a residual connection and a
//! point-wise feed-forward layer. The representation of the *last* position
//! scores candidates against the shared item-embedding matrix.
//!
//! Differences from the original implementation (documented per DESIGN.md §4):
//! one attention block and one head (the paper's Table A2 selects `h = 1` on
//! almost every dataset), no layer normalisation or dropout, and the BPR loss
//! of the shared harness instead of per-position binary cross-entropy.

use crate::common::{
    bpr_pairwise_loss, fixed_window, train_bpr, BaselineTrainConfig, SequentialRecommender, TrainInstance,
};
use ham_autograd::{Graph, ParamId, ParamStore, VarId};
use ham_data::dataset::ItemId;
use ham_tensor::matrix::dot;
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of [`SasRec`] (Table A1/A2 report `d`, `n`, `h`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SasRecConfig {
    /// Embedding dimension.
    pub d: usize,
    /// Maximum sequence length attended over (`n` in the paper's notation).
    pub seq_len: usize,
    /// Number of target items per training window.
    pub targets: usize,
}

impl Default for SasRecConfig {
    fn default() -> Self {
        Self { d: 64, seq_len: 10, targets: 3 }
    }
}

#[derive(Debug, Clone, Copy)]
struct SasRecParams {
    items: ParamId,
    positions: ParamId,
    w_query: ParamId,
    w_key: ParamId,
    w_value: ParamId,
    ffn_w1: ParamId,
    ffn_b1: ParamId,
    ffn_w2: ParamId,
    ffn_b2: ParamId,
}

/// The self-attentive sequential recommender.
#[derive(Debug)]
pub struct SasRec {
    config: SasRecConfig,
    params: ParamStore,
    ids: SasRecParams,
    num_items: usize,
}

impl SasRec {
    /// Trains SASRec on per-user training sequences.
    pub fn fit(
        train_sequences: &[Vec<ItemId>],
        num_items: usize,
        config: &SasRecConfig,
        train_config: &BaselineTrainConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d;
        let mut params = ParamStore::new();
        let items = params.add_embedding("E", Matrix::xavier_uniform(num_items, d, &mut rng));
        let positions = params.add_dense("P", Matrix::xavier_uniform(config.seq_len, d, &mut rng));
        let w_query = params.add_dense("W_q", Matrix::xavier_uniform(d, d, &mut rng));
        let w_key = params.add_dense("W_k", Matrix::xavier_uniform(d, d, &mut rng));
        let w_value = params.add_dense("W_v", Matrix::xavier_uniform(d, d, &mut rng));
        let ffn_w1 = params.add_dense("F_1", Matrix::xavier_uniform(d, d, &mut rng));
        let ffn_b1 = params.add_dense("b_1", Matrix::zeros(1, d));
        let ffn_w2 = params.add_dense("F_2", Matrix::xavier_uniform(d, d, &mut rng));
        let ffn_b2 = params.add_dense("b_2", Matrix::zeros(1, d));
        let ids = SasRecParams { items, positions, w_query, w_key, w_value, ffn_w1, ffn_b1, ffn_w2, ffn_b2 };

        let cfg = *config;
        train_bpr(
            &mut params,
            train_sequences,
            num_items,
            config.seq_len,
            config.targets,
            train_config,
            seed,
            move |store, g, inst: &TrainInstance| {
                let q = Self::query_node(store, g, &ids, &cfg, &inst.input);
                bpr_pairwise_loss(g, store, ids.items, q, inst)
            },
        );

        Self { config: *config, params, ids, num_items }
    }

    /// Builds the last-position representation of the attention block.
    fn query_node(
        store: &ParamStore,
        g: &mut Graph,
        ids: &SasRecParams,
        config: &SasRecConfig,
        input: &[ItemId],
    ) -> VarId {
        debug_assert_eq!(input.len(), config.seq_len, "SASRec input must have length seq_len");
        let len = config.seq_len;
        let d = config.d;

        // Input: item embeddings + position embeddings.
        let e = g.gather(store, ids.items, input);
        let p = g.param(store, ids.positions);
        let x = g.add(e, p);

        // Single-head causal self-attention.
        let wq = g.param(store, ids.w_query);
        let wk = g.param(store, ids.w_key);
        let wv = g.param(store, ids.w_value);
        let q = g.matmul(x, wq);
        let k = g.matmul(x, wk);
        let v = g.matmul(x, wv);
        let raw = g.matmul_transposed(q, k);
        let scaled = g.scale(raw, 1.0 / (d as f32).sqrt());
        let mask = g.constant(causal_mask(len));
        let masked = g.add(scaled, mask);
        let attn = g.row_softmax(masked);
        let context = g.matmul(attn, v);
        let residual = g.add(context, x);

        // Point-wise feed-forward with a second residual connection.
        let w1 = g.param(store, ids.ffn_w1);
        let b1 = g.param(store, ids.ffn_b1);
        let w2 = g.param(store, ids.ffn_w2);
        let b2 = g.param(store, ids.ffn_b2);
        let h1 = g.matmul(residual, w1);
        let h1 = g.add_row_broadcast(h1, b1);
        let h1 = g.relu(h1);
        let h2 = g.matmul(h1, w2);
        let h2 = g.add_row_broadcast(h2, b2);
        let out = g.add(h2, residual);

        // The last position summarises the sequence.
        g.slice_rows(out, len - 1, 1)
    }

    /// The model's configuration.
    pub fn config(&self) -> &SasRecConfig {
        &self.config
    }

    /// The attention weights of the last position over the window items,
    /// used by the attention-weight study (Figure 4 / Section 7.2).
    pub fn attention_weights(&self, sequence: &[ItemId]) -> Vec<(ItemId, f32)> {
        let window = fixed_window(sequence, self.config.seq_len);
        let e = self.params.value(self.ids.items).gather_rows(&window);
        let x = e.add(self.params.value(self.ids.positions));
        let q = x.matmul(self.params.value(self.ids.w_query));
        let k = x.matmul(self.params.value(self.ids.w_key));
        let mut scores: Vec<f32> =
            (0..window.len()).map(|l| dot(q.row(window.len() - 1), k.row(l)) / (self.config.d as f32).sqrt()).collect();
        ham_tensor::ops::softmax_in_place(&mut scores);
        window.into_iter().zip(scores).collect()
    }

    fn query_vector(&self, sequence: &[ItemId]) -> Vec<f32> {
        let window = fixed_window(sequence, self.config.seq_len);
        let mut g = Graph::new();
        let q = Self::query_node(&self.params, &mut g, &self.ids, &self.config, &window);
        g.value(q).row(0).to_vec()
    }
}

/// Builds the additive causal mask: 0 on and below the diagonal, a large
/// negative value above it, so position `t` only attends to positions `<= t`.
fn causal_mask(len: usize) -> Matrix {
    let mut mask = Matrix::zeros(len, len);
    for r in 0..len {
        for c in (r + 1)..len {
            mask.set(r, c, -1e9);
        }
    }
    mask
}

impl SequentialRecommender for SasRec {
    fn name(&self) -> &'static str {
        "SASRec"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score_all(&self, _user: usize, sequence: &[ItemId]) -> Vec<f32> {
        let q = self.query_vector(sequence);
        self.params.value(self.ids.items).matvec_transposed(&q)
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> ham_tensor::Matrix {
        let e = self.params.value(self.ids.items);
        crate::common::batched_query_scores(users, sequences, e.cols(), e, |_, s| self.query_vector(s))
    }

    fn linear_head(&self) -> Option<ham_core::LinearHead<'_>> {
        Some(ham_core::LinearHead::new(self.params.value(self.ids.items), move |_u, s| self.query_vector(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_data::synthetic::DatasetProfile;

    fn small_model() -> (SasRec, Vec<Vec<usize>>) {
        let data = DatasetProfile::tiny("sasrec-test").generate(8);
        let cfg = SasRecConfig { d: 8, seq_len: 5, targets: 2 };
        let tc = BaselineTrainConfig { epochs: 1, batch_size: 64, ..Default::default() };
        (SasRec::fit(&data.sequences, data.num_items, &cfg, &tc, 13), data.sequences.clone())
    }

    #[test]
    fn causal_mask_blocks_future_positions() {
        let mask = causal_mask(3);
        assert_eq!(mask.get(0, 0), 0.0);
        assert_eq!(mask.get(2, 1), 0.0);
        assert!(mask.get(0, 2) < -1e8);
        assert!(mask.get(1, 2) < -1e8);
    }

    #[test]
    fn scores_cover_the_catalogue_and_are_finite() {
        let (model, seqs) = small_model();
        let scores = model.score_all(0, &seqs[0]);
        assert_eq!(scores.len(), model.num_items());
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(model.name(), "SASRec");
        assert_eq!(model.config().seq_len, 5);
    }

    #[test]
    fn attention_weights_form_a_distribution() {
        let (model, seqs) = small_model();
        let weights = model.attention_weights(&seqs[0]);
        assert_eq!(weights.len(), 5);
        let sum: f32 = weights.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-4, "attention weights should sum to 1, got {sum}");
        assert!(weights.iter().all(|(_, w)| *w >= 0.0));
    }

    #[test]
    fn scores_depend_on_the_history() {
        let (model, _) = small_model();
        let a = model.score_all(0, &[1, 2, 3, 4, 5]);
        let b = model.score_all(0, &[6, 7, 8, 9, 10]);
        assert_ne!(a, b);
    }

    #[test]
    fn scores_are_user_independent_given_the_same_history() {
        // SASRec has no explicit user embedding; identity comes from history.
        let (model, _) = small_model();
        let a = model.score_all(0, &[1, 2, 3, 4, 5]);
        let b = model.score_all(3, &[1, 2, 3, 4, 5]);
        assert_eq!(a, b);
    }
}
