//! The IVF retrieval tier's exactness and determinism contracts:
//!
//! * **`nprobe = all` is exact** — visiting every cluster must return
//!   **bit-identical** results (ids, order *and* score bits) to the
//!   unclustered serving path, for randomized catalogues, queries, masks,
//!   shard counts and cluster counts, with and without int8 quantization.
//!   The cluster index only *regroups* catalogue rows: the per-row GEMV is
//!   position-independent and the panel GEMM accumulates each output element
//!   in the same ascending-k order, so grouping must never change a bit.
//! * **Approximate serving is deterministic** — batch and solo requests
//!   visit the same clusters (routing is always a per-request centroid
//!   GEMV) and return the same bits at any `nprobe`; rebuilding the index
//!   from the same rows and seed reproduces it exactly.
//! * **Degenerate shapes hold** — more clusters than rows, more shards than
//!   rows, k past the catalogue, fully-masked catalogues.
//! * **The serving stack carries it** — responses report `clusters_probed`,
//!   and the deadline-bounded path serves clustered models bit-identical to
//!   the classic path (or explicitly degraded under injected faults).

use ham_faults::FaultInjector;
use ham_serve::{
    IvfConfig, ModelRegistry, RecServer, RecommendRequest, ScoredItem, ServerConfig, ServingModel, ShardedCatalog,
    PROBE_ALL,
};
use ham_telemetry::Telemetry;
use ham_tensor::{Matrix, QuantizedQuery};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A deterministic pseudo-random catalogue matrix.
fn catalogue(n: usize, d: usize, seed: usize) -> Matrix {
    Matrix::from_vec(n, d, (0..n * d).map(|i| (((i * 131 + seed * 17) % 977) as f32 / 488.5 - 1.0) * 2.5).collect())
}

fn query(d: usize, seed: usize) -> Vec<f32> {
    (0..d).map(|k| (((k * 37 + seed) % 53) as f32 / 26.5 - 1.0) * 1.5).collect()
}

fn bits(items: &[ScoredItem]) -> Vec<(usize, u32)> {
    items.iter().map(|s| (s.item, s.score.to_bits())).collect()
}

fn probe_all(clusters: usize, iters: usize, seed: u64) -> IvfConfig {
    IvfConfig { clusters, nprobe: PROBE_ALL, iters, seed }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: `nprobe = all` serves **bit-identical**
    /// results to the unclustered exact path — ids, order and score bits —
    /// for randomized catalogues, queries, masks, shard counts and cluster
    /// counts, on both the f32 and the int8-preselect serving paths.
    #[test]
    fn nprobe_all_is_bit_identical_to_exact(
        n in 10usize..60,
        d in 2usize..16,
        shards in 1usize..9,
        clusters in 0usize..9, // 0 = auto (⌈√rows⌉ per shard)
        k in 1usize..12,
        seed in 0usize..1000,
        mask in 0usize..2,
    ) {
        let w = catalogue(n, d, seed);
        let q = query(d, seed);
        let seen: Option<Vec<bool>> = (mask == 1).then(|| (0..n).map(|i| (i * 7 + seed) % 3 == 0).collect());
        let seen_bits = seen.as_deref();
        let config = probe_all(clusters, 4, seed as u64);

        let exact = ShardedCatalog::from_matrix(&w, shards);
        let clustered = ShardedCatalog::from_matrix(&w, shards).with_cluster_index(&config);
        prop_assert!(clustered.is_clustered());
        let want = exact.top_k(&q, k, seen_bits);
        let got = clustered.top_k(&q, k, seen_bits);
        prop_assert_eq!(bits(&got), bits(&want), "f32: n={} shards={} clusters={} k={}", n, shards, clusters, k);

        // Quantization composes in either construction order; both must
        // reproduce the exact quantized path bit-for-bit.
        let exact_q = ShardedCatalog::from_matrix(&w, shards).with_quantization();
        let want_q = exact_q.quantized_top_k_with_buf(&q, k, seen_bits, &mut Vec::new(), &mut QuantizedQuery::quantize(&[]));
        for quantized in [
            ShardedCatalog::from_matrix(&w, shards).with_quantization().with_cluster_index(&config),
            ShardedCatalog::from_matrix(&w, shards).with_cluster_index(&config).with_quantization(),
        ] {
            let got_q = quantized.quantized_top_k_with_buf(&q, k, seen_bits, &mut Vec::new(), &mut QuantizedQuery::quantize(&[]));
            prop_assert_eq!(bits(&got_q), bits(&want_q), "int8: n={} shards={} clusters={} k={}", n, shards, clusters, k);
        }
    }

    /// Approximate serving is still deterministic: at any `nprobe`, the
    /// batched GEMM path must return the same bits as the solo GEMV path —
    /// routing is a per-request centroid GEMV either way, so riding in a
    /// batch never changes which clusters a request visits or what it
    /// returns.
    #[test]
    fn batch_path_matches_solo_at_any_nprobe(
        n in 12usize..50,
        shards in 1usize..5,
        nprobe in 1usize..6,
        k in 1usize..9,
        seed in 0usize..500,
        quantize in 0usize..2,
    ) {
        let d = 8usize;
        let w = catalogue(n, d, seed);
        let config = IvfConfig { clusters: 0, nprobe, iters: 4, seed: 0xA5 };
        let queries: Vec<Vec<f32>> = (0..6).map(|u| query(d, seed + u * 97)).collect();
        let shared = Arc::new(queries);
        let lookup = Arc::clone(&shared);
        let mut model = ServingModel::from_catalog(
            "ivf-batch",
            ShardedCatalog::from_matrix(&w, shards).with_cluster_index(&config),
            move |user, _| lookup[user].clone(),
        );
        if quantize == 1 {
            model = model.with_quantized_catalog();
        }
        let requests: Vec<RecommendRequest> =
            (0..shared.len()).map(|u| RecommendRequest::new(u, vec![(u * 5) % n, (u * 11) % n], k)).collect();
        let batched = model.recommend_batch(&requests, None);
        for (i, request) in requests.iter().enumerate() {
            let solo = model.recommend(request);
            prop_assert_eq!(
                bits(&batched[i]), bits(&solo),
                "n={} shards={} nprobe={} k={} user={} quantize={}", n, shards, nprobe, k, i, quantize
            );
        }
    }

    /// Degenerate shapes: more clusters than rows, more shards than rows, k
    /// past the catalogue and fully-masked catalogues — `nprobe = all` stays
    /// bit-identical to exact, and a narrow `nprobe = 1` still returns a
    /// well-formed ranking (right length, non-increasing, no duplicates).
    #[test]
    fn degenerate_shapes_hold(n in 1usize..6, shards in 1usize..9, seed in 0usize..100) {
        let d = 4usize;
        let w = catalogue(n, d, seed);
        let q = query(d, seed);
        let all_seen = vec![true; n];
        // clusters: 50 asks for far more clusters than rows (clamped to n)
        let config = probe_all(50, 4, 7);
        let clustered = ShardedCatalog::from_matrix(&w, shards).with_cluster_index(&config);
        let exact = ShardedCatalog::from_matrix(&w, shards);
        for (k, seen) in [(n + 3, None), (1, Some(all_seen.as_slice())), (n, None)] {
            let want = exact.top_k(&q, k, seen);
            let got = clustered.top_k(&q, k, seen);
            prop_assert_eq!(bits(&got), bits(&want), "n={} shards={} k={}", n, shards, k);
        }
        let narrow = clustered.clone().with_nprobe(1);
        for (k, seen) in [(n + 3, None), (1, Some(all_seen.as_slice())), (n, None)] {
            let got = narrow.top_k(&q, k, seen);
            // A single probed cluster may hold fewer rows than k, so the
            // approximate ranking can be shorter than the exact one — but
            // never longer, and always well-formed.
            prop_assert!(got.len() <= exact.top_k(&q, k, seen).len(), "nprobe=1 never over-fills the response");
            for pair in got.windows(2) {
                prop_assert!(
                    pair[1].score.partial_cmp(&pair[0].score) != Some(std::cmp::Ordering::Greater),
                    "nprobe=1 ranking stays sorted"
                );
            }
            let mut ids: Vec<usize> = got.iter().map(|s| s.item).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), got.len(), "nprobe=1 ranking has no duplicate items");
        }
    }
}

/// Rebuilding the index from the same rows and config reproduces the same
/// served bits — k-means is seeded and single-threaded per shard, so a
/// publish-time rebuild is replayable. Also pinned across spawned threads:
/// the build must not depend on the calling thread's identity or count.
#[test]
fn index_rebuild_is_deterministic_across_threads() {
    let w = catalogue(40, 8, 3);
    let config = IvfConfig { clusters: 5, nprobe: 2, iters: 6, seed: 0xBEEF };
    let build = move || ShardedCatalog::from_matrix(&catalogue(40, 8, 3), 3).with_cluster_index(&config);
    let reference = build();
    let q = query(8, 9);
    let want = bits(&reference.top_k(&q, 7, None));
    let again = build();
    assert_eq!(bits(&again.top_k(&q, 7, None)), want, "same rows + config must rebuild the same index");
    let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(build)).collect();
    for handle in handles {
        let built = handle.join().expect("builder thread panicked");
        assert_eq!(bits(&built.top_k(&q, 7, None)), want, "index build must be thread-count invariant");
    }
    assert_eq!(w.rows(), 40);
}

/// `clusters_probed` flows through the server: clustered models report the
/// per-model constant `min(nprobe, clusters)` summed across shards, exact
/// models report 0.
#[test]
fn clusters_probed_metadata_flows_through_responses() {
    let w = catalogue(48, 6, 11);
    let queries: Vec<Vec<f32>> = (0..8).map(|u| query(6, u * 31)).collect();
    let shared = Arc::new(queries);
    let make = |catalog: ShardedCatalog| {
        let lookup = Arc::clone(&shared);
        ServingModel::from_catalog("probe-meta", catalog, move |user, _| lookup[user].clone())
    };
    let exact = make(ShardedCatalog::from_matrix(&w, 3));
    let config = IvfConfig { clusters: 4, nprobe: 2, iters: 4, seed: 1 };
    let clustered = make(ShardedCatalog::from_matrix(&w, 3).with_cluster_index(&config));
    assert_eq!(exact.clusters_probed(), 0, "exact serving probes no clusters");
    let expected = clustered.clusters_probed();
    assert!(expected > 0, "clustered serving reports its probe width");

    for (model, want) in [(exact, 0usize), (clustered, expected)] {
        let server = RecServer::start(Arc::new(ModelRegistry::new(model)), ServerConfig::default());
        let response = server.submit(RecommendRequest::new(2, vec![1, 5], 6)).expect("admitted");
        assert_eq!(response.clusters_probed, want);
        server.shutdown();
    }
}

/// The deadline-bounded path serves clustered models bit-identical to the
/// classic path when every shard answers — the in-task route+rank must
/// reproduce the dispatcher-side bits — and an injected shard panic is
/// flagged degraded, never silently partial.
#[test]
fn bounded_path_serves_clustered_models_exactly_or_flagged() {
    let w = catalogue(48, 6, 23);
    let config = IvfConfig { clusters: 4, nprobe: 2, iters: 4, seed: 2 };
    let make = |quantize: bool| {
        let catalog = ShardedCatalog::from_matrix(&w, 3).with_cluster_index(&config);
        let model = ServingModel::from_catalog("ivf-bounded", catalog, |user, history| {
            vec![1.0, user as f32 * 0.1, history.len() as f32 * 0.05, (user % 7) as f32 * -0.2, 0.3, -0.4]
        });
        if quantize {
            model.with_quantized_catalog()
        } else {
            model
        }
    };
    // Vacuous fault spec arms the bounded path without touching any shard.
    for quantize in [false, true] {
        let faults = FaultInjector::parse("seed=5;shard_slow=99:1ms").expect("valid fault spec");
        let registry = Arc::new(ModelRegistry::new(make(quantize)));
        let server_config = ServerConfig { coalesce_wait: Duration::ZERO, ..ServerConfig::default() };
        let server = RecServer::start_instrumented(Arc::clone(&registry), server_config, Telemetry::disabled(), faults);
        for user in 0..12 {
            let request = RecommendRequest::new(user, vec![user % 48, (user + 7) % 48], 6);
            let exact = registry.current().model.recommend(&request);
            let response = server.submit(request).expect("admitted");
            assert!(!response.degraded);
            assert_eq!(bits(&response.items), bits(&exact), "bounded clustered path, user {user}");
            assert!(response.clusters_probed > 0);
        }
        server.shutdown();
    }
    // A panicking shard under the clustered path still degrades loudly.
    let faults = FaultInjector::parse("seed=3;shard_panic=1").expect("valid fault spec");
    let registry = Arc::new(ModelRegistry::new(make(false)));
    let server_config = ServerConfig { coalesce_wait: Duration::ZERO, ..ServerConfig::default() };
    let server = RecServer::start_instrumented(Arc::clone(&registry), server_config, Telemetry::disabled(), faults);
    let response = server.submit(RecommendRequest::new(1, vec![2, 4], 5)).expect("admitted");
    assert!(response.degraded, "a panicking shard must flag the clustered response");
    assert_eq!(response.shards_answered, 2);
    assert!(!response.items.is_empty(), "surviving shards still answer");
}
