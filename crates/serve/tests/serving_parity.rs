//! End-to-end parity of the serving subsystem with the single-node paths:
//! for **every HAM variant and every baseline**, the sharded GEMV serving
//! path must return bit-identical item ids (stable tie-break) to the
//! single-node `recommend_top_k` ranking, for shard counts 1..8; and the
//! coalesced GEMM batch path must be bit-identical to the equivalent
//! unsharded GEMM ranking.

use ham_baselines::{
    BaselineTrainConfig, BprMf, BprMfConfig, Caser, CaserConfig, Gru4Rec, Gru4RecConfig, Hgn, HgnConfig, PopRec,
    SasRec, SasRecConfig, SequentialRecommender,
};
use ham_core::{HamConfig, HamModel, HamVariant, Scorer};
use ham_serve::{RecommendRequest, ServingModel};
use ham_tensor::ops::top_k_indices_masked;
use std::sync::Arc;

const NUM_USERS: usize = 6;
const NUM_ITEMS: usize = 35;
const K: usize = 10;

fn histories() -> Vec<Vec<usize>> {
    (0..NUM_USERS).map(|u| (0..8 + u).map(|t| (u * 11 + t * 5) % NUM_ITEMS).collect()).collect()
}

/// The single-node reference ranking: score everything, mask the history
/// through the fused bitmap path, rank.
fn single_node_top_k(scores: &[f32], history: &[usize], k: usize) -> Vec<usize> {
    let mut seen = vec![false; scores.len()];
    for &item in history {
        if item < seen.len() {
            seen[item] = true;
        }
    }
    top_k_indices_masked(scores, k, &seen)
}

/// Asserts GEMV-path serving parity for one model across shard counts 1..8,
/// and GEMM batch parity against the unsharded GEMM reference.
fn assert_parity<S, F>(label: &str, model: Arc<S>, head_fn: F, score_all: impl Fn(usize, &[usize]) -> Vec<f32>)
where
    S: Send + Sync + 'static,
    F: for<'m> Fn(&'m S) -> Option<ham_core::LinearHead<'m>> + Send + Sync + Clone + 'static,
{
    let histories = histories();
    let requests: Vec<RecommendRequest> =
        (0..NUM_USERS).map(|u| RecommendRequest::new(u, histories[u].clone(), K)).collect();

    for shards in 1..=8 {
        let serving = ServingModel::from_head_fn(label, Arc::clone(&model), shards, head_fn.clone())
            .unwrap_or_else(|| panic!("{label} must expose a linear head"));

        // GEMV path: bit-identical to the single-node ranking.
        for request in &requests {
            let served: Vec<usize> = serving.recommend(request).iter().map(|s| s.item).collect();
            let reference = single_node_top_k(&score_all(request.user, &request.history), &request.history, K);
            assert_eq!(served, reference, "{label}: GEMV parity, shards = {shards}, user = {}", request.user);
        }

        // GEMM batch path: bit-identical to the unsharded GEMM ranking.
        let head = head_fn(&model).unwrap();
        let history_refs: Vec<&[usize]> = histories.iter().map(|h| h.as_slice()).collect();
        let users: Vec<usize> = (0..NUM_USERS).collect();
        let full = head.batch_queries(&users, &history_refs).matmul_transposed(head.candidates());
        let batched = serving.recommend_batch(&requests, None);
        for (i, request) in requests.iter().enumerate() {
            let got: Vec<usize> = batched[i].iter().map(|s| s.item).collect();
            let want = single_node_top_k(full.row(i), &request.history, K);
            assert_eq!(got, want, "{label}: GEMM parity, shards = {shards}, user = {}", request.user);
        }
    }
}

fn quick_train_config() -> BaselineTrainConfig {
    BaselineTrainConfig { epochs: 1, batch_size: 32, ..Default::default() }
}

#[test]
fn every_ham_variant_serves_identically_to_recommend_top_k() {
    for variant in [
        HamVariant::HamX,
        HamVariant::HamM,
        HamVariant::HamSX,
        HamVariant::HamSM,
        HamVariant::HamSMNoLowOrder,
        HamVariant::HamSMNoUser,
    ] {
        let base = HamConfig::for_variant(variant);
        let p = if base.uses_synergies() { 2 } else { 1 };
        let config = base.with_dimensions(12, 4, base.n_l.min(2), 2, p);
        let model = Arc::new(HamModel::new(NUM_USERS, NUM_ITEMS, config, 17));

        // recommend_top_k itself is the reference here, double-checking that
        // the generic single-node helper matches the model's own API.
        let histories = histories();
        let serving = ServingModel::from_scorer(variant.name(), Arc::clone(&model), 5).expect("HAM has a linear head");
        for (u, history) in histories.iter().enumerate() {
            let served: Vec<usize> =
                serving.recommend(&RecommendRequest::new(u, history.clone(), K)).iter().map(|s| s.item).collect();
            assert_eq!(served, model.recommend_top_k(u, history, K, true), "{}: user {u}", variant.name());
        }

        let m = Arc::clone(&model);
        assert_parity(variant.name(), Arc::clone(&model), |s| s.linear_head(), move |u, h| m.score_all(u, h));
    }
}

#[test]
fn poprec_and_bprmf_serve_identically() {
    let histories = histories();
    let pop = Arc::new(PopRec::fit(&histories, NUM_ITEMS));
    let p = Arc::clone(&pop);
    assert_parity("PopRec", pop, SequentialRecommender::linear_head, move |u, h| p.score_all(u, h));

    let mf = Arc::new(BprMf::fit(
        &histories,
        NUM_ITEMS,
        &BprMfConfig { d: 8, ..Default::default() },
        &quick_train_config(),
        3,
    ));
    let m = Arc::clone(&mf);
    assert_parity("BPR-MF", mf, SequentialRecommender::linear_head, move |u, h| m.score_all(u, h));
}

#[test]
fn deep_baselines_serve_identically() {
    let histories = histories();
    let caser = Arc::new(Caser::fit(
        &histories,
        NUM_ITEMS,
        &CaserConfig { d: 8, seq_len: 4, targets: 2, ..Default::default() },
        &quick_train_config(),
        5,
    ));
    let c = Arc::clone(&caser);
    assert_parity("Caser", caser, SequentialRecommender::linear_head, move |u, h| c.score_all(u, h));

    let sasrec = Arc::new(SasRec::fit(
        &histories,
        NUM_ITEMS,
        &SasRecConfig { d: 8, seq_len: 4, targets: 2 },
        &quick_train_config(),
        7,
    ));
    let s = Arc::clone(&sasrec);
    assert_parity("SASRec", sasrec, SequentialRecommender::linear_head, move |u, h| s.score_all(u, h));

    let gru = Arc::new(Gru4Rec::fit(
        &histories,
        NUM_ITEMS,
        &Gru4RecConfig { d: 8, seq_len: 4, targets: 2 },
        &quick_train_config(),
        9,
    ));
    let g = Arc::clone(&gru);
    assert_parity("GRU4Rec", gru, SequentialRecommender::linear_head, move |u, h| g.score_all(u, h));

    let hgn = Arc::new(Hgn::fit(
        &histories,
        NUM_ITEMS,
        &HgnConfig { d: 8, seq_len: 4, targets: 2 },
        &quick_train_config(),
        11,
    ));
    let h = Arc::clone(&hgn);
    assert_parity("HGN", hgn, SequentialRecommender::linear_head, move |u, h2| h.score_all(u, h2));
}
