//! Chaos suite of the serving layer: deterministic fault injection against
//! the deadline-bounded degradation path.
//!
//! The contract under test: **under any injected single-shard fault, a
//! response is either bit-identical to the exact (fault-free) path or
//! explicitly flagged degraded** — never a silently wrong or silently
//! partial answer.

use ham_faults::FaultInjector;
use ham_serve::{ModelRegistry, RecServer, RecommendRequest, ServerConfig, ServingModel};
use ham_telemetry::Telemetry;
use ham_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NUM_ITEMS: usize = 48;
const NUM_SHARDS: usize = 3;

/// A deterministic serving model with non-trivial, user-dependent scores.
fn model() -> ServingModel {
    let w = Matrix::from_vec(
        NUM_ITEMS,
        4,
        (0..NUM_ITEMS * 4).map(|i| ((i * 37 + 11) % 101) as f32 * 0.013 - 0.5).collect(),
    );
    ServingModel::from_parts("chaos", &w, NUM_SHARDS, |user, history| {
        vec![1.0, user as f32 * 0.1, history.len() as f32 * 0.05, (user % 7) as f32 * -0.2]
    })
}

fn chaos_server(spec: &str, config: ServerConfig) -> (Arc<ModelRegistry>, RecServer) {
    let faults = FaultInjector::parse(spec).expect("valid fault spec");
    let registry = Arc::new(ModelRegistry::new(model()));
    let server = RecServer::start_instrumented(Arc::clone(&registry), config, Telemetry::disabled(), faults);
    (registry, server)
}

fn items_and_bits(items: &[ham_serve::ScoredItem]) -> Vec<(usize, u32)> {
    items.iter().map(|s| (s.item, s.score.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single-shard fault — a panic, a delay longer than the deadline,
    /// or a harmless microscopic delay — yields a response that is either
    /// bit-identical to the exact path or flagged degraded.
    #[test]
    fn single_shard_fault_yields_exact_or_flagged_degraded(
        shard in 0usize..NUM_SHARDS,
        kind in 0usize..3,
        user in 0usize..20,
        k in 1usize..9,
    ) {
        let spec = match kind {
            0 => format!("seed=11;shard_panic={shard}"),
            1 => format!("seed=11;shard_slow={shard}:300ms"),
            _ => format!("seed=11;shard_slow={shard}:0ms"), // benign: must stay exact
        };
        let config = ServerConfig {
            default_deadline: Some(Duration::from_millis(30)),
            coalesce_wait: Duration::ZERO,
            ..ServerConfig::default()
        };
        let (registry, server) = chaos_server(&spec, config);
        let request = RecommendRequest::new(user, vec![user % NUM_ITEMS, (user + 5) % NUM_ITEMS], k);
        let exact = registry.current().model.recommend(&request);
        let response = server.submit(request).expect("admitted under an idle queue");
        if response.degraded {
            prop_assert!(response.shards_answered < NUM_SHARDS, "degraded implies a missing shard");
        } else {
            prop_assert_eq!(response.shards_answered, NUM_SHARDS);
            prop_assert_eq!(
                items_and_bits(&response.items),
                items_and_bits(&exact),
                "un-degraded responses must be bit-identical to the exact path"
            );
        }
        // A zero-length injected delay must never degrade.
        if kind == 2 {
            prop_assert!(!response.degraded, "a 0ms injected delay fits any budget");
        }
    }
}

/// An always-panicking shard is dropped deterministically: every submission
/// merges the same surviving shards and returns the same bits, flagged.
#[test]
fn injected_panic_shard_degrades_deterministically() {
    let config = ServerConfig { coalesce_wait: Duration::ZERO, ..ServerConfig::default() };
    let (_registry, server) = chaos_server("seed=3;shard_panic=1", config);
    let mut previous: Option<Vec<(usize, u32)>> = None;
    for _ in 0..4 {
        let response = server.submit(RecommendRequest::new(7, vec![1, 2, 3], 6)).expect("admitted");
        assert!(response.degraded, "a panicking shard must flag the response");
        assert_eq!(response.shards_answered, NUM_SHARDS - 1);
        assert!(!response.items.is_empty(), "surviving shards still answer");
        let bits = items_and_bits(&response.items);
        if let Some(previous) = &previous {
            assert_eq!(previous, &bits, "surviving-shard merge is deterministic across submissions");
        }
        previous = Some(bits);
    }
    let stats = server.stats();
    assert_eq!(stats.degraded, 4);
    assert_eq!(stats.shard_panics, 4);
    assert_eq!(stats.shard_deadline_misses, 0);
}

/// With the injector armed but no rule matching any real shard, the bounded
/// path serves every request bit-identical to the exact path — the
/// degradation machinery itself costs no fidelity.
#[test]
fn vacuous_fault_spec_keeps_bounded_path_bit_identical() {
    let config = ServerConfig { coalesce_wait: Duration::ZERO, ..ServerConfig::default() };
    let (registry, server) = chaos_server("seed=5;shard_slow=99:1ms", config);
    for user in 0..16 {
        let request = RecommendRequest::new(user, vec![user % NUM_ITEMS], 7);
        let exact = registry.current().model.recommend(&request);
        let response = server.submit(request).expect("admitted");
        assert!(!response.degraded);
        assert_eq!(response.shards_answered, NUM_SHARDS);
        assert_eq!(items_and_bits(&response.items), items_and_bits(&exact), "user {user}");
    }
    assert_eq!(server.stats().degraded, 0);
}

/// Same, through the quantized pre-selection + exact re-rank path.
#[test]
fn vacuous_fault_spec_keeps_quantized_bounded_path_bit_identical() {
    let faults = FaultInjector::parse("seed=5;shard_slow=99:1ms").expect("valid fault spec");
    let registry = Arc::new(ModelRegistry::new(model().with_quantized_catalog()));
    let config = ServerConfig { coalesce_wait: Duration::ZERO, ..ServerConfig::default() };
    let server = RecServer::start_instrumented(Arc::clone(&registry), config, Telemetry::disabled(), faults);
    for user in 0..16 {
        let request = RecommendRequest::new(user, vec![(user * 3) % NUM_ITEMS], 5);
        let exact = registry.current().model.recommend(&request);
        let response = server.submit(request).expect("admitted");
        assert!(!response.degraded);
        assert_eq!(items_and_bits(&response.items), items_and_bits(&exact), "user {user}");
    }
}

/// A shard slowed past the deadline budget is dropped and the response
/// arrives within (a small multiple of) the deadline instead of waiting out
/// the full injected delay.
#[test]
fn slow_shard_is_dropped_within_the_deadline_budget() {
    let config = ServerConfig {
        default_deadline: Some(Duration::from_millis(25)),
        coalesce_wait: Duration::ZERO,
        ..ServerConfig::default()
    };
    let (_registry, server) = chaos_server("seed=9;shard_slow=0:2s", config);
    let started = Instant::now();
    let response = server.submit(RecommendRequest::new(3, vec![1], 5)).expect("admitted");
    let elapsed = started.elapsed();
    assert!(response.degraded, "the 2s shard cannot fit a 25ms deadline");
    assert_eq!(response.shards_answered, NUM_SHARDS - 1);
    assert!(
        elapsed < Duration::from_millis(500),
        "response must arrive near the deadline, not after the 2s injected delay (took {elapsed:?})"
    );
    let stats = server.stats();
    assert_eq!(stats.shard_deadline_misses, 1);
}

/// Rollback under live traffic: a bad publish is undone with
/// `rollback_to`, and the very next responses serve the archived snapshot's
/// bits under a new version.
#[test]
fn rollback_under_traffic_restores_archived_scores() {
    let registry = Arc::new(ModelRegistry::new(model()));
    let server = RecServer::start(Arc::clone(&registry), ServerConfig::default());
    let request = RecommendRequest::new(2, vec![4], 6);
    let v1_bits = items_and_bits(&server.submit(request.clone()).expect("admitted").items);

    // Publish a "bad" model: every score negated, rankings reversed.
    let w = Matrix::from_vec(NUM_ITEMS, 1, (0..NUM_ITEMS).map(|i| -(i as f32)).collect());
    registry.publish(ServingModel::from_parts("bad", &w, NUM_SHARDS, |_, _| vec![1.0]));
    let bad = server.submit(request.clone()).expect("admitted");
    assert_eq!(bad.model_version, 2);
    assert_ne!(items_and_bits(&bad.items), v1_bits, "the bad model answers differently");

    let restored_version = registry.rollback_to(1).expect("version 1 is archived");
    assert_eq!(restored_version, 3, "rollback republishes under a fresh version");
    let after = server.submit(request).expect("admitted");
    assert_eq!(after.model_version, 3);
    assert_eq!(items_and_bits(&after.items), v1_bits, "rollback restores the archived snapshot's exact bits");
}
