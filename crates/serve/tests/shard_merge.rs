//! Shard-merge edge cases and the sharded == unsharded pinning property.
//!
//! The serving layer's exactness claim — sharded top-k returns bit-identical
//! item ids (stable tie-break) to the single-node ranking for every shard
//! count — is pinned here on deliberately nasty inputs: k larger than a
//! shard, k larger than the catalogue, empty shards, score ties straddling
//! shard boundaries (including ties exactly at the k-th position), and
//! masks that leave fewer than k items unseen.

use ham_serve::{merge_top_k, ScoredItem, ShardedCatalog};
use ham_tensor::ops::{top_k_indices, top_k_indices_masked};
use ham_tensor::Matrix;
use proptest::prelude::*;

/// A catalogue with many duplicate embedding rows, so scores tie heavily and
/// the lower-index tie-break actually decides the ranking.
fn tied_catalogue(n: usize, d: usize) -> Matrix {
    Matrix::from_vec(n, d, (0..n * d).map(|i| ((i / d) % 5) as f32).collect())
}

fn reference(w: &Matrix, q: &[f32], k: usize, seen: Option<&[bool]>) -> Vec<usize> {
    let scores = w.matvec_transposed(q);
    match seen {
        Some(bits) => top_k_indices_masked(&scores, k, bits),
        None => top_k_indices(&scores, k),
    }
}

fn served(w: &Matrix, shards: usize, q: &[f32], k: usize, seen: Option<&[bool]>) -> Vec<usize> {
    ShardedCatalog::from_matrix(w, shards).top_k(q, k, seen).iter().map(|s| s.item).collect()
}

#[test]
fn k_larger_than_every_shard_still_merges_exactly() {
    let w = tied_catalogue(12, 3);
    let q = vec![1.0, 0.5, 0.25];
    // 6 shards of 2 items each, k = 9 > shard size.
    assert_eq!(served(&w, 6, &q, 9, None), reference(&w, &q, 9, None));
}

#[test]
fn k_larger_than_the_catalogue_returns_everything_in_order() {
    let w = tied_catalogue(7, 2);
    let q = vec![1.0, -1.0];
    for shards in 1..=8 {
        assert_eq!(served(&w, shards, &q, 50, None), reference(&w, &q, 50, None), "shards = {shards}");
    }
}

#[test]
fn empty_shards_contribute_nothing() {
    let w = tied_catalogue(3, 2);
    let q = vec![0.5, 0.5];
    // 8 shards over 3 items: five shards are empty.
    let cat = ShardedCatalog::from_matrix(&w, 8);
    assert_eq!(cat.num_shards(), 8);
    let ids: Vec<usize> = cat.top_k(&q, 3, None).iter().map(|s| s.item).collect();
    assert_eq!(ids, reference(&w, &q, 3, None));
}

#[test]
fn ties_at_the_kth_score_break_by_lower_global_id_across_shards() {
    // All rows identical: every item ties. The exact top-k must be the first
    // k item ids, regardless of how the catalogue is sharded.
    let w = Matrix::from_vec(20, 4, vec![1.0; 80]);
    let q = vec![0.25; 4];
    for shards in 1..=8 {
        assert_eq!(served(&w, shards, &q, 5, None), vec![0, 1, 2, 3, 4], "shards = {shards}");
    }
}

#[test]
fn mask_leaving_fewer_than_k_unseen_pads_identically() {
    let w = tied_catalogue(10, 2);
    let q = vec![1.0, 1.0];
    // Mask all but items 3 and 8; ask for 6.
    let seen: Vec<bool> = (0..10).map(|i| i != 3 && i != 8).collect();
    for shards in [1, 2, 3, 5, 10] {
        assert_eq!(served(&w, shards, &q, 6, Some(&seen)), reference(&w, &q, 6, Some(&seen)), "shards = {shards}");
    }
}

#[test]
fn fully_masked_catalogue_matches_single_node_padding() {
    let w = tied_catalogue(9, 2);
    let q = vec![2.0, 0.0];
    let seen = vec![true; 9];
    for shards in [1, 4, 9] {
        assert_eq!(served(&w, shards, &q, 4, Some(&seen)), reference(&w, &q, 4, Some(&seen)), "shards = {shards}");
    }
}

#[test]
fn merge_handles_all_empty_lists() {
    assert!(merge_top_k(&[vec![], vec![], vec![]], 5).is_empty());
}

#[test]
fn merge_keeps_scores_attached_to_the_right_items() {
    let lists = vec![
        vec![ScoredItem { item: 4, score: 9.0 }, ScoredItem { item: 5, score: 1.0 }],
        vec![ScoredItem { item: 0, score: 5.0 }],
    ];
    let merged = merge_top_k(&lists, 3);
    assert_eq!(merged.len(), 3);
    assert_eq!((merged[0].item, merged[0].score), (4, 9.0));
    assert_eq!((merged[1].item, merged[1].score), (0, 5.0));
    assert_eq!((merged[2].item, merged[2].score), (5, 1.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded top-k is pinned identical to the unsharded ranking for every
    /// shard count 1..8, on random tie-heavy catalogues, random queries,
    /// random k and random seen-masks.
    #[test]
    fn sharded_equals_unsharded_for_all_shard_counts(
        n in 1usize..40,
        quantised in proptest::collection::vec(0usize..4, 3..6),
        k in 1usize..20,
        mask_stride in 0usize..5,
    ) {
        // Quantised embeddings produce many exact score ties.
        let d = quantised.len();
        let w = Matrix::from_vec(n, d, (0..n * d).map(|i| ((i * 7 + i / d) % 4) as f32 - 1.0).collect());
        let q: Vec<f32> = quantised.iter().map(|&v| v as f32 * 0.5 - 0.75).collect();
        let seen: Option<Vec<bool>> =
            (mask_stride > 0).then(|| (0..n).map(|i| i % (mask_stride + 1) == 0).collect());
        let want = reference(&w, &q, k, seen.as_deref());
        for shards in 1..=8usize {
            let got = served(&w, shards, &q, k, seen.as_deref());
            prop_assert_eq!(&got, &want, "n = {}, shards = {}, k = {}", n, shards, k);
        }
    }
}
