//! The quantized-serving recall guardrail: the int8 pre-selection + exact
//! re-rank path must return **bit-identical** results — ids, order *and*
//! scores — to the exact f32 serving path, for every HAM variant, every
//! baseline, shard counts 1..8, and randomized catalogues/queries/masks.
//!
//! This pins the quantized path as a pure performance trade: the quantized
//! panels pre-select the top-`2k` candidates at ¼ of the memory traffic, the
//! exact f32 per-row kernel re-ranks them, and as long as every exact winner
//! survives the 2k pre-selection (the guardrail measured here), what is
//! served is exactly what the f32 path would have served.

use ham_baselines::{
    BaselineTrainConfig, BprMf, BprMfConfig, Caser, CaserConfig, Gru4Rec, Gru4RecConfig, Hgn, HgnConfig, PopRec,
    SasRec, SasRecConfig, SequentialRecommender,
};
use ham_core::{HamConfig, HamModel, HamVariant, Scorer};
use ham_serve::{merge_top_k, RecommendRequest, ScoredItem, ServingModel, ShardedCatalog};
use ham_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

const NUM_USERS: usize = 6;
const NUM_ITEMS: usize = 35;
const K: usize = 10;

fn histories() -> Vec<Vec<usize>> {
    (0..NUM_USERS).map(|u| (0..8 + u).map(|t| (u * 11 + t * 5) % NUM_ITEMS).collect()).collect()
}

/// Asserts that the quantized serving path of `model` is bit-identical —
/// ids, order and scores — to the exact serving path, across shard counts
/// 1..8, on both the GEMV (single request) and GEMM (batch) paths.
fn assert_quantized_parity<S, F>(label: &str, model: Arc<S>, head_fn: F)
where
    S: Send + Sync + 'static,
    F: for<'m> Fn(&'m S) -> Option<ham_core::LinearHead<'m>> + Send + Sync + Clone + 'static,
{
    let histories = histories();
    let requests: Vec<RecommendRequest> =
        (0..NUM_USERS).map(|u| RecommendRequest::new(u, histories[u].clone(), K)).collect();

    for shards in 1..=8 {
        let exact = ServingModel::from_head_fn(label, Arc::clone(&model), shards, head_fn.clone())
            .unwrap_or_else(|| panic!("{label} must expose a linear head"));
        let quantized = ServingModel::from_head_fn(label, Arc::clone(&model), shards, head_fn.clone())
            .unwrap_or_else(|| panic!("{label} must expose a linear head"))
            .with_quantized_catalog();
        assert!(quantized.is_quantized() && !exact.is_quantized());

        for request in &requests {
            let want = exact.recommend(request);
            let got = quantized.recommend(request);
            assert_eq!(got, want, "{label}: quantized GEMV parity, shards = {shards}, user = {}", request.user);
        }

        // The quantized batch path re-ranks with the same exact per-row dot,
        // so it must reproduce the quantized GEMV path bit-for-bit.
        let batched = quantized.recommend_batch(&requests, None);
        for (i, request) in requests.iter().enumerate() {
            assert_eq!(
                batched[i],
                quantized.recommend(request),
                "{label}: quantized batch parity, shards = {shards}, user = {}",
                request.user
            );
        }
    }
}

fn quick_train_config() -> BaselineTrainConfig {
    BaselineTrainConfig { epochs: 1, batch_size: 32, ..Default::default() }
}

#[test]
fn every_ham_variant_serves_identically_when_quantized() {
    for variant in [
        HamVariant::HamX,
        HamVariant::HamM,
        HamVariant::HamSX,
        HamVariant::HamSM,
        HamVariant::HamSMNoLowOrder,
        HamVariant::HamSMNoUser,
    ] {
        let base = HamConfig::for_variant(variant);
        let p = if base.uses_synergies() { 2 } else { 1 };
        let config = base.with_dimensions(12, 4, base.n_l.min(2), 2, p);
        let model = Arc::new(HamModel::new(NUM_USERS, NUM_ITEMS, config, 17));
        assert_quantized_parity(variant.name(), model, |s| s.linear_head());
    }
}

#[test]
fn every_baseline_serves_identically_when_quantized() {
    let histories = histories();
    let pop = Arc::new(PopRec::fit(&histories, NUM_ITEMS));
    assert_quantized_parity("PopRec", pop, SequentialRecommender::linear_head);

    let mf = Arc::new(BprMf::fit(
        &histories,
        NUM_ITEMS,
        &BprMfConfig { d: 8, ..Default::default() },
        &quick_train_config(),
        3,
    ));
    assert_quantized_parity("BPR-MF", mf, SequentialRecommender::linear_head);

    let caser = Arc::new(Caser::fit(
        &histories,
        NUM_ITEMS,
        &CaserConfig { d: 8, seq_len: 4, targets: 2, ..Default::default() },
        &quick_train_config(),
        5,
    ));
    assert_quantized_parity("Caser", caser, SequentialRecommender::linear_head);

    let sasrec = Arc::new(SasRec::fit(
        &histories,
        NUM_ITEMS,
        &SasRecConfig { d: 8, seq_len: 4, targets: 2 },
        &quick_train_config(),
        7,
    ));
    assert_quantized_parity("SASRec", sasrec, SequentialRecommender::linear_head);

    let gru = Arc::new(Gru4Rec::fit(
        &histories,
        NUM_ITEMS,
        &Gru4RecConfig { d: 8, seq_len: 4, targets: 2 },
        &quick_train_config(),
        9,
    ));
    assert_quantized_parity("GRU4Rec", gru, SequentialRecommender::linear_head);

    let hgn = Arc::new(Hgn::fit(
        &histories,
        NUM_ITEMS,
        &HgnConfig { d: 8, seq_len: 4, targets: 2 },
        &quick_train_config(),
        11,
    ));
    assert_quantized_parity("HGN", hgn, SequentialRecommender::linear_head);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The recall@k guardrail on raw catalogues: for randomized candidate
    /// matrices, queries, masks, shard counts and k, the quantized top-2k
    /// re-ranked exactly equals the exact top-k — ids, order and scores.
    #[test]
    fn quantized_preselection_recalls_the_exact_top_k(
        n in 10usize..60,
        d in 2usize..16,
        shards in 1usize..9,
        k in 1usize..12,
        seed in 0usize..1000,
        mask in 0usize..2,
    ) {
        let w = Matrix::from_vec(
            n, d,
            (0..n * d).map(|i| (((i * 131 + seed * 17) % 977) as f32 / 488.5 - 1.0) * 2.5).collect(),
        );
        let q: Vec<f32> = (0..d).map(|kk| (((kk * 37 + seed) % 53) as f32 / 26.5 - 1.0) * 1.5).collect();
        let seen: Option<Vec<bool>> = (mask == 1).then(|| (0..n).map(|i| (i * 7 + seed) % 3 == 0).collect());
        let seen_bits = seen.as_deref();

        let catalog = ShardedCatalog::from_matrix(&w, shards).with_quantization();
        let want = catalog.top_k(&q, k, seen_bits);
        let got = catalog.quantized_top_k_with_buf(
            &q, k, seen_bits, &mut Vec::new(), &mut ham_tensor::QuantizedQuery::quantize(&[]),
        );
        prop_assert_eq!(got, want, "n={} d={} shards={} k={}", n, d, shards, k);
    }

    /// Degenerate shapes keep the guardrail: more shards than items, k larger
    /// than the catalogue, and fully-masked catalogues all serve exactly what
    /// the exact path serves.
    #[test]
    fn quantized_path_matches_on_degenerate_shapes(n in 1usize..6, shards in 1usize..9, seed in 0usize..100) {
        let d = 4usize;
        let w = Matrix::from_vec(n, d, (0..n * d).map(|i| ((i + seed) % 13) as f32 * 0.4 - 2.0).collect());
        let q = vec![0.5f32, -1.0, 0.25, 0.75];
        let catalog = ShardedCatalog::from_matrix(&w, shards).with_quantization();
        let all_seen = vec![true; n];
        for (k, seen) in [(n + 3, None), (1, Some(all_seen.as_slice())), (n, None)] {
            let want = catalog.top_k(&q, k, seen);
            let got = catalog.quantized_top_k_with_buf(
                &q, k, seen, &mut Vec::new(), &mut ham_tensor::QuantizedQuery::quantize(&[]),
            );
            prop_assert_eq!(got, want, "n={} shards={} k={}", n, shards, k);
        }
    }
}

/// `merge_top_k` remains usable with pre-selection-sized lists (2k per
/// shard): merging more than k candidates keeps the comparator's order so
/// the re-rank sees the best 2k globally.
#[test]
fn preselection_merge_keeps_global_order() {
    let lists = vec![
        vec![ScoredItem { item: 0, score: 3.0 }, ScoredItem { item: 2, score: 1.0 }],
        vec![ScoredItem { item: 1, score: 2.0 }, ScoredItem { item: 3, score: 0.5 }],
    ];
    let merged = merge_top_k(&lists, 4);
    let ids: Vec<usize> = merged.iter().map(|s| s.item).collect();
    assert_eq!(ids, vec![0, 1, 2, 3]);
}
