//! A model packaged for serving: sharded candidate catalogue + query builder.

use crate::ivf::IvfConfig;
use crate::request::RecommendRequest;
use crate::shard::{ScoredItem, ShardedCatalog};
use ham_core::{LinearHead, Scorer, SeenMask};
use ham_data::dataset::ItemId;
use ham_tensor::pool::ThreadPool;
use ham_tensor::{Matrix, QuantizedQuery};
use std::sync::Arc;

/// A model snapshot prepared for online serving.
///
/// Construction freezes the model's linear head into (1) a [`ShardedCatalog`]
/// — the candidate matrix split row-wise across shards — and (2) an owned
/// query builder, so the serving loop needs no lifetime ties back into the
/// training-side model types. Build one from any [`Scorer`]
/// ([`Self::from_scorer`]) or from anything else exposing a [`LinearHead`]
/// ([`Self::from_head_fn`], used for the `ham-baselines` recommenders).
///
/// Results are **exact**: the single-request path ([`Self::recommend`])
/// scores each shard with the same GEMV kernel the single-node
/// `recommend_top_k` uses and is bit-identical to it; the batched path
/// ([`Self::recommend_batch`]) coalesces the batch into one packed-panel GEMM
/// per shard and is bit-identical to the equivalent unsharded GEMM ranking
/// (which agrees with the GEMV path within float rounding, ≤ 1e-5 — the same
/// contract `score_batch` has had since the kernel layer landed).
///
/// [`Self::with_quantized_catalog`] additionally freezes an int8 snapshot of
/// the candidate matrix at publish time: requests then pre-select through
/// the quantized panels (¼ of the candidate-matrix memory traffic) and
/// re-rank the quantized top-`2k` with the exact f32 per-row kernel, so the
/// served top-k stays bit-identical — ids and order — to the exact GEMV
/// path (pinned by the serving tests as a recall guardrail).
pub struct ServingModel {
    name: String,
    /// Behind an `Arc`: the deadline-bounded degraded path hands each shard
    /// task its own catalogue handle, so a task that outlives its batch (a
    /// timed-out slow shard) can never dangle.
    catalog: Arc<ShardedCatalog>,
    query: ham_core::scorer::QueryFn<'static>,
}

impl ServingModel {
    /// Packages a sharded snapshot of `model` (any [`Scorer`] with a linear
    /// head). Returns `None` if the model has no linear head.
    pub fn from_scorer<S>(name: &str, model: Arc<S>, num_shards: usize) -> Option<Self>
    where
        S: Scorer + Send + Sync + 'static,
    {
        Self::from_head_fn(name, model, num_shards, |m| m.linear_head())
    }

    /// Packages a sharded snapshot of any model for which `head_fn` can
    /// produce a [`LinearHead`] — e.g.
    /// `ham_baselines::SequentialRecommender::linear_head`. Returns `None`
    /// when `head_fn` does.
    ///
    /// The catalogue rows are copied into the shards once, here; the query
    /// builder re-derives the (cheap) head per call, so the `Arc`'d model is
    /// the only thing kept alive.
    pub fn from_head_fn<S, F>(name: &str, model: Arc<S>, num_shards: usize, head_fn: F) -> Option<Self>
    where
        S: Send + Sync + 'static,
        F: for<'m> Fn(&'m S) -> Option<LinearHead<'m>> + Send + Sync + 'static,
    {
        let catalog = Arc::new(catalog_from_env(head_fn(&model)?.candidates(), num_shards));
        let query = Box::new(move |user: usize, history: &[ItemId]| {
            // ham-lint: allow(panic, "head_fn returned Some at construction and is a pure fn of the immutable model")
            head_fn(&model).expect("model's linear head disappeared after construction").query_vector(user, history)
        });
        Some(Self { name: name.to_string(), catalog, query })
    }

    /// Packages a catalogue matrix and a query closure directly (no model
    /// type involved) — the escape hatch for custom scorers.
    pub fn from_parts(
        name: &str,
        candidates: &Matrix,
        num_shards: usize,
        query: impl Fn(usize, &[ItemId]) -> Vec<f32> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            catalog: Arc::new(catalog_from_env(candidates, num_shards)),
            query: Box::new(query),
        }
    }

    /// Packages a pre-built catalogue (possibly quantized and/or clustered)
    /// with a query closure — how the benchmark sweeps re-dial `nprobe`
    /// without rebuilding the k-means index per setting.
    pub fn from_catalog(
        name: &str,
        catalog: ShardedCatalog,
        query: impl Fn(usize, &[ItemId]) -> Vec<f32> + Send + Sync + 'static,
    ) -> Self {
        Self { name: name.to_string(), catalog: Arc::new(catalog), query: Box::new(query) }
    }

    /// Freezes an int8 snapshot of every shard and switches serving to the
    /// quantized pre-selection + exact re-rank path. The f32 shards stay
    /// authoritative (the re-rank reads them), so this only adds the panels'
    /// 1 byte/element — and serving results stay bit-identical to the exact
    /// path under the recall guardrail.
    pub fn with_quantized_catalog(mut self) -> Self {
        // Publish-time construction: the Arc is freshly made and unshared,
        // so this is a move, not a catalogue copy.
        let catalog = Arc::try_unwrap(self.catalog).unwrap_or_else(|shared| (*shared).clone());
        self.catalog = Arc::new(catalog.with_quantization());
        self
    }

    /// Builds the inverted-file cluster index over every shard and switches
    /// serving to the cluster-routed IVF paths (see
    /// [`ShardedCatalog::with_cluster_index`]). With the default
    /// `nprobe = all` the served bits are unchanged; narrower probes trade
    /// measured recall for sub-linear retrieval cost.
    pub fn with_cluster_index(mut self, config: &IvfConfig) -> Self {
        let catalog = Arc::try_unwrap(self.catalog).unwrap_or_else(|shared| (*shared).clone());
        self.catalog = Arc::new(catalog.with_cluster_index(config));
        self
    }

    /// Re-dials the probe width of an already-clustered catalogue (cheap —
    /// no index rebuild).
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        let catalog = Arc::try_unwrap(self.catalog).unwrap_or_else(|shared| (*shared).clone());
        self.catalog = Arc::new(catalog.with_nprobe(nprobe));
        self
    }

    /// Whether requests take the quantized pre-selection path.
    pub fn is_quantized(&self) -> bool {
        self.catalog.is_quantized()
    }

    /// Whether requests take the cluster-routed IVF paths.
    pub fn is_clustered(&self) -> bool {
        self.catalog.is_clustered()
    }

    /// Clusters a request visits across all shards (0 on exact serving) —
    /// the retrieval metadata responses report.
    pub fn clusters_probed(&self) -> usize {
        self.catalog.clusters_probed()
    }

    /// Human-readable model name (shown in benchmark reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sharded candidate catalogue.
    pub fn catalog(&self) -> &ShardedCatalog {
        &self.catalog
    }

    /// A shareable handle to the catalogue — what the deadline-bounded
    /// scoring path hands to its per-shard tasks.
    pub fn catalog_arc(&self) -> Arc<ShardedCatalog> {
        Arc::clone(&self.catalog)
    }

    /// Catalogue size.
    pub fn num_items(&self) -> usize {
        self.catalog.num_items()
    }

    /// The query vector for one user/history.
    pub fn query_vector(&self, user: usize, history: &[ItemId]) -> Vec<f32> {
        (self.query)(user, history)
    }

    /// Serves one request exactly: per-shard GEMV, shard-local fused
    /// masking, k-way merge. Bit-identical to the single-node
    /// `recommend_top_k` for every shard count.
    ///
    /// Allocates its own working buffers; a serving loop should hold a
    /// [`ServeScratch`] and call [`Self::recommend_with`] instead.
    pub fn recommend(&self, request: &RecommendRequest) -> Vec<ScoredItem> {
        self.recommend_with(request, &mut ServeScratch::new())
    }

    /// [`Self::recommend`] with reusable working buffers: the shard GEMVs
    /// write into `scratch`'s score buffer ([`matvec_transposed_into`] — no
    /// `Vec` per request) and the seen-item bitmap is marked and cleared in
    /// O(history) instead of being re-allocated per request. Results are
    /// identical to [`Self::recommend`].
    ///
    /// [`matvec_transposed_into`]: ham_tensor::kernels::matvec_transposed_into
    // ham-lint: hot-path
    pub fn recommend_with(&self, request: &RecommendRequest, scratch: &mut ServeScratch) -> Vec<ScoredItem> {
        let q = self.query_vector(request.user, &request.history);
        let ServeScratch { scores, seen, qquery, route } = scratch;
        let seen_bits = if request.exclude_seen {
            seen.resize(self.catalog.num_items());
            seen.mark(&request.history);
            Some(seen.bits())
        } else {
            None
        };
        let out = match (self.catalog.is_clustered(), self.catalog.is_quantized()) {
            (true, true) => self.catalog.ivf_quantized_top_k_with_buf(&q, request.k, seen_bits, scores, qquery, route),
            (true, false) => self.catalog.ivf_top_k_with_buf(&q, request.k, seen_bits, scores, route),
            (false, true) => self.catalog.quantized_top_k_with_buf(&q, request.k, seen_bits, scores, qquery),
            (false, false) => self.catalog.top_k_with_buf(&q, request.k, seen_bits, scores),
        };
        if request.exclude_seen {
            seen.clear(&request.history);
        }
        out
    }

    /// Serves a coalesced batch: the queries are built once, every shard is
    /// scored with one packed-panel GEMM over the whole batch (in parallel
    /// across shards on `pool` when given), and each request is ranked and
    /// merged with its own `k` and seen history (one catalogue bitmap is
    /// reused across the whole batch inside `top_k_batch`, marked/cleared
    /// per request in O(history) — no per-request bitmap allocations).
    ///
    /// A batch of one takes the GEMV path of [`Self::recommend`], so a
    /// lonely request gets the same bits whether or not it was queued.
    pub fn recommend_batch(&self, requests: &[RecommendRequest], pool: Option<&ThreadPool>) -> Vec<Vec<ScoredItem>> {
        self.recommend_batch_with(requests, pool, &mut ServeScratch::new())
    }

    /// [`Self::recommend_batch`] with reusable working buffers: a batch of
    /// one takes the allocation-free GEMV path of [`Self::recommend_with`]
    /// (same bits whether or not the request was queued), larger batches take
    /// the per-shard GEMM path. The dispatcher thread of `RecServer` holds
    /// one [`ServeScratch`] across its whole lifetime.
    pub fn recommend_batch_with(
        &self,
        requests: &[RecommendRequest],
        pool: Option<&ThreadPool>,
        scratch: &mut ServeScratch,
    ) -> Vec<Vec<ScoredItem>> {
        self.recommend_batch_traced(requests, pool, scratch, None)
    }

    /// [`Self::recommend_batch_with`] with stage timing: when `trace` is
    /// given, query assembly, per-shard scoring, merging and (on the
    /// quantized path) the exact re-rank are clocked into it. The batch-of-1
    /// GEMV path is deliberately timed as one opaque `solo` stage — its
    /// scoring loop stays exactly the untraced code, so a queued lone
    /// request keeps returning the same bits with or without telemetry.
    pub fn recommend_batch_traced(
        &self,
        requests: &[RecommendRequest],
        pool: Option<&ThreadPool>,
        scratch: &mut ServeScratch,
        mut trace: Option<&mut crate::trace::StageTrace>,
    ) -> Vec<Vec<ScoredItem>> {
        match requests {
            [] => Vec::new(),
            [single] => {
                let started = trace.is_some().then(std::time::Instant::now);
                let out = vec![self.recommend_with(single, scratch)];
                if let (Some(trace), Some(at)) = (trace.as_deref_mut(), started) {
                    trace.solo_micros = Some(at.elapsed().as_micros() as u64);
                }
                out
            }
            _ => {
                let assembly_started = trace.is_some().then(std::time::Instant::now);
                let mut queries = Matrix::zeros(requests.len(), self.catalog.dim());
                for (i, request) in requests.iter().enumerate() {
                    queries.row_mut(i).copy_from_slice(&self.query_vector(request.user, &request.history));
                }
                let ks: Vec<usize> = requests.iter().map(|r| r.k).collect();
                let seen: Vec<Option<&[usize]>> =
                    requests.iter().map(|r| r.exclude_seen.then_some(r.history.as_slice())).collect();
                if let (Some(trace), Some(at)) = (trace.as_deref_mut(), assembly_started) {
                    trace.batch_assembly_micros = at.elapsed().as_micros() as u64;
                }
                if self.catalog.is_quantized() {
                    self.catalog.quantized_top_k_batch_traced(&queries, &ks, &seen, pool, trace)
                } else {
                    self.catalog.top_k_batch_traced(&queries, &ks, &seen, pool, trace)
                }
            }
        }
    }
}

/// Reusable working buffers for the single-request serving path: the shard
/// score buffer (grown once to the largest shard) and a [`SeenMask`]
/// (marked and cleared per request in O(history), the same bitmap type the
/// single-node recommend paths use).
///
/// Invariant between calls: the mask is all-clear. The recommend paths
/// restore it on every normal return; after a panic unwound through a
/// serving call, call [`Self::reset`] before reuse.
#[derive(Debug)]
pub struct ServeScratch {
    scores: Vec<f32>,
    seen: SeenMask,
    /// Reusable quantized-query buffer for the quantized serving path
    /// (re-quantized in place per request — no allocation after warmup).
    qquery: QuantizedQuery,
    /// Reusable centroid-score buffer for the cluster-routed IVF path
    /// (grown once to the largest per-shard cluster count).
    route: Vec<f32>,
}

impl ServeScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self { scores: Vec::new(), seen: SeenMask::new(0), qquery: QuantizedQuery::quantize(&[]), route: Vec::new() }
    }

    /// Restores the all-clear invariant (used after a serving call panicked
    /// mid-request, when the request's marks may still be set).
    pub fn reset(&mut self) {
        self.seen.reset();
    }
}

impl Default for ServeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Shards `w` and, when the process-wide retrieval override is armed
/// (`HAM_RETRIEVAL=ivf`), builds the cluster index at construction — with
/// the exact `nprobe = all` endpoint unless `HAM_IVF_NPROBE` narrows it, so
/// the override forces the IVF *code paths* without changing served bits.
fn catalog_from_env(w: &Matrix, num_shards: usize) -> ShardedCatalog {
    let catalog = ShardedCatalog::from_matrix(w, num_shards);
    match IvfConfig::from_env() {
        Some(config) => catalog.with_cluster_index(&config),
        None => catalog,
    }
}

impl std::fmt::Debug for ServingModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingModel")
            .field("name", &self.name)
            .field("num_items", &self.catalog.num_items())
            .field("num_shards", &self.catalog.num_shards())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_core::{HamConfig, HamModel, HamVariant};

    fn ham() -> Arc<HamModel> {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        Arc::new(HamModel::new(4, 30, config, 13))
    }

    #[test]
    fn from_scorer_matches_recommend_top_k_bit_for_bit() {
        let model = ham();
        for shards in [1, 3, 8] {
            let serving = ServingModel::from_scorer("ham", Arc::clone(&model), shards).expect("HAM has a head");
            let history = vec![1usize, 5, 9, 9, 2];
            for exclude in [true, false] {
                let request = RecommendRequest {
                    user: 2,
                    history: history.clone(),
                    k: 10,
                    exclude_seen: exclude,
                    deadline: None,
                };
                let served: Vec<usize> = serving.recommend(&request).iter().map(|s| s.item).collect();
                assert_eq!(served, model.recommend_top_k(2, &history, 10, exclude), "shards = {shards}");
            }
        }
    }

    #[test]
    fn batch_of_one_takes_the_exact_gemv_path() {
        let model = ham();
        let serving = ServingModel::from_scorer("ham", Arc::clone(&model), 4).unwrap();
        let request = RecommendRequest::new(0, vec![3, 7], 5);
        let batched = serving.recommend_batch(std::slice::from_ref(&request), None);
        assert_eq!(batched[0], serving.recommend(&request));
    }

    #[test]
    fn from_parts_serves_a_custom_head() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let serving = ServingModel::from_parts("toy", &w, 2, |_, _| vec![1.0, 0.5]);
        let top = serving.recommend(&RecommendRequest {
            user: 0,
            history: vec![],
            k: 3,
            exclude_seen: false,
            deadline: None,
        });
        let ids: Vec<usize> = top.iter().map(|s| s.item).collect();
        assert_eq!(ids, vec![2, 0, 1]);
        assert_eq!(top[0].score, 3.0);
    }
}
