//! Stage-level timing of one served batch.
//!
//! A [`StageTrace`] is the serving pipeline's timing scratchpad: the batch
//! path fills in how long query assembly, each shard's scoring GEMM, the
//! k-way merge and (on the quantized path) the exact re-rank took. The
//! dispatcher then shapes the totals into per-request
//! [`SpanTree`](ham_telemetry::SpanTree)s for the flight recorder. Tracing
//! is requested explicitly (`Option<&mut StageTrace>` threaded through the
//! batch entry points), so the untraced hot path carries a `None` check and
//! nothing else.

/// Collected stage durations of one served batch (all microseconds).
#[derive(Debug, Clone, Default)]
pub struct StageTrace {
    /// Building the batch's query matrix from user ids + histories.
    pub batch_assembly_micros: u64,
    /// Per-shard scoring time, `(shard index, micros)` — wall-clock inside
    /// each shard's scoring task, so with parallel shards these overlap.
    pub shard_score_micros: Vec<(usize, u64)>,
    /// Per-shard local ranking plus the k-way merges across the batch.
    pub merge_micros: u64,
    /// Exact f32 re-rank of the merged candidates (quantized path only;
    /// zero on the exact path).
    pub rerank_micros: u64,
    /// The whole single-request GEMV path, when the batch had one request
    /// and bypassed the stages above.
    pub solo_micros: Option<u64>,
}

impl StageTrace {
    /// A cleared trace ready for one batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slowest shard's scoring time — the critical path through the
    /// parallel shard fan-out.
    pub fn max_shard_micros(&self) -> u64 {
        self.shard_score_micros.iter().map(|&(_, us)| us).max().unwrap_or(0)
    }
}
