//! Deadline-bounded, fault-isolated shard scoring — the graceful-degradation
//! path of the serving layer.
//!
//! The classic scoring path (`ServingModel::recommend_batch_traced`) runs
//! every shard to completion on the caller or the shared work-stealing pool:
//! correct and fast, but a shard that stalls (or panics on a worker) holds
//! the whole batch hostage — there is no way to abandon a `pool.scope` that
//! has not finished. This module adds the bounded alternative the server
//! routes to whenever a batch carries a deadline or fault injection is armed:
//!
//! * a dedicated **bulkhead executor** ([`ShardExecutor`]) scores shard
//!   blocks on its own threads, so a stalled shard task never occupies the
//!   process-wide pool other subsystems (training, evaluation) share;
//! * the batch coordinator waits for shard results **only until the shard
//!   deadline**; shards that miss it (or panic) are dropped and the k-way
//!   merge runs over the survivors — a bounded, *flagged* degradation
//!   ([`BoundedOutcome::degraded`]) instead of a hang or a silent lie;
//! * abandoned tasks observe a cancellation flag and bail out of injected
//!   delays and scoring work within ~1ms, so a backlog of timed-out shard
//!   tasks drains quickly instead of wedging the executor.
//!
//! ## Exactness when nothing degrades
//!
//! When every shard answers within budget, the result is **bit-identical to
//! the classic path**: the per-shard blocks come from the same kernels
//! (GEMV for a batch of one, packed-panel GEMM otherwise, quantized variants
//! on a quantized catalogue), the local ranking and k-way merge are the very
//! functions the classic path uses, and the quantized pre-selection re-ranks
//! through the same exact f32 kernel. The chaos suite pins this: under any
//! injected single-shard fault, a response is either bit-identical to the
//! exact path or explicitly flagged degraded.

use crate::shard::{clear_seen, mark_seen, merge_top_k, ScoredItem, ShardBlock, ShardedCatalog};
use ham_data::dataset::ItemId;
use ham_faults::FaultInjector;
use ham_tensor::{Matrix, QuantizedQuery};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// A dedicated thread pool for deadline-bounded shard scoring.
///
/// Deliberately **not** the process-wide work-stealing pool: its `scope`
/// blocks until every task finishes, which is exactly the semantics a
/// deadline must escape, and a slow shard parked on a shared worker would
/// starve unrelated work. This bulkhead owns its backlog; abandoned tasks
/// self-cancel (see [`ShardedCatalog::score_shard_block_faulted`]) so the
/// queue drains even under sustained shard slowness.
pub(crate) struct ShardExecutor {
    shared: Arc<ExecutorShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

type Task = Box<dyn FnOnce() + Send>;

struct ExecutorShared {
    /// (task queue, shutdown flag) under one lock so workers can check both.
    tasks: Mutex<(VecDeque<Task>, bool)>,
    arrived: Condvar,
}

impl ShardExecutor {
    /// Spawns `workers.max(1)` bulkhead threads.
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(ExecutorShared { tasks: Mutex::new((VecDeque::new(), false)), arrived: Condvar::new() });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ham-shard-exec-{i}"))
                    .spawn(move || loop {
                        let task = {
                            // The (queue, flag) tuple stays structurally
                            // sound whatever a holder was doing when it
                            // panicked; recover rather than lose a bulkhead
                            // worker to someone else's poison.
                            let mut guard = shared.tasks.lock().unwrap_or_else(PoisonError::into_inner);
                            loop {
                                if let Some(task) = guard.0.pop_front() {
                                    break task;
                                }
                                if guard.1 {
                                    return;
                                }
                                guard = shared.arrived.wait(guard).unwrap_or_else(PoisonError::into_inner);
                            }
                        };
                        // Tasks contain their own catch_unwind; a panic never
                        // reaches (and never kills) the worker.
                        task();
                    })
                    // ham-lint: allow(panic, "bulkhead startup, before any batch is scored — cannot serve without workers")
                    .expect("failed to spawn shard executor worker")
            })
            .collect();
        Self { shared, workers }
    }

    fn submit(&self, task: Task) {
        // Recoverable for the same reason as the worker loop: the tuple is
        // plain data, and a submit that panicked here would cascade into a
        // degraded batch for an unrelated coordinator.
        let mut guard = self.shared.tasks.lock().unwrap_or_else(PoisonError::into_inner);
        guard.0.push_back(task);
        self.shared.arrived.notify_one();
    }
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        {
            let mut guard = self.shared.tasks.lock().unwrap_or_else(PoisonError::into_inner);
            guard.1 = true;
            // Unsubmitted work is dropped: the only caller joins every batch
            // before shutdown, so anything still queued here was cancelled.
            guard.0.clear();
            self.shared.arrived.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _unused = worker.join();
        }
    }
}

/// What one shard task reported back to its batch.
enum SlotState {
    /// Task not finished (yet, or ever — the batch stops waiting at the
    /// deadline regardless).
    Pending,
    /// Scored block (dense, or pre-ranked on IVF catalogues) + scoring wall
    /// time in microseconds.
    Scores(ShardBlock, u64),
    /// The task panicked (injected or organic); the shard is dropped.
    Panicked,
    /// The task observed cancellation and skipped its work.
    Skipped,
}

/// The rendezvous between a batch coordinator and its shard tasks.
struct SlotBoard {
    slots: Mutex<Vec<SlotState>>,
    done: Condvar,
    cancelled: AtomicBool,
}

impl SlotBoard {
    fn new(shards: usize) -> Self {
        Self {
            slots: Mutex::new((0..shards).map(|_| SlotState::Pending).collect()),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }

    fn fill(&self, shard: usize, state: SlotState) {
        // Shard tasks can panic (that is the point of the bulkhead), so the
        // board lock can be poisoned by a sibling — the Vec of slots is
        // still valid, and already-filled results must not be thrown away.
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        // A cancelled task can report after the coordinator has already
        // drained the board; its slot is gone and the result is discarded.
        // Indexing here would panic *outside* the task's catch_unwind and
        // kill a bulkhead worker.
        if let Some(slot) = slots.get_mut(shard) {
            *slot = state;
        }
        self.done.notify_all();
    }

    fn cancelled(&self) -> bool {
        // ordering: Relaxed — an advisory flag with no data published
        // alongside it; a task that misses the very latest value just does
        // some wasted scoring before its result is discarded.
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Blocks until every slot is non-pending, or `deadline` passes.
    fn wait(&self, deadline: Option<Instant>) {
        // Poison recovery mirrors `fill`: slots a panicked sibling never
        // filled stay Pending and are counted into the degraded response —
        // exactly the contract this module exists to provide.
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !slots.iter().any(|s| matches!(s, SlotState::Pending)) {
                return;
            }
            match deadline {
                None => slots = self.done.wait(slots).unwrap_or_else(PoisonError::into_inner),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return;
                    }
                    let (returned, _timeout) =
                        self.done.wait_timeout(slots, deadline - now).unwrap_or_else(PoisonError::into_inner);
                    slots = returned;
                }
            }
        }
    }
}

/// The result of one deadline-bounded batch.
pub(crate) struct BoundedOutcome {
    /// Per-request rankings over the surviving shards, batch order.
    pub rankings: Vec<Vec<ScoredItem>>,
    /// Shards whose scores made it into the merge (empty shards count — they
    /// answer vacuously).
    pub shards_answered: usize,
    /// Total shards in the catalogue.
    pub shards_total: usize,
    /// Shard ids dropped because they missed the deadline budget.
    pub timed_out: Vec<usize>,
    /// Shard ids dropped because their scoring task panicked.
    pub panicked: Vec<usize>,
    /// `(shard id, scoring micros)` of the shards that answered in time.
    pub shard_micros: Vec<(usize, u64)>,
    /// Wall time of the ranking + merge stage, microseconds.
    pub merge_micros: u64,
    /// Wall time of the exact re-rank (quantized catalogues only).
    pub rerank_micros: u64,
}

impl BoundedOutcome {
    /// Whether any shard was dropped from the merge.
    pub fn degraded(&self) -> bool {
        self.shards_answered < self.shards_total
    }
}

/// Scores `queries` against every shard on the bulkhead executor, waits at
/// most until `shard_deadline` (forever when `None` — then only panics can
/// degrade), and ranks each request over the shards that answered.
///
/// `seen_items[i]` / `ks[i]` follow the same per-row convention as the
/// classic batched path.
pub(crate) fn score_bounded(
    catalog: &Arc<ShardedCatalog>,
    queries: Matrix,
    ks: &[usize],
    seen_items: &[Option<&[ItemId]>],
    executor: &ShardExecutor,
    shard_deadline: Option<Instant>,
    faults: &FaultInjector,
) -> BoundedOutcome {
    let b = queries.rows();
    let shards_total = catalog.num_shards();
    let quantized = catalog.is_quantized();
    let qqueries: Option<Arc<Vec<QuantizedQuery>>> =
        quantized.then(|| Arc::new((0..b).map(|i| QuantizedQuery::quantize(queries.row(i))).collect()));
    let queries = Arc::new(queries);
    // Shard tasks are 'static closures, so the per-request ranking inputs the
    // IVF in-task path needs — the pre-selection widths and owned copies of
    // the seen histories — ride along behind Arcs (O(total history) copied
    // once per batch; the dense path ignores them).
    let select_ks: Arc<Vec<usize>> =
        Arc::new(ks.iter().map(|&k| if quantized { k.saturating_mul(2) } else { k }).collect());
    let owned_seen: Arc<Vec<Option<Vec<ItemId>>>> =
        Arc::new(seen_items.iter().map(|items| items.map(<[ItemId]>::to_vec)).collect());
    let board = Arc::new(SlotBoard::new(shards_total));
    for shard in 0..shards_total {
        if catalog.shards()[shard].is_empty() {
            // An empty shard answers vacuously — no task, no fault surface.
            board.fill(shard, SlotState::Scores(ShardBlock::Dense(Matrix::zeros(b, 0)), 0));
            continue;
        }
        let catalog = Arc::clone(catalog);
        let queries = Arc::clone(&queries);
        let qqueries = qqueries.clone();
        let select_ks = Arc::clone(&select_ks);
        let owned_seen = Arc::clone(&owned_seen);
        let board = Arc::clone(&board);
        let faults = faults.clone();
        executor.submit(Box::new(move || {
            if board.cancelled() {
                board.fill(shard, SlotState::Skipped);
                return;
            }
            let started = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                catalog.score_shard_block_faulted(
                    shard,
                    &queries,
                    qqueries.as_deref().map(Vec::as_slice),
                    &select_ks,
                    &owned_seen,
                    &faults,
                    &|| board.cancelled(),
                )
            }));
            let state = match result {
                Ok(Some(block)) => SlotState::Scores(block, started.elapsed().as_micros() as u64),
                Ok(None) => SlotState::Skipped,
                Err(_) => SlotState::Panicked,
            };
            board.fill(shard, state);
        }));
    }
    board.wait(shard_deadline);
    // Whatever is still pending has missed the budget: flip the cancellation
    // flag so those tasks drain cheaply, then classify the slots.
    // ordering: Relaxed — advisory-only; see `SlotBoard::cancelled`.
    board.cancelled.store(true, Ordering::Relaxed);
    let slots = {
        // Recover from a panicked shard task's poison; unfilled slots read
        // as Pending below and become part of the degraded answer.
        let mut slots = board.slots.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *slots)
    };
    let mut survivors: Vec<(usize, ShardBlock)> = Vec::with_capacity(shards_total);
    let mut timed_out = Vec::new();
    let mut panicked = Vec::new();
    let mut shard_micros = Vec::new();
    for (shard, state) in slots.into_iter().enumerate() {
        match state {
            SlotState::Scores(block, micros) => {
                shard_micros.push((shard, micros));
                survivors.push((shard, block));
            }
            SlotState::Panicked => panicked.push(shard),
            SlotState::Pending | SlotState::Skipped => timed_out.push(shard),
        }
    }
    let shards_answered = survivors.len();

    // Rank + merge each request over the surviving shards — the same
    // shard-local ranking, merge and (quantized) exact re-rank as the classic
    // path, restricted to the shards that answered.
    let merge_started = Instant::now();
    let mut rerank_micros = 0u64;
    let mut seen_scratch = vec![false; catalog.num_items()];
    let mut rankings = Vec::with_capacity(b);
    for i in 0..b {
        let seen = match seen_items[i] {
            Some(items) => {
                mark_seen(&mut seen_scratch, items);
                Some(seen_scratch.as_slice())
            }
            None => None,
        };
        let select_k = select_ks[i];
        let per_shard: Vec<Vec<ScoredItem>> = survivors
            .iter()
            .map(|(shard, block)| match block {
                ShardBlock::Dense(block) => catalog.shard_top_k(*shard, block.row(i), select_k, seen),
                // IVF shards ranked in-task with the same select_k and seen
                // history; the shortlist is already the shard's merge input.
                ShardBlock::Ranked(lists) => lists[i].clone(),
            })
            .collect();
        let merged = merge_top_k(&per_shard, select_k);
        let ranked = if quantized {
            let rerank_started = Instant::now();
            let ranked = catalog.rerank_exact(merged, queries.row(i), ks[i], seen);
            rerank_micros += rerank_started.elapsed().as_micros() as u64;
            ranked
        } else {
            merged
        };
        if let Some(items) = seen_items[i] {
            clear_seen(&mut seen_scratch, items);
        }
        rankings.push(ranked);
    }
    let merge_micros = (merge_started.elapsed().as_micros() as u64).saturating_sub(rerank_micros);

    BoundedOutcome {
        rankings,
        shards_answered,
        shards_total,
        timed_out,
        panicked,
        shard_micros,
        merge_micros,
        rerank_micros,
    }
}
