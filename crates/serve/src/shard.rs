//! Row-wise sharding of the candidate matrix and exact top-k merging.
//!
//! The scoring head of every model in this workspace is `r = q · Wᵀ`: a
//! per-user query against the rows of the candidate-embedding matrix `W`.
//! That structure shards trivially — split `W` row-wise into
//! [`Shard`]s, score each shard independently with the existing GEMV/GEMM
//! kernels, rank each shard locally, and merge the per-shard top-k lists
//! into the global top-k with a k-way heap.
//!
//! ## Exactness
//!
//! The merge is *exact*, not approximate: any item of the global top-k is by
//! definition among the best `k` of its own shard, so per-shard top-k lists
//! of length `min(k, shard_len)` are guaranteed to contain every global
//! winner. The ordering is bit-identical to the single-node path because
//!
//! * per-row dot products do not change when the rows move into a shard
//!   (the GEMV kernel scores each row independently), and the packed-panel
//!   GEMM accumulates every output element in ascending-`k` order regardless
//!   of how the rows are grouped into panels — so shard scores equal the
//!   corresponding single-node scores bit for bit;
//! * per-shard ranking uses the same fused mask+select kernel as the
//!   single-node path (seen items participate with an effective `-inf`, so
//!   even the degenerate "fewer than k unseen items" padding matches); and
//! * the merge comparator is the same total preference (higher score first,
//!   ties to the lower global item id) used by `top_k_indices`.
//!
//! ## The quantized candidate path
//!
//! [`ShardedCatalog::with_quantization`] snapshots every shard's rows as an
//! int8 [`QuantizedMatrix`] panel alongside the f32 original. The quantized
//! serving path ([`ShardedCatalog::quantized_top_k_with_buf`]) then scores
//! each shard against the i8 panel (¼ of the memory traffic), pre-selects the
//! quantized top-`2k` per shard through the same fused mask+select kernel,
//! merges, and **re-ranks the merged candidates with the exact f32 per-row
//! dot** — the very kernel chain the exact GEMV path uses — so the served
//! top-k is bit-identical to the exact path whenever the exact winners
//! survive the 2k pre-selection (the recall guardrail pinned by the serving
//! test-suite, not a silent approximation). Quantized pre-selection scores
//! are integer-accumulated and therefore bit-identical across tiers and
//! shard counts by construction.

use crate::trace::StageTrace;
use ham_data::dataset::ItemId;
use ham_faults::{FaultInjector, ShardFault};
use ham_tensor::kernels;
use ham_tensor::ops::{top_k_indices, top_k_indices_masked};
use ham_tensor::pool::ThreadPool;
use ham_tensor::{Matrix, QuantizedMatrix, QuantizedQuery};
use std::time::{Duration, Instant};

/// One recommended item with its model score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// Global catalogue item id.
    pub item: ItemId,
    /// The model score (`-inf` for masked items padding a degenerate tail).
    pub score: f32,
}

/// A contiguous row range of the candidate matrix, owned by one shard.
#[derive(Debug, Clone)]
pub struct Shard {
    offset: usize,
    rows: Matrix,
    /// Int8 snapshot of `rows` for the quantized pre-selection path
    /// (`None` until [`ShardedCatalog::with_quantization`]).
    quantized: Option<QuantizedMatrix>,
}

impl Shard {
    /// Global item id of the shard's first row.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of items in the shard.
    pub fn len(&self) -> usize {
        self.rows.rows()
    }

    /// True when the shard holds no items (more shards than items).
    pub fn is_empty(&self) -> bool {
        self.rows.rows() == 0
    }

    /// The shard's slice of the candidate matrix.
    pub fn rows(&self) -> &Matrix {
        &self.rows
    }

    /// The shard's int8 panel, when the catalogue was quantized.
    pub fn quantized(&self) -> Option<&QuantizedMatrix> {
        self.quantized.as_ref()
    }
}

/// The candidate matrix `W` split row-wise into shards.
#[derive(Debug, Clone)]
pub struct ShardedCatalog {
    shards: Vec<Shard>,
    num_items: usize,
    dim: usize,
}

impl ShardedCatalog {
    /// Splits `w` into `num_shards` near-even contiguous row ranges (the
    /// first `n % num_shards` shards hold one extra row). Shards beyond the
    /// item count come out empty and are handled gracefully everywhere.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    pub fn from_matrix(w: &Matrix, num_shards: usize) -> Self {
        assert!(num_shards > 0, "ShardedCatalog: need at least one shard");
        let (n, d) = w.shape();
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut offset = 0;
        for s in 0..num_shards {
            let len = base + usize::from(s < extra);
            let rows = Matrix::from_vec(len, d, w.as_slice()[offset * d..(offset + len) * d].to_vec());
            shards.push(Shard { offset, rows, quantized: None });
            offset += len;
        }
        Self { shards, num_items: n, dim: d }
    }

    /// Snapshots every shard's rows as an int8 panel, enabling the quantized
    /// pre-selection path. The f32 rows stay authoritative — the exact
    /// re-rank and the f32 serving paths keep reading them.
    pub fn with_quantization(mut self) -> Self {
        for shard in &mut self.shards {
            shard.quantized = Some(QuantizedMatrix::quantize(&shard.rows));
        }
        self
    }

    /// Whether the shards carry int8 panels ([`Self::with_quantization`]).
    pub fn is_quantized(&self) -> bool {
        self.shards.iter().all(|s| s.quantized.is_some())
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total catalogue size across shards.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Embedding dimension of the candidate rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shards, in global row order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Scores one query against one shard (fused GEMV over the shard rows).
    pub fn shard_scores(&self, shard: usize, query: &[f32]) -> Vec<f32> {
        self.shards[shard].rows.matvec_transposed(query)
    }

    /// [`Self::shard_scores`] into a caller-provided buffer (overwritten) —
    /// the serving hot path reuses one buffer across shards and requests
    /// instead of allocating a fresh `Vec` per GEMV.
    ///
    /// # Panics
    /// Panics if `out.len()` is not the shard's length.
    pub fn shard_scores_into(&self, shard: usize, query: &[f32], out: &mut [f32]) {
        self.shards[shard].rows.matvec_transposed_into(query, out);
    }

    /// Scores a query batch against one shard (packed-panel GEMM), returning
    /// a `queries.rows() × shard_len` block.
    pub fn shard_scores_batch(&self, shard: usize, queries: &Matrix) -> Matrix {
        queries.matmul_transposed(&self.shards[shard].rows)
    }

    /// The degraded path's per-shard scoring unit: applies any injected
    /// fault for `shard` (a [`ShardFault::Delay`] sleeps cooperatively, a
    /// [`ShardFault::Panic`] panics — the caller runs this under
    /// `catch_unwind`), then scores the whole query block against the shard.
    ///
    /// Scoring picks the kernel by batch size so the result is bit-identical
    /// to the corresponding exact path: a single query goes through the
    /// fused GEMV (`matvec_transposed` / `quantized_matvec_into`, the very
    /// kernels `top_k_with_buf` uses — GEMM-of-one-row is *not* bit-equal to
    /// GEMV), a larger batch through the packed-panel GEMM the batched paths
    /// use. `qqueries` must be `Some` exactly when the catalogue is
    /// quantized.
    ///
    /// Returns `None` when `cancelled` turned true during an injected delay:
    /// the batch already gave up on this shard, so the remaining sleep and
    /// the scoring work are skipped to free the executor worker quickly.
    pub(crate) fn score_shard_block_faulted(
        &self,
        shard: usize,
        queries: &Matrix,
        qqueries: Option<&[QuantizedQuery]>,
        faults: &FaultInjector,
        cancelled: &dyn Fn() -> bool,
    ) -> Option<Matrix> {
        match faults.shard_fault(shard) {
            Some(ShardFault::Delay(delay)) => {
                // Sleep in small slices, checking for cancellation between
                // them: a shard whose batch already timed out must stop
                // clogging the bulkhead executor within ~1ms, not `delay`.
                let until = Instant::now() + delay;
                loop {
                    if cancelled() {
                        return None;
                    }
                    let now = Instant::now();
                    if now >= until {
                        break;
                    }
                    std::thread::sleep((until - now).min(Duration::from_millis(1)));
                }
            }
            Some(ShardFault::Panic) => panic!("ham-faults: injected panic in shard {shard}"),
            None => {}
        }
        if cancelled() {
            return None;
        }
        let b = queries.rows();
        let s = &self.shards[shard];
        Some(match qqueries {
            Some(qq) => {
                let panel = s.quantized.as_ref().expect("quantized scoring on an unquantized catalogue");
                let mut block = Matrix::zeros(b, panel.rows());
                if b == 1 {
                    kernels::quantized_matvec_into(panel, &qq[0], block.row_mut(0));
                } else {
                    kernels::quantized_matmul_transposed_into(qq, panel, &mut block);
                }
                block
            }
            None if b == 1 => Matrix::from_vec(1, s.len(), s.rows.matvec_transposed(queries.row(0))),
            None => queries.matmul_transposed(&s.rows),
        })
    }

    /// Ranks one shard's score slice locally: top `min(k, len)` items as
    /// global ids, masking seen items shard-locally through the global
    /// bitmap (fused mask+select — the score slice is never written).
    pub fn shard_top_k(&self, shard: usize, shard_scores: &[f32], k: usize, seen: Option<&[bool]>) -> Vec<ScoredItem> {
        let s = &self.shards[shard];
        assert_eq!(
            shard_scores.len(),
            s.len(),
            "shard_top_k: {} scores for a {}-item shard",
            shard_scores.len(),
            s.len()
        );
        let local_seen = seen.map(|bits| &bits[s.offset..s.offset + s.len()]);
        let local = match local_seen {
            Some(bits) => top_k_indices_masked(shard_scores, k, bits),
            None => top_k_indices(shard_scores, k),
        };
        local
            .into_iter()
            .map(|l| {
                let masked = local_seen.is_some_and(|bits| bits[l]);
                let score = if masked { f32::NEG_INFINITY } else { shard_scores[l] };
                ScoredItem { item: s.offset + l, score }
            })
            .collect()
    }

    /// Index of the only non-empty shard, when there is exactly one — the
    /// degenerate layout where per-shard ranking already *is* the global
    /// ranking and the k-way merge (and the parallel fan-out) can be
    /// bypassed.
    fn sole_active_shard(&self) -> Option<usize> {
        let mut active = self.shards.iter().enumerate().filter(|(_, s)| !s.is_empty());
        match (active.next(), active.next()) {
            (Some((s, _)), None) => Some(s),
            _ => None,
        }
    }

    /// Exact global top-k for one query: per-shard GEMV + local ranking,
    /// then the k-way merge. `seen` is the global seen-item bitmap (length
    /// `num_items`) or `None` to rank the full catalogue.
    ///
    /// Bit-identical to scoring the unsharded matrix and ranking once, for
    /// any shard count.
    pub fn top_k(&self, query: &[f32], k: usize, seen: Option<&[bool]>) -> Vec<ScoredItem> {
        self.top_k_with_buf(query, k, seen, &mut Vec::new())
    }

    /// [`Self::top_k`] with a caller-provided score buffer: every shard GEMV
    /// writes into `scores_buf` (grown once to the largest shard, then
    /// reused), so a serving loop holding the buffer performs no score
    /// allocation per request.
    pub fn top_k_with_buf(
        &self,
        query: &[f32],
        k: usize,
        seen: Option<&[bool]>,
        scores_buf: &mut Vec<f32>,
    ) -> Vec<ScoredItem> {
        let max_len = self.shards.iter().map(Shard::len).max().unwrap_or(0);
        if scores_buf.len() < max_len {
            scores_buf.resize(max_len, 0.0);
        }
        if let Some(s) = self.sole_active_shard() {
            let scores = &mut scores_buf[..self.shards[s].len()];
            self.shard_scores_into(s, query, scores);
            return self.shard_top_k(s, scores, k, seen);
        }
        let per_shard: Vec<Vec<ScoredItem>> = (0..self.shards.len())
            .map(|s| {
                let scores = &mut scores_buf[..self.shards[s].len()];
                self.shard_scores_into(s, query, scores);
                self.shard_top_k(s, scores, k, seen)
            })
            .collect();
        merge_top_k(&per_shard, k)
    }

    /// Global top-k through the quantized candidate path: per-shard int8
    /// GEMV pre-selection of the quantized top-`2k`, k-way merge, then an
    /// **exact f32 re-rank** of the merged candidates.
    ///
    /// The re-rank scores each candidate with the same dispatched per-row
    /// dot kernel the exact GEMV path uses, and ranks with the same
    /// comparator — so whenever every exact winner survives the quantized
    /// 2k pre-selection (the recall guardrail the serving tests pin), the
    /// result is bit-identical, ids and order, to [`Self::top_k`]. The
    /// pre-selection itself is integer-accumulated and bit-identical across
    /// tiers and shard counts by construction.
    ///
    /// `qquery` is the reusable query-quantization scratch
    /// (re-quantized in place from `query` on every call).
    ///
    /// # Panics
    /// Panics if the catalogue was not quantized
    /// ([`Self::with_quantization`]).
    pub fn quantized_top_k_with_buf(
        &self,
        query: &[f32],
        k: usize,
        seen: Option<&[bool]>,
        scores_buf: &mut Vec<f32>,
        qquery: &mut QuantizedQuery,
    ) -> Vec<ScoredItem> {
        let pre_k = k.saturating_mul(2);
        qquery.requantize(query);
        let max_len = self.shards.iter().map(Shard::len).max().unwrap_or(0);
        if scores_buf.len() < max_len {
            scores_buf.resize(max_len, 0.0);
        }
        let per_shard: Vec<Vec<ScoredItem>> = (0..self.shards.len())
            .map(|s| {
                let panel = self.shards[s].quantized.as_ref().expect("quantized_top_k on an unquantized catalogue");
                let scores = &mut scores_buf[..self.shards[s].len()];
                kernels::quantized_matvec_into(panel, qquery, scores);
                self.shard_top_k(s, scores, pre_k, seen)
            })
            .collect();
        let candidates = merge_top_k(&per_shard, pre_k);
        self.rerank_exact(candidates, query, k, seen)
    }

    /// Re-scores `candidates` with the exact f32 per-row dot (the same
    /// dispatched kernel chain as the exact GEMV path — bit-identical per
    /// row), re-applies the mask, and keeps the top `k` under the exact
    /// comparator. Crate-visible so the deadline-bounded degraded path
    /// (`degrade`) re-ranks its quantized pre-selection with the very same
    /// code and stays bit-identical when no shard was dropped.
    pub(crate) fn rerank_exact(
        &self,
        candidates: Vec<ScoredItem>,
        query: &[f32],
        k: usize,
        seen: Option<&[bool]>,
    ) -> Vec<ScoredItem> {
        let mut exact: Vec<ScoredItem> = candidates
            .into_iter()
            .map(|c| {
                let masked = seen.is_some_and(|bits| bits[c.item]);
                let score = if masked {
                    f32::NEG_INFINITY
                } else {
                    let (s, local) = self.locate(c.item);
                    kernels::dot(self.shards[s].rows.row(local), query)
                };
                ScoredItem { item: c.item, score }
            })
            .collect();
        exact.sort_by(|a, b| better(b, a));
        exact.truncate(k);
        exact
    }

    /// Shard index and shard-local row of a global item id.
    fn locate(&self, item: usize) -> (usize, usize) {
        debug_assert!(item < self.num_items);
        let s = self.shards.partition_point(|sh| sh.offset + sh.len() <= item);
        (s, item - self.shards[s].offset)
    }

    /// Batched [`Self::quantized_top_k_with_buf`]: one int8 GEMM per shard
    /// (in parallel across shards on `pool` when given), then per-row
    /// pre-selection, merge and exact re-rank.
    ///
    /// Because the re-rank rescores with the exact per-row dot, a batched
    /// quantized request returns the same bits as the single-request
    /// quantized path — batching changes throughput, never results.
    ///
    /// # Panics
    /// Panics if the catalogue was not quantized or the per-row argument
    /// lengths disagree with the batch size.
    pub fn quantized_top_k_batch(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
    ) -> Vec<Vec<ScoredItem>> {
        self.quantized_top_k_batch_traced(queries, ks, seen_items, pool, None)
    }

    /// [`Self::quantized_top_k_batch`] with stage timing: when `trace` is
    /// given, per-shard GEMM durations, the ranking/merge loop and the exact
    /// re-rank are clocked into it. `None` serves identically with no
    /// timing overhead beyond one branch.
    pub fn quantized_top_k_batch_traced(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
        trace: Option<&mut StageTrace>,
    ) -> Vec<Vec<ScoredItem>> {
        let b = queries.rows();
        assert_eq!(ks.len(), b, "quantized_top_k_batch: {} k values for {} queries", ks.len(), b);
        assert_eq!(seen_items.len(), b, "quantized_top_k_batch: {} seen lists for {} queries", seen_items.len(), b);
        let qqueries: Vec<QuantizedQuery> = (0..b).map(|i| QuantizedQuery::quantize(queries.row(i))).collect();
        let mut blocks: Vec<Option<(Matrix, u64)>> = self.shards.iter().map(|_| None).collect();
        let parallel_useful = self.shards.iter().filter(|s| !s.is_empty()).count() > 1;
        let score_shard = |s: usize| {
            let started = Instant::now();
            let panel = self.shards[s].quantized.as_ref().expect("quantized_top_k on an unquantized catalogue");
            let mut block = Matrix::zeros(b, panel.rows());
            kernels::quantized_matmul_transposed_into(&qqueries, panel, &mut block);
            (block, started.elapsed().as_micros() as u64)
        };
        match pool {
            Some(pool) if parallel_useful => pool.scope(|scope| {
                for (s, block) in blocks.iter_mut().enumerate() {
                    let score_shard = &score_shard;
                    scope.spawn(move || *block = Some(score_shard(s)));
                }
            }),
            _ => {
                for (s, block) in blocks.iter_mut().enumerate() {
                    *block = Some(score_shard(s));
                }
            }
        }
        let mut shard_micros = Vec::new();
        let blocks: Vec<Matrix> = blocks
            .into_iter()
            .enumerate()
            .map(|(s, b)| {
                let (block, micros) = b.expect("shard scoring task never ran");
                shard_micros.push((s, micros));
                block
            })
            .collect();
        let rank_started = trace.is_some().then(Instant::now);
        let mut rerank_micros = 0u64;
        let mut scratch = vec![false; self.num_items];
        let mut out = Vec::with_capacity(b);
        for i in 0..b {
            let seen = match seen_items[i] {
                Some(items) => {
                    mark_seen(&mut scratch, items);
                    Some(scratch.as_slice())
                }
                None => None,
            };
            let pre_k = ks[i].saturating_mul(2);
            let per_shard: Vec<Vec<ScoredItem>> =
                (0..self.shards.len()).map(|s| self.shard_top_k(s, blocks[s].row(i), pre_k, seen)).collect();
            let candidates = merge_top_k(&per_shard, pre_k);
            let rerank_started = trace.is_some().then(Instant::now);
            let merged = self.rerank_exact(candidates, queries.row(i), ks[i], seen);
            if let Some(at) = rerank_started {
                rerank_micros += at.elapsed().as_micros() as u64;
            }
            if let Some(items) = seen_items[i] {
                clear_seen(&mut scratch, items);
            }
            out.push(merged);
        }
        if let Some(trace) = trace {
            trace.shard_score_micros = shard_micros;
            let rank_micros = rank_started.map_or(0, |at| at.elapsed().as_micros() as u64);
            trace.merge_micros = rank_micros.saturating_sub(rerank_micros);
            trace.rerank_micros = rerank_micros;
        }
        out
    }

    /// Exact global top-k for a query batch: one packed-panel GEMM per shard
    /// (shards scored in parallel on `pool` when given), then per-row local
    /// ranking and merging. `ks[i]` and `seen_items[i]` apply to query row
    /// `i`; a row's seen items are the item ids to exclude (`None` ranks the
    /// full catalogue; ids outside the catalogue are ignored).
    ///
    /// The ranking stage reuses **one** catalogue bitmap across the whole
    /// batch, marked and cleared per row in O(history) — no per-request
    /// bitmap allocation or O(catalogue) zeroing on the serving hot path.
    ///
    /// # Panics
    /// Panics if `ks` or `seen_items` do not have one entry per query row.
    pub fn top_k_batch(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
    ) -> Vec<Vec<ScoredItem>> {
        self.top_k_batch_traced(queries, ks, seen_items, pool, None)
    }

    /// [`Self::top_k_batch`] with stage timing: when `trace` is given,
    /// per-shard GEMM durations and the ranking/merge loop are clocked into
    /// it. `None` serves identically with no timing overhead beyond one
    /// branch.
    pub fn top_k_batch_traced(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
        trace: Option<&mut StageTrace>,
    ) -> Vec<Vec<ScoredItem>> {
        let b = queries.rows();
        assert_eq!(ks.len(), b, "top_k_batch: {} k values for {} queries", ks.len(), b);
        assert_eq!(seen_items.len(), b, "top_k_batch: {} seen lists for {} queries", seen_items.len(), b);
        let mut blocks: Vec<Option<(Matrix, u64)>> = self.shards.iter().map(|_| None).collect();
        // A single (or single non-empty) shard has nothing to overlap — skip
        // the pool handoff and score inline on the caller.
        let parallel_useful = self.shards.iter().filter(|s| !s.is_empty()).count() > 1;
        let score_shard = |s: usize| {
            let started = Instant::now();
            let block = self.shard_scores_batch(s, queries);
            (block, started.elapsed().as_micros() as u64)
        };
        match pool {
            Some(pool) if parallel_useful => pool.scope(|scope| {
                for (s, block) in blocks.iter_mut().enumerate() {
                    let score_shard = &score_shard;
                    scope.spawn(move || *block = Some(score_shard(s)));
                }
            }),
            _ => {
                for (s, block) in blocks.iter_mut().enumerate() {
                    *block = Some(score_shard(s));
                }
            }
        }
        let mut shard_micros = Vec::new();
        let blocks: Vec<Matrix> = blocks
            .into_iter()
            .enumerate()
            .map(|(s, b)| {
                let (block, micros) = b.expect("shard scoring task never ran");
                shard_micros.push((s, micros));
                block
            })
            .collect();
        let rank_started = trace.is_some().then(Instant::now);
        let mut scratch = vec![false; self.num_items];
        let sole = self.sole_active_shard();
        let mut out = Vec::with_capacity(b);
        for i in 0..b {
            let seen = match seen_items[i] {
                Some(items) => {
                    mark_seen(&mut scratch, items);
                    Some(scratch.as_slice())
                }
                None => None,
            };
            // With one active shard the local ranking is the global ranking.
            let merged = match sole {
                Some(s) => self.shard_top_k(s, blocks[s].row(i), ks[i], seen),
                None => {
                    let per_shard: Vec<Vec<ScoredItem>> =
                        (0..self.shards.len()).map(|s| self.shard_top_k(s, blocks[s].row(i), ks[i], seen)).collect();
                    merge_top_k(&per_shard, ks[i])
                }
            };
            if let Some(items) = seen_items[i] {
                clear_seen(&mut scratch, items);
            }
            out.push(merged);
        }
        if let Some(trace) = trace {
            trace.shard_score_micros = shard_micros;
            trace.merge_micros = rank_started.map_or(0, |at| at.elapsed().as_micros() as u64);
        }
        out
    }
}

/// Marks every in-catalogue id of `items` in the bitmap (O(history)).
pub(crate) fn mark_seen(bits: &mut [bool], items: &[ItemId]) {
    for &item in items {
        if item < bits.len() {
            bits[item] = true;
        }
    }
}

/// Clears the marks of [`mark_seen`], leaving the bitmap all-clear again.
pub(crate) fn clear_seen(bits: &mut [bool], items: &[ItemId]) {
    for &item in items {
        if item < bits.len() {
            bits[item] = false;
        }
    }
}

/// "Better recommendation" ordering: higher score wins, ties go to the lower
/// global item id; NaN compares equal to everything (same convention as
/// `top_k_indices`).
fn better(a: &ScoredItem, b: &ScoredItem) -> std::cmp::Ordering {
    a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal).then(b.item.cmp(&a.item))
}

/// Head of one per-shard list inside the k-way merge heap.
struct MergeHead {
    entry: ScoredItem,
    list: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        better(&self.entry, &other.entry) == std::cmp::Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        better(&self.entry, &other.entry)
    }
}

/// Merges per-shard top-k lists (each sorted by descending preference) into
/// the exact global top-k with a k-way heap: `O(total log s)` for `s` lists.
///
/// Returns fewer than `k` items only when the lists hold fewer than `k`
/// entries in total (k larger than the catalogue).
pub fn merge_top_k(per_shard: &[Vec<ScoredItem>], k: usize) -> Vec<ScoredItem> {
    let mut heap: std::collections::BinaryHeap<MergeHead> = per_shard
        .iter()
        .enumerate()
        .filter_map(|(list, items)| items.first().map(|&entry| MergeHead { entry, list, pos: 0 }))
        .collect();
    let mut out = Vec::with_capacity(k.min(per_shard.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(head.entry);
        if let Some(&next) = per_shard[head.list].get(head.pos + 1) {
            heap.push(MergeHead { entry: next, list: head.list, pos: head.pos + 1 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogue(n: usize, d: usize) -> Matrix {
        Matrix::from_vec(n, d, (0..n * d).map(|i| ((i * 37) % 23) as f32 * 0.5 - 5.0).collect())
    }

    #[test]
    fn shards_partition_the_catalogue() {
        let w = catalogue(10, 4);
        let cat = ShardedCatalog::from_matrix(&w, 3);
        assert_eq!(cat.num_shards(), 3);
        let lens: Vec<usize> = cat.shards().iter().map(Shard::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        let offsets: Vec<usize> = cat.shards().iter().map(Shard::offset).collect();
        assert_eq!(offsets, vec![0, 4, 7]);
        // Row 6 of the catalogue is row 2 of shard 1.
        assert_eq!(cat.shards()[1].rows().row(2), w.row(6));
    }

    #[test]
    fn more_shards_than_items_yields_empty_shards() {
        let w = catalogue(2, 3);
        let cat = ShardedCatalog::from_matrix(&w, 5);
        assert_eq!(cat.num_shards(), 5);
        assert_eq!(cat.shards().iter().filter(|s| s.is_empty()).count(), 3);
        let q = vec![1.0; 3];
        let top = cat.top_k(&q, 2, None);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn sharded_top_k_equals_unsharded_for_every_shard_count() {
        let w = catalogue(57, 8);
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).sin()).collect();
        let reference: Vec<usize> = top_k_indices(&w.matvec_transposed(&q), 10);
        for shards in 1..=8 {
            let cat = ShardedCatalog::from_matrix(&w, shards);
            let ids: Vec<usize> = cat.top_k(&q, 10, None).iter().map(|s| s.item).collect();
            assert_eq!(ids, reference, "shards = {shards}");
        }
    }

    #[test]
    fn merge_breaks_ties_by_lower_item_id() {
        // Two shards, tied scores at the boundary: the lower global id wins,
        // exactly like the single-node tie-break.
        let lists = vec![
            vec![ScoredItem { item: 0, score: 1.0 }, ScoredItem { item: 1, score: 0.5 }],
            vec![ScoredItem { item: 5, score: 1.0 }, ScoredItem { item: 6, score: 0.5 }],
        ];
        let merged = merge_top_k(&lists, 3);
        let ids: Vec<usize> = merged.iter().map(|s| s.item).collect();
        assert_eq!(ids, vec![0, 5, 1]);
    }

    #[test]
    fn merge_with_fewer_candidates_than_k_returns_all() {
        let lists = vec![vec![ScoredItem { item: 2, score: 0.1 }], vec![]];
        assert_eq!(merge_top_k(&lists, 10).len(), 1);
        assert!(merge_top_k(&[], 3).is_empty());
    }

    #[test]
    fn masking_is_shard_local_but_globally_consistent() {
        let w = catalogue(20, 4);
        let q = vec![0.5, -0.25, 1.0, 0.125];
        let seen: Vec<bool> = (0..20).map(|i| i % 3 == 0).collect();
        let reference = top_k_indices_masked(&w.matvec_transposed(&q), 6, &seen);
        for shards in [1, 2, 4, 7] {
            let cat = ShardedCatalog::from_matrix(&w, shards);
            let ids: Vec<usize> = cat.top_k(&q, 6, Some(&seen)).iter().map(|s| s.item).collect();
            assert_eq!(ids, reference, "shards = {shards}");
        }
    }

    #[test]
    fn batch_path_matches_single_query_gemm_reference() {
        let w = catalogue(33, 8);
        let mut queries = Matrix::zeros(3, 8);
        for i in 0..3 {
            for j in 0..8 {
                queries.set(i, j, ((i * 8 + j) as f32 * 0.21).cos());
            }
        }
        // Row 1 excludes its "history" (every 5th item, plus an
        // out-of-catalogue id that must be ignored); rows 0 and 2 rank all.
        let history: Vec<usize> = (0..33).step_by(5).chain([999]).collect();
        let seen_lists = [None, Some(history.as_slice()), None];
        let cat = ShardedCatalog::from_matrix(&w, 4);
        let got = cat.top_k_batch(&queries, &[5, 5, 33], &seen_lists, None);
        // Reference: unsharded GEMM row + the same fused masked ranking.
        let bits: Vec<bool> = (0..33).map(|i| i % 5 == 0).collect();
        let full = queries.matmul_transposed(&w);
        for i in 0..3 {
            let k = [5, 5, 33][i];
            let reference = match seen_lists[i] {
                Some(_) => top_k_indices_masked(full.row(i), k, &bits),
                None => top_k_indices(full.row(i), k),
            };
            let ids: Vec<usize> = got[i].iter().map(|s| s.item).collect();
            assert_eq!(ids, reference, "row {i}");
        }
        // The scratch bitmap is cleared between rows: a second batch with no
        // exclusions must rank the full catalogue for every row.
        let unmasked = cat.top_k_batch(&queries, &[5, 5, 5], &[None, None, None], None);
        assert_eq!(
            unmasked[1].iter().map(|s| s.item).collect::<Vec<_>>(),
            top_k_indices(full.row(1), 5),
            "no residual masking"
        );
    }
}
