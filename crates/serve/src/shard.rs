//! Row-wise sharding of the candidate matrix and exact top-k merging.
//!
//! The scoring head of every model in this workspace is `r = q · Wᵀ`: a
//! per-user query against the rows of the candidate-embedding matrix `W`.
//! That structure shards trivially — split `W` row-wise into
//! [`Shard`]s, score each shard independently with the existing GEMV/GEMM
//! kernels, rank each shard locally, and merge the per-shard top-k lists
//! into the global top-k with a k-way heap.
//!
//! ## Exactness
//!
//! The merge is *exact*, not approximate: any item of the global top-k is by
//! definition among the best `k` of its own shard, so per-shard top-k lists
//! of length `min(k, shard_len)` are guaranteed to contain every global
//! winner. The ordering is bit-identical to the single-node path because
//!
//! * per-row dot products do not change when the rows move into a shard
//!   (the GEMV kernel scores each row independently), and the packed-panel
//!   GEMM accumulates every output element in ascending-`k` order regardless
//!   of how the rows are grouped into panels — so shard scores equal the
//!   corresponding single-node scores bit for bit;
//! * per-shard ranking uses the same fused mask+select kernel as the
//!   single-node path (seen items participate with an effective `-inf`, so
//!   even the degenerate "fewer than k unseen items" padding matches); and
//! * the merge comparator is the same total preference (higher score first,
//!   ties to the lower global item id) used by `top_k_indices`.
//!
//! ## The quantized candidate path
//!
//! [`ShardedCatalog::with_quantization`] snapshots every shard's rows as an
//! int8 [`QuantizedMatrix`] panel alongside the f32 original. The quantized
//! serving path ([`ShardedCatalog::quantized_top_k_with_buf`]) then scores
//! each shard against the i8 panel (¼ of the memory traffic), pre-selects the
//! quantized top-`2k` per shard through the same fused mask+select kernel,
//! merges, and **re-ranks the merged candidates with the exact f32 per-row
//! dot** — the very kernel chain the exact GEMV path uses — so the served
//! top-k is bit-identical to the exact path whenever the exact winners
//! survive the 2k pre-selection (the recall guardrail pinned by the serving
//! test-suite, not a silent approximation). Quantized pre-selection scores
//! are integer-accumulated and therefore bit-identical across tiers and
//! shard counts by construction.

use crate::ivf::{ClusterIndex, IvfConfig, PROBE_ALL};
use crate::trace::StageTrace;
use ham_data::dataset::ItemId;
use ham_faults::{FaultInjector, ShardFault};
use ham_tensor::kernels;
use ham_tensor::ops::{top_k_indices, top_k_indices_masked, top_k_indices_masked_with};
use ham_tensor::pool::ThreadPool;
use ham_tensor::{Matrix, QuantizedMatrix, QuantizedQuery};
use std::time::{Duration, Instant};

/// One recommended item with its model score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// Global catalogue item id.
    pub item: ItemId,
    /// The model score (`-inf` for masked items padding a degenerate tail).
    pub score: f32,
}

/// A contiguous row range of the candidate matrix, owned by one shard.
#[derive(Debug, Clone)]
pub struct Shard {
    offset: usize,
    rows: Matrix,
    /// Int8 snapshot of `rows` for the quantized pre-selection path
    /// (`None` until [`ShardedCatalog::with_quantization`]).
    quantized: Option<QuantizedMatrix>,
    /// Inverted-file index over `rows` for cluster-routed retrieval
    /// (`None` until [`ShardedCatalog::with_cluster_index`]).
    ivf: Option<ClusterIndex>,
}

impl Shard {
    /// Global item id of the shard's first row.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of items in the shard.
    pub fn len(&self) -> usize {
        self.rows.rows()
    }

    /// True when the shard holds no items (more shards than items).
    pub fn is_empty(&self) -> bool {
        self.rows.rows() == 0
    }

    /// The shard's slice of the candidate matrix.
    pub fn rows(&self) -> &Matrix {
        &self.rows
    }

    /// The shard's int8 panel, when the catalogue was quantized.
    pub fn quantized(&self) -> Option<&QuantizedMatrix> {
        self.quantized.as_ref()
    }

    /// Number of IVF clusters over this shard (0 when no index was built).
    pub fn num_clusters(&self) -> usize {
        self.ivf.as_ref().map_or(0, ClusterIndex::num_clusters)
    }
}

/// The candidate matrix `W` split row-wise into shards.
#[derive(Debug, Clone)]
pub struct ShardedCatalog {
    shards: Vec<Shard>,
    num_items: usize,
    dim: usize,
    /// Clusters visited per shard per request on the IVF paths
    /// ([`crate::ivf::PROBE_ALL`] = every cluster, the exact endpoint).
    /// Ignored until a cluster index is built.
    nprobe: usize,
}

impl ShardedCatalog {
    /// Splits `w` into `num_shards` near-even contiguous row ranges (the
    /// first `n % num_shards` shards hold one extra row). Shards beyond the
    /// item count come out empty and are handled gracefully everywhere.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    pub fn from_matrix(w: &Matrix, num_shards: usize) -> Self {
        assert!(num_shards > 0, "ShardedCatalog: need at least one shard");
        let (n, d) = w.shape();
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut offset = 0;
        for s in 0..num_shards {
            let len = base + usize::from(s < extra);
            let rows = Matrix::from_vec(len, d, w.as_slice()[offset * d..(offset + len) * d].to_vec());
            shards.push(Shard { offset, rows, quantized: None, ivf: None });
            offset += len;
        }
        Self { shards, num_items: n, dim: d, nprobe: PROBE_ALL }
    }

    /// Snapshots every shard's rows as an int8 panel, enabling the quantized
    /// pre-selection path. The f32 rows stay authoritative — the exact
    /// re-rank and the f32 serving paths keep reading them. A cluster index
    /// built earlier gets its panels quantized too, so the IVF and quantized
    /// tiers compose in either construction order.
    pub fn with_quantization(mut self) -> Self {
        for shard in &mut self.shards {
            shard.quantized = Some(QuantizedMatrix::quantize(&shard.rows));
            if let Some(ivf) = &mut shard.ivf {
                ivf.quantize_panels();
            }
        }
        self
    }

    /// Builds a per-shard inverted-file index ([`ClusterIndex`]) with the
    /// deterministic seeded k-means and switches serving to the
    /// cluster-routed IVF paths, visiting `config.nprobe` clusters per shard
    /// per request. With `nprobe = all` (the [`IvfConfig::auto`] default)
    /// results stay bit-identical to the exact paths; narrower probes trade
    /// measured recall for sub-linear scan cost.
    pub fn with_cluster_index(mut self, config: &IvfConfig) -> Self {
        for shard in &mut self.shards {
            let mut index = ClusterIndex::build(&shard.rows, config, shard.offset as u64);
            if shard.quantized.is_some() {
                index.quantize_panels();
            }
            shard.ivf = Some(index);
        }
        self.nprobe = config.nprobe.max(1);
        self
    }

    /// Re-dials the probe width on an already-built index (cheap — no
    /// rebuild). No-op semantics aside, serving with `nprobe = all` is the
    /// verified exact endpoint.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe.max(1);
        self
    }

    /// Clusters visited per shard per request on the IVF paths.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Whether every shard carries a cluster index (serving then routes
    /// through the IVF paths).
    pub fn is_clustered(&self) -> bool {
        self.shards.iter().all(|s| s.ivf.is_some())
    }

    /// Total (non-empty) clusters across shards, 0 when unclustered.
    pub fn num_clusters(&self) -> usize {
        self.shards.iter().map(Shard::num_clusters).sum()
    }

    /// Clusters a request visits across all shards: `min(nprobe, clusters)`
    /// summed per shard. Deterministic per catalogue (routing picks *which*
    /// clusters, never how many), so responses can report it as retrieval
    /// metadata. 0 when the catalogue is unclustered (exact serving).
    pub fn clusters_probed(&self) -> usize {
        if !self.is_clustered() {
            return 0;
        }
        self.shards.iter().map(|s| self.nprobe.min(s.num_clusters())).sum()
    }

    /// Whether the shards carry int8 panels ([`Self::with_quantization`]).
    pub fn is_quantized(&self) -> bool {
        self.shards.iter().all(|s| s.quantized.is_some())
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total catalogue size across shards.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Embedding dimension of the candidate rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shards, in global row order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Scores one query against one shard (fused GEMV over the shard rows).
    pub fn shard_scores(&self, shard: usize, query: &[f32]) -> Vec<f32> {
        self.shards[shard].rows.matvec_transposed(query)
    }

    /// [`Self::shard_scores`] into a caller-provided buffer (overwritten) —
    /// the serving hot path reuses one buffer across shards and requests
    /// instead of allocating a fresh `Vec` per GEMV.
    ///
    /// # Panics
    /// Panics if `out.len()` is not the shard's length.
    // ham-lint: hot-path
    pub fn shard_scores_into(&self, shard: usize, query: &[f32], out: &mut [f32]) {
        self.shards[shard].rows.matvec_transposed_into(query, out);
    }

    /// Scores a query batch against one shard (packed-panel GEMM), returning
    /// a `queries.rows() × shard_len` block.
    pub fn shard_scores_batch(&self, shard: usize, queries: &Matrix) -> Matrix {
        queries.matmul_transposed(&self.shards[shard].rows)
    }

    /// The degraded path's per-shard scoring unit: applies any injected
    /// fault for `shard` (a [`ShardFault::Delay`] sleeps cooperatively, a
    /// [`ShardFault::Panic`] panics — the caller runs this under
    /// `catch_unwind`), then scores the whole query block against the shard.
    ///
    /// Scoring picks the kernel by batch size so the result is bit-identical
    /// to the corresponding exact path: a single query goes through the
    /// fused GEMV (`matvec_transposed` / `quantized_matvec_into`, the very
    /// kernels `top_k_with_buf` uses — GEMM-of-one-row is *not* bit-equal to
    /// GEMV), a larger batch through the packed-panel GEMM the batched paths
    /// use. `qqueries` must be `Some` exactly when the catalogue is
    /// quantized.
    ///
    /// Returns `None` when `cancelled` turned true during an injected delay:
    /// the batch already gave up on this shard, so the remaining sleep and
    /// the scoring work are skipped to free the executor worker quickly.
    ///
    /// On a clustered catalogue the shard routes, scores and **ranks**
    /// in-task ([`ShardBlock::Ranked`]): the coordinator has no dense block
    /// to rank unvisited rows from, so the per-request shortlists (to
    /// `select_ks[i]`, seen items masked via `seen_items[i]`) come back
    /// pre-built — computed with the very same routing GEMV, panel kernels
    /// and fused mask+select as the unbounded IVF paths, so an undegraded
    /// bounded response stays bit-identical to the classic one.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn score_shard_block_faulted(
        &self,
        shard: usize,
        queries: &Matrix,
        qqueries: Option<&[QuantizedQuery]>,
        select_ks: &[usize],
        seen_items: &[Option<Vec<ItemId>>],
        faults: &FaultInjector,
        cancelled: &dyn Fn() -> bool,
    ) -> Option<ShardBlock> {
        match faults.shard_fault(shard) {
            Some(ShardFault::Delay(delay)) => {
                // Sleep in small slices, checking for cancellation between
                // them: a shard whose batch already timed out must stop
                // clogging the bulkhead executor within ~1ms, not `delay`.
                let until = Instant::now() + delay;
                loop {
                    if cancelled() {
                        return None;
                    }
                    let now = Instant::now();
                    if now >= until {
                        break;
                    }
                    std::thread::sleep((until - now).min(Duration::from_millis(1)));
                }
            }
            Some(ShardFault::Panic) => panic!("ham-faults: injected panic in shard {shard}"),
            None => {}
        }
        if cancelled() {
            return None;
        }
        let b = queries.rows();
        let s = &self.shards[shard];
        if s.ivf.is_some() {
            return Some(ShardBlock::Ranked(
                self.ivf_rank_shard_in_task(shard, queries, qqueries, select_ks, seen_items),
            ));
        }
        Some(ShardBlock::Dense(match qqueries {
            Some(qq) => {
                // ham-lint: allow(panic, "callers gate on catalogue quantization; the panel is built at construction")
                let panel = s.quantized.as_ref().expect("quantized scoring on an unquantized catalogue");
                let mut block = Matrix::zeros(b, panel.rows());
                if b == 1 {
                    kernels::quantized_matvec_into(panel, &qq[0], block.row_mut(0));
                } else {
                    kernels::quantized_matmul_transposed_into(qq, panel, &mut block);
                }
                block
            }
            None if b == 1 => Matrix::from_vec(1, s.len(), s.rows.matvec_transposed(queries.row(0))),
            None => queries.matmul_transposed(&s.rows),
        }))
    }

    /// The clustered half of [`Self::score_shard_block_faulted`]: routes,
    /// scores and ranks one shard's batch entirely inside the bulkhead task.
    /// Kernel choice follows the batch size exactly like the dense path —
    /// per-cluster GEMV for a batch of one (matching the solo IVF path's
    /// bits), per-cluster packed GEMM otherwise (matching the batched IVF
    /// path's bits).
    fn ivf_rank_shard_in_task(
        &self,
        shard: usize,
        queries: &Matrix,
        qqueries: Option<&[QuantizedQuery]>,
        select_ks: &[usize],
        seen_items: &[Option<Vec<ItemId>>],
    ) -> Vec<Vec<ScoredItem>> {
        let b = queries.rows();
        let s = &self.shards[shard];
        // ham-lint: allow(panic, "only called for shards the IVF dispatch selected, which requires the index")
        let index = s.ivf.as_ref().expect("ivf_rank_shard_in_task on an unclustered shard");
        let c = index.num_clusters();
        if c == 0 {
            return vec![Vec::new(); b];
        }
        let probe = self.nprobe.min(c);
        let mut union = vec![false; c];
        let visited: Vec<Vec<usize>> = (0..b)
            .map(|i| {
                let route = index.centroids().matvec_transposed(queries.row(i));
                let v = top_k_indices(&route, probe);
                for &j in &v {
                    union[j] = true;
                }
                v
            })
            .collect();
        let blocks: Vec<Option<Matrix>> = (0..c)
            .map(|j| {
                if !union[j] {
                    return None;
                }
                Some(match qqueries {
                    Some(qq) => {
                        let panel = index.qpanel(j);
                        let mut block = Matrix::zeros(b, panel.rows());
                        if b == 1 {
                            kernels::quantized_matvec_into(panel, &qq[0], block.row_mut(0));
                        } else {
                            kernels::quantized_matmul_transposed_into(qq, panel, &mut block);
                        }
                        block
                    }
                    None if b == 1 => Matrix::from_vec(
                        1,
                        index.cluster_ids(j).len(),
                        index.panel(j).matvec_transposed(queries.row(0)),
                    ),
                    None => queries.matmul_transposed(index.panel(j)),
                })
            })
            .collect();
        // Shard-local seen bitmap, marked and cleared per request in
        // O(history ∩ shard).
        let mut local_seen = vec![false; s.len()];
        let mark = |bits: &mut [bool], items: &[ItemId], value: bool| {
            for &item in items {
                if item >= s.offset && item < s.offset + bits.len() {
                    bits[item - s.offset] = value;
                }
            }
        };
        let mut out = Vec::with_capacity(b);
        for i in 0..b {
            let seen = seen_items[i].as_deref();
            if let Some(items) = seen {
                mark(&mut local_seen, items, true);
            }
            let mut lists = Vec::with_capacity(visited[i].len());
            for &j in &visited[i] {
                // ham-lint: allow(panic, "the loop above scored every visited cluster before ranking")
                let block = blocks[j].as_ref().expect("visited cluster left unscored");
                lists.push(rank_panel(
                    s.offset,
                    index.cluster_ids(j),
                    block.row(i),
                    select_ks[i],
                    seen.is_some().then_some(local_seen.as_slice()),
                ));
            }
            if let Some(items) = seen {
                mark(&mut local_seen, items, false);
            }
            out.push(merge_top_k(&lists, select_ks[i]));
        }
        out
    }

    /// Ranks one shard's score slice locally: top `min(k, len)` items as
    /// global ids, masking seen items shard-locally through the global
    /// bitmap (fused mask+select — the score slice is never written).
    pub fn shard_top_k(&self, shard: usize, shard_scores: &[f32], k: usize, seen: Option<&[bool]>) -> Vec<ScoredItem> {
        let s = &self.shards[shard];
        assert_eq!(
            shard_scores.len(),
            s.len(),
            "shard_top_k: {} scores for a {}-item shard",
            shard_scores.len(),
            s.len()
        );
        let local_seen = seen.map(|bits| &bits[s.offset..s.offset + s.len()]);
        let local = match local_seen {
            Some(bits) => top_k_indices_masked(shard_scores, k, bits),
            None => top_k_indices(shard_scores, k),
        };
        local
            .into_iter()
            .map(|l| {
                let masked = local_seen.is_some_and(|bits| bits[l]);
                let score = if masked { f32::NEG_INFINITY } else { shard_scores[l] };
                ScoredItem { item: s.offset + l, score }
            })
            .collect()
    }

    /// Index of the only non-empty shard, when there is exactly one — the
    /// degenerate layout where per-shard ranking already *is* the global
    /// ranking and the k-way merge (and the parallel fan-out) can be
    /// bypassed.
    fn sole_active_shard(&self) -> Option<usize> {
        let mut active = self.shards.iter().enumerate().filter(|(_, s)| !s.is_empty());
        match (active.next(), active.next()) {
            (Some((s, _)), None) => Some(s),
            _ => None,
        }
    }

    /// Exact global top-k for one query: per-shard GEMV + local ranking,
    /// then the k-way merge. `seen` is the global seen-item bitmap (length
    /// `num_items`) or `None` to rank the full catalogue.
    ///
    /// Bit-identical to scoring the unsharded matrix and ranking once, for
    /// any shard count.
    pub fn top_k(&self, query: &[f32], k: usize, seen: Option<&[bool]>) -> Vec<ScoredItem> {
        self.top_k_with_buf(query, k, seen, &mut Vec::new())
    }

    /// [`Self::top_k`] with a caller-provided score buffer: every shard GEMV
    /// writes into `scores_buf` (grown once to the largest shard, then
    /// reused), so a serving loop holding the buffer performs no score
    /// allocation per request.
    // ham-lint: hot-path
    pub fn top_k_with_buf(
        &self,
        query: &[f32],
        k: usize,
        seen: Option<&[bool]>,
        scores_buf: &mut Vec<f32>,
    ) -> Vec<ScoredItem> {
        if self.is_clustered() {
            // ham-lint: allow(alloc, "IVF fallback only — the serving loop passes a scratch route_buf instead")
            return self.ivf_top_k_with_buf(query, k, seen, scores_buf, &mut Vec::new());
        }
        let max_len = self.shards.iter().map(Shard::len).max().unwrap_or(0);
        if scores_buf.len() < max_len {
            scores_buf.resize(max_len, 0.0);
        }
        if let Some(s) = self.sole_active_shard() {
            let scores = &mut scores_buf[..self.shards[s].len()];
            self.shard_scores_into(s, query, scores);
            return self.shard_top_k(s, scores, k, seen);
        }
        let per_shard: Vec<Vec<ScoredItem>> = (0..self.shards.len())
            .map(|s| {
                let scores = &mut scores_buf[..self.shards[s].len()];
                self.shard_scores_into(s, query, scores);
                self.shard_top_k(s, scores, k, seen)
            })
            // ham-lint: allow(alloc, "the returned per-shard rankings are the response payload, k elements each")
            .collect();
        merge_top_k(&per_shard, k)
    }

    /// Global top-k through the quantized candidate path: per-shard int8
    /// GEMV pre-selection of the quantized top-`2k`, k-way merge, then an
    /// **exact f32 re-rank** of the merged candidates.
    ///
    /// The re-rank scores each candidate with the same dispatched per-row
    /// dot kernel the exact GEMV path uses, and ranks with the same
    /// comparator — so whenever every exact winner survives the quantized
    /// 2k pre-selection (the recall guardrail the serving tests pin), the
    /// result is bit-identical, ids and order, to [`Self::top_k`]. The
    /// pre-selection itself is integer-accumulated and bit-identical across
    /// tiers and shard counts by construction.
    ///
    /// `qquery` is the reusable query-quantization scratch
    /// (re-quantized in place from `query` on every call).
    ///
    /// # Panics
    /// Panics if the catalogue was not quantized
    /// ([`Self::with_quantization`]).
    pub fn quantized_top_k_with_buf(
        &self,
        query: &[f32],
        k: usize,
        seen: Option<&[bool]>,
        scores_buf: &mut Vec<f32>,
        qquery: &mut QuantizedQuery,
    ) -> Vec<ScoredItem> {
        if self.is_clustered() {
            return self.ivf_quantized_top_k_with_buf(query, k, seen, scores_buf, qquery, &mut Vec::new());
        }
        let pre_k = k.saturating_mul(2);
        qquery.requantize(query);
        let max_len = self.shards.iter().map(Shard::len).max().unwrap_or(0);
        if scores_buf.len() < max_len {
            scores_buf.resize(max_len, 0.0);
        }
        let per_shard: Vec<Vec<ScoredItem>> = (0..self.shards.len())
            .map(|s| {
                // ham-lint: allow(panic, "callers gate on catalogue quantization; the panel is built at construction")
                let panel = self.shards[s].quantized.as_ref().expect("quantized_top_k on an unquantized catalogue");
                let scores = &mut scores_buf[..self.shards[s].len()];
                kernels::quantized_matvec_into(panel, qquery, scores);
                self.shard_top_k(s, scores, pre_k, seen)
            })
            .collect();
        let candidates = merge_top_k(&per_shard, pre_k);
        self.rerank_exact(candidates, query, k, seen)
    }

    /// Exact-or-approximate global top-k through the cluster-routed IVF
    /// paths: per shard, one centroid GEMV routes to the top-`nprobe`
    /// clusters, only those panels are scored (per-row GEMV — the same
    /// kernel, so panel scores equal shard scores bit for bit), each panel
    /// is ranked through the fused mask+select with the panel→global id
    /// translation, and the per-cluster shortlists run through the usual
    /// k-way merge. With `nprobe = all` this is bit-identical — ids, order,
    /// scores — to [`Self::top_k_with_buf`] (pinned by the serving suite).
    ///
    /// `route_buf` is the reusable centroid-score buffer (grown once to the
    /// largest per-shard cluster count), so a serving loop holding a scratch
    /// performs no score allocation per request.
    ///
    /// # Panics
    /// Panics if no cluster index was built ([`Self::with_cluster_index`]).
    pub fn ivf_top_k_with_buf(
        &self,
        query: &[f32],
        k: usize,
        seen: Option<&[bool]>,
        scores_buf: &mut Vec<f32>,
        route_buf: &mut Vec<f32>,
    ) -> Vec<ScoredItem> {
        self.grow_ivf_bufs(scores_buf, route_buf);
        let per_shard: Vec<Vec<ScoredItem>> = (0..self.shards.len())
            .map(|s| self.ivf_shard_candidates(s, query, k, seen, scores_buf, route_buf, None))
            .collect();
        merge_top_k(&per_shard, k)
    }

    /// The quantized composition of the IVF path: routing and cluster
    /// selection as in [`Self::ivf_top_k_with_buf`], but each visited panel
    /// is scored through its int8 snapshot pre-selecting the quantized
    /// top-`2k`, and the merged candidates get the **exact f32 re-rank** —
    /// so the int8 path becomes sub-linear too, with the same recall
    /// guardrail semantics as shard-level quantized serving.
    ///
    /// # Panics
    /// Panics if the catalogue was not both quantized and clustered.
    pub fn ivf_quantized_top_k_with_buf(
        &self,
        query: &[f32],
        k: usize,
        seen: Option<&[bool]>,
        scores_buf: &mut Vec<f32>,
        qquery: &mut QuantizedQuery,
        route_buf: &mut Vec<f32>,
    ) -> Vec<ScoredItem> {
        let pre_k = k.saturating_mul(2);
        qquery.requantize(query);
        self.grow_ivf_bufs(scores_buf, route_buf);
        let per_shard: Vec<Vec<ScoredItem>> = (0..self.shards.len())
            .map(|s| self.ivf_shard_candidates(s, query, pre_k, seen, scores_buf, route_buf, Some(qquery)))
            .collect();
        let candidates = merge_top_k(&per_shard, pre_k);
        self.rerank_exact(candidates, query, k, seen)
    }

    /// Grows the score and routing buffers to the largest panel / cluster
    /// count across shards (once; subsequent calls are no-ops).
    fn grow_ivf_bufs(&self, scores_buf: &mut Vec<f32>, route_buf: &mut Vec<f32>) {
        let max_panel = self.shards.iter().filter_map(|s| s.ivf.as_ref()).map(ClusterIndex::max_panel_len).max();
        let max_clusters = self.shards.iter().map(Shard::num_clusters).max().unwrap_or(0);
        if let Some(max_panel) = max_panel {
            if scores_buf.len() < max_panel {
                scores_buf.resize(max_panel, 0.0);
            }
        }
        if route_buf.len() < max_clusters {
            route_buf.resize(max_clusters, 0.0);
        }
    }

    /// One shard's IVF shortlist for one query: route, visit the top-`nprobe`
    /// clusters, rank each visited panel to `select_k` (through the int8
    /// panel when `qquery` is given), and merge the per-cluster lists into
    /// the shard's top-`select_k`. Masked items participate at `-inf` through
    /// the panel-local→global id translation, so tie-breaks and degenerate
    /// padding match the shard-level fused mask+select exactly.
    #[allow(clippy::too_many_arguments)]
    fn ivf_shard_candidates(
        &self,
        s: usize,
        query: &[f32],
        select_k: usize,
        seen: Option<&[bool]>,
        scores_buf: &mut [f32],
        route_buf: &mut [f32],
        qquery: Option<&QuantizedQuery>,
    ) -> Vec<ScoredItem> {
        let shard = &self.shards[s];
        // ham-lint: allow(panic, "IVF entry points are only reachable on clustered catalogues")
        let index = shard.ivf.as_ref().expect("IVF serving on a catalogue without a cluster index");
        let c = index.num_clusters();
        if c == 0 {
            return Vec::new();
        }
        let route = &mut route_buf[..c];
        index.centroids().matvec_transposed_into(query, route);
        let visited = top_k_indices(route, self.nprobe.min(c));
        let local_seen = seen.map(|bits| &bits[shard.offset..shard.offset + shard.len()]);
        let mut lists = Vec::with_capacity(visited.len());
        for j in visited {
            let ids = index.cluster_ids(j);
            let scores = &mut scores_buf[..ids.len()];
            match qquery {
                Some(qq) => kernels::quantized_matvec_into(index.qpanel(j), qq, scores),
                None => index.panel(j).matvec_transposed_into(query, scores),
            }
            lists.push(rank_panel(shard.offset, ids, scores, select_k, local_seen));
        }
        merge_top_k(&lists, select_k)
    }

    /// The batched IVF path shared by [`Self::top_k_batch_traced`] and
    /// [`Self::quantized_top_k_batch_traced`] on clustered catalogues: per
    /// shard, every request routes with its own centroid GEMV (the same
    /// kernel and bits as the solo path — batching never changes *which*
    /// clusters a request visits), then the union of visited clusters is
    /// scored with one packed-panel GEMM per cluster over the whole batch.
    /// Panel GEMM bits equal the shard GEMM bits row for row (ascending-`k`
    /// accumulation is grouping-independent), so at `nprobe = all` this is
    /// bit-identical to the dense batched paths.
    fn ivf_top_k_batch_traced(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
        trace: Option<&mut StageTrace>,
        quantized: bool,
    ) -> Vec<Vec<ScoredItem>> {
        let b = queries.rows();
        let qqueries: Option<Vec<QuantizedQuery>> =
            quantized.then(|| (0..b).map(|i| QuantizedQuery::quantize(queries.row(i))).collect());
        let mut blocks: Vec<Option<(IvfShardBlock, u64)>> = self.shards.iter().map(|_| None).collect();
        let parallel_useful = self.shards.iter().filter(|s| !s.is_empty()).count() > 1;
        let score_shard = |s: usize| {
            let started = Instant::now();
            let block = self.ivf_score_shard_batch(s, queries, qqueries.as_deref());
            (block, started.elapsed().as_micros() as u64)
        };
        match pool {
            Some(pool) if parallel_useful => pool.scope(|scope| {
                for (s, block) in blocks.iter_mut().enumerate() {
                    let score_shard = &score_shard;
                    scope.spawn(move || *block = Some(score_shard(s)));
                }
            }),
            _ => {
                for (s, block) in blocks.iter_mut().enumerate() {
                    *block = Some(score_shard(s));
                }
            }
        }
        let mut shard_micros = Vec::new();
        let blocks: Vec<IvfShardBlock> = blocks
            .into_iter()
            .enumerate()
            .map(|(s, b)| {
                // ham-lint: allow(panic, "pool.scope joins every spawned task; each task fills its slot before returning")
                let (block, micros) = b.expect("shard scoring task never ran");
                shard_micros.push((s, micros));
                block
            })
            .collect();
        let rank_started = trace.is_some().then(Instant::now);
        let mut rerank_micros = 0u64;
        let mut scratch = vec![false; self.num_items];
        let mut out = Vec::with_capacity(b);
        for i in 0..b {
            let seen = match seen_items[i] {
                Some(items) => {
                    mark_seen(&mut scratch, items);
                    Some(scratch.as_slice())
                }
                None => None,
            };
            let select_k = if quantized { ks[i].saturating_mul(2) } else { ks[i] };
            // Flat merge over every visited cluster of every shard: the merge
            // comparator is a total order, so this equals the hierarchical
            // per-shard merge bit for bit.
            let mut lists = Vec::new();
            for (s, shard) in self.shards.iter().enumerate() {
                let Some(index) = shard.ivf.as_ref() else { continue };
                let local_seen = seen.map(|bits| &bits[shard.offset..shard.offset + shard.len()]);
                for &j in &blocks[s].visited[i] {
                    // ham-lint: allow(panic, "the scoring task scored every visited cluster before returning its block")
                    let block = blocks[s].blocks[j].as_ref().expect("visited cluster left unscored");
                    lists.push(rank_panel(shard.offset, index.cluster_ids(j), block.row(i), select_k, local_seen));
                }
            }
            let candidates = merge_top_k(&lists, select_k);
            let merged = if quantized {
                let rerank_started = trace.is_some().then(Instant::now);
                let ranked = self.rerank_exact(candidates, queries.row(i), ks[i], seen);
                if let Some(at) = rerank_started {
                    rerank_micros += at.elapsed().as_micros() as u64;
                }
                ranked
            } else {
                candidates
            };
            if let Some(items) = seen_items[i] {
                clear_seen(&mut scratch, items);
            }
            out.push(merged);
        }
        if let Some(trace) = trace {
            trace.shard_score_micros = shard_micros;
            let rank_micros = rank_started.map_or(0, |at| at.elapsed().as_micros() as u64);
            trace.merge_micros = rank_micros.saturating_sub(rerank_micros);
            trace.rerank_micros = rerank_micros;
        }
        out
    }

    /// One shard's batched IVF scoring: per-request routing GEMVs, then one
    /// panel GEMM per cluster in the union of visited clusters.
    fn ivf_score_shard_batch(&self, s: usize, queries: &Matrix, qqueries: Option<&[QuantizedQuery]>) -> IvfShardBlock {
        let b = queries.rows();
        // ham-lint: allow(panic, "IVF entry points are only reachable on clustered catalogues")
        let index = self.shards[s].ivf.as_ref().expect("IVF serving on a catalogue without a cluster index");
        let c = index.num_clusters();
        if c == 0 {
            return IvfShardBlock { visited: vec![Vec::new(); b], blocks: Vec::new() };
        }
        let probe = self.nprobe.min(c);
        let mut union = vec![false; c];
        let visited: Vec<Vec<usize>> = (0..b)
            .map(|i| {
                let route = index.centroids().matvec_transposed(queries.row(i));
                let v = top_k_indices(&route, probe);
                for &j in &v {
                    union[j] = true;
                }
                v
            })
            .collect();
        let blocks: Vec<Option<Matrix>> = (0..c)
            .map(|j| {
                if !union[j] {
                    return None;
                }
                Some(match qqueries {
                    Some(qq) => {
                        let panel = index.qpanel(j);
                        let mut block = Matrix::zeros(b, panel.rows());
                        kernels::quantized_matmul_transposed_into(qq, panel, &mut block);
                        block
                    }
                    None => queries.matmul_transposed(index.panel(j)),
                })
            })
            .collect();
        IvfShardBlock { visited, blocks }
    }

    /// Re-scores `candidates` with the exact f32 per-row dot (the same
    /// dispatched kernel chain as the exact GEMV path — bit-identical per
    /// row), re-applies the mask, and keeps the top `k` under the exact
    /// comparator. Crate-visible so the deadline-bounded degraded path
    /// (`degrade`) re-ranks its quantized pre-selection with the very same
    /// code and stays bit-identical when no shard was dropped.
    pub(crate) fn rerank_exact(
        &self,
        candidates: Vec<ScoredItem>,
        query: &[f32],
        k: usize,
        seen: Option<&[bool]>,
    ) -> Vec<ScoredItem> {
        let mut exact: Vec<ScoredItem> = candidates
            .into_iter()
            .map(|c| {
                let masked = seen.is_some_and(|bits| bits[c.item]);
                let score = if masked {
                    f32::NEG_INFINITY
                } else {
                    let (s, local) = self.locate(c.item);
                    kernels::dot(self.shards[s].rows.row(local), query)
                };
                ScoredItem { item: c.item, score }
            })
            .collect();
        exact.sort_by(|a, b| better(b, a));
        exact.truncate(k);
        exact
    }

    /// Shard index and shard-local row of a global item id.
    fn locate(&self, item: usize) -> (usize, usize) {
        debug_assert!(item < self.num_items);
        let s = self.shards.partition_point(|sh| sh.offset + sh.len() <= item);
        (s, item - self.shards[s].offset)
    }

    /// Batched [`Self::quantized_top_k_with_buf`]: one int8 GEMM per shard
    /// (in parallel across shards on `pool` when given), then per-row
    /// pre-selection, merge and exact re-rank.
    ///
    /// Because the re-rank rescores with the exact per-row dot, a batched
    /// quantized request returns the same bits as the single-request
    /// quantized path — batching changes throughput, never results.
    ///
    /// # Panics
    /// Panics if the catalogue was not quantized or the per-row argument
    /// lengths disagree with the batch size.
    pub fn quantized_top_k_batch(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
    ) -> Vec<Vec<ScoredItem>> {
        self.quantized_top_k_batch_traced(queries, ks, seen_items, pool, None)
    }

    /// [`Self::quantized_top_k_batch`] with stage timing: when `trace` is
    /// given, per-shard GEMM durations, the ranking/merge loop and the exact
    /// re-rank are clocked into it. `None` serves identically with no
    /// timing overhead beyond one branch.
    pub fn quantized_top_k_batch_traced(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
        trace: Option<&mut StageTrace>,
    ) -> Vec<Vec<ScoredItem>> {
        let b = queries.rows();
        assert_eq!(ks.len(), b, "quantized_top_k_batch: {} k values for {} queries", ks.len(), b);
        assert_eq!(seen_items.len(), b, "quantized_top_k_batch: {} seen lists for {} queries", seen_items.len(), b);
        if self.is_clustered() {
            return self.ivf_top_k_batch_traced(queries, ks, seen_items, pool, trace, true);
        }
        let qqueries: Vec<QuantizedQuery> = (0..b).map(|i| QuantizedQuery::quantize(queries.row(i))).collect();
        let mut blocks: Vec<Option<(Matrix, u64)>> = self.shards.iter().map(|_| None).collect();
        let parallel_useful = self.shards.iter().filter(|s| !s.is_empty()).count() > 1;
        let score_shard = |s: usize| {
            let started = Instant::now();
            // ham-lint: allow(panic, "callers gate on catalogue quantization; the panel is built at construction")
            let panel = self.shards[s].quantized.as_ref().expect("quantized_top_k on an unquantized catalogue");
            let mut block = Matrix::zeros(b, panel.rows());
            kernels::quantized_matmul_transposed_into(&qqueries, panel, &mut block);
            (block, started.elapsed().as_micros() as u64)
        };
        match pool {
            Some(pool) if parallel_useful => pool.scope(|scope| {
                for (s, block) in blocks.iter_mut().enumerate() {
                    let score_shard = &score_shard;
                    scope.spawn(move || *block = Some(score_shard(s)));
                }
            }),
            _ => {
                for (s, block) in blocks.iter_mut().enumerate() {
                    *block = Some(score_shard(s));
                }
            }
        }
        let mut shard_micros = Vec::new();
        let blocks: Vec<Matrix> = blocks
            .into_iter()
            .enumerate()
            .map(|(s, b)| {
                // ham-lint: allow(panic, "pool.scope joins every spawned task; each task fills its slot before returning")
                let (block, micros) = b.expect("shard scoring task never ran");
                shard_micros.push((s, micros));
                block
            })
            .collect();
        let rank_started = trace.is_some().then(Instant::now);
        let mut rerank_micros = 0u64;
        let mut scratch = vec![false; self.num_items];
        let mut out = Vec::with_capacity(b);
        for i in 0..b {
            let seen = match seen_items[i] {
                Some(items) => {
                    mark_seen(&mut scratch, items);
                    Some(scratch.as_slice())
                }
                None => None,
            };
            let pre_k = ks[i].saturating_mul(2);
            let per_shard: Vec<Vec<ScoredItem>> =
                (0..self.shards.len()).map(|s| self.shard_top_k(s, blocks[s].row(i), pre_k, seen)).collect();
            let candidates = merge_top_k(&per_shard, pre_k);
            let rerank_started = trace.is_some().then(Instant::now);
            let merged = self.rerank_exact(candidates, queries.row(i), ks[i], seen);
            if let Some(at) = rerank_started {
                rerank_micros += at.elapsed().as_micros() as u64;
            }
            if let Some(items) = seen_items[i] {
                clear_seen(&mut scratch, items);
            }
            out.push(merged);
        }
        if let Some(trace) = trace {
            trace.shard_score_micros = shard_micros;
            let rank_micros = rank_started.map_or(0, |at| at.elapsed().as_micros() as u64);
            trace.merge_micros = rank_micros.saturating_sub(rerank_micros);
            trace.rerank_micros = rerank_micros;
        }
        out
    }

    /// Exact global top-k for a query batch: one packed-panel GEMM per shard
    /// (shards scored in parallel on `pool` when given), then per-row local
    /// ranking and merging. `ks[i]` and `seen_items[i]` apply to query row
    /// `i`; a row's seen items are the item ids to exclude (`None` ranks the
    /// full catalogue; ids outside the catalogue are ignored).
    ///
    /// The ranking stage reuses **one** catalogue bitmap across the whole
    /// batch, marked and cleared per row in O(history) — no per-request
    /// bitmap allocation or O(catalogue) zeroing on the serving hot path.
    ///
    /// # Panics
    /// Panics if `ks` or `seen_items` do not have one entry per query row.
    pub fn top_k_batch(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
    ) -> Vec<Vec<ScoredItem>> {
        self.top_k_batch_traced(queries, ks, seen_items, pool, None)
    }

    /// [`Self::top_k_batch`] with stage timing: when `trace` is given,
    /// per-shard GEMM durations and the ranking/merge loop are clocked into
    /// it. `None` serves identically with no timing overhead beyond one
    /// branch.
    pub fn top_k_batch_traced(
        &self,
        queries: &Matrix,
        ks: &[usize],
        seen_items: &[Option<&[ItemId]>],
        pool: Option<&ThreadPool>,
        trace: Option<&mut StageTrace>,
    ) -> Vec<Vec<ScoredItem>> {
        let b = queries.rows();
        assert_eq!(ks.len(), b, "top_k_batch: {} k values for {} queries", ks.len(), b);
        assert_eq!(seen_items.len(), b, "top_k_batch: {} seen lists for {} queries", seen_items.len(), b);
        if self.is_clustered() {
            return self.ivf_top_k_batch_traced(queries, ks, seen_items, pool, trace, false);
        }
        let mut blocks: Vec<Option<(Matrix, u64)>> = self.shards.iter().map(|_| None).collect();
        // A single (or single non-empty) shard has nothing to overlap — skip
        // the pool handoff and score inline on the caller.
        let parallel_useful = self.shards.iter().filter(|s| !s.is_empty()).count() > 1;
        let score_shard = |s: usize| {
            let started = Instant::now();
            let block = self.shard_scores_batch(s, queries);
            (block, started.elapsed().as_micros() as u64)
        };
        match pool {
            Some(pool) if parallel_useful => pool.scope(|scope| {
                for (s, block) in blocks.iter_mut().enumerate() {
                    let score_shard = &score_shard;
                    scope.spawn(move || *block = Some(score_shard(s)));
                }
            }),
            _ => {
                for (s, block) in blocks.iter_mut().enumerate() {
                    *block = Some(score_shard(s));
                }
            }
        }
        let mut shard_micros = Vec::new();
        let blocks: Vec<Matrix> = blocks
            .into_iter()
            .enumerate()
            .map(|(s, b)| {
                // ham-lint: allow(panic, "pool.scope joins every spawned task; each task fills its slot before returning")
                let (block, micros) = b.expect("shard scoring task never ran");
                shard_micros.push((s, micros));
                block
            })
            .collect();
        let rank_started = trace.is_some().then(Instant::now);
        let mut scratch = vec![false; self.num_items];
        let sole = self.sole_active_shard();
        let mut out = Vec::with_capacity(b);
        for i in 0..b {
            let seen = match seen_items[i] {
                Some(items) => {
                    mark_seen(&mut scratch, items);
                    Some(scratch.as_slice())
                }
                None => None,
            };
            // With one active shard the local ranking is the global ranking.
            let merged = match sole {
                Some(s) => self.shard_top_k(s, blocks[s].row(i), ks[i], seen),
                None => {
                    let per_shard: Vec<Vec<ScoredItem>> =
                        (0..self.shards.len()).map(|s| self.shard_top_k(s, blocks[s].row(i), ks[i], seen)).collect();
                    merge_top_k(&per_shard, ks[i])
                }
            };
            if let Some(items) = seen_items[i] {
                clear_seen(&mut scratch, items);
            }
            out.push(merged);
        }
        if let Some(trace) = trace {
            trace.shard_score_micros = shard_micros;
            trace.merge_micros = rank_started.map_or(0, |at| at.elapsed().as_micros() as u64);
        }
        out
    }
}

/// What one shard task hands back to the deadline-bounded coordinator
/// (`degrade::score_bounded`).
pub(crate) enum ShardBlock {
    /// Dense scores for every shard row (`b × shard_len`) — the exact and
    /// quantized dense paths; the coordinator ranks it per request.
    Dense(Matrix),
    /// Per-request pre-ranked shortlists — the IVF paths route, score and
    /// rank inside the task (the coordinator has no dense block to rank
    /// unvisited rows from).
    Ranked(Vec<Vec<ScoredItem>>),
}

/// One shard's batched IVF scoring result: the clusters each request visits,
/// and a scored block for every cluster in the union of visited sets.
struct IvfShardBlock {
    /// `visited[i]`: cluster ids request row `i` routes to.
    visited: Vec<Vec<usize>>,
    /// `blocks[j]`: the `b × panel_len` score block of cluster `j`, `None`
    /// when no request in the batch visits it.
    blocks: Vec<Option<Matrix>>,
}

/// Ranks one cluster panel's score slice to its top `select_k`: the fused
/// mask+select with the panel-local → shard-local id translation (`ids`),
/// emitting global item ids (`offset + shard-local id`). `local_seen` is the
/// seen bitmap in *shard-local* index space (the global bitmap sliced to the
/// shard's range, or a task-local bitmap on the bounded path). Masked items
/// participate at `-inf`, and since each panel keeps its ids ascending, the
/// panel-index tie-break reproduces the global-id tie-break exactly.
fn rank_panel(
    offset: usize,
    ids: &[usize],
    scores: &[f32],
    select_k: usize,
    local_seen: Option<&[bool]>,
) -> Vec<ScoredItem> {
    let local = match local_seen {
        Some(bits) => top_k_indices_masked_with(scores, select_k, |p| bits[ids[p]]),
        None => top_k_indices(scores, select_k),
    };
    local
        .into_iter()
        .map(|p| {
            let masked = local_seen.is_some_and(|bits| bits[ids[p]]);
            let score = if masked { f32::NEG_INFINITY } else { scores[p] };
            ScoredItem { item: offset + ids[p], score }
        })
        .collect()
}

/// Marks every in-catalogue id of `items` in the bitmap (O(history)).
pub(crate) fn mark_seen(bits: &mut [bool], items: &[ItemId]) {
    for &item in items {
        if item < bits.len() {
            bits[item] = true;
        }
    }
}

/// Clears the marks of [`mark_seen`], leaving the bitmap all-clear again.
pub(crate) fn clear_seen(bits: &mut [bool], items: &[ItemId]) {
    for &item in items {
        if item < bits.len() {
            bits[item] = false;
        }
    }
}

/// "Better recommendation" ordering: higher score wins, ties go to the lower
/// global item id; NaN compares equal to everything (same convention as
/// `top_k_indices`).
fn better(a: &ScoredItem, b: &ScoredItem) -> std::cmp::Ordering {
    a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal).then(b.item.cmp(&a.item))
}

/// Head of one per-shard list inside the k-way merge heap.
struct MergeHead {
    entry: ScoredItem,
    list: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        better(&self.entry, &other.entry) == std::cmp::Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        better(&self.entry, &other.entry)
    }
}

/// Merges per-shard top-k lists (each sorted by descending preference) into
/// the exact global top-k with a k-way heap: `O(total log s)` for `s` lists.
///
/// Returns fewer than `k` items only when the lists hold fewer than `k`
/// entries in total (k larger than the catalogue).
pub fn merge_top_k(per_shard: &[Vec<ScoredItem>], k: usize) -> Vec<ScoredItem> {
    let mut heap: std::collections::BinaryHeap<MergeHead> = per_shard
        .iter()
        .enumerate()
        .filter_map(|(list, items)| items.first().map(|&entry| MergeHead { entry, list, pos: 0 }))
        .collect();
    let mut out = Vec::with_capacity(k.min(per_shard.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(head.entry);
        if let Some(&next) = per_shard[head.list].get(head.pos + 1) {
            heap.push(MergeHead { entry: next, list: head.list, pos: head.pos + 1 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogue(n: usize, d: usize) -> Matrix {
        Matrix::from_vec(n, d, (0..n * d).map(|i| ((i * 37) % 23) as f32 * 0.5 - 5.0).collect())
    }

    #[test]
    fn shards_partition_the_catalogue() {
        let w = catalogue(10, 4);
        let cat = ShardedCatalog::from_matrix(&w, 3);
        assert_eq!(cat.num_shards(), 3);
        let lens: Vec<usize> = cat.shards().iter().map(Shard::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        let offsets: Vec<usize> = cat.shards().iter().map(Shard::offset).collect();
        assert_eq!(offsets, vec![0, 4, 7]);
        // Row 6 of the catalogue is row 2 of shard 1.
        assert_eq!(cat.shards()[1].rows().row(2), w.row(6));
    }

    #[test]
    fn more_shards_than_items_yields_empty_shards() {
        let w = catalogue(2, 3);
        let cat = ShardedCatalog::from_matrix(&w, 5);
        assert_eq!(cat.num_shards(), 5);
        assert_eq!(cat.shards().iter().filter(|s| s.is_empty()).count(), 3);
        let q = vec![1.0; 3];
        let top = cat.top_k(&q, 2, None);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn sharded_top_k_equals_unsharded_for_every_shard_count() {
        let w = catalogue(57, 8);
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).sin()).collect();
        let reference: Vec<usize> = top_k_indices(&w.matvec_transposed(&q), 10);
        for shards in 1..=8 {
            let cat = ShardedCatalog::from_matrix(&w, shards);
            let ids: Vec<usize> = cat.top_k(&q, 10, None).iter().map(|s| s.item).collect();
            assert_eq!(ids, reference, "shards = {shards}");
        }
    }

    #[test]
    fn merge_breaks_ties_by_lower_item_id() {
        // Two shards, tied scores at the boundary: the lower global id wins,
        // exactly like the single-node tie-break.
        let lists = vec![
            vec![ScoredItem { item: 0, score: 1.0 }, ScoredItem { item: 1, score: 0.5 }],
            vec![ScoredItem { item: 5, score: 1.0 }, ScoredItem { item: 6, score: 0.5 }],
        ];
        let merged = merge_top_k(&lists, 3);
        let ids: Vec<usize> = merged.iter().map(|s| s.item).collect();
        assert_eq!(ids, vec![0, 5, 1]);
    }

    #[test]
    fn merge_with_fewer_candidates_than_k_returns_all() {
        let lists = vec![vec![ScoredItem { item: 2, score: 0.1 }], vec![]];
        assert_eq!(merge_top_k(&lists, 10).len(), 1);
        assert!(merge_top_k(&[], 3).is_empty());
    }

    #[test]
    fn masking_is_shard_local_but_globally_consistent() {
        let w = catalogue(20, 4);
        let q = vec![0.5, -0.25, 1.0, 0.125];
        let seen: Vec<bool> = (0..20).map(|i| i % 3 == 0).collect();
        let reference = top_k_indices_masked(&w.matvec_transposed(&q), 6, &seen);
        for shards in [1, 2, 4, 7] {
            let cat = ShardedCatalog::from_matrix(&w, shards);
            let ids: Vec<usize> = cat.top_k(&q, 6, Some(&seen)).iter().map(|s| s.item).collect();
            assert_eq!(ids, reference, "shards = {shards}");
        }
    }

    #[test]
    fn batch_path_matches_single_query_gemm_reference() {
        let w = catalogue(33, 8);
        let mut queries = Matrix::zeros(3, 8);
        for i in 0..3 {
            for j in 0..8 {
                queries.set(i, j, ((i * 8 + j) as f32 * 0.21).cos());
            }
        }
        // Row 1 excludes its "history" (every 5th item, plus an
        // out-of-catalogue id that must be ignored); rows 0 and 2 rank all.
        let history: Vec<usize> = (0..33).step_by(5).chain([999]).collect();
        let seen_lists = [None, Some(history.as_slice()), None];
        let cat = ShardedCatalog::from_matrix(&w, 4);
        let got = cat.top_k_batch(&queries, &[5, 5, 33], &seen_lists, None);
        // Reference: unsharded GEMM row + the same fused masked ranking.
        let bits: Vec<bool> = (0..33).map(|i| i % 5 == 0).collect();
        let full = queries.matmul_transposed(&w);
        for i in 0..3 {
            let k = [5, 5, 33][i];
            let reference = match seen_lists[i] {
                Some(_) => top_k_indices_masked(full.row(i), k, &bits),
                None => top_k_indices(full.row(i), k),
            };
            let ids: Vec<usize> = got[i].iter().map(|s| s.item).collect();
            assert_eq!(ids, reference, "row {i}");
        }
        // The scratch bitmap is cleared between rows: a second batch with no
        // exclusions must rank the full catalogue for every row.
        let unmasked = cat.top_k_batch(&queries, &[5, 5, 5], &[None, None, None], None);
        assert_eq!(
            unmasked[1].iter().map(|s| s.item).collect::<Vec<_>>(),
            top_k_indices(full.row(1), 5),
            "no residual masking"
        );
    }
}
