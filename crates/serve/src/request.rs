//! Request/response types of the serving layer and latency accounting.

use crate::shard::ScoredItem;
use ham_data::dataset::ItemId;

/// One recommendation request: "give me the top `k` items for this user".
#[derive(Debug, Clone)]
pub struct RecommendRequest {
    /// Dense user id (must be known to the serving model).
    pub user: usize,
    /// The user's chronological interaction history.
    pub history: Vec<ItemId>,
    /// Number of items requested.
    pub k: usize,
    /// Mask items already present in `history` (the usual serving protocol).
    pub exclude_seen: bool,
}

impl RecommendRequest {
    /// A request with the default serving protocol (seen items excluded).
    pub fn new(user: usize, history: Vec<ItemId>, k: usize) -> Self {
        Self { user, history, k, exclude_seen: true }
    }
}

/// The answer to one [`RecommendRequest`], with per-request latency
/// accounting split into queue time (enqueue → batch pickup) and service
/// time (scoring + ranking + merging of the batch the request rode in).
#[derive(Debug, Clone)]
pub struct RecommendResponse {
    /// The top-k items, best first, with model scores.
    pub items: Vec<ScoredItem>,
    /// Version of the published model that served the request (increments on
    /// every registry hot-swap).
    pub model_version: u64,
    /// Microseconds spent waiting in the micro-batching queue.
    pub queue_micros: u64,
    /// Microseconds spent scoring/ranking the batch this request rode in.
    pub service_micros: u64,
}

impl RecommendResponse {
    /// Total request latency in microseconds (queue + service).
    pub fn total_micros(&self) -> u64 {
        self.queue_micros + self.service_micros
    }
}

/// Latency percentiles over a set of per-request samples, as reported by the
/// `serve_report` benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, microseconds.
    pub mean_micros: f64,
    /// Median, microseconds.
    pub p50_micros: u64,
    /// 95th percentile, microseconds.
    pub p95_micros: u64,
    /// 99th percentile, microseconds.
    pub p99_micros: u64,
    /// Worst sample, microseconds.
    pub max_micros: u64,
}

impl LatencyStats {
    /// Computes the stats over raw microsecond samples (`None` when empty).
    /// Percentiles use the nearest-rank method on the sorted samples.
    pub fn from_micros(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let rank = |p: f64| samples[(((p * count as f64).ceil() as usize).max(1) - 1).min(count - 1)];
        Some(Self {
            count,
            mean_micros: samples.iter().sum::<u64>() as f64 / count as f64,
            p50_micros: rank(0.50),
            p95_micros: rank(0.95),
            p99_micros: rank(0.99),
            max_micros: samples[count - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_exclude_seen() {
        let req = RecommendRequest::new(3, vec![1, 2], 10);
        assert!(req.exclude_seen);
        assert_eq!(req.k, 10);
    }

    #[test]
    fn latency_stats_nearest_rank() {
        let stats = LatencyStats::from_micros((1..=100).collect()).unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_micros, 50);
        assert_eq!(stats.p95_micros, 95);
        assert_eq!(stats.p99_micros, 99);
        assert_eq!(stats.max_micros, 100);
        assert!((stats.mean_micros - 50.5).abs() < 1e-9);
        assert!(LatencyStats::from_micros(vec![]).is_none());
        let single = LatencyStats::from_micros(vec![7]).unwrap();
        assert_eq!((single.p50_micros, single.p99_micros), (7, 7));
    }
}
