//! Request/response types of the serving layer and latency accounting.

use crate::shard::ScoredItem;
use ham_data::dataset::ItemId;
use std::time::Duration;

/// One recommendation request: "give me the top `k` items for this user".
#[derive(Debug, Clone)]
pub struct RecommendRequest {
    /// Dense user id (must be known to the serving model).
    pub user: usize,
    /// The user's chronological interaction history.
    pub history: Vec<ItemId>,
    /// Number of items requested.
    pub k: usize,
    /// Mask items already present in `history` (the usual serving protocol).
    pub exclude_seen: bool,
    /// Per-request latency deadline, measured from enqueue. `None` falls
    /// back to [`ServerConfig::default_deadline`]. A request still queued at
    /// its deadline is shed ([`SubmitError::DeadlineExpired`]); a request
    /// picked up near its deadline grants the shard-scoring stage only the
    /// remaining budget and may come back [`degraded`].
    ///
    /// [`ServerConfig::default_deadline`]: crate::server::ServerConfig::default_deadline
    /// [`SubmitError::DeadlineExpired`]: crate::server::SubmitError::DeadlineExpired
    /// [`degraded`]: RecommendResponse::degraded
    pub deadline: Option<Duration>,
}

impl RecommendRequest {
    /// A request with the default serving protocol (seen items excluded, no
    /// per-request deadline override).
    pub fn new(user: usize, history: Vec<ItemId>, k: usize) -> Self {
        Self { user, history, k, exclude_seen: true, deadline: None }
    }

    /// Sets a per-request deadline (overrides the server default).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The answer to one [`RecommendRequest`], with per-request latency
/// accounting split into queue time (enqueue → batch pickup) and service
/// time (scoring + ranking + merging of the batch the request rode in).
#[derive(Debug, Clone)]
pub struct RecommendResponse {
    /// The top-k items, best first, with model scores.
    pub items: Vec<ScoredItem>,
    /// Version of the published model that served the request (increments on
    /// every registry hot-swap).
    pub model_version: u64,
    /// Microseconds spent waiting in the micro-batching queue.
    pub queue_micros: u64,
    /// Microseconds spent scoring/ranking the batch this request rode in.
    pub service_micros: u64,
    /// `true` when the response was assembled without every shard: a shard
    /// missed its deadline budget or panicked and was dropped from the
    /// k-way merge (the surviving shards' ranking is still exact *for those
    /// shards*), or the request's solo retry panicked and the list is empty.
    /// Never silently wrong: a degraded response always says so.
    pub degraded: bool,
    /// How many shards contributed to the ranking. Equals the model's shard
    /// count on a healthy response; smaller exactly when [`Self::degraded`].
    pub shards_answered: usize,
    /// How many IVF clusters the request visited across all shards
    /// (`min(nprobe, clusters)` summed per shard — deterministic per
    /// published model, since routing picks *which* clusters, never how
    /// many). `0` when the model serves exactly (no cluster index), so a
    /// non-zero value is the explicit "this ranking came from approximate
    /// retrieval" marker.
    pub clusters_probed: usize,
}

impl RecommendResponse {
    /// Total request latency in microseconds (queue + service).
    pub fn total_micros(&self) -> u64 {
        self.queue_micros + self.service_micros
    }
}

/// Latency percentiles over a set of per-request samples, as reported by the
/// `serve_report` benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, microseconds.
    pub mean_micros: f64,
    /// Median, microseconds.
    pub p50_micros: u64,
    /// 95th percentile, microseconds.
    pub p95_micros: u64,
    /// 99th percentile, microseconds.
    pub p99_micros: u64,
    /// 99.9th percentile, microseconds (equals the max below 1000 samples —
    /// the nearest-rank definition, not an artifact).
    pub p99_9_micros: u64,
    /// Worst sample, microseconds.
    pub max_micros: u64,
}

impl LatencyStats {
    /// Computes the stats over raw microsecond samples (`None` when empty).
    /// Percentiles use the nearest-rank method on the sorted samples: the
    /// P-th percentile is the `⌈count · P/100⌉`-th smallest sample.
    ///
    /// The rank is computed in integer arithmetic. The float formulation
    /// (`(p * count as f64).ceil()`) happens to land on the right index for
    /// 50/95/99 at every count, but only by luck of rounding — e.g.
    /// `0.29 * 100.0` is `28.999…96`, so other percentiles would be off by
    /// one — and clamping hid any error instead of surfacing it. Exact index
    /// math needs no clamps; pinned by the small-count tests below.
    pub fn from_micros(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let nearest_rank = |percent: usize| samples[(count * percent).div_ceil(100) - 1];
        // p99.9 needs per-mille resolution; same ⌈count·P⌉ rank math.
        let nearest_rank_per_mille = |per_mille: usize| samples[(count * per_mille).div_ceil(1000) - 1];
        Some(Self {
            count,
            mean_micros: samples.iter().sum::<u64>() as f64 / count as f64,
            p50_micros: nearest_rank(50),
            p95_micros: nearest_rank(95),
            p99_micros: nearest_rank(99),
            p99_9_micros: nearest_rank_per_mille(999),
            max_micros: samples[count - 1],
        })
    }

    /// Combines measurement windows of raw microsecond samples into one set
    /// of stats (`None` when every window is empty). Percentiles of merged
    /// windows cannot be derived from the windows' own percentiles, so the
    /// merge works on the raw samples and reuses [`Self::from_micros`] —
    /// the result is exactly the stats of the concatenated sample set.
    pub fn merge(windows: &[&[u64]]) -> Option<Self> {
        let all: Vec<u64> = windows.iter().flat_map(|w| w.iter().copied()).collect();
        Self::from_micros(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_exclude_seen() {
        let req = RecommendRequest::new(3, vec![1, 2], 10);
        assert!(req.exclude_seen);
        assert_eq!(req.k, 10);
    }

    #[test]
    fn latency_stats_nearest_rank() {
        let stats = LatencyStats::from_micros((1..=100).collect()).unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_micros, 50);
        assert_eq!(stats.p95_micros, 95);
        assert_eq!(stats.p99_micros, 99);
        assert_eq!(stats.max_micros, 100);
        assert!((stats.mean_micros - 50.5).abs() < 1e-9);
        assert!(LatencyStats::from_micros(vec![]).is_none());
    }

    /// Exact nearest-rank values at small sample counts, where off-by-one
    /// index math would show: with fewer than 100 samples `⌈0.99·n⌉ = n`,
    /// so p99 must be the maximum, and one/two-sample inputs must hit the
    /// first sample for p50.
    #[test]
    fn latency_stats_small_count_percentiles_are_exact() {
        let single = LatencyStats::from_micros(vec![7]).unwrap();
        assert_eq!((single.p50_micros, single.p95_micros, single.p99_micros, single.max_micros), (7, 7, 7, 7));

        // two samples: rank(50) = ceil(1.0) = 1st, rank(95/99) = 2nd
        let two = LatencyStats::from_micros(vec![30, 10]).unwrap();
        assert_eq!((two.p50_micros, two.p95_micros, two.p99_micros), (10, 30, 30));

        // three samples: rank(50) = ceil(1.5) = 2nd
        let three = LatencyStats::from_micros(vec![30, 10, 20]).unwrap();
        assert_eq!((three.p50_micros, three.p99_micros), (20, 30));

        // 20 samples: rank(95) = ceil(19.0) = 19th — NOT the 20th; this is
        // where a float formulation is one ULP from overshooting
        let twenty = LatencyStats::from_micros((1..=20).collect()).unwrap();
        assert_eq!((twenty.p50_micros, twenty.p95_micros, twenty.p99_micros), (10, 19, 20));

        // 40 samples: rank(95) = ceil(38.0) = 38th
        let forty = LatencyStats::from_micros((1..=40).collect()).unwrap();
        assert_eq!((forty.p50_micros, forty.p95_micros, forty.p99_micros), (20, 38, 40));

        // p99 below 100 samples is always the worst sample
        for n in [5u64, 17, 63, 99] {
            let stats = LatencyStats::from_micros((1..=n).collect()).unwrap();
            assert_eq!(stats.p99_micros, n, "p99 of {n} samples");
        }
        // ...and at exactly 101 samples it stops being the maximum
        let s101 = LatencyStats::from_micros((1..=101).collect()).unwrap();
        assert_eq!(s101.p99_micros, 100);
    }

    /// Exact p99.9 values: below 1000 samples `⌈0.999·n⌉ = n`, so p99.9 is
    /// the maximum; at exactly 1000 samples rank(999‰) = 999 and it stops
    /// being the maximum; at 2000 samples it is the 1998th.
    #[test]
    fn p99_9_small_count_values_are_exact() {
        for n in [1u64, 2, 10, 100, 999] {
            let stats = LatencyStats::from_micros((1..=n).collect()).unwrap();
            assert_eq!(stats.p99_9_micros, n, "p99.9 of {n} samples is the max");
        }
        let s1000 = LatencyStats::from_micros((1..=1000).collect()).unwrap();
        assert_eq!(s1000.p99_9_micros, 999);
        let s2000 = LatencyStats::from_micros((1..=2000).collect()).unwrap();
        assert_eq!(s2000.p99_9_micros, 1998);
    }

    /// Merging windows gives exactly the stats of the concatenated samples —
    /// pinned at small counts where percentile-of-percentile shortcuts
    /// would diverge.
    #[test]
    fn merge_equals_stats_of_concatenation() {
        let a = vec![30u64, 10];
        let b = vec![20u64, 40, 50];
        let merged = LatencyStats::merge(&[&a, &b]).unwrap();
        let direct = LatencyStats::from_micros(vec![10, 20, 30, 40, 50]).unwrap();
        assert_eq!(merged, direct);
        assert_eq!(merged.count, 5);
        assert_eq!(merged.p50_micros, 30, "rank(50%) of 5 = ⌈2.5⌉ = 3rd");
        assert_eq!(merged.max_micros, 50);

        // windows with an empty member and a singleton
        let single = vec![7u64];
        let empty: Vec<u64> = vec![];
        let merged = LatencyStats::merge(&[&empty, &single]).unwrap();
        assert_eq!((merged.count, merged.p50_micros, merged.p99_9_micros), (1, 7, 7));
        assert!(LatencyStats::merge(&[&empty]).is_none());
        assert!(LatencyStats::merge(&[]).is_none());
    }
}
