//! Versioned model registry with atomic hot-swap.
//!
//! A serving process must be able to publish a retrained model without
//! pausing traffic. The registry holds the live [`ServingModel`] behind an
//! `Arc`: readers clone the `Arc` (a reference-count bump under a lock held
//! for nanoseconds — `std` has no lock-free `Arc` swap, so a `Mutex` guards
//! the pointer slot), publishers swap a new `Arc` in. Requests already
//! in flight keep the snapshot they started with and drop it when done; no
//! request ever observes a half-updated model.

use crate::model::ServingModel;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// How many recent publications the registry archives for
/// [`ModelRegistry::rollback_to`]. Snapshots share their `ServingModel`
/// behind an `Arc`, so the archive costs one pointer per publish — the
/// model memory is only retained while a snapshot is still in the window.
const HISTORY_CAPACITY: usize = 8;

/// A [`ServingModel`] together with its publication version.
#[derive(Debug)]
pub struct PublishedModel {
    /// The model snapshot. Behind an `Arc` so the rollback archive and the
    /// live slot can share one model without cloning catalogue matrices.
    pub model: Arc<ServingModel>,
    /// Monotonically increasing publication number (first publish = 1).
    pub version: u64,
    /// `Some(v)` when this publication is a rollback that restored the
    /// snapshot originally published as version `v`.
    pub rollback_of: Option<u64>,
}

/// [`ModelRegistry::rollback_to`] failure: the requested version is not in
/// the archive window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackError {
    /// The version that was asked for.
    pub version: u64,
    /// The versions currently available to roll back to (oldest first).
    pub available: Vec<u64>,
}

impl std::fmt::Display for RollbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rollback target version {} not in the archive (available: {:?})", self.version, self.available)
    }
}

impl std::error::Error for RollbackError {}

/// The registry: one live model slot with atomic hot-swap semantics, plus a
/// bounded archive of recent publications for rollback.
#[derive(Debug)]
pub struct ModelRegistry {
    slot: Mutex<Arc<PublishedModel>>,
    versions: AtomicU64,
    /// The last [`HISTORY_CAPACITY`] publications, oldest first. Guarded by
    /// taking `slot`'s lock first everywhere both are held.
    history: Mutex<VecDeque<Arc<PublishedModel>>>,
}

impl ModelRegistry {
    /// Creates a registry with an initial model (version 1).
    pub fn new(initial: ServingModel) -> Self {
        let first = Arc::new(PublishedModel { model: Arc::new(initial), version: 1, rollback_of: None });
        Self {
            slot: Mutex::new(Arc::clone(&first)),
            versions: AtomicU64::new(1),
            history: Mutex::new(VecDeque::from([first])),
        }
    }

    /// The currently published model. The returned `Arc` stays valid (and
    /// the snapshot immutable) for as long as the caller holds it, no matter
    /// how many publishes happen meanwhile.
    pub fn current(&self) -> Arc<PublishedModel> {
        // Both registry locks guard plain containers (an `Arc` slot and a
        // `VecDeque` archive) that stay structurally sound if a holder
        // panicked mid-publish — the slot then still holds the last
        // *completed* publish, which is exactly what readers should see.
        // Recover from poisoning everywhere rather than take serving down.
        Arc::clone(&self.slot.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the live model; returns the new version number.
    /// In-flight requests keep serving from the snapshot they loaded.
    ///
    /// The version is assigned while holding the slot lock, so concurrent
    /// publishers serialise: the model left in the slot is always the one
    /// with the highest version, and [`Self::version`] never reports a
    /// version newer than the slot's occupant.
    pub fn publish(&self, model: ServingModel) -> u64 {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        let version = self.versions.fetch_add(1, Ordering::SeqCst) + 1;
        let published = Arc::new(PublishedModel { model: Arc::new(model), version, rollback_of: None });
        self.archive(&published);
        *slot = published;
        version
    }

    /// Rolls the live slot back to the snapshot originally published as
    /// `version`, **re-publishing it under a new (higher) version number** —
    /// versions stay monotonic, so serving-staleness accounting and
    /// "which publish am I on" logic never see time move backwards. The new
    /// publication's [`PublishedModel::rollback_of`] names the restored
    /// version. Returns the new version number.
    ///
    /// Only the last [`HISTORY_CAPACITY`] publications are available;
    /// rolling back to the live version itself is allowed (an explicit
    /// re-pin). The model is shared by `Arc` — no catalogue copy.
    pub fn rollback_to(&self, version: u64) -> Result<u64, RollbackError> {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        let target = {
            let history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
            match history.iter().rev().find(|p| p.version == version) {
                Some(target) => Arc::clone(&target.model),
                None => return Err(RollbackError { version, available: history.iter().map(|p| p.version).collect() }),
            }
        };
        let new_version = self.versions.fetch_add(1, Ordering::SeqCst) + 1;
        let published = Arc::new(PublishedModel { model: target, version: new_version, rollback_of: Some(version) });
        self.archive(&published);
        *slot = published;
        Ok(new_version)
    }

    /// The versions currently in the rollback archive, oldest first (the
    /// live version is always the last entry).
    pub fn history_versions(&self) -> Vec<u64> {
        self.history.lock().unwrap_or_else(PoisonError::into_inner).iter().map(|p| p.version).collect()
    }

    /// Version of the latest publish.
    pub fn version(&self) -> u64 {
        self.versions.load(Ordering::SeqCst)
    }

    fn archive(&self, published: &Arc<PublishedModel>) {
        let mut history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        if history.len() == HISTORY_CAPACITY {
            history.pop_front();
        }
        history.push_back(Arc::clone(published));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_tensor::Matrix;

    fn toy_model(tag: f32) -> ServingModel {
        let w = Matrix::from_rows(&[&[tag], &[tag * 2.0]]);
        ServingModel::from_parts("toy", &w, 1, |_, _| vec![1.0])
    }

    #[test]
    fn publish_bumps_version_and_swaps_the_model() {
        let registry = ModelRegistry::new(toy_model(1.0));
        assert_eq!(registry.version(), 1);
        let before = registry.current();
        let v2 = registry.publish(toy_model(5.0));
        assert_eq!(v2, 2);
        let after = registry.current();
        assert_eq!(before.version, 1);
        assert_eq!(after.version, 2);
        // The old snapshot is still fully usable by its holders.
        let req =
            crate::request::RecommendRequest { user: 0, history: vec![], k: 1, exclude_seen: false, deadline: None };
        assert_eq!(before.model.recommend(&req)[0].score, 2.0);
        assert_eq!(after.model.recommend(&req)[0].score, 10.0);
    }

    #[test]
    fn rollback_republishes_an_archived_snapshot_under_a_new_version() {
        let registry = ModelRegistry::new(toy_model(1.0));
        registry.publish(toy_model(2.0));
        registry.publish(toy_model(3.0));
        assert_eq!(registry.history_versions(), vec![1, 2, 3]);
        let rolled = registry.rollback_to(2).expect("version 2 archived");
        assert_eq!(rolled, 4, "rollback publishes forward, never rewinds the version counter");
        let live = registry.current();
        assert_eq!(live.version, 4);
        assert_eq!(live.rollback_of, Some(2));
        // The restored snapshot really is version 2's model.
        let req =
            crate::request::RecommendRequest { user: 0, history: vec![], k: 1, exclude_seen: false, deadline: None };
        assert_eq!(live.model.recommend(&req)[0].score, 4.0, "row 1 of toy_model(2.0) scores 4.0");
        assert_eq!(registry.history_versions(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rollback_to_unknown_version_reports_whats_available() {
        let registry = ModelRegistry::new(toy_model(1.0));
        registry.publish(toy_model(2.0));
        let err = registry.rollback_to(9).unwrap_err();
        assert_eq!(err.version, 9);
        assert_eq!(err.available, vec![1, 2]);
        assert_eq!(registry.version(), 2, "a failed rollback publishes nothing");
    }

    #[test]
    fn archive_window_is_bounded_and_drops_the_oldest() {
        let registry = ModelRegistry::new(toy_model(1.0));
        for i in 0..10 {
            registry.publish(toy_model(i as f32 + 2.0));
        }
        let versions = registry.history_versions();
        assert_eq!(versions.len(), super::HISTORY_CAPACITY);
        assert_eq!(versions.last(), Some(&11));
        assert!(registry.rollback_to(1).is_err(), "version 1 aged out of the archive");
        assert!(registry.rollback_to(*versions.first().unwrap()).is_ok());
    }

    #[test]
    fn concurrent_readers_and_publishers_never_tear() {
        let registry = Arc::new(ModelRegistry::new(toy_model(1.0)));
        let publisher = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for i in 0..50 {
                    registry.publish(toy_model(i as f32 + 2.0));
                }
            })
        };
        let req =
            crate::request::RecommendRequest { user: 0, history: vec![], k: 2, exclude_seen: false, deadline: None };
        for _ in 0..200 {
            let snapshot = registry.current();
            let top = snapshot.model.recommend(&req);
            // Internally consistent: row 1 scores exactly twice row 0.
            assert_eq!(top[0].score, top[1].score * 2.0);
        }
        publisher.join().unwrap();
        assert_eq!(registry.version(), 51);
    }

    /// Two publishers racing: the slot must end up holding the model with
    /// the highest version (version assignment happens under the slot lock,
    /// so a slower publisher cannot overwrite a newer one with an older
    /// model).
    #[test]
    fn racing_publishers_leave_the_newest_model_in_the_slot() {
        let registry = Arc::new(ModelRegistry::new(toy_model(1.0)));
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        registry.publish(toy_model(i as f32 + 2.0));
                    }
                })
            })
            .collect();
        for publisher in publishers {
            publisher.join().unwrap();
        }
        assert_eq!(registry.version(), 51);
        assert_eq!(registry.current().version, registry.version(), "slot must hold the newest publish");
    }
}
