//! Versioned model registry with atomic hot-swap.
//!
//! A serving process must be able to publish a retrained model without
//! pausing traffic. The registry holds the live [`ServingModel`] behind an
//! `Arc`: readers clone the `Arc` (a reference-count bump under a lock held
//! for nanoseconds — `std` has no lock-free `Arc` swap, so a `Mutex` guards
//! the pointer slot), publishers swap a new `Arc` in. Requests already
//! in flight keep the snapshot they started with and drop it when done; no
//! request ever observes a half-updated model.

use crate::model::ServingModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A [`ServingModel`] together with its publication version.
#[derive(Debug)]
pub struct PublishedModel {
    /// The model snapshot.
    pub model: ServingModel,
    /// Monotonically increasing publication number (first publish = 1).
    pub version: u64,
}

/// The registry: one live model slot with atomic hot-swap semantics.
#[derive(Debug)]
pub struct ModelRegistry {
    slot: Mutex<Arc<PublishedModel>>,
    versions: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry with an initial model (version 1).
    pub fn new(initial: ServingModel) -> Self {
        Self { slot: Mutex::new(Arc::new(PublishedModel { model: initial, version: 1 })), versions: AtomicU64::new(1) }
    }

    /// The currently published model. The returned `Arc` stays valid (and
    /// the snapshot immutable) for as long as the caller holds it, no matter
    /// how many publishes happen meanwhile.
    pub fn current(&self) -> Arc<PublishedModel> {
        Arc::clone(&self.slot.lock().expect("registry slot poisoned"))
    }

    /// Atomically replaces the live model; returns the new version number.
    /// In-flight requests keep serving from the snapshot they loaded.
    ///
    /// The version is assigned while holding the slot lock, so concurrent
    /// publishers serialise: the model left in the slot is always the one
    /// with the highest version, and [`Self::version`] never reports a
    /// version newer than the slot's occupant.
    pub fn publish(&self, model: ServingModel) -> u64 {
        let mut slot = self.slot.lock().expect("registry slot poisoned");
        let version = self.versions.fetch_add(1, Ordering::SeqCst) + 1;
        *slot = Arc::new(PublishedModel { model, version });
        version
    }

    /// Version of the latest publish.
    pub fn version(&self) -> u64 {
        self.versions.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_tensor::Matrix;

    fn toy_model(tag: f32) -> ServingModel {
        let w = Matrix::from_rows(&[&[tag], &[tag * 2.0]]);
        ServingModel::from_parts("toy", &w, 1, |_, _| vec![1.0])
    }

    #[test]
    fn publish_bumps_version_and_swaps_the_model() {
        let registry = ModelRegistry::new(toy_model(1.0));
        assert_eq!(registry.version(), 1);
        let before = registry.current();
        let v2 = registry.publish(toy_model(5.0));
        assert_eq!(v2, 2);
        let after = registry.current();
        assert_eq!(before.version, 1);
        assert_eq!(after.version, 2);
        // The old snapshot is still fully usable by its holders.
        let req = crate::request::RecommendRequest { user: 0, history: vec![], k: 1, exclude_seen: false };
        assert_eq!(before.model.recommend(&req)[0].score, 2.0);
        assert_eq!(after.model.recommend(&req)[0].score, 10.0);
    }

    #[test]
    fn concurrent_readers_and_publishers_never_tear() {
        let registry = Arc::new(ModelRegistry::new(toy_model(1.0)));
        let publisher = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for i in 0..50 {
                    registry.publish(toy_model(i as f32 + 2.0));
                }
            })
        };
        let req = crate::request::RecommendRequest { user: 0, history: vec![], k: 2, exclude_seen: false };
        for _ in 0..200 {
            let snapshot = registry.current();
            let top = snapshot.model.recommend(&req);
            // Internally consistent: row 1 scores exactly twice row 0.
            assert_eq!(top[0].score, top[1].score * 2.0);
        }
        publisher.join().unwrap();
        assert_eq!(registry.version(), 51);
    }

    /// Two publishers racing: the slot must end up holding the model with
    /// the highest version (version assignment happens under the slot lock,
    /// so a slower publisher cannot overwrite a newer one with an older
    /// model).
    #[test]
    fn racing_publishers_leave_the_newest_model_in_the_slot() {
        let registry = Arc::new(ModelRegistry::new(toy_model(1.0)));
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        registry.publish(toy_model(i as f32 + 2.0));
                    }
                })
            })
            .collect();
        for publisher in publishers {
            publisher.join().unwrap();
        }
        assert_eq!(registry.version(), 51);
        assert_eq!(registry.current().version, registry.version(), "slot must hold the newest publish");
    }
}
