//! Inverted-file (IVF) cluster routing: the approximate candidate-generation
//! tier of the serving layer.
//!
//! A [`ClusterIndex`] partitions one shard's candidate rows into per-cluster
//! panels with the seeded, deterministic k-means in [`ham_tensor::cluster`].
//! At request time the shard scores the query against its centroids (one
//! small GEMV), visits only the top-`nprobe` clusters, and runs the masked
//! top-k select over those panels — so retrieval cost scales with the rows
//! *visited*, not the catalogue size. The per-cluster shortlists flow into
//! the very same k-way merge + exact re-rank machinery as exact serving.
//!
//! ## The exact endpoint
//!
//! `nprobe = all` ([`PROBE_ALL`]) is **bit-identical to exact serving** — ids,
//! order and scores — because every approximation ingredient degenerates to
//! the exact one:
//!
//! * panel scores equal shard scores bit for bit: the GEMV kernel scores each
//!   row independently of its neighbours, and the packed-panel GEMM
//!   accumulates every output element in ascending-`k` order regardless of
//!   how rows are grouped into panels (the same argument that makes sharding
//!   exact);
//! * each cluster keeps its rows in ascending global-id order, so the
//!   panel-local tie-break (lower panel index) is the global tie-break (lower
//!   item id), and masked items participate at `-inf` exactly as in the
//!   shard-level fused mask+select;
//! * merging per-cluster top-`min(k, len)` lists under the same total order
//!   reproduces the shard-level top-k, because every shard winner is by
//!   definition among the best `k` of its own cluster.
//!
//! With `nprobe < all` the only change is that unvisited clusters contribute
//! no candidates — a measured approximation (the `serve_report` benchmark
//! sweeps the dial and records recall@10 against the exact path), never a
//! silent one.

use ham_tensor::cluster::kmeans_rows;
use ham_tensor::{Matrix, QuantizedMatrix};

/// `nprobe` value meaning "visit every cluster" — the verified-exact endpoint
/// of the approximation dial.
pub const PROBE_ALL: usize = usize::MAX;

/// Build- and probe-time parameters of the IVF retrieval tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Clusters per shard; `0` sizes automatically to `⌈√shard_len⌉` (the
    /// classical IVF balance point between routing and scanning cost).
    pub clusters: usize,
    /// Clusters visited per shard per request ([`PROBE_ALL`] = exact).
    pub nprobe: usize,
    /// Lloyd iterations per index build.
    pub iters: usize,
    /// Seed of the deterministic k-means (mixed with the shard offset so
    /// shards don't share initialisations).
    pub seed: u64,
}

impl IvfConfig {
    /// Auto-sized clusters, `nprobe = all`, a small fixed iteration budget.
    pub fn auto() -> Self {
        Self { clusters: 0, nprobe: PROBE_ALL, iters: 8, seed: 0xA11CE }
    }

    /// Returns the config with the probe width replaced.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe.max(1);
        self
    }

    /// Cluster count for a shard of `shard_len` rows: the configured count
    /// (clamped to the row count) or `⌈√shard_len⌉` when auto-sized.
    pub fn clusters_for(&self, shard_len: usize) -> usize {
        if shard_len == 0 {
            return 0;
        }
        let want = if self.clusters > 0 { self.clusters } else { (shard_len as f64).sqrt().ceil() as usize };
        want.clamp(1, shard_len)
    }

    /// Reads the process-wide retrieval override: `HAM_RETRIEVAL=ivf` turns
    /// the IVF tier on at serving-model construction (with `HAM_IVF_NPROBE`
    /// optionally narrowing the probe width — it defaults to `all`, the exact
    /// endpoint, so forcing the IVF code paths never changes served bits on
    /// its own).
    pub fn from_env() -> Option<Self> {
        Self::from_env_values(
            std::env::var("HAM_RETRIEVAL").ok().as_deref(),
            std::env::var("HAM_IVF_NPROBE").ok().as_deref(),
        )
    }

    /// Pure body of [`Self::from_env`] (testable without touching the
    /// process environment): `retrieval` must be `ivf` (case-insensitive) to
    /// enable; `nprobe` accepts a positive integer or `all`, anything else
    /// (or absence) keeps the exact endpoint.
    pub fn from_env_values(retrieval: Option<&str>, nprobe: Option<&str>) -> Option<Self> {
        if !retrieval.is_some_and(|v| v.trim().eq_ignore_ascii_case("ivf")) {
            return None;
        }
        let nprobe = nprobe
            .and_then(|v| {
                let v = v.trim();
                if v.eq_ignore_ascii_case("all") {
                    Some(PROBE_ALL)
                } else {
                    v.parse::<usize>().ok().filter(|&n| n > 0)
                }
            })
            .unwrap_or(PROBE_ALL);
        Some(Self::auto().with_nprobe(nprobe))
    }
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// One shard's inverted-file index: centroids to route against, and the
/// shard's rows regrouped into contiguous per-cluster panels.
///
/// Only non-empty clusters are kept (k-means may strand a centroid), so
/// `centroids.rows() == panels.len() == ids.len()` and every panel has at
/// least one row. Within each cluster, rows stay in ascending shard-local
/// order — the tie-break invariant exact-endpoint bit-identity rests on.
#[derive(Debug, Clone)]
pub(crate) struct ClusterIndex {
    centroids: Matrix,
    panels: Vec<Matrix>,
    /// Int8 snapshots of `panels`, present iff the owning catalogue is
    /// quantized. Per-row quantization is position-independent, so a panel
    /// row quantizes bit-identically to the same row in the shard panel.
    qpanels: Vec<QuantizedMatrix>,
    /// `ids[j][p]`: shard-local row id of panel `j`'s row `p` (ascending).
    ids: Vec<Vec<usize>>,
}

impl ClusterIndex {
    /// Clusters `rows` with the deterministic seeded k-means and gathers the
    /// per-cluster panels. `seed_salt` (the shard offset) decorrelates the
    /// initialisation across shards while keeping the build a pure function
    /// of `(rows, config, salt)`.
    pub(crate) fn build(rows: &Matrix, config: &IvfConfig, seed_salt: u64) -> Self {
        let (n, d) = rows.shape();
        if n == 0 {
            return Self { centroids: Matrix::zeros(0, d), panels: Vec::new(), qpanels: Vec::new(), ids: Vec::new() };
        }
        let k = config.clusters_for(n);
        let result = kmeans_rows(rows, k, config.iters, config.seed ^ seed_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut ids: Vec<Vec<usize>> = vec![Vec::new(); result.centroids.rows()];
        // Ascending row order per cluster — the tie-break invariant.
        for (i, &c) in result.assignments.iter().enumerate() {
            ids[c].push(i);
        }
        let keep: Vec<usize> = (0..ids.len()).filter(|&j| !ids[j].is_empty()).collect();
        let centroids = result.centroids.gather_rows(&keep);
        let ids: Vec<Vec<usize>> = keep.iter().map(|&j| std::mem::take(&mut ids[j])).collect();
        let panels: Vec<Matrix> = ids.iter().map(|cluster| rows.gather_rows(cluster)).collect();
        Self { centroids, panels, qpanels: Vec::new(), ids }
    }

    /// Snapshots every panel as int8 (called when the owning catalogue is
    /// quantized, so the IVF path pre-selects through the same ¼-traffic
    /// panels as shard-level quantized serving).
    pub(crate) fn quantize_panels(&mut self) {
        self.qpanels = self.panels.iter().map(QuantizedMatrix::quantize).collect();
    }

    /// Number of (non-empty) clusters.
    pub(crate) fn num_clusters(&self) -> usize {
        self.centroids.rows()
    }

    /// Length of the longest panel (scratch sizing).
    pub(crate) fn max_panel_len(&self) -> usize {
        self.ids.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The routing matrix: one centroid per (non-empty) cluster.
    pub(crate) fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Cluster `j`'s f32 panel.
    pub(crate) fn panel(&self, j: usize) -> &Matrix {
        &self.panels[j]
    }

    /// Cluster `j`'s int8 panel.
    ///
    /// # Panics
    /// Panics if the panels were never quantized.
    pub(crate) fn qpanel(&self, j: usize) -> &QuantizedMatrix {
        &self.qpanels[j]
    }

    /// Cluster `j`'s shard-local row ids, ascending.
    pub(crate) fn cluster_ids(&self, j: usize) -> &[usize] {
        &self.ids[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, d: usize) -> Matrix {
        Matrix::from_vec(n, d, (0..n * d).map(|i| ((i * 31) % 17) as f32 * 0.5 - 4.0).collect())
    }

    #[test]
    fn build_partitions_every_row_exactly_once() {
        let w = rows(40, 6);
        let index = ClusterIndex::build(&w, &IvfConfig::auto(), 3);
        let mut all: Vec<usize> = (0..index.num_clusters()).flat_map(|j| index.cluster_ids(j).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
        // Panels hold the gathered rows, ids ascending within each cluster.
        for j in 0..index.num_clusters() {
            let ids = index.cluster_ids(j);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "cluster {j} ids not ascending");
            assert!(!ids.is_empty(), "cluster {j} kept while empty");
            for (p, &local) in ids.iter().enumerate() {
                assert_eq!(index.panel(j).row(p), w.row(local));
            }
        }
    }

    #[test]
    fn build_is_deterministic_per_salt() {
        let w = rows(30, 4);
        let a = ClusterIndex::build(&w, &IvfConfig::auto(), 7);
        let b = ClusterIndex::build(&w, &IvfConfig::auto(), 7);
        assert_eq!(a.centroids().as_slice(), b.centroids().as_slice());
        assert_eq!(a.ids, b.ids);
    }

    #[test]
    fn empty_shard_builds_an_empty_index() {
        let index = ClusterIndex::build(&Matrix::zeros(0, 5), &IvfConfig::auto(), 0);
        assert_eq!(index.num_clusters(), 0);
        assert_eq!(index.max_panel_len(), 0);
    }

    #[test]
    fn config_cluster_sizing() {
        let auto = IvfConfig::auto();
        assert_eq!(auto.clusters_for(0), 0);
        assert_eq!(auto.clusters_for(1), 1);
        assert_eq!(auto.clusters_for(100), 10);
        assert_eq!(auto.clusters_for(10_000), 100);
        let fixed = IvfConfig { clusters: 64, ..IvfConfig::auto() };
        assert_eq!(fixed.clusters_for(10_000), 64);
        assert_eq!(fixed.clusters_for(5), 5, "clusters clamp to the row count");
    }

    #[test]
    fn env_parsing_is_gated_and_defaults_to_the_exact_endpoint() {
        assert_eq!(IvfConfig::from_env_values(None, None), None);
        assert_eq!(IvfConfig::from_env_values(Some(""), Some("4")), None);
        assert_eq!(IvfConfig::from_env_values(Some("exact"), None), None);
        assert_eq!(IvfConfig::from_env_values(Some("ivf"), None), Some(IvfConfig::auto()));
        assert_eq!(IvfConfig::from_env_values(Some(" IVF "), None), Some(IvfConfig::auto()));
        assert_eq!(IvfConfig::from_env_values(Some("ivf"), Some("all")), Some(IvfConfig::auto()));
        assert_eq!(IvfConfig::from_env_values(Some("ivf"), Some("8")), Some(IvfConfig::auto().with_nprobe(8)));
        // Garbage / zero nprobe keeps the exact endpoint rather than erroring.
        assert_eq!(IvfConfig::from_env_values(Some("ivf"), Some("0")), Some(IvfConfig::auto()));
        assert_eq!(IvfConfig::from_env_values(Some("ivf"), Some("lots")), Some(IvfConfig::auto()));
    }
}
