//! # ham-serve
//!
//! The online serving subsystem of the HAM reproduction: everything needed
//! to turn a trained scorer into a **sharded, pooled, hot-swappable
//! recommendation service**.
//!
//! The offline side of the workspace got fast first — batched `Q·Wᵀ` scoring
//! kernels, threaded evaluation — but the ROADMAP's north star is a system
//! that *serves*. This crate adds the serving-shaped layers on top of the
//! same kernels:
//!
//! * [`shard`] — [`ShardedCatalog`]: the candidate matrix `W` split row-wise
//!   into per-worker shards. Each shard is scored with the existing GEMV /
//!   packed-panel GEMM kernels, seen items are masked shard-locally through
//!   the fused mask+select top-k (no `-inf` writes), and the per-shard top-k
//!   lists are merged by a k-way heap into the **exact** global top-k —
//!   bit-identical ids, stable tie-break, for every shard count.
//! * [`model`] — [`ServingModel`]: a frozen serving snapshot (sharded
//!   catalogue + owned query builder) constructed from any
//!   [`ham_core::Scorer`] or anything else with a [`ham_core::LinearHead`]
//!   (all `ham-baselines` recommenders qualify).
//! * [`registry`] — [`ModelRegistry`]: versioned `Arc` hot-swap, so a
//!   retrained model is published without pausing traffic; in-flight
//!   requests finish on the snapshot they started with.
//! * [`server`] — [`RecServer`]: the request layer. Concurrent
//!   [`RecommendRequest`]s are coalesced by a micro-batching queue into one
//!   GEMM per shard (scored in parallel on the process-wide work-stealing
//!   pool, `ham_tensor::pool`), and every [`RecommendResponse`] carries its
//!   queue/service latency split.
//! * deadlines & degradation — requests carry deadlines
//!   ([`RecommendRequest::with_deadline`] or
//!   [`ServerConfig::default_deadline`]): expired-in-queue requests are shed
//!   with [`server::SubmitError::DeadlineExpired`], and a deadline-carrying
//!   batch is scored on a bulkhead executor where a shard that misses its
//!   budget (or panics) is dropped from the k-way merge — the response comes
//!   back flagged [`RecommendResponse::degraded`] with
//!   [`RecommendResponse::shards_answered`] naming how complete it is.
//!   [`ModelRegistry::rollback_to`] republishes an archived snapshot when a
//!   freshly published model misbehaves. Deterministic fault injection for
//!   all of this lives in `ham-faults` (`HAM_FAULTS=<spec>`).
//!
//! ## Quickstart
//!
//! ```
//! use ham_core::{HamConfig, HamModel, HamVariant};
//! use ham_serve::{ModelRegistry, RecServer, RecommendRequest, ServerConfig, ServingModel};
//! use std::sync::Arc;
//!
//! let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(16, 4, 2, 2, 2);
//! let model = Arc::new(HamModel::new(10, 100, config, 7));
//! let serving = ServingModel::from_scorer("ham-sm", model, 4).unwrap();
//! let registry = Arc::new(ModelRegistry::new(serving));
//! let server = RecServer::start(Arc::clone(&registry), ServerConfig::default());
//! let response = server.submit(RecommendRequest::new(3, vec![5, 17, 42], 10)).expect("request admitted");
//! assert_eq!(response.items.len(), 10);
//! ```
//!
//! `submit` applies admission control: past [`ServerConfig::max_queue`]
//! queued requests it sheds with [`server::SubmitError::QueueFull`] instead
//! of queueing unboundedly, and during shutdown it rejects with
//! [`server::SubmitError::ShuttingDown`] while every admitted request is
//! still answered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degrade;
pub mod ivf;
pub mod model;
pub mod registry;
pub mod request;
pub mod server;
pub mod shard;
pub mod trace;

pub use ivf::{IvfConfig, PROBE_ALL};
pub use model::{ServeScratch, ServingModel};
pub use registry::{ModelRegistry, PublishedModel, RollbackError};
pub use request::{LatencyStats, RecommendRequest, RecommendResponse};
pub use server::{RecServer, ServerConfig, ServerStats, SubmitError};
pub use shard::{merge_top_k, ScoredItem, Shard, ShardedCatalog};
pub use trace::StageTrace;
