//! The online request layer: a micro-batching queue in front of the sharded
//! scorer.
//!
//! Concurrent single-user requests are individually tiny (one GEMV each) but
//! collectively leave throughput on the table: a batch of `B` queries against
//! the catalogue is one packed-panel GEMM that streams `W` once instead of
//! `B` times. The [`RecServer`] therefore enqueues every request, and a
//! dispatcher thread drains the queue in batches of up to
//! [`ServerConfig::max_batch`], optionally lingering for
//! [`ServerConfig::coalesce_wait`] to let concurrent callers pile on. Each
//! drained batch is served from the registry's current model snapshot —
//! hot-swaps between batches never pause traffic — and every response carries
//! its own queue/service latency split.

use crate::degrade::{score_bounded, ShardExecutor};
use crate::model::ServeScratch;
use crate::registry::{ModelRegistry, PublishedModel};
use crate::request::{RecommendRequest, RecommendResponse};
use crate::shard::ScoredItem;
use crate::trace::StageTrace;
use ham_faults::FaultInjector;
use ham_telemetry::{Counter, Gauge, Histogram, SpanTree, Telemetry};
use ham_tensor::pool::global_pool;
use ham_tensor::Matrix;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs of the micro-batching queue.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Upper bound on requests coalesced into one scoring batch.
    pub max_batch: usize,
    /// How long the dispatcher lingers for more arrivals once the queue is
    /// non-empty but below `max_batch`. Zero drains immediately (lowest
    /// latency, least coalescing).
    pub coalesce_wait: Duration,
    /// Score the shards of a batch in parallel on the process-wide worker
    /// pool. Disable to dedicate the pool to other work.
    pub parallel_shards: bool,
    /// Admission control: requests arriving while the queue already holds
    /// this many are **shed** — [`RecServer::submit`] returns
    /// [`SubmitError::QueueFull`] immediately instead of letting the queue
    /// (and every queued request's latency) grow without bound when load
    /// exceeds what the dispatcher can drain.
    pub max_queue: usize,
    /// Deadline applied to every request that does not carry its own
    /// ([`RecommendRequest::deadline`]), measured from enqueue. A request
    /// still queued past its deadline is shed with
    /// [`SubmitError::DeadlineExpired`] before any scoring is spent on it;
    /// a request picked up close to its deadline grants the shard-scoring
    /// stage only the remaining budget (see
    /// [`Self::shard_budget_fraction`]) and may come back
    /// [`degraded`](RecommendResponse::degraded). `None` (the default)
    /// leaves requests without their own deadline unbounded.
    pub default_deadline: Option<Duration>,
    /// Fraction of a batch's tightest remaining deadline budget granted to
    /// the shard-scoring stage; the holdback covers ranking, merging and
    /// delivery. The batch budget is the minimum over its requests'
    /// remaining deadlines at pickup. Clamped to `[0.05, 1.0]`.
    pub shard_budget_fraction: f64,
    /// Worker threads of the bulkhead executor that scores shards under a
    /// deadline (spawned lazily by the first bounded batch — requests
    /// without deadlines and with no faults armed never pay for it).
    /// `0` (the default) sizes it to the model's shard count, capped at 8.
    pub shard_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            coalesce_wait: Duration::from_micros(200),
            parallel_shards: true,
            max_queue: 1024,
            default_deadline: None,
            shard_budget_fraction: 0.7,
            shard_workers: 0,
        }
    }
}

/// Why [`RecServer::submit`] rejected a request without serving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already held [`ServerConfig::max_queue`] requests; the
    /// request was shed to protect the latency of the admitted ones. The
    /// caller may retry (ideally with backoff).
    QueueFull {
        /// The configured bound the queue was at.
        max_queue: usize,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The request's deadline ([`RecommendRequest::deadline`] or
    /// [`ServerConfig::default_deadline`]) expired while it was still
    /// queued; the dispatcher shed it before spending any scoring work —
    /// by the time a result existed the caller would no longer want it.
    DeadlineExpired {
        /// How long the request had waited when it was shed.
        waited_micros: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { max_queue } => {
                write!(f, "request shed: queue at capacity ({max_queue})")
            }
            SubmitError::ShuttingDown => write!(f, "request rejected: server shutting down"),
            SubmitError::DeadlineExpired { waited_micros } => {
                write!(f, "request shed: deadline expired after {waited_micros}µs in queue")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One queued request and the slot its response will be delivered to.
struct Pending {
    request: RecommendRequest,
    enqueued: Instant,
    /// Absolute expiry (request override or server default), resolved at
    /// admission so the dispatcher's expiry check is one comparison.
    deadline: Option<Instant>,
    slot: Arc<ResponseSlot>,
}

/// A one-shot rendezvous between the submitting thread and the dispatcher.
/// Carries a `Result` so the dispatcher can answer an admitted request with
/// a post-admission rejection (deadline expiry) as well as a response.
struct ResponseSlot {
    filled: Mutex<Option<Result<RecommendResponse, SubmitError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self { filled: Mutex::new(None), ready: Condvar::new() }
    }

    fn deliver(&self, response: Result<RecommendResponse, SubmitError>) {
        // A poisoned slot means some earlier holder panicked; the Option
        // inside is still structurally sound, so recover it — refusing to
        // deliver would strand the submitter forever.
        *self.filled.lock().unwrap_or_else(PoisonError::into_inner) = Some(response);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<RecommendResponse, SubmitError> {
        let mut filled = self.filled.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(response) = filled.take() {
                return response;
            }
            // Condvar poisoning carries the same recoverable guard.
            filled = self.ready.wait(filled).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Cumulative request accounting, maintained unconditionally (wait-free
/// relaxed atomics — cheap enough to stay on even with telemetry disabled,
/// and the fix for the shed-visibility gap: before this, a rejected
/// `submit` was the only record a shed ever happened).
#[derive(Debug, Default)]
struct ServerCounters {
    admitted: Counter,
    shed: Counter,
    completed: Counter,
    panic_isolated: Counter,
    /// Requests shed in-queue at their deadline (the error budget's "never
    /// served" bucket).
    deadline_expired: Counter,
    /// Responses answered without every shard (the "served degraded"
    /// bucket).
    degraded: Counter,
    /// Shards dropped from a merge for missing their deadline budget.
    shard_deadline_miss: Counter,
    /// Shards dropped from a merge because their scoring task panicked.
    shard_panic: Counter,
    queue_depth: Gauge,
}

/// Per-shard metric handles, resolved lazily per shard id.
#[derive(Debug, Clone)]
struct ShardMetrics {
    score_micros: Histogram,
    deadline_miss: Counter,
}

/// Histograms resolved once at server start when telemetry is enabled.
#[derive(Debug)]
struct ServeMetrics {
    queue_micros: Histogram,
    service_micros: Histogram,
    total_micros: Histogram,
    batch_size: Histogram,
    stage_batch_assembly: Histogram,
    stage_shard_score: Histogram,
    stage_merge: Histogram,
    stage_rerank: Histogram,
    stage_solo: Histogram,
    /// Lazily resolved per-shard handles (`serve_shard_{s}_score_micros`,
    /// `serve_shard_{s}_deadline_miss_total`), indexed by shard id — the
    /// attribution that makes a slow shard visible *by name* before the
    /// multi-node split lands.
    per_shard: Mutex<Vec<Option<ShardMetrics>>>,
}

impl ServeMetrics {
    /// Resolves the serving metric set (and registers the always-on
    /// counters) in `telemetry`'s registry; `None` when disabled.
    fn resolve(telemetry: &Telemetry, counters: &ServerCounters) -> Option<Self> {
        let registry = telemetry.registry()?;
        registry.register_counter("serve_requests_admitted_total", &counters.admitted);
        registry.register_counter("serve_requests_shed_total", &counters.shed);
        registry.register_counter("serve_requests_completed_total", &counters.completed);
        registry.register_counter("serve_requests_panic_isolated_total", &counters.panic_isolated);
        registry.register_counter("serve_requests_deadline_expired_total", &counters.deadline_expired);
        registry.register_counter("serve_responses_degraded_total", &counters.degraded);
        registry.register_counter("serve_shard_deadline_miss_total", &counters.shard_deadline_miss);
        registry.register_counter("serve_shard_panic_total", &counters.shard_panic);
        registry.register_gauge("serve_queue_depth", &counters.queue_depth);
        Some(Self {
            queue_micros: registry.histogram("serve_queue_micros"),
            service_micros: registry.histogram("serve_service_micros"),
            total_micros: registry.histogram("serve_total_micros"),
            batch_size: registry.histogram("serve_batch_size"),
            stage_batch_assembly: registry.histogram("serve_stage_batch_assembly_micros"),
            stage_shard_score: registry.histogram("serve_stage_shard_score_micros"),
            stage_merge: registry.histogram("serve_stage_merge_micros"),
            stage_rerank: registry.histogram("serve_stage_rerank_micros"),
            stage_solo: registry.histogram("serve_stage_solo_gemv_micros"),
            per_shard: Mutex::new(Vec::new()),
        })
    }

    /// The metric handles for one shard id (resolved in `telemetry`'s
    /// registry on first use, cached after).
    fn shard(&self, telemetry: &Telemetry, shard: usize) -> ShardMetrics {
        // The cache is a plain Vec of resolved handles — valid even if a
        // prior holder panicked, so recover from poisoning.
        let mut per_shard = self.per_shard.lock().unwrap_or_else(PoisonError::into_inner);
        if per_shard.len() <= shard {
            per_shard.resize(shard + 1, None);
        }
        per_shard[shard]
            .get_or_insert_with(|| {
                // ham-lint: allow(panic, "ServeMetrics is only constructed by resolve(), which requires a registry")
                let registry = telemetry.registry().expect("ServeMetrics exists only with telemetry enabled");
                ShardMetrics {
                    score_micros: registry.histogram(&format!("serve_shard_{shard}_score_micros")),
                    deadline_miss: registry.counter(&format!("serve_shard_{shard}_deadline_miss_total")),
                }
            })
            .clone()
    }
}

/// Cumulative server-side request accounting, as returned by
/// [`RecServer::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests shed at admission ([`SubmitError::QueueFull`]).
    pub shed: u64,
    /// Requests answered (every admitted request eventually is).
    pub completed: u64,
    /// Requests whose solo retry also panicked and were answered with an
    /// empty ranking (delivered with [`RecommendResponse::degraded`] set).
    pub panic_isolated: u64,
    /// Admitted requests shed in-queue at their deadline
    /// ([`SubmitError::DeadlineExpired`]).
    pub deadline_expired: u64,
    /// Responses served without every shard's answer
    /// ([`RecommendResponse::degraded`]).
    pub degraded: u64,
    /// Shard-batch scoring tasks dropped for missing their deadline budget.
    pub shard_deadline_misses: u64,
    /// Shard-batch scoring tasks dropped because they panicked.
    pub shard_panics: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
}

struct ServerShared {
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Pending>>,
    arrived: Condvar,
    shutdown: AtomicBool,
    counters: ServerCounters,
    telemetry: Telemetry,
    metrics: Option<ServeMetrics>,
    faults: FaultInjector,
}

/// An embeddable online recommendation server: micro-batching queue,
/// sharded scoring, hot-swappable model.
///
/// `submit` is called from any number of client threads; one dispatcher
/// thread owns the draining loop. Dropping the server flushes the queue
/// (every accepted request is answered) and joins the dispatcher.
pub struct RecServer {
    shared: Arc<ServerShared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl RecServer {
    /// Starts the dispatcher for the models published in `registry`.
    /// Telemetry follows the environment (`HAM_TELEMETRY=1` lights up the
    /// metric set of [`Self::start_with_telemetry`]), and so does fault
    /// injection (`HAM_FAULTS=<spec>` arms the deterministic injector —
    /// test/chaos builds only; unset serves faithfully).
    pub fn start(registry: Arc<ModelRegistry>, config: ServerConfig) -> Self {
        Self::start_instrumented(registry, config, Telemetry::from_env(), FaultInjector::from_env())
    }

    /// [`Self::start`] with an explicit [`Telemetry`] handle. An enabled
    /// handle gets the always-on counters registered
    /// (`serve_requests_{admitted,shed,completed,panic_isolated}_total`,
    /// `serve_requests_deadline_expired_total`,
    /// `serve_responses_degraded_total`, `serve_shard_*_total`,
    /// `serve_queue_depth`), per-request latency histograms
    /// (`serve_{queue,service,total}_micros`, `serve_batch_size`), stage
    /// histograms (`serve_stage_*_micros`), per-shard score histograms and
    /// per-request span trees in the handle's flight recorder.
    pub fn start_with_telemetry(registry: Arc<ModelRegistry>, config: ServerConfig, telemetry: Telemetry) -> Self {
        Self::start_instrumented(registry, config, telemetry, FaultInjector::from_env())
    }

    /// [`Self::start_with_telemetry`] with an explicit [`FaultInjector`] —
    /// the full-control constructor used by the chaos suite and benches to
    /// arm deterministic faults without going through the environment.
    pub fn start_instrumented(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        telemetry: Telemetry,
        faults: FaultInjector,
    ) -> Self {
        assert!(config.max_batch > 0, "RecServer: max_batch must be positive");
        assert!(config.max_queue > 0, "RecServer: max_queue must be positive");
        let counters = ServerCounters::default();
        let metrics = ServeMetrics::resolve(&telemetry, &counters);
        let shared = Arc::new(ServerShared {
            registry,
            config,
            queue: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters,
            telemetry,
            metrics,
            faults,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ham-serve-dispatch".to_string())
                .spawn(move || dispatch_loop(&shared))
                // ham-lint: allow(panic, "startup, before any traffic — a server without a dispatcher cannot run")
                .expect("failed to spawn dispatcher")
        };
        Self { shared, dispatcher: Some(dispatcher) }
    }

    /// Submits a request and blocks until its response is ready, or returns
    /// a [`SubmitError`] **immediately** when the request cannot be
    /// admitted — the queue is at [`ServerConfig::max_queue`] (shed) or the
    /// server is shutting down. Every admitted request is guaranteed a
    /// response: admission and shutdown are decided under the queue lock,
    /// so a request can never slip in behind the dispatcher's final drain.
    ///
    /// Concurrent submitters are coalesced into shared scoring batches; a
    /// lone submitter is served solo via the exact GEMV path.
    ///
    /// A request the model itself rejects (unknown user id, a history the
    /// query builder panics on) comes back with an **empty** item list
    /// rather than wedging the server — the dispatcher isolates the panic
    /// and keeps serving the rest of the batch and all later traffic.
    pub fn submit(&self, request: RecommendRequest) -> Result<RecommendResponse, SubmitError> {
        let slot = Arc::new(ResponseSlot::new());
        {
            // A poisoned queue lock means the dispatcher died mid-drain;
            // admitting would strand this request with no thread left to
            // answer it, so shed instead (PR 8's degradation contract:
            // reject loudly rather than hang quietly).
            let Ok(mut queue) = self.shared.queue.lock() else {
                self.shared.counters.shed.inc();
                return Err(SubmitError::ShuttingDown);
            };
            // Both checks must happen under the lock: shutdown is flipped
            // while holding it (see `shutdown`), so an admitted request is
            // visible to the dispatcher's exit check, which only fires on an
            // empty queue — enqueue-then-never-answered cannot happen.
            // ordering: SeqCst pairs with the stores in `shutdown` — the
            // flag is part of the queue-lock admission protocol and must be
            // totally ordered with respect to it.
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.len() >= self.shared.config.max_queue {
                self.shared.counters.shed.inc();
                return Err(SubmitError::QueueFull { max_queue: self.shared.config.max_queue });
            }
            let now = Instant::now();
            let deadline = request.deadline.or(self.shared.config.default_deadline).map(|budget| now + budget);
            queue.push_back(Pending { request, enqueued: now, deadline, slot: Arc::clone(&slot) });
            self.shared.counters.admitted.inc();
            self.shared.counters.queue_depth.set(queue.len() as i64);
            self.shared.arrived.notify_all();
        }
        slot.wait()
    }

    /// Cumulative admitted/shed/completed/panic-isolated counts and the
    /// current queue depth. Counts are maintained wait-free whether or not
    /// telemetry is enabled, so shed traffic is observable server-side —
    /// not only by the caller whose `submit` was rejected.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.shared.counters.admitted.get(),
            shed: self.shared.counters.shed.get(),
            completed: self.shared.counters.completed.get(),
            panic_isolated: self.shared.counters.panic_isolated.get(),
            deadline_expired: self.shared.counters.deadline_expired.get(),
            degraded: self.shared.counters.degraded.get(),
            shard_deadline_misses: self.shared.counters.shard_deadline_miss.get(),
            shard_panics: self.shared.counters.shard_panic.get(),
            queue_depth: self.shared.counters.queue_depth.get().max(0) as usize,
        }
    }

    /// The telemetry handle the server records into (disabled unless
    /// [`Self::start_with_telemetry`] got an enabled one or the environment
    /// set `HAM_TELEMETRY=1`).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Begins shutdown: subsequent [`Self::submit`] calls return
    /// [`SubmitError::ShuttingDown`], while every already-admitted request
    /// is still drained and answered. Dropping the server joins the
    /// dispatcher (and shuts down first if this was never called).
    pub fn shutdown(&self) {
        // Shutdown must proceed even if a panicking holder poisoned the
        // lock — the guard is only held to order the flag flip against
        // admission, and the flag itself is an atomic.
        let _queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        // ordering: SeqCst pairs with the loads in `submit` and
        // `dispatch_loop`; the flag participates in the admission/drain
        // protocol and must not be reordered around the queue lock.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.arrived.notify_all();
    }

    /// Current number of published model versions (see [`ModelRegistry`]).
    pub fn model_version(&self) -> u64 {
        self.shared.registry.version()
    }
}

impl Drop for RecServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _unused = dispatcher.join();
        }
    }
}

fn dispatch_loop(shared: &ServerShared) {
    // One scratch for the dispatcher's lifetime: the batch-of-1 GEMV path
    // scores every shard into the same reused buffer and marks/clears the
    // seen bitmap in O(history) — no per-request allocation on the hot path.
    let mut scratch = ServeScratch::new();
    // The bulkhead executor for deadline-bounded shard scoring, spawned by
    // the first batch that needs it and reused for the dispatcher's life.
    let mut executor: Option<ShardExecutor> = None;
    loop {
        let batch = {
            // The dispatcher is the thread every admitted request depends
            // on: recover the queue from poisoning (it is a plain VecDeque,
            // structurally sound whatever a panicking holder was doing) —
            // dying here would strand the whole queue.
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            // Sleep until work arrives or shutdown (then drain what's left).
            while queue.is_empty() {
                // ordering: SeqCst pairs with the store in `shutdown`,
                // which happens under this queue lock — see `submit` for
                // the admission/drain protocol this flag belongs to.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.arrived.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
            // Linger once to coalesce concurrent submitters into this batch.
            if queue.len() < shared.config.max_batch
                && !shared.config.coalesce_wait.is_zero()
                // ordering: SeqCst, same pairing as the exit check above.
                && !shared.shutdown.load(Ordering::SeqCst)
            {
                let (returned, _timeout) = shared
                    .arrived
                    .wait_timeout(queue, shared.config.coalesce_wait)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = returned;
            }
            let take = queue.len().min(shared.config.max_batch);
            let batch = queue.drain(..take).collect::<Vec<Pending>>();
            shared.counters.queue_depth.set(queue.len() as i64);
            batch
        };
        if batch.is_empty() {
            continue;
        }
        serve_batch(shared, batch, &mut scratch, &mut executor);
    }
}

/// How completely one request of a batch was served.
#[derive(Debug, Clone, Copy)]
struct ResponseMeta {
    degraded: bool,
    shards_answered: usize,
}

fn serve_batch(
    shared: &ServerShared,
    batch: Vec<Pending>,
    scratch: &mut ServeScratch,
    executor: &mut Option<ShardExecutor>,
) {
    let published = shared.registry.current();
    let picked_up = Instant::now();
    // Move the requests out of their queue entries — the batch is scored
    // from the originals, no per-request clone on the hot path. Requests
    // already past their deadline are shed here: by the time a result
    // existed the caller would have moved on, so scoring them would only
    // tax their batch-mates.
    let mut requests = Vec::with_capacity(batch.len());
    let mut waiters = Vec::with_capacity(batch.len());
    for pending in batch {
        if pending.deadline.is_some_and(|deadline| picked_up >= deadline) {
            let waited_micros = picked_up.duration_since(pending.enqueued).as_micros() as u64;
            shared.counters.deadline_expired.inc();
            pending.slot.deliver(Err(SubmitError::DeadlineExpired { waited_micros }));
            continue;
        }
        requests.push(pending.request);
        waiters.push((pending.enqueued, pending.deadline, pending.slot));
    }
    if requests.is_empty() {
        return;
    }
    // The batch's scoring budget is its tightest member's deadline. Any
    // deadline (or armed fault injection) routes to the bounded bulkhead
    // path; a deadline-free, fault-free batch keeps the classic zero-copy
    // path — it pays nothing for the machinery it does not use.
    let batch_deadline = waiters.iter().filter_map(|(_, deadline, _)| *deadline).min();
    let mut trace = shared.metrics.as_ref().map(|_| StageTrace::new());
    let (rankings, metas) = if batch_deadline.is_some() || shared.faults.is_enabled() {
        serve_bounded(shared, &published, &requests, picked_up, batch_deadline, executor, trace.as_mut())
    } else {
        serve_classic(shared, &published, &requests, scratch, trace.as_mut())
    };
    let service_micros = picked_up.elapsed().as_micros() as u64;
    let batch_len = waiters.len() as u64;
    if let (Some(metrics), Some(trace)) = (&shared.metrics, &trace) {
        metrics.batch_size.record(batch_len);
        metrics.service_micros.record(service_micros);
        match trace.solo_micros {
            Some(solo) => metrics.stage_solo.record(solo),
            None => {
                metrics.stage_batch_assembly.record(trace.batch_assembly_micros);
                metrics.stage_shard_score.record(trace.max_shard_micros());
                metrics.stage_merge.record(trace.merge_micros);
                if trace.rerank_micros > 0 {
                    metrics.stage_rerank.record(trace.rerank_micros);
                }
                for &(shard, micros) in &trace.shard_score_micros {
                    metrics.shard(&shared.telemetry, shard).score_micros.record(micros);
                }
            }
        }
    }
    for (((enqueued, _deadline, slot), items), meta) in waiters.into_iter().zip(rankings).zip(metas) {
        let queue_micros = picked_up.duration_since(enqueued).as_micros() as u64;
        if let (Some(metrics), Some(trace)) = (&shared.metrics, &trace) {
            metrics.queue_micros.record(queue_micros);
            metrics.total_micros.record(queue_micros + service_micros);
            if let Some(flight) = shared.telemetry.flight() {
                flight.record(request_span_tree(queue_micros, service_micros, trace));
            }
        }
        if meta.degraded {
            shared.counters.degraded.inc();
        }
        // Count before delivering: `deliver` unblocks the submitter, which
        // may read `stats()` immediately — its own completion must already
        // be visible.
        shared.counters.completed.inc();
        slot.deliver(Ok(RecommendResponse {
            items,
            model_version: published.version,
            queue_micros,
            service_micros,
            degraded: meta.degraded,
            shards_answered: meta.shards_answered,
            clusters_probed: published.model.clusters_probed(),
        }));
    }
}

/// The classic full-fidelity path: one traced batched scoring call on the
/// shared pool, panic-isolated per batch then per request.
fn serve_classic(
    shared: &ServerShared,
    published: &PublishedModel,
    requests: &[RecommendRequest],
    scratch: &mut ServeScratch,
    trace: Option<&mut StageTrace>,
) -> (Vec<Vec<ScoredItem>>, Vec<ResponseMeta>) {
    let num_shards = published.model.catalog().num_shards();
    let pool = shared.config.parallel_shards.then(global_pool);
    // A malformed request (unknown user, history the model rejects) panics
    // inside the model's query builder. The dispatcher is the only serving
    // thread, so a panic here must not unwind it: every waiter in the batch
    // would block forever and the server would wedge. Catch the batch panic
    // and retry each request solo so one poisoned request cannot take down
    // its batch-mates.
    match catch_unwind(AssertUnwindSafe(|| published.model.recommend_batch_traced(requests, pool, scratch, trace))) {
        Ok(rankings) => {
            let meta = ResponseMeta { degraded: false, shards_answered: num_shards };
            (rankings, vec![meta; requests.len()])
        }
        Err(_) => {
            // The panic may have unwound between marking and clearing the
            // scratch's seen bitmap; restore the all-clear invariant before
            // the solo retries.
            scratch.reset();
            solo_retry(shared, published, requests, num_shards)
        }
    }
}

/// Per-request panic isolation: each request is retried alone (the
/// allocating path on purpose — this branch is cold), and a request that
/// still panics is answered with an empty ranking **flagged degraded** so
/// the caller can tell it apart from a genuinely empty result.
fn solo_retry(
    shared: &ServerShared,
    published: &PublishedModel,
    requests: &[RecommendRequest],
    num_shards: usize,
) -> (Vec<Vec<ScoredItem>>, Vec<ResponseMeta>) {
    let mut rankings = Vec::with_capacity(requests.len());
    let mut metas = Vec::with_capacity(requests.len());
    for request in requests {
        match catch_unwind(AssertUnwindSafe(|| published.model.recommend(request))) {
            Ok(items) => {
                rankings.push(items);
                metas.push(ResponseMeta { degraded: false, shards_answered: num_shards });
            }
            Err(_) => {
                shared.counters.panic_isolated.inc();
                rankings.push(Vec::new());
                metas.push(ResponseMeta { degraded: true, shards_answered: 0 });
            }
        }
    }
    (rankings, metas)
}

/// The deadline-bounded path: shard blocks are scored on the bulkhead
/// executor with at most `shard_budget_fraction` of the batch's remaining
/// deadline budget; shards that miss it (or panic) are dropped from the
/// merge and the response is flagged degraded. With every shard answering,
/// the result is bit-identical to the classic path (see [`crate::degrade`]).
#[allow(clippy::too_many_arguments)]
fn serve_bounded(
    shared: &ServerShared,
    published: &PublishedModel,
    requests: &[RecommendRequest],
    picked_up: Instant,
    batch_deadline: Option<Instant>,
    executor: &mut Option<ShardExecutor>,
    trace: Option<&mut StageTrace>,
) -> (Vec<Vec<ScoredItem>>, Vec<ResponseMeta>) {
    let model = &published.model;
    let catalog = model.catalog_arc();
    let num_shards = catalog.num_shards();
    // Query assembly runs user code (the query closure) — panic-isolate it
    // exactly like the classic path and fall back to solo retries.
    let assembly_started = Instant::now();
    let queries = match catch_unwind(AssertUnwindSafe(|| {
        let mut queries = Matrix::zeros(requests.len(), catalog.dim());
        for (i, request) in requests.iter().enumerate() {
            queries.row_mut(i).copy_from_slice(&model.query_vector(request.user, &request.history));
        }
        queries
    })) {
        Ok(queries) => queries,
        Err(_) => return solo_retry(shared, published, requests, num_shards),
    };
    let assembly_micros = assembly_started.elapsed().as_micros() as u64;
    let ks: Vec<usize> = requests.iter().map(|r| r.k).collect();
    let seen: Vec<Option<&[usize]>> = requests.iter().map(|r| r.exclude_seen.then_some(r.history.as_slice())).collect();
    let executor = executor.get_or_insert_with(|| {
        ShardExecutor::new(match shared.config.shard_workers {
            0 => num_shards.clamp(1, 8),
            n => n,
        })
    });
    // The scoring stage gets a fraction of the remaining budget; the
    // holdback covers ranking, merge and delivery.
    let shard_deadline = batch_deadline.map(|deadline| {
        let budget = deadline.saturating_duration_since(picked_up);
        picked_up + budget.mul_f64(shared.config.shard_budget_fraction.clamp(0.05, 1.0))
    });
    let outcome = score_bounded(&catalog, queries, &ks, &seen, executor, shard_deadline, &shared.faults);
    shared.counters.shard_deadline_miss.add(outcome.timed_out.len() as u64);
    shared.counters.shard_panic.add(outcome.panicked.len() as u64);
    if let Some(metrics) = &shared.metrics {
        for &shard in &outcome.timed_out {
            metrics.shard(&shared.telemetry, shard).deadline_miss.inc();
        }
    }
    if let Some(trace) = trace {
        trace.batch_assembly_micros = assembly_micros;
        trace.shard_score_micros = outcome.shard_micros.clone();
        trace.merge_micros = outcome.merge_micros;
        trace.rerank_micros = outcome.rerank_micros;
    }
    let meta = ResponseMeta { degraded: outcome.degraded(), shards_answered: outcome.shards_answered };
    (outcome.rankings, vec![meta; requests.len()])
}

/// Shapes one request's timing into the flight-recorder span tree:
/// `request → {queue, service → {batch_assembly, shard_score → {shard_i…},
/// merge, rerank}}` (or `service → {solo_gemv}` on the batch-of-1 path).
/// Stage offsets are laid out sequentially from the measured durations —
/// parallel shard children share the `shard_score` start offset.
fn request_span_tree(queue_micros: u64, service_micros: u64, trace: &StageTrace) -> SpanTree {
    let mut service = SpanTree::leaf("service", queue_micros, service_micros);
    match trace.solo_micros {
        Some(solo) => {
            service = service.with_child(SpanTree::leaf("solo_gemv", queue_micros, solo));
        }
        None => {
            let mut at = queue_micros;
            service = service.with_child(SpanTree::leaf("batch_assembly", at, trace.batch_assembly_micros));
            at += trace.batch_assembly_micros;
            let score_wall = trace.max_shard_micros();
            let mut score = SpanTree::leaf("shard_score", at, score_wall);
            for &(s, micros) in &trace.shard_score_micros {
                score = score.with_child(SpanTree::leaf(format!("shard_{s}"), at, micros));
            }
            service = service.with_child(score);
            at += score_wall;
            service = service.with_child(SpanTree::leaf("merge", at, trace.merge_micros));
            at += trace.merge_micros;
            if trace.rerank_micros > 0 {
                service = service.with_child(SpanTree::leaf("rerank", at, trace.rerank_micros));
            }
        }
    }
    SpanTree::leaf("request", 0, queue_micros + service_micros)
        .with_child(SpanTree::leaf("queue", 0, queue_micros))
        .with_child(service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServingModel;
    use ham_tensor::Matrix;

    fn registry(num_items: usize) -> Arc<ModelRegistry> {
        let w = Matrix::from_vec(num_items, 2, (0..num_items * 2).map(|i| i as f32 * 0.01).collect());
        let model = ServingModel::from_parts("toy", &w, 3, |user, _| vec![1.0, user as f32 * 0.1]);
        Arc::new(ModelRegistry::new(model))
    }

    #[test]
    fn single_request_round_trip() {
        let server = RecServer::start(registry(20), ServerConfig::default());
        let response = server.submit(RecommendRequest::new(1, vec![19], 5)).expect("request admitted");
        assert_eq!(response.items.len(), 5);
        assert!(!response.items.iter().any(|s| s.item == 19), "seen item must be masked");
        assert_eq!(response.model_version, 1);
    }

    #[test]
    fn concurrent_submitters_all_get_exact_answers() {
        let registry = registry(50);
        let reference_model = registry.current();
        let server = Arc::new(RecServer::start(Arc::clone(&registry), ServerConfig::default()));
        let handles: Vec<_> = (0..8)
            .map(|user| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let request = RecommendRequest::new(user, vec![user, user + 10], 7);
                    (user, server.submit(request).expect("request admitted"))
                })
            })
            .collect();
        for handle in handles {
            let (user, response) = handle.join().unwrap();
            let expected = reference_model.model.recommend(&RecommendRequest::new(user, vec![user, user + 10], 7));
            let got: Vec<usize> = response.items.iter().map(|s| s.item).collect();
            let want: Vec<usize> = expected.iter().map(|s| s.item).collect();
            assert_eq!(got, want, "user {user}");
            assert!(response.total_micros() >= response.service_micros);
        }
    }

    #[test]
    fn hot_swap_during_traffic_switches_versions_without_pausing() {
        let registry = registry(30);
        let server = Arc::new(RecServer::start(Arc::clone(&registry), ServerConfig::default()));
        let first = server.submit(RecommendRequest::new(0, vec![], 3)).expect("request admitted");
        assert_eq!(first.model_version, 1);
        let w = Matrix::from_vec(30, 2, (0..60).map(|i| -(i as f32)).collect());
        registry.publish(ServingModel::from_parts("toy-v2", &w, 2, |_, _| vec![1.0, 0.0]));
        let second = server.submit(RecommendRequest::new(0, vec![], 3)).expect("request admitted");
        assert_eq!(second.model_version, 2);
        // v2 scores are descending in item id, so item 0 wins.
        assert_eq!(second.items[0].item, 0);
    }

    /// A request the model panics on must not wedge the dispatcher: the
    /// poisoned request gets an empty ranking and later traffic is served.
    #[test]
    fn poisoned_request_does_not_wedge_the_server() {
        let w = Matrix::from_vec(10, 1, (0..10).map(|i| i as f32).collect());
        let model = ServingModel::from_parts("picky", &w, 2, |user, _| {
            assert!(user < 5, "unknown user {user}");
            vec![1.0]
        });
        let server = Arc::new(RecServer::start(Arc::new(ModelRegistry::new(model)), ServerConfig::default()));
        let poisoned = server.submit(RecommendRequest::new(99, vec![], 3)).expect("request admitted");
        assert!(poisoned.items.is_empty(), "rejected request answers empty, not hangs");
        assert!(poisoned.degraded, "a panic-isolated empty answer is flagged, not a silent empty list");
        assert_eq!(poisoned.shards_answered, 0);
        let healthy = server.submit(RecommendRequest::new(1, vec![], 3)).expect("request admitted");
        assert_eq!(healthy.items.len(), 3, "server keeps serving after a poisoned request");
        assert!(!healthy.degraded, "healthy responses are not flagged");
        assert_eq!(server.stats().degraded, 1);
    }

    /// An admitted request whose deadline passes while it is still queued is
    /// shed with an explicit reason instead of being served late.
    #[test]
    fn expired_in_queue_requests_are_shed_with_deadline_reason() {
        // A slow model (2ms per query) with max_batch 1 so a burst queues.
        let w = Matrix::from_vec(16, 1, (0..16).map(|i| i as f32).collect());
        let model = ServingModel::from_parts("slow", &w, 2, |_, _| {
            std::thread::sleep(Duration::from_millis(2));
            vec![1.0]
        });
        let config = ServerConfig { max_batch: 1, coalesce_wait: Duration::ZERO, ..ServerConfig::default() };
        let server = Arc::new(RecServer::start(Arc::new(ModelRegistry::new(model)), config));
        let barrier = Arc::new(std::sync::Barrier::new(12));
        let handles: Vec<_> = (0..12)
            .map(|user| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    // 4ms deadline against ~2ms service: the first couple of
                    // requests fit, the back of the queue cannot.
                    server.submit(RecommendRequest::new(user % 8, vec![], 3).with_deadline(Duration::from_millis(4)))
                })
            })
            .collect();
        let mut served = 0u64;
        let mut expired = 0u64;
        for handle in handles {
            match handle.join().expect("submitter panicked") {
                Ok(response) => {
                    // A request picked up close to its deadline may come back
                    // degraded (the 2ms query build eats its shard budget);
                    // an un-degraded answer must be complete.
                    if !response.degraded {
                        assert_eq!(response.items.len(), 3, "un-degraded requests are complete");
                    }
                    served += 1;
                }
                Err(SubmitError::DeadlineExpired { waited_micros }) => {
                    assert!(waited_micros >= 4_000, "a shed request waited at least its deadline");
                    expired += 1;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        assert_eq!(served + expired, 12);
        assert!(expired > 0, "a 12-deep queue at 2ms/request must expire 4ms deadlines");
        assert!(served > 0, "the front of the queue fits its deadline");
        let stats = server.stats();
        assert_eq!(stats.deadline_expired, expired, "server ledger counts every expiry");
        assert_eq!(stats.completed, served);
    }

    /// A healthy model under a generous deadline takes the bounded path and
    /// still answers exactly: complete, un-degraded, all shards accounted.
    #[test]
    fn bounded_path_with_generous_deadline_is_not_degraded() {
        let registry = registry(50);
        let reference = registry.current();
        let server = RecServer::start(Arc::clone(&registry), ServerConfig::default());
        for user in 0..8 {
            let request = RecommendRequest::new(user, vec![user, user + 10], 7);
            let expected = reference.model.recommend(&request);
            let response = server.submit(request.with_deadline(Duration::from_secs(5))).expect("request admitted");
            assert!(!response.degraded);
            assert_eq!(response.shards_answered, 3, "all shards answered");
            let got: Vec<usize> = response.items.iter().map(|s| s.item).collect();
            let want: Vec<usize> = expected.iter().map(|s| s.item).collect();
            assert_eq!(got, want, "bounded path is bit-identical for user {user}");
        }
        assert_eq!(server.stats().degraded, 0);
    }

    #[test]
    fn shutdown_flushes_accepted_requests() {
        let server =
            RecServer::start(registry(10), ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let response = server.submit(RecommendRequest::new(0, vec![], 2)).expect("request admitted");
        drop(server);
        assert_eq!(response.items.len(), 2);
    }

    #[test]
    fn submit_after_shutdown_is_rejected_with_reason() {
        let server = RecServer::start(registry(10), ServerConfig::default());
        server.shutdown();
        let rejected = server.submit(RecommendRequest::new(0, vec![], 2));
        assert_eq!(rejected.err(), Some(SubmitError::ShuttingDown));
    }

    /// Flooding past `max_queue` sheds with an explicit reason while every
    /// admitted request completes with a full ranking.
    #[test]
    fn flood_past_capacity_sheds_and_answers_the_admitted() {
        // A deliberately slow model (1ms per query) with a tiny queue, so a
        // burst of 24 concurrent submitters reliably overflows it.
        let w = Matrix::from_vec(16, 1, (0..16).map(|i| i as f32).collect());
        let model = ServingModel::from_parts("slow", &w, 1, |_, _| {
            std::thread::sleep(Duration::from_millis(1));
            vec![1.0]
        });
        let config =
            ServerConfig { max_batch: 1, coalesce_wait: Duration::ZERO, max_queue: 4, ..ServerConfig::default() };
        let server = Arc::new(RecServer::start(Arc::new(ModelRegistry::new(model)), config));
        let barrier = Arc::new(std::sync::Barrier::new(24));
        let handles: Vec<_> = (0..24)
            .map(|user| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    server.submit(RecommendRequest::new(user % 8, vec![], 3))
                })
            })
            .collect();
        let mut admitted = 0usize;
        let mut shed = 0usize;
        for handle in handles {
            match handle.join().expect("submitter panicked") {
                Ok(response) => {
                    assert_eq!(response.items.len(), 3, "admitted requests must complete fully");
                    admitted += 1;
                }
                Err(SubmitError::QueueFull { max_queue }) => {
                    assert_eq!(max_queue, 4, "the shed reason names the configured bound");
                    shed += 1;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        assert_eq!(admitted + shed, 24);
        assert!(shed > 0, "a 24-request burst into a 4-slot queue must shed");
        assert!(admitted > 0, "some requests must be admitted");
        // The server-side ledger agrees with what the callers saw — the
        // shed-visibility fix: sheds are now recorded where they happen.
        let stats = server.stats();
        assert_eq!(stats.admitted, admitted as u64, "server counted every admission");
        assert_eq!(stats.shed, shed as u64, "server counted every shed");
        assert_eq!(stats.completed, admitted as u64, "every admitted request completed (submit blocks on delivery)");
        assert_eq!(stats.panic_isolated, 0, "no request panicked");
        assert_eq!(stats.queue_depth, 0, "queue drained once all submitters returned");
    }

    /// The telemetry-enabled path: counters and stage histograms populate,
    /// panic isolation is counted, and the flight recorder holds span trees
    /// with the documented stage hierarchy.
    #[test]
    fn telemetry_records_latencies_spans_and_panic_isolation() {
        let w = Matrix::from_vec(40, 2, (0..80).map(|i| i as f32 * 0.01).collect());
        let model = ServingModel::from_parts("toy", &w, 4, |user, _| {
            assert!(user < 30, "unknown user {user}");
            vec![1.0, user as f32 * 0.1]
        });
        let telemetry = Telemetry::with_flight_capacity(8);
        let server = Arc::new(RecServer::start_with_telemetry(
            Arc::new(ModelRegistry::new(model)),
            ServerConfig { coalesce_wait: Duration::from_millis(4), ..ServerConfig::default() },
            telemetry.clone(),
        ));
        // A concurrent burst so at least one multi-request batch forms.
        let handles: Vec<_> = (0..6)
            .map(|user| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.submit(RecommendRequest::new(user, vec![user], 5)))
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap().expect("admitted").items.len(), 5);
        }
        let poisoned = server.submit(RecommendRequest::new(99, vec![], 3)).expect("admitted");
        assert!(poisoned.items.is_empty());

        let stats = server.stats();
        assert_eq!(stats.admitted, 7);
        assert_eq!(stats.completed, 7);
        assert_eq!(stats.panic_isolated, 1, "the poisoned request was isolated and counted");

        let snap = telemetry.snapshot().expect("telemetry enabled");
        assert_eq!(snap.counter("serve_requests_admitted_total"), Some(7));
        assert_eq!(snap.counter("serve_requests_panic_isolated_total"), Some(1));
        assert_eq!(snap.histogram("serve_total_micros").map(|h| h.count), Some(7), "one total sample per request");
        assert_eq!(snap.histogram("serve_queue_micros").map(|h| h.count), Some(7));
        assert!(snap.histogram("serve_batch_size").is_some_and(|h| h.count >= 1 && h.max >= 1));

        let flight = telemetry.flight().expect("telemetry enabled");
        assert!(!flight.is_empty(), "served requests left span trees in the ring");
        let tree = flight.slowest().expect("at least one tree");
        assert_eq!(tree.name, "request");
        assert!(tree.find("queue").is_some() && tree.find("service").is_some());
        // Every tree ends in either the solo GEMV stage or the batch stages.
        for tree in flight.last(8) {
            assert!(
                tree.find("solo_gemv").is_some() || tree.find("shard_score").is_some(),
                "unexpected span shape:\n{}",
                tree.render()
            );
        }
    }

    /// The shutdown race: a request admitted concurrently with shutdown must
    /// still receive a response (admission and the shutdown flag share the
    /// queue lock, so the dispatcher's final drain cannot miss it). Repeated
    /// loom-style: many iterations of submitters racing `shutdown()`.
    #[test]
    fn racing_shutdown_never_strands_an_admitted_request() {
        for round in 0u64..200 {
            let server = RecServer::start(
                registry(12),
                ServerConfig { coalesce_wait: Duration::ZERO, max_batch: 2, ..Default::default() },
            );
            std::thread::scope(|scope| {
                for submitter in 0..2 {
                    let server = &server;
                    scope.spawn(move || {
                        for user in 0..20 {
                            match server.submit(RecommendRequest::new((submitter + user) % 5, vec![], 2)) {
                                // every admitted request must come back whole
                                Ok(response) => assert_eq!(response.items.len(), 2),
                                Err(SubmitError::ShuttingDown) => return,
                                Err(other) => panic!("unexpected rejection: {other}"),
                            }
                        }
                    });
                }
                let server = &server;
                scope.spawn(move || {
                    // vary the interleaving between instant and late shutdown
                    if round % 3 != 0 {
                        std::thread::sleep(Duration::from_micros((round % 7) * 13));
                    }
                    server.shutdown();
                });
            });
            // drop joins the dispatcher; reaching the next iteration proves
            // no submitter hung on a stranded slot
        }
    }
}
