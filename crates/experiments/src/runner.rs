//! The generic experiment runner: dataset preparation, method training and
//! evaluation under one of the paper's three settings.

use crate::configs::paper_best_params;
use crate::methods::{Method, TrainedMethod};
use ham_data::dataset::SequenceDataset;
use ham_data::split::{split_dataset, DataSplit, EvalSetting};
use ham_data::synthetic::DatasetProfile;
use ham_eval::protocol::{evaluate_batch, EvalConfig, EvalReport};
use std::time::Instant;

/// Global knobs of an experiment run (dataset scale, model size, training
/// budget). The defaults give a laptop-scale smoke run; `--scale 1.0` with
/// larger `--epochs`/`--d` approaches the paper's full configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Scale factor for the synthetic dataset profiles.
    pub scale: f64,
    /// Upper bound on the number of users per dataset after generation.
    pub max_users: usize,
    /// Upper bound on each user's sequence length (long tails are truncated to
    /// keep the deep baselines affordable at small scales).
    pub max_seq_len: usize,
    /// Embedding dimension shared by all methods.
    pub d: usize,
    /// Training epochs per method.
    pub epochs: usize,
    /// Mini-batch size (training windows per optimizer step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Base random seed (dataset generation, initialisation, sampling).
    pub seed: u64,
    /// Evaluation chunk count: users are split into this many chunks, run on
    /// the process-wide persistent worker pool (`ham_tensor::pool`). `1`
    /// evaluates inline on the calling thread with no task submission.
    pub eval_threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: 0.01,
            max_users: 250,
            max_seq_len: 120,
            d: 32,
            epochs: 5,
            batch_size: 128,
            learning_rate: 1e-3,
            weight_decay: 1e-3,
            seed: 42,
            eval_threads: 4,
        }
    }
}

/// The outcome of training and evaluating one method on one dataset/setting.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name (table column).
    pub method: String,
    /// Evaluation metrics and per-user details.
    pub report: EvalReport,
    /// Wall-clock seconds spent training.
    pub train_seconds: f64,
}

/// Generates the synthetic dataset for a profile and applies the experiment's
/// size caps (max users, max sequence length).
pub fn prepare_dataset(profile: &DatasetProfile, config: &ExperimentConfig) -> SequenceDataset {
    let scaled = profile.clone().with_scale(config.scale);
    let generated = scaled.generate(config.seed);
    let mut sequences = generated.sequences;
    sequences.truncate(config.max_users.max(1));
    for seq in &mut sequences {
        if seq.len() > config.max_seq_len {
            // keep the most recent interactions, mirroring how long sequences
            // are consumed by the sliding window
            let start = seq.len() - config.max_seq_len;
            *seq = seq[start..].to_vec();
        }
    }
    SequenceDataset::new(generated.name, sequences, generated.num_items)
}

/// Splits the dataset, trains every method on the training+validation
/// sequences and evaluates on the test segments, following the paper's final
/// evaluation protocol.
pub fn run_methods(
    dataset: &SequenceDataset,
    setting: EvalSetting,
    methods: &[Method],
    config: &ExperimentConfig,
) -> Vec<MethodResult> {
    let split = split_dataset(dataset, setting);
    run_methods_on_split(&split, dataset.name.as_str(), methods, config)
}

/// Like [`run_methods`] but for an existing split (used by the parameter and
/// ablation studies which reuse one split across many configurations).
pub fn run_methods_on_split(
    split: &DataSplit,
    dataset_name: &str,
    methods: &[Method],
    config: &ExperimentConfig,
) -> Vec<MethodResult> {
    let train_sequences = split.train_with_val();
    let windows = paper_windows(dataset_name, split.setting);
    let eval_cfg = EvalConfig { num_threads: config.eval_threads, ..EvalConfig::default() };

    methods
        .iter()
        .map(|method| {
            let start = Instant::now();
            let trained = method.fit(&train_sequences, split.num_items, windows, config);
            let train_seconds = start.elapsed().as_secs_f64();
            let report = evaluate_trained(&trained, split, &eval_cfg);
            MethodResult { method: method.name().to_string(), report, train_seconds }
        })
        .collect()
}

/// Evaluates an already-trained method on a split, routed through the
/// batched scorer (`score_batch`, one `Q·Wᵀ` GEMM per user chunk). With
/// `eval_threads > 1` the user chunks fan out over the shared worker pool —
/// grid searches evaluating thousands of configurations reuse the same
/// persistent workers instead of spawning scoped threads per call.
pub fn evaluate_trained(trained: &TrainedMethod, split: &DataSplit, eval_cfg: &EvalConfig) -> EvalReport {
    evaluate_batch(split, eval_cfg, |users, histories| trained.score_batch(users, histories))
}

/// The `(n_h, n_l, n_p, p)` window sizes used for a dataset/setting: the
/// paper's Table A2 values when the dataset is one of the six benchmarks, a
/// moderate default otherwise.
pub fn paper_windows(dataset_name: &str, setting: EvalSetting) -> (usize, usize, usize, usize) {
    let known = crate::configs::dataset_names().contains(&dataset_name);
    if known {
        let p = paper_best_params(dataset_name, setting);
        (p.n_h, p.n_l, p.n_p, p.p)
    } else {
        (5, 2, 3, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_core::HamVariant;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 1.0,
            max_users: 40,
            max_seq_len: 40,
            d: 8,
            epochs: 1,
            batch_size: 64,
            eval_threads: 2,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn prepare_dataset_applies_caps() {
        let profile = DatasetProfile::tiny("runner-test");
        let cfg = ExperimentConfig { max_users: 10, max_seq_len: 15, scale: 1.0, ..quick_config() };
        let data = prepare_dataset(&profile, &cfg);
        assert!(data.num_users() <= 10);
        assert!(data.sequences.iter().all(|s| s.len() <= 15));
    }

    #[test]
    fn run_methods_produces_one_result_per_method() {
        let profile = DatasetProfile::tiny("runner-run");
        let cfg = quick_config();
        let data = prepare_dataset(&profile, &cfg);
        let methods = [Method::PopRec, Method::Ham(HamVariant::HamSM)];
        let results = run_methods(&data, EvalSetting::Cut8020, &methods, &cfg);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.report.num_evaluated > 0, "{} evaluated no users", r.method);
            assert!(r.train_seconds >= 0.0);
            assert!(r.report.mean.recall_at_10 >= 0.0 && r.report.mean.recall_at_10 <= 1.0);
        }
        assert_eq!(results[0].method, "PopRec");
        assert_eq!(results[1].method, "HAMs_m");
    }

    #[test]
    fn paper_windows_fall_back_for_unknown_datasets() {
        assert_eq!(paper_windows("CDs", EvalSetting::Cut8020), (5, 2, 3, 2));
        assert_eq!(paper_windows("something-else", EvalSetting::Cut8020), (5, 2, 3, 2));
        assert_eq!(paper_windows("Comics", EvalSetting::Cut8020), (7, 2, 5, 3));
    }

    #[test]
    fn trained_ham_beats_popularity_on_structured_data() {
        // A sequence-dominated profile: the next item is mostly determined by
        // the previous items' clusters, item popularity is flat, and user
        // long-term preference / noise are weak. A trained HAM model must
        // exploit that structure and clearly beat the popularity baseline.
        let mut profile = DatasetProfile::tiny("runner-quality");
        profile.num_users = 400;
        profile.num_items = 200;
        profile.mean_seq_len = 30.0;
        profile.num_clusters = 16;
        profile.noise_prob = 0.05;
        profile.zipf_exponent = 0.6;
        profile.weight_user = 0.10;
        profile.weight_order1 = 0.60;
        profile.weight_order2 = 0.15;
        profile.weight_synergy = 0.15;
        let cfg =
            ExperimentConfig { epochs: 10, max_users: 400, max_seq_len: 60, d: 32, batch_size: 64, ..quick_config() };
        let data = prepare_dataset(&profile, &cfg);
        let results = run_methods(&data, EvalSetting::Los3, &[Method::PopRec, Method::Ham(HamVariant::HamM)], &cfg);
        let pop = results[0].report.mean.recall_at_10;
        let ham = results[1].report.mean.recall_at_10;
        assert!(
            ham > pop,
            "trained HAM (Recall@10 {ham:.4}) should beat popularity ({pop:.4}) on sequence-dominated data"
        );
    }
}
