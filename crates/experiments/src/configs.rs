//! The best hyper-parameters reported in Appendix B (Table A2) of the paper,
//! used both to regenerate Table A2 itself and to pick the window sizes
//! (`n_h`, `n_l`, `n_p`, `p`) of the scaled-down experiments.

use ham_data::split::EvalSetting;
use serde::{Deserialize, Serialize};

/// The HAMs_m hyper-parameters of one row of Table A2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperHamParams {
    /// Embedding dimension `d`.
    pub d: usize,
    /// High-order window `n_h`.
    pub n_h: usize,
    /// Low-order window `n_l`.
    pub n_l: usize,
    /// Training targets `n_p`.
    pub n_p: usize,
    /// Synergy order `p`.
    pub p: usize,
}

/// The best HAMs_m parameters of Table A2 for a dataset and setting.
///
/// 80-20-CUT and 80-3-CUT share training/validation data and therefore share
/// the tuned parameters; 3-LOS has its own row.
///
/// # Panics
/// Panics if `dataset` is not one of the six benchmark names.
pub fn paper_best_params(dataset: &str, setting: EvalSetting) -> PaperHamParams {
    let cut = matches!(setting, EvalSetting::Cut8020 | EvalSetting::Cut803);
    match (dataset, cut) {
        ("CDs", true) => PaperHamParams { d: 400, n_h: 5, n_l: 2, n_p: 3, p: 2 },
        ("CDs", false) => PaperHamParams { d: 400, n_h: 4, n_l: 2, n_p: 7, p: 2 },
        ("Books", true) => PaperHamParams { d: 400, n_h: 9, n_l: 2, n_p: 7, p: 2 },
        ("Books", false) => PaperHamParams { d: 400, n_h: 9, n_l: 2, n_p: 9, p: 2 },
        ("Children", true) => PaperHamParams { d: 400, n_h: 6, n_l: 1, n_p: 4, p: 3 },
        ("Children", false) => PaperHamParams { d: 400, n_h: 6, n_l: 1, n_p: 4, p: 3 },
        ("Comics", true) => PaperHamParams { d: 400, n_h: 7, n_l: 2, n_p: 5, p: 3 },
        ("Comics", false) => PaperHamParams { d: 400, n_h: 7, n_l: 1, n_p: 5, p: 3 },
        ("ML-20M", true) => PaperHamParams { d: 400, n_h: 9, n_l: 3, n_p: 2, p: 3 },
        ("ML-20M", false) => PaperHamParams { d: 400, n_h: 8, n_l: 3, n_p: 3, p: 3 },
        ("ML-1M", true) => PaperHamParams { d: 400, n_h: 7, n_l: 2, n_p: 3, p: 3 },
        ("ML-1M", false) => PaperHamParams { d: 400, n_h: 8, n_l: 2, n_p: 2, p: 3 },
        (other, _) => panic!("paper_best_params: unknown dataset {other:?}"),
    }
}

/// The six benchmark dataset names in the paper's table order.
pub fn dataset_names() -> [&'static str; 6] {
    ["CDs", "Books", "Children", "Comics", "ML-20M", "ML-1M"]
}

/// Resolves dataset names (from `--datasets`) to their synthetic profiles.
/// An empty selection returns the profiles named in `defaults`.
///
/// # Panics
/// Panics if a requested name is not one of the six benchmark datasets.
pub fn select_profiles(requested: &[String], defaults: &[&str]) -> Vec<ham_data::synthetic::DatasetProfile> {
    let names: Vec<String> =
        if requested.is_empty() { defaults.iter().map(|s| s.to_string()).collect() } else { requested.to_vec() };
    names
        .iter()
        .map(|name| {
            ham_data::synthetic::DatasetProfile::all()
                .into_iter()
                .find(|p| p.name.eq_ignore_ascii_case(name))
                .unwrap_or_else(|| panic!("unknown dataset {name:?}; valid names: {:?}", dataset_names()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_and_setting_has_parameters() {
        for name in dataset_names() {
            for setting in EvalSetting::all() {
                let p = paper_best_params(name, setting);
                assert!(p.n_l <= p.n_h, "{name}: n_l must not exceed n_h");
                assert!(p.p <= p.n_h, "{name}: synergy order must not exceed n_h");
                assert_eq!(p.d, 400, "Table A2 uses d = 400 everywhere for HAMs_m");
            }
        }
    }

    #[test]
    fn cut_settings_share_parameters() {
        for name in dataset_names() {
            assert_eq!(paper_best_params(name, EvalSetting::Cut8020), paper_best_params(name, EvalSetting::Cut803));
        }
    }

    #[test]
    fn known_values_from_table_a2() {
        let cds = paper_best_params("CDs", EvalSetting::Cut8020);
        assert_eq!((cds.n_h, cds.n_l, cds.n_p, cds.p), (5, 2, 3, 2));
        let comics_los = paper_best_params("Comics", EvalSetting::Los3);
        assert_eq!((comics_los.n_h, comics_los.n_l), (7, 1));
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = paper_best_params("Netflix", EvalSetting::Cut8020);
    }

    #[test]
    fn select_profiles_resolves_names_case_insensitively() {
        let selected = select_profiles(&["cds".to_string(), "ML-1M".to_string()], &["Books"]);
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].name, "CDs");
        assert_eq!(selected[1].name, "ML-1M");
        let defaults = select_profiles(&[], &["Books", "Comics"]);
        assert_eq!(defaults[0].name, "Books");
        assert_eq!(defaults[1].name, "Comics");
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn select_profiles_rejects_unknown_names() {
        let _ = select_profiles(&["Netflix".to_string()], &["CDs"]);
    }
}
