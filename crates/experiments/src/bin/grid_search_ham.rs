//! Validation-set grid search for HAMs_m (the model-selection protocol of
//! Section 5.3.1), printing every grid point and the final test metrics of the
//! selected configuration.

use ham_core::HamVariant;
use ham_data::split::{split_dataset, EvalSetting};
use ham_experiments::configs::select_profiles;
use ham_experiments::runner::prepare_dataset;
use ham_experiments::tuning::{default_grid, grid_search, render_tuning};
use ham_experiments::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["CDs"]);
    for profile in profiles {
        let dataset = prepare_dataset(&profile, &config);
        let split = split_dataset(&dataset, EvalSetting::Cut8020);
        let grid = default_grid(HamVariant::HamSM, config.d);
        let result = grid_search(&split, &grid, &config);
        println!("{}", render_tuning(&dataset.name, &result));
    }
}
