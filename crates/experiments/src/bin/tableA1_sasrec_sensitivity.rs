//! Regenerates Table A1: SASRec's sensitivity to its embedding dimension and
//! maximum sequence length on the Comics profile in 3-LOS.

use ham_experiments::configs::select_profiles;
use ham_experiments::sasrec_sensitivity::{render_sensitivity, run_sasrec_sensitivity};
use ham_experiments::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["Comics"]);
    for profile in profiles {
        let rows = run_sasrec_sensitivity(&profile, &config);
        println!("{}", render_sensitivity(&profile.name, &rows));
    }
}
