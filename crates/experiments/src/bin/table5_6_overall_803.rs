//! Regenerates Tables 5 and 6: overall Recall@k / NDCG@k of all methods in
//! the 80-3-CUT setting.

use ham_data::split::EvalSetting;
use ham_experiments::configs::select_profiles;
use ham_experiments::overall::{render_overall, run_overall};
use ham_experiments::{CliArgs, Method};

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["CDs", "ML-1M"]);
    let comparisons = run_overall(&profiles, EvalSetting::Cut803, &Method::paper_methods(), &config);
    println!("{}", render_overall(&comparisons, EvalSetting::Cut803));
}
