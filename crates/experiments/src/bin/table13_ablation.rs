//! Regenerates Table 13: the ablation of the low-order association term
//! (HAMs_m-o) and the user general-preference term (HAMs_m-u).

use ham_experiments::ablation::{render_ablation, run_ablation};
use ham_experiments::configs::select_profiles;
use ham_experiments::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["CDs", "Comics", "ML-1M"]);
    let rows = run_ablation(&profiles, &config);
    println!("{}", render_ablation(&rows));
}
