//! `ham-exp` — dispatcher CLI that runs any of the paper's experiments by id.
//!
//! ```text
//! cargo run -p ham-experiments --bin ham_exp --release -- table14 --scale 0.01
//! ```

use ham_data::split::EvalSetting;
use ham_experiments::ablation::{render_ablation, run_ablation};
use ham_experiments::attention_study::{render_gating_weights, run_gating_weight_study};
use ham_experiments::configs::select_profiles;
use ham_experiments::overall::{render_overall, run_overall};
use ham_experiments::param_study::{render_param_study, run_param_study};
use ham_experiments::runtime::{render_runtime, run_runtime_study};
use ham_experiments::sasrec_sensitivity::{render_sensitivity, run_sasrec_sensitivity};
use ham_experiments::tables::{dataset_statistics, render_dataset_statistics, render_item_frequency};
use ham_experiments::{CliArgs, Method};

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table2", "dataset statistics"),
    ("table3_4", "overall performance in 80-20-CUT"),
    ("table5_6", "overall performance in 80-3-CUT"),
    ("table7_8", "overall performance in 3-LOS"),
    ("table10_12", "HAMs_m parameter study"),
    ("table13", "ablation study"),
    ("table14", "testing run-time study"),
    ("figure3", "item frequency distributions"),
    ("figure4", "HGN gating-weight distributions"),
    ("tableA1", "SASRec parameter sensitivity"),
];

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage();
        std::process::exit(2);
    }
    let experiment = raw.remove(0);
    let args = match CliArgs::parse_from(raw) {
        Ok(a) => a,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let config = args.to_experiment_config();
    let small_default = ["CDs", "ML-1M"];

    match experiment.as_str() {
        "table2" => {
            let profiles = select_profiles(&args.datasets, &ham_experiments::configs::dataset_names());
            println!("{}", render_dataset_statistics(&dataset_statistics(&profiles, &config), config.scale));
        }
        "table3_4" | "table5_6" | "table7_8" => {
            let setting = match experiment.as_str() {
                "table3_4" => EvalSetting::Cut8020,
                "table5_6" => EvalSetting::Cut803,
                _ => EvalSetting::Los3,
            };
            let profiles = select_profiles(&args.datasets, &small_default);
            let comparisons = run_overall(&profiles, setting, &Method::paper_methods(), &config);
            println!("{}", render_overall(&comparisons, setting));
        }
        "table10_12" => {
            for profile in select_profiles(&args.datasets, &["CDs", "Children", "Comics"]) {
                println!("{}", render_param_study(&profile.name, &run_param_study(&profile, &config)));
            }
        }
        "table13" => {
            let profiles = select_profiles(&args.datasets, &["CDs", "Comics", "ML-1M"]);
            println!("{}", render_ablation(&run_ablation(&profiles, &config)));
        }
        "table14" => {
            let profiles = select_profiles(&args.datasets, &small_default);
            println!("{}", render_runtime(&run_runtime_study(&profiles, &Method::headline_methods(), &config)));
        }
        "figure3" => {
            let profiles = select_profiles(&args.datasets, &["CDs", "Comics", "ML-1M", "ML-20M"]);
            println!("{}", render_item_frequency(&profiles, &config, 20));
        }
        "figure4" => {
            for profile in select_profiles(&args.datasets, &["CDs", "Comics", "ML-1M"]) {
                println!("{}", render_gating_weights(&run_gating_weight_study(&profile, &config, 10)));
            }
        }
        "tableA1" => {
            for profile in select_profiles(&args.datasets, &["Comics"]) {
                println!("{}", render_sensitivity(&profile.name, &run_sasrec_sensitivity(&profile, &config)));
            }
        }
        other => {
            eprintln!("unknown experiment {other:?}\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!("usage: ham_exp <experiment> [options]\n\nexperiments:");
    for (id, description) in EXPERIMENTS {
        eprintln!("  {id:<12} {description}");
    }
    eprintln!("\noptions: {}", CliArgs::usage());
}
