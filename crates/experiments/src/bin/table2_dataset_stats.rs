//! Regenerates Table 2: statistics of the six benchmark datasets (synthetic
//! profiles), compared with the paper's reported numbers.

use ham_experiments::configs::select_profiles;
use ham_experiments::tables::{dataset_statistics, render_dataset_statistics};
use ham_experiments::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &ham_experiments::configs::dataset_names());
    let stats = dataset_statistics(&profiles, &config);
    println!("{}", render_dataset_statistics(&stats, config.scale));
}
