//! Regenerates Tables 10–12: the parameter study of HAMs_m (d, n_h, n_l,
//! n_p, p) on the CDs, Children and Comics profiles in 80-20-CUT.

use ham_experiments::configs::select_profiles;
use ham_experiments::param_study::{render_param_study, run_param_study};
use ham_experiments::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["CDs", "Children", "Comics"]);
    for profile in profiles {
        let rows = run_param_study(&profile, &config);
        println!("{}", render_param_study(&profile.name, &rows));
    }
}
