//! Regenerates Figure 3: the item log-frequency percentile distribution of
//! the CDs, Comics, ML-1M and ML-20M profiles.

use ham_experiments::configs::select_profiles;
use ham_experiments::tables::render_item_frequency;
use ham_experiments::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["CDs", "Comics", "ML-1M", "ML-20M"]);
    println!("{}", render_item_frequency(&profiles, &config, 20));
}
