//! Regenerates Table 14: per-user test-time latency of Caser, SASRec, HGN and
//! HAMs_m, with the resulting speed-ups.

use ham_experiments::configs::select_profiles;
use ham_experiments::runtime::{render_runtime, run_runtime_study};
use ham_experiments::{CliArgs, Method};

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["CDs", "ML-1M"]);
    let rows = run_runtime_study(&profiles, &Method::headline_methods(), &config);
    println!("{}", render_runtime(&rows));
    println!("note: absolute times depend on the local CPU; the paper's Table 14 shape is the ordering");
    println!("      Caser > SASRec > HGN > HAMs_m and the speed-up ratios between methods.");
}
