//! Regenerates Table 9: the average percentage improvement of HAMs_m over
//! Caser, SASRec, HGN and HAMm in each experimental setting.

use ham_data::split::EvalSetting;
use ham_experiments::configs::select_profiles;
use ham_experiments::overall::{improvement_summary, run_overall};
use ham_experiments::{CliArgs, Method};

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["CDs", "ML-1M"]);
    // The Table 9 comparison set: the three baselines, HAMm and HAMs_m.
    let methods = vec![
        Method::Caser,
        Method::SasRec,
        Method::Hgn,
        Method::Ham(ham_core::HamVariant::HamM),
        Method::Ham(ham_core::HamVariant::HamSM),
    ];

    println!("=== Performance improvement of HAMs_m (%) — Table 9 ===");
    for setting in EvalSetting::all() {
        let comparisons = run_overall(&profiles, setting, &methods, &config);
        println!("\n{}", setting.name());
        for metric in ham_eval::metrics::MetricSet::metric_names() {
            let summary = improvement_summary(&comparisons, metric);
            print!("  {metric:<10}");
            for (method, improvement) in summary {
                print!("  {method}: {improvement:>6.1}%");
            }
            println!();
        }
    }
}
