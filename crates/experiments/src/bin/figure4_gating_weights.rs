//! Regenerates Figure 4: the distribution of HGN's instance-gating weights by
//! item-frequency bucket (Section 7.2's analysis of whether learned weights on
//! sparse data are meaningful).

use ham_experiments::attention_study::{render_gating_weights, run_gating_weight_study};
use ham_experiments::configs::select_profiles;
use ham_experiments::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    let config = args.to_experiment_config();
    let profiles = select_profiles(&args.datasets, &["CDs", "Comics", "ML-1M"]);
    for profile in profiles {
        let study = run_gating_weight_study(&profile, &config, 10);
        println!("{}", render_gating_weights(&study));
    }
}
