//! Regenerates the HAMs_m columns of Table A2: the best hyper-parameters per
//! dataset and setting reported in the paper's Appendix B.

use ham_data::split::EvalSetting;
use ham_experiments::configs::{dataset_names, paper_best_params};

fn main() {
    println!("=== Best HAMs_m parameters (Table A2, Appendix B) ===");
    println!("{:<12} {:<12} {:>5} {:>5} {:>5} {:>5} {:>3}", "setting", "dataset", "d", "n_h", "n_l", "n_p", "p");
    for setting in EvalSetting::all() {
        for dataset in dataset_names() {
            let p = paper_best_params(dataset, setting);
            println!(
                "{:<12} {:<12} {:>5} {:>5} {:>5} {:>5} {:>3}",
                setting.name(),
                dataset,
                p.d,
                p.n_h,
                p.n_l,
                p.n_p,
                p.p
            );
        }
    }
    println!("\nThese values parameterise the window sizes used by the experiment binaries;");
    println!("the scaled-down runs override d via --d (default 32).");
}
