//! The dataset-statistics table (Table 2) and the item-frequency distribution
//! figure (Figure 3).

use crate::runner::{prepare_dataset, ExperimentConfig};
use ham_data::stats::{item_frequency_distribution, DatasetStats};
use ham_data::synthetic::DatasetProfile;

/// Computes the Table 2 statistics of the generated datasets.
pub fn dataset_statistics(profiles: &[DatasetProfile], config: &ExperimentConfig) -> Vec<DatasetStats> {
    profiles.iter().map(|p| DatasetStats::compute(&prepare_dataset(p, config))).collect()
}

/// Renders Table 2 alongside the paper's reported numbers so the reader can
/// compare the synthetic datasets against the originals.
pub fn render_dataset_statistics(stats: &[DatasetStats], scale: f64) -> String {
    let mut out = format!("=== Dataset statistics (Table 2), synthetic profiles at scale {scale} ===\n");
    out.push_str(&format!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>8}\n",
        "dataset", "#users", "#items", "#intrns", "#intrns/u", "#u/i"
    ));
    for s in stats {
        out.push_str(&s.table_row());
        out.push('\n');
    }
    out.push_str("\nPaper (scale 1.0) for reference:\n");
    for (name, users, items, intrns, per_u, per_i) in [
        ("CDs", 17_052, 35_118, 472_265, 27.7, 13.4),
        ("Books", 52_406, 41_264, 1_856_747, 35.4, 45.0),
        ("Children", 48_296, 32_871, 2_784_423, 57.6, 84.7),
        ("Comics", 34_445, 33_121, 2_411_314, 70.0, 72.8),
        ("ML-20M", 129_780, 13_663, 9_926_480, 76.5, 726.5),
        ("ML-1M", 5_950, 3_125, 573_726, 96.4, 183.6),
    ] {
        out.push_str(&format!("{name:<10} {users:>8} {items:>8} {intrns:>10} {per_u:>10.1} {per_i:>8.1}\n"));
    }
    out
}

/// Computes and renders the Figure 3 item-frequency distributions.
pub fn render_item_frequency(profiles: &[DatasetProfile], config: &ExperimentConfig, bins: usize) -> String {
    let mut out = String::from("=== Item frequency distributions (Figure 3) ===\n");
    out.push_str("x-axis: normalised log-frequency percentile; values: % of items per bin\n");
    for profile in profiles {
        let dataset = prepare_dataset(profile, config);
        let (grid, hist) = item_frequency_distribution(&dataset, bins);
        out.push_str(&format!("\n{}\n", dataset.name));
        for (x, frac) in grid.iter().zip(&hist) {
            let bar = "#".repeat((frac * 100.0).round() as usize);
            out.push_str(&format!("  {:>4.2} {:>6.1}% {}\n", x, frac * 100.0, bar));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig { scale: 1.0, max_users: 30, max_seq_len: 30, ..ExperimentConfig::default() }
    }

    #[test]
    fn statistics_cover_every_profile() {
        let profiles = vec![DatasetProfile::tiny("A"), DatasetProfile::tiny("B")];
        let stats = dataset_statistics(&profiles, &cfg());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "A");
        assert!(stats[0].num_interactions > 0);
    }

    #[test]
    fn rendered_table_contains_paper_reference_rows() {
        let stats = dataset_statistics(&[DatasetProfile::tiny("A")], &cfg());
        let text = render_dataset_statistics(&stats, 0.01);
        assert!(text.contains("ML-20M"));
        assert!(text.contains("27.7"));
        assert!(text.contains('A'));
    }

    #[test]
    fn frequency_figure_renders_one_block_per_dataset() {
        let profiles = vec![DatasetProfile::tiny("A"), DatasetProfile::tiny("B")];
        let text = render_item_frequency(&profiles, &cfg(), 5);
        assert!(text.matches("\nA\n").count() == 1);
        assert!(text.matches("\nB\n").count() == 1);
    }
}
