//! The overall performance comparison (Tables 3–8) and the improvement
//! summary across settings (Table 9).

use crate::methods::Method;
use crate::runner::{prepare_dataset, run_methods, ExperimentConfig, MethodResult};
use ham_data::split::EvalSetting;
use ham_data::synthetic::DatasetProfile;
use ham_eval::improvement::{best_vs_best_improvement, mean_improvement};
use ham_eval::metrics::MetricSet;
use ham_eval::report::ResultsTable;
use ham_eval::significance::paired_t_test;

/// Results of the overall comparison on one dataset.
#[derive(Debug, Clone)]
pub struct DatasetComparison {
    /// Dataset name.
    pub dataset: String,
    /// One result per method, in the order they were passed in.
    pub results: Vec<MethodResult>,
}

impl DatasetComparison {
    /// The `imp%` column of Tables 3–8 for a metric: improvement of the best
    /// HAM variant over the best non-HAM baseline.
    pub fn improvement_percent(&self, metric: &str) -> f64 {
        let (ham, baseline): (Vec<&MethodResult>, Vec<&MethodResult>) =
            self.results.iter().partition(|r| r.method.starts_with("HAM"));
        let ham_values: Vec<f64> = ham.iter().map(|r| r.report.mean.get(metric)).collect();
        let baseline_values: Vec<f64> = baseline.iter().map(|r| r.report.mean.get(metric)).collect();
        best_vs_best_improvement(&ham_values, &baseline_values)
    }

    /// Whether the best HAM variant is significantly different from the best
    /// baseline at 95% confidence on the per-user values of `metric`.
    pub fn improvement_significant(&self, metric: &str) -> bool {
        let best_of = |ham: bool| {
            self.results.iter().filter(|r| r.method.starts_with("HAM") == ham).max_by(|a, b| {
                a.report.mean.get(metric).partial_cmp(&b.report.mean.get(metric)).unwrap_or(std::cmp::Ordering::Equal)
            })
        };
        let (Some(best_ham), Some(best_base)) = (best_of(true), best_of(false)) else {
            return false;
        };
        let a: Vec<f64> = best_ham.report.per_user.iter().map(|m| m.get(metric)).collect();
        let b: Vec<f64> = best_base.report.per_user.iter().map(|m| m.get(metric)).collect();
        if a.len() != b.len() || a.len() < 2 {
            return false;
        }
        paired_t_test(&a, &b).significant_95
    }
}

/// Runs the overall comparison (all methods × the requested datasets) in one
/// experimental setting — the computation behind Tables 3/4, 5/6 or 7/8.
pub fn run_overall(
    profiles: &[DatasetProfile],
    setting: EvalSetting,
    methods: &[Method],
    config: &ExperimentConfig,
) -> Vec<DatasetComparison> {
    profiles
        .iter()
        .map(|profile| {
            let dataset = prepare_dataset(profile, config);
            let results = run_methods(&dataset, setting, methods, config);
            DatasetComparison { dataset: dataset.name.clone(), results }
        })
        .collect()
}

/// Renders the comparison in the layout of the paper's tables (Recall table
/// and NDCG table with an `imp%` column).
pub fn render_overall(comparisons: &[DatasetComparison], setting: EvalSetting) -> String {
    let mut out = String::new();
    if comparisons.is_empty() {
        return out;
    }
    let methods: Vec<&str> = comparisons[0].results.iter().map(|r| r.method.as_str()).collect();
    let mut table = ResultsTable::new(&methods);
    for cmp in comparisons {
        table.add_row(&cmp.dataset, cmp.results.iter().map(|r| r.report.mean).collect());
    }
    out.push_str(&format!("=== Overall performance in {} ===\n\n", setting.name()));
    out.push_str(&table.render_all());
    out.push_str("\nimp% (best HAM vs best baseline, * = significant at 95%):\n");
    for metric in MetricSet::metric_names() {
        out.push_str(&format!("{metric:<10}"));
        for cmp in comparisons {
            let marker = if cmp.improvement_significant(metric) { "*" } else { " " };
            out.push_str(&format!(" {:>8}: {:>6.1}%{}", cmp.dataset, cmp.improvement_percent(metric), marker));
        }
        out.push('\n');
    }
    out
}

/// The Table 9 aggregation: mean improvement of HAMs_m over each compared
/// method across the datasets of one setting.
pub fn improvement_summary(comparisons: &[DatasetComparison], metric: &str) -> Vec<(String, f64)> {
    let mut summary = Vec::new();
    if comparisons.is_empty() {
        return summary;
    }
    let reference = "HAMs_m";
    let methods: Vec<String> =
        comparisons[0].results.iter().map(|r| r.method.clone()).filter(|m| m != reference).collect();
    for method in methods {
        let pairs: Vec<(f64, f64)> = comparisons
            .iter()
            .filter_map(|cmp| {
                let ours = cmp.results.iter().find(|r| r.method == reference)?.report.mean.get(metric);
                let theirs = cmp.results.iter().find(|r| r.method == method)?.report.mean.get(metric);
                Some((ours, theirs))
            })
            .collect();
        summary.push((method, mean_improvement(&pairs)));
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_core::HamVariant;
    use ham_eval::protocol::EvalReport;

    fn fake_result(method: &str, recall: f64, users: usize) -> MethodResult {
        let per_user: Vec<MetricSet> = (0..users)
            .map(|u| MetricSet {
                recall_at_5: recall + (u % 3) as f64 * 1e-4,
                recall_at_10: recall,
                ndcg_at_5: recall,
                ndcg_at_10: recall,
            })
            .collect();
        MethodResult {
            method: method.to_string(),
            report: EvalReport {
                dataset: "X".into(),
                setting: "80-20-CUT".into(),
                mean: MetricSet::mean(&per_user),
                per_user,
                num_evaluated: users,
                seconds_per_user: 1e-4,
            },
            train_seconds: 1.0,
        }
    }

    fn fake_comparison() -> DatasetComparison {
        DatasetComparison {
            dataset: "X".into(),
            results: vec![
                fake_result("Caser", 0.05, 50),
                fake_result("HGN", 0.08, 50),
                fake_result("HAMm", 0.09, 50),
                fake_result("HAMs_m", 0.10, 50),
            ],
        }
    }

    #[test]
    fn improvement_percent_compares_best_of_each_group() {
        let cmp = fake_comparison();
        // best HAM 0.10 vs best baseline 0.08 -> 25%
        assert!((cmp.improvement_percent("Recall@10") - 25.0).abs() < 1e-9);
        assert!(cmp.improvement_significant("Recall@10"));
    }

    #[test]
    fn improvement_summary_excludes_the_reference_method() {
        let cmps = vec![fake_comparison()];
        let summary = improvement_summary(&cmps, "Recall@10");
        let methods: Vec<&str> = summary.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(methods, vec!["Caser", "HGN", "HAMm"]);
        let caser_improvement = summary[0].1;
        assert!((caser_improvement - 100.0).abs() < 1e-9, "0.10 vs 0.05 should be +100%, got {caser_improvement}");
    }

    #[test]
    fn render_contains_methods_datasets_and_improvement() {
        let text = render_overall(&[fake_comparison()], EvalSetting::Cut8020);
        assert!(text.contains("80-20-CUT"));
        assert!(text.contains("HAMs_m"));
        assert!(text.contains("imp%"));
        assert!(render_overall(&[], EvalSetting::Cut8020).is_empty());
    }

    /// End-to-end smoke test of the real pipeline on a tiny dataset.
    #[test]
    fn run_overall_end_to_end_smoke() {
        let profiles = vec![DatasetProfile::tiny("overall-smoke")];
        let cfg = ExperimentConfig {
            scale: 1.0,
            max_users: 30,
            max_seq_len: 30,
            d: 8,
            epochs: 1,
            batch_size: 64,
            eval_threads: 1,
            ..ExperimentConfig::default()
        };
        let methods = [Method::PopRec, Method::Ham(HamVariant::HamSM)];
        let comparisons = run_overall(&profiles, EvalSetting::Los3, &methods, &cfg);
        assert_eq!(comparisons.len(), 1);
        assert_eq!(comparisons[0].results.len(), 2);
        let text = render_overall(&comparisons, EvalSetting::Los3);
        assert!(text.contains("overall-smoke"));
    }
}
