//! The SASRec parameter-sensitivity study of Appendix A (Table A1): how the
//! validation Recall of SASRec reacts to changes of its embedding dimension
//! and maximum sequence length.

use crate::runner::{prepare_dataset, ExperimentConfig};
use ham_baselines::{BaselineTrainConfig, SasRec, SasRecConfig, SequentialRecommender};
use ham_data::split::{split_dataset, EvalSetting};
use ham_data::synthetic::DatasetProfile;
use ham_eval::protocol::{evaluate, EvalConfig};

/// One row of the Table A1 style study.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Which hyper-parameter this row varies (`"d"` or `"n"`).
    pub parameter: &'static str,
    /// Embedding dimension.
    pub d: usize,
    /// Maximum sequence length.
    pub n: usize,
    /// Recall@5 on the validation set.
    pub recall_at_5: f64,
    /// Recall@10 on the validation set.
    pub recall_at_10: f64,
}

/// Runs the sensitivity study on one dataset profile in the 3-LOS setting
/// (the setting of Table A1), evaluating on the validation items as the paper
/// does during tuning.
pub fn run_sasrec_sensitivity(profile: &DatasetProfile, config: &ExperimentConfig) -> Vec<SensitivityRow> {
    let dataset = prepare_dataset(profile, config);
    let split = split_dataset(&dataset, EvalSetting::Los3);

    // Validation-time protocol: train on the training prefix only and treat
    // the validation items as the "test" segment.
    let mut val_split = split.clone();
    val_split.test = split.val.clone();
    let eval_cfg =
        EvalConfig { include_validation_in_history: false, num_threads: config.eval_threads, ..EvalConfig::default() };

    let train_cfg = BaselineTrainConfig {
        epochs: config.epochs,
        batch_size: config.batch_size,
        learning_rate: config.learning_rate,
        weight_decay: config.weight_decay,
    };

    let mut rows = Vec::new();
    let mut run_one = |parameter: &'static str, d: usize, n: usize| {
        let cfg = SasRecConfig { d, seq_len: n, targets: 2 };
        let model = SasRec::fit(&split.train, split.num_items, &cfg, &train_cfg, config.seed);
        let report = evaluate(&val_split, &eval_cfg, |user, history| model.score_all(user, history));
        rows.push(SensitivityRow {
            parameter,
            d,
            n,
            recall_at_5: report.mean.recall_at_5,
            recall_at_10: report.mean.recall_at_10,
        });
    };

    let base_d = config.d;
    let base_n = 6usize;
    for d in [base_d / 2, base_d, base_d * 2, base_d * 4] {
        run_one("d", d.max(4), base_n);
    }
    for n in [base_n / 2, base_n, base_n * 2] {
        run_one("n", base_d, n.max(2));
    }
    rows
}

/// Renders the study in the layout of Table A1.
pub fn render_sensitivity(dataset: &str, rows: &[SensitivityRow]) -> String {
    let mut out = format!("=== SASRec parameter sensitivity on {dataset} in 3-LOS (Table A1) ===\n");
    out.push_str(&format!("{:<10} {:>6} {:>6} {:>10} {:>10}\n", "parameter", "d", "n", "Recall@5", "Recall@10"));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>6} {:>6} {:>10.4} {:>10.4}\n",
            row.parameter, row.d, row.n, row.recall_at_5, row.recall_at_10
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_row() {
        let rows = vec![
            SensitivityRow { parameter: "d", d: 16, n: 6, recall_at_5: 0.1, recall_at_10: 0.2 },
            SensitivityRow { parameter: "n", d: 32, n: 12, recall_at_5: 0.05, recall_at_10: 0.1 },
        ];
        let text = render_sensitivity("Comics", &rows);
        assert!(text.contains("Comics"));
        assert!(text.contains("0.0500"));
    }

    #[test]
    fn sensitivity_end_to_end_smoke() {
        let profile = DatasetProfile::tiny("sasrec-smoke");
        let cfg = ExperimentConfig {
            scale: 1.0,
            max_users: 20,
            max_seq_len: 20,
            d: 8,
            epochs: 1,
            batch_size: 64,
            eval_threads: 1,
            ..ExperimentConfig::default()
        };
        let rows = run_sasrec_sensitivity(&profile, &cfg);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|r| r.recall_at_10.is_finite()));
        assert!(rows.iter().any(|r| r.parameter == "d"));
        assert!(rows.iter().any(|r| r.parameter == "n"));
    }
}
