//! The gating/attention weight study of Section 7.2 and Figure 4: the
//! distribution of HGN's instance-gating weights, broken down by item
//! frequency, on synthetic datasets of different sparsities.

use crate::runner::{paper_windows, prepare_dataset, ExperimentConfig};
use ham_baselines::{BaselineTrainConfig, Hgn, HgnConfig};
use ham_data::split::{split_dataset, EvalSetting};
use ham_data::synthetic::DatasetProfile;
use ham_tensor::stats::histogram;

/// Frequency buckets used by Figure 4's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrequencyBucket {
    /// The 20% least frequent items.
    LeastFrequent20,
    /// The next 20% least frequent items.
    LeastFrequent20To40,
    /// The 20% most frequent items.
    MostFrequent20,
    /// The next 20% most frequent items.
    MostFrequent20To40,
}

impl FrequencyBucket {
    /// All buckets in Figure 4's legend order.
    pub fn all() -> [FrequencyBucket; 4] {
        [
            FrequencyBucket::LeastFrequent20,
            FrequencyBucket::LeastFrequent20To40,
            FrequencyBucket::MostFrequent20,
            FrequencyBucket::MostFrequent20To40,
        ]
    }

    /// The label used in the rendered figure.
    pub fn label(&self) -> &'static str {
        match self {
            FrequencyBucket::LeastFrequent20 => "top 20% least frequent",
            FrequencyBucket::LeastFrequent20To40 => "top 20-40% least frequent",
            FrequencyBucket::MostFrequent20 => "top 20% most frequent",
            FrequencyBucket::MostFrequent20To40 => "top 20-40% most frequent",
        }
    }
}

/// The weight distribution of one dataset: per frequency bucket, a normalised
/// histogram over weight values in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct GatingWeightStudy {
    /// Dataset name.
    pub dataset: String,
    /// Number of histogram bins.
    pub bins: usize,
    /// `(bucket, histogram of item fractions per weight bin)`.
    pub distributions: Vec<(FrequencyBucket, Vec<f64>)>,
    /// Mean gating weight per bucket (the paper's observation is that weights
    /// of infrequent items stay near the 0.5 initialisation).
    pub mean_weight: Vec<(FrequencyBucket, f64)>,
}

/// Trains HGN on one dataset and collects the distribution of its
/// instance-gating weights by item-frequency bucket (Figure 4).
pub fn run_gating_weight_study(profile: &DatasetProfile, config: &ExperimentConfig, bins: usize) -> GatingWeightStudy {
    assert!(bins > 0, "run_gating_weight_study: bins must be positive");
    let dataset = prepare_dataset(profile, config);
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let train_sequences = split.train_with_val();
    let (n_h, _, n_p, _) = paper_windows(&dataset.name, EvalSetting::Cut8020);

    let hgn_cfg = HgnConfig { d: config.d, seq_len: n_h, targets: n_p };
    let train_cfg = BaselineTrainConfig {
        epochs: config.epochs,
        batch_size: config.batch_size,
        learning_rate: config.learning_rate,
        weight_decay: config.weight_decay,
    };
    let model = Hgn::fit(&train_sequences, split.num_items, &hgn_cfg, &train_cfg, config.seed);

    // Item-frequency ranking to build the Figure 4 buckets.
    let freqs = dataset.item_frequencies();
    let mut by_freq: Vec<usize> = (0..dataset.num_items).collect();
    by_freq.sort_by_key(|&item| freqs[item]);
    let quintile = (dataset.num_items / 5).max(1);
    let bucket_of = |item: usize| -> Option<FrequencyBucket> {
        let rank = by_freq.iter().position(|&i| i == item).expect("item must be ranked");
        if rank < quintile {
            Some(FrequencyBucket::LeastFrequent20)
        } else if rank < 2 * quintile {
            Some(FrequencyBucket::LeastFrequent20To40)
        } else if rank >= dataset.num_items.saturating_sub(quintile) {
            Some(FrequencyBucket::MostFrequent20)
        } else if rank >= dataset.num_items.saturating_sub(2 * quintile) {
            Some(FrequencyBucket::MostFrequent20To40)
        } else {
            None
        }
    };

    // Collect the gating weight of every (user, window item) pair, like the
    // paper which pools a given item's weights across all users.
    let mut weights_per_bucket: std::collections::HashMap<FrequencyBucket, Vec<f64>> = Default::default();
    for (user, history) in train_sequences.iter().enumerate() {
        if history.is_empty() {
            continue;
        }
        for (item, weight) in model.instance_gating_weights(user, history) {
            if let Some(bucket) = bucket_of(item) {
                weights_per_bucket.entry(bucket).or_default().push(weight as f64);
            }
        }
    }

    let mut distributions = Vec::new();
    let mut mean_weight = Vec::new();
    for bucket in FrequencyBucket::all() {
        let weights = weights_per_bucket.remove(&bucket).unwrap_or_default();
        let hist = if weights.is_empty() { vec![0.0; bins] } else { histogram(&weights, 0.0, 1.0, bins) };
        let mean = if weights.is_empty() { 0.0 } else { weights.iter().sum::<f64>() / weights.len() as f64 };
        distributions.push((bucket, hist));
        mean_weight.push((bucket, mean));
    }

    GatingWeightStudy { dataset: dataset.name.clone(), bins, distributions, mean_weight }
}

/// Renders the study as a text version of Figure 4 (one histogram per bucket).
pub fn render_gating_weights(study: &GatingWeightStudy) -> String {
    let mut out = format!("=== HGN instance-gating weight distributions on {} (Figure 4) ===\n", study.dataset);
    for ((bucket, hist), (_, mean)) in study.distributions.iter().zip(&study.mean_weight) {
        out.push_str(&format!("{} (mean weight {:.3})\n", bucket.label(), mean));
        for (bin, fraction) in hist.iter().enumerate() {
            let lo = bin as f64 / study.bins as f64;
            let hi = (bin + 1) as f64 / study.bins as f64;
            let bar = "#".repeat((fraction * 50.0).round() as usize);
            out.push_str(&format!("  [{lo:.2},{hi:.2}) {fraction:>6.3} {bar}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_labels_match_figure4_legend() {
        assert_eq!(FrequencyBucket::all().len(), 4);
        assert_eq!(FrequencyBucket::MostFrequent20.label(), "top 20% most frequent");
    }

    #[test]
    fn gating_weight_study_end_to_end_smoke() {
        let profile = DatasetProfile::tiny("gating-smoke");
        let cfg = ExperimentConfig {
            scale: 1.0,
            max_users: 25,
            max_seq_len: 25,
            d: 8,
            epochs: 1,
            batch_size: 64,
            eval_threads: 1,
            ..ExperimentConfig::default()
        };
        let study = run_gating_weight_study(&profile, &cfg, 10);
        assert_eq!(study.distributions.len(), 4);
        for (_, hist) in &study.distributions {
            assert_eq!(hist.len(), 10);
            let total: f64 = hist.iter().sum();
            assert!(total == 0.0 || (total - 1.0).abs() < 1e-9, "histogram should be empty or normalised");
        }
        let text = render_gating_weights(&study);
        assert!(text.contains("least frequent"));
    }
}
