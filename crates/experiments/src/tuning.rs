//! Hyper-parameter selection on the validation set (the protocol of
//! Section 5.3.1): train candidate configurations on the training prefix,
//! pick the best by Recall@10 on the validation items, then retrain the
//! winning configuration on training + validation for the final test-set
//! evaluation.

use crate::runner::ExperimentConfig;
use ham_core::{train, HamConfig, HamModel, HamVariant, TrainConfig};
use ham_data::split::DataSplit;
use ham_eval::protocol::{evaluate, EvalConfig, EvalReport};

/// One evaluated point of the grid search.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// The candidate configuration.
    pub config: HamConfig,
    /// Recall@10 on the validation items (the paper's selection metric).
    pub validation_recall_at_10: f64,
}

/// The outcome of a grid search plus the final retrained model.
#[derive(Debug)]
pub struct TuningResult {
    /// Every evaluated grid point, in evaluation order.
    pub grid: Vec<GridPoint>,
    /// The configuration selected on the validation set.
    pub best_config: HamConfig,
    /// The model retrained on training + validation with the best
    /// configuration.
    pub final_model: HamModel,
    /// The final model's test-set report.
    pub test_report: EvalReport,
}

/// The candidate grid for a HAM variant: a small sweep over the window sizes
/// and synergy order around the defaults (the paper sweeps d, n_h, n_l, n_p
/// and p; the laptop-scale grid keeps d fixed to the experiment's `--d`).
pub fn default_grid(variant: HamVariant, d: usize) -> Vec<HamConfig> {
    let base = HamConfig::for_variant(variant);
    let mut grid = Vec::new();
    for &n_h in &[4usize, 6, 8] {
        for &n_l in &[1usize, 2] {
            for &n_p in &[2usize, 3] {
                let p = if base.uses_synergies() { 2 } else { 1 };
                let mut cfg = base.with_dimensions(d, n_h, n_l.min(n_h), n_p, p);
                if !base.uses_low_order() {
                    cfg.n_l = 0;
                }
                grid.push(cfg);
            }
        }
    }
    grid
}

/// Builds a split whose "test" segment is the validation items, used to score
/// candidate configurations during selection.
fn validation_view(split: &DataSplit) -> DataSplit {
    let mut view = split.clone();
    view.test = split.val.clone();
    view
}

/// Runs the grid search and the final retraining, following the paper's
/// protocol exactly: selection by Recall@10 on validation, final model
/// retrained on train + validation and evaluated on the untouched test set.
pub fn grid_search(split: &DataSplit, grid: &[HamConfig], config: &ExperimentConfig) -> TuningResult {
    assert!(!grid.is_empty(), "grid_search: the candidate grid must not be empty");
    let train_cfg = TrainConfig {
        epochs: config.epochs,
        batch_size: config.batch_size,
        learning_rate: config.learning_rate,
        weight_decay: config.weight_decay,
        ..TrainConfig::default()
    };
    let selection_eval =
        EvalConfig { include_validation_in_history: false, num_threads: config.eval_threads, ..EvalConfig::default() };
    let val_view = validation_view(split);

    let mut points = Vec::with_capacity(grid.len());
    for candidate in grid {
        candidate.validate();
        let model = train(&split.train, split.num_items, candidate, &train_cfg, config.seed);
        let report = evaluate(&val_view, &selection_eval, |user, history| model.score_all(user, history));
        points.push(GridPoint { config: *candidate, validation_recall_at_10: report.mean.recall_at_10 });
    }

    let best = points
        .iter()
        .max_by(|a, b| {
            a.validation_recall_at_10.partial_cmp(&b.validation_recall_at_10).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("grid is non-empty")
        .config;

    // Final protocol: retrain on train + validation, evaluate on test.
    let final_model = train(&split.train_with_val(), split.num_items, &best, &train_cfg, config.seed);
    let test_eval = EvalConfig { num_threads: config.eval_threads, ..EvalConfig::default() };
    let test_report = evaluate(split, &test_eval, |user, history| final_model.score_all(user, history));

    TuningResult { grid: points, best_config: best, final_model, test_report }
}

/// Renders the grid-search outcome as a small report.
pub fn render_tuning(dataset: &str, result: &TuningResult) -> String {
    let mut out = format!("=== Validation grid search on {dataset} ===\n");
    out.push_str(&format!("{:>5} {:>5} {:>5} {:>5} {:>3} {:>16}\n", "d", "n_h", "n_l", "n_p", "p", "val Recall@10"));
    for point in &result.grid {
        let c = &point.config;
        let marker = if *c == result.best_config { " <- selected" } else { "" };
        out.push_str(&format!(
            "{:>5} {:>5} {:>5} {:>5} {:>3} {:>16.4}{}\n",
            c.d, c.n_h, c.n_l, c.n_p, c.synergy_order, point.validation_recall_at_10, marker
        ));
    }
    out.push_str(&format!(
        "\nfinal test performance: Recall@10 {:.4}, NDCG@10 {:.4} over {} users\n",
        result.test_report.mean.recall_at_10, result.test_report.mean.ndcg_at_10, result.test_report.num_evaluated
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare_dataset;
    use ham_data::split::{split_dataset, EvalSetting};
    use ham_data::synthetic::DatasetProfile;

    #[test]
    fn default_grid_covers_the_sweep_dimensions() {
        let grid = default_grid(HamVariant::HamSM, 16);
        assert_eq!(grid.len(), 3 * 2 * 2);
        assert!(grid.iter().all(|c| c.d == 16 && c.uses_synergies()));
        let plain_grid = default_grid(HamVariant::HamM, 16);
        assert!(plain_grid.iter().all(|c| !c.uses_synergies()));
        let ablated = default_grid(HamVariant::HamSMNoLowOrder, 16);
        assert!(ablated.iter().all(|c| c.n_l == 0));
    }

    #[test]
    fn grid_search_selects_the_best_validation_point_and_reports_test_metrics() {
        let cfg = ExperimentConfig {
            scale: 1.0,
            max_users: 25,
            max_seq_len: 25,
            d: 8,
            epochs: 1,
            batch_size: 64,
            eval_threads: 1,
            ..ExperimentConfig::default()
        };
        let dataset = prepare_dataset(&DatasetProfile::tiny("tuning-smoke"), &cfg);
        let split = split_dataset(&dataset, EvalSetting::Cut8020);
        // a deliberately tiny grid to keep the test fast
        let grid = vec![
            HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 1, 2, 1),
            HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 6, 2, 2, 1),
        ];
        let result = grid_search(&split, &grid, &cfg);
        assert_eq!(result.grid.len(), 2);
        let best_val = result.grid.iter().map(|p| p.validation_recall_at_10).fold(f64::MIN, f64::max);
        let selected_val = result
            .grid
            .iter()
            .find(|p| p.config == result.best_config)
            .expect("selected config must be in the grid")
            .validation_recall_at_10;
        assert!((selected_val - best_val).abs() < 1e-12, "must select the best validation point");
        assert!(result.test_report.num_evaluated > 0);
        let text = render_tuning(&dataset.name, &result);
        assert!(text.contains("selected"));
        assert!(text.contains("final test performance"));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_grid_panics() {
        let cfg = ExperimentConfig { scale: 1.0, max_users: 10, ..ExperimentConfig::default() };
        let dataset = prepare_dataset(&DatasetProfile::tiny("tuning-empty"), &cfg);
        let split = split_dataset(&dataset, EvalSetting::Cut8020);
        let _ = grid_search(&split, &[], &cfg);
    }
}
