//! # ham-experiments
//!
//! The experiment harness that regenerates every table and figure of the HAM
//! paper's evaluation on the synthetic benchmark datasets (see DESIGN.md §3
//! for the experiment index and §4 for the dataset substitution rationale).
//!
//! Each paper artifact has a dedicated binary under `src/bin/`
//! (`table3_4_overall_8020`, `table13_ablation`, `figure4_gating_weights`, …)
//! plus the `ham_exp` dispatcher that runs any experiment by id. All binaries
//! accept `--scale`, `--epochs`, `--d`, `--max-users` and `--datasets` so the
//! experiments can be scaled from a quick laptop smoke run (the defaults) up
//! to the paper's full dataset sizes (`--scale 1.0`).
//!
//! Because the data is synthetic and scaled down, absolute metric values are
//! not comparable to the paper; the harness reports the quantities whose
//! *shape* the reproduction targets: the ranking of methods, the improvement
//! percentages of the HAM variants over the baselines, parameter-sensitivity
//! trends, ablation effects and per-user test-time speed-ups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod args;
pub mod attention_study;
pub mod configs;
pub mod methods;
pub mod overall;
pub mod param_study;
pub mod runner;
pub mod runtime;
pub mod sasrec_sensitivity;
pub mod tables;
pub mod tuning;

pub use args::CliArgs;
pub use configs::{paper_best_params, PaperHamParams};
pub use methods::Method;
pub use runner::{prepare_dataset, run_methods, ExperimentConfig, MethodResult};
