//! Minimal command-line argument parsing shared by the experiment binaries
//! (kept dependency-free; the workspace's allowed crate list has no argument
//! parser).

use crate::runner::ExperimentConfig;

/// Parsed command-line options common to every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Scale factor applied to the dataset profiles (`--scale`, default 0.01).
    pub scale: f64,
    /// Training epochs per method (`--epochs`).
    pub epochs: usize,
    /// Embedding dimension used by every method (`--d`).
    pub d: usize,
    /// Upper bound on the number of users kept per dataset (`--max-users`).
    pub max_users: usize,
    /// Dataset names to run on (`--datasets CDs,ML-1M`); empty = the binary's
    /// default selection.
    pub datasets: Vec<String>,
    /// Random seed (`--seed`).
    pub seed: u64,
}

impl Default for CliArgs {
    fn default() -> Self {
        let cfg = ExperimentConfig::default();
        Self {
            scale: cfg.scale,
            epochs: cfg.epochs,
            d: cfg.d,
            max_users: cfg.max_users,
            datasets: Vec::new(),
            seed: cfg.seed,
        }
    }
}

impl CliArgs {
    /// Parses arguments from an iterator of tokens (excluding the program
    /// name). Unknown flags are rejected with a descriptive error.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || iter.next().ok_or_else(|| format!("flag {flag} requires a value"));
            match flag.as_str() {
                "--scale" => out.scale = parse_num(&value()?, "--scale")?,
                "--epochs" => out.epochs = parse_num::<usize>(&value()?, "--epochs")?,
                "--d" => out.d = parse_num::<usize>(&value()?, "--d")?,
                "--max-users" => out.max_users = parse_num::<usize>(&value()?, "--max-users")?,
                "--seed" => out.seed = parse_num::<u64>(&value()?, "--seed")?,
                "--datasets" => {
                    out.datasets = value()?.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
                }
                "--help" | "-h" => return Err(Self::usage().to_string()),
                other => return Err(format!("unknown flag {other}\n{}", Self::usage())),
            }
        }
        if out.scale <= 0.0 {
            return Err("--scale must be positive".to_string());
        }
        Ok(out)
    }

    /// Parses the process arguments, printing usage and exiting on error.
    pub fn from_env() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// The usage string shared by all binaries.
    pub fn usage() -> &'static str {
        "usage: <experiment> [--scale F] [--epochs N] [--d N] [--max-users N] [--seed N] [--datasets A,B,...]"
    }

    /// Converts the CLI options into an [`ExperimentConfig`].
    pub fn to_experiment_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            scale: self.scale,
            epochs: self.epochs,
            d: self.d,
            max_users: self.max_users,
            seed: self.seed,
            ..ExperimentConfig::default()
        }
    }
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse::<T>().map_err(|_| format!("invalid value {text:?} for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<CliArgs, String> {
        CliArgs::parse_from(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_experiment_config() {
        let args = parse(&[]).unwrap();
        let cfg = ExperimentConfig::default();
        assert_eq!(args.scale, cfg.scale);
        assert_eq!(args.epochs, cfg.epochs);
        assert!(args.datasets.is_empty());
    }

    #[test]
    fn parses_every_flag() {
        let args = parse(&[
            "--scale",
            "0.05",
            "--epochs",
            "3",
            "--d",
            "16",
            "--max-users",
            "100",
            "--seed",
            "7",
            "--datasets",
            "CDs,ML-1M",
        ])
        .unwrap();
        assert_eq!(args.scale, 0.05);
        assert_eq!(args.epochs, 3);
        assert_eq!(args.d, 16);
        assert_eq!(args.max_users, 100);
        assert_eq!(args.seed, 7);
        assert_eq!(args.datasets, vec!["CDs", "ML-1M"]);
        let cfg = args.to_experiment_config();
        assert_eq!(cfg.d, 16);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--epochs"]).is_err());
    }
}
