//! The methods compared in the paper's tables, behind one dispatch enum so
//! the runner can train and evaluate them uniformly.

use crate::runner::ExperimentConfig;
use ham_baselines::{
    BaselineTrainConfig, Caser, CaserConfig, Gru4Rec, Gru4RecConfig, Hgn, HgnConfig, PopRec, SasRec, SasRecConfig,
    SequentialRecommender,
};
use ham_core::{train as train_ham, HamConfig, HamVariant, TrainConfig};
use ham_data::dataset::ItemId;

/// A method column of Tables 3–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Convolutional baseline.
    Caser,
    /// Self-attention baseline.
    SasRec,
    /// Gating baseline (state of the art in the paper).
    Hgn,
    /// Recurrent baseline (covered in the paper's literature review; HGN was
    /// shown to outperform it, so it is optional in the tables).
    Gru4Rec,
    /// Popularity sanity baseline (not in the paper's tables).
    PopRec,
    /// A HAM variant (the paper's contribution).
    Ham(HamVariant),
}

/// A trained method that can score the catalogue for a user.
pub enum TrainedMethod {
    /// A trained HAM model.
    Ham(ham_core::HamModel),
    /// A trained baseline behind the common scoring trait.
    Baseline(Box<dyn SequentialRecommender + Send + Sync>),
}

impl TrainedMethod {
    /// Scores every catalogue item for `user` given their history.
    pub fn score_all(&self, user: usize, history: &[ItemId]) -> Vec<f32> {
        match self {
            TrainedMethod::Ham(model) => model.score_all(user, history),
            TrainedMethod::Baseline(model) => model.score_all(user, history),
        }
    }

    /// Scores every catalogue item for a batch of users (one blocked GEMM for
    /// the linear-head methods; row `i` matches `score_all` within 1e-5).
    pub fn score_batch(&self, users: &[usize], histories: &[&[ItemId]]) -> ham_tensor::Matrix {
        match self {
            TrainedMethod::Ham(model) => model.score_batch(users, histories),
            TrainedMethod::Baseline(model) => model.score_batch(users, histories),
        }
    }

    /// The method's linear scoring head (`r = q · Wᵀ`), used to package any
    /// trained method into a sharded `ham-serve` serving snapshot. Every
    /// method in this enum has one.
    pub fn linear_head(&self) -> Option<ham_core::LinearHead<'_>> {
        match self {
            TrainedMethod::Ham(model) => ham_core::Scorer::linear_head(model),
            TrainedMethod::Baseline(model) => model.linear_head(),
        }
    }
}

impl Method {
    /// The method name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Caser => "Caser",
            Method::SasRec => "SASRec",
            Method::Hgn => "HGN",
            Method::Gru4Rec => "GRU4Rec",
            Method::PopRec => "PopRec",
            Method::Ham(variant) => variant.name(),
        }
    }

    /// The seven methods of Tables 3–8, in column order.
    pub fn paper_methods() -> Vec<Method> {
        vec![
            Method::Caser,
            Method::SasRec,
            Method::Hgn,
            Method::Ham(HamVariant::HamX),
            Method::Ham(HamVariant::HamM),
            Method::Ham(HamVariant::HamSX),
            Method::Ham(HamVariant::HamSM),
        ]
    }

    /// The three baselines plus the headline model, used by the cheaper
    /// experiments (run-time study, improvement summary).
    pub fn headline_methods() -> Vec<Method> {
        vec![Method::Caser, Method::SasRec, Method::Hgn, Method::Ham(HamVariant::HamSM)]
    }

    /// Whether this is one of the HAM variants.
    pub fn is_ham(&self) -> bool {
        matches!(self, Method::Ham(_))
    }

    /// Trains the method on per-user training sequences.
    ///
    /// `windows` is the `(n_h, n_l, n_p, p)` tuple from the paper's best
    /// parameters for the dataset (baselines use `n_h` as their window length
    /// and `n_p` as their target count, matching how the paper tunes `L`/`T`).
    pub fn fit(
        &self,
        train_sequences: &[Vec<ItemId>],
        num_items: usize,
        windows: (usize, usize, usize, usize),
        config: &ExperimentConfig,
    ) -> TrainedMethod {
        let (n_h, n_l, n_p, p) = windows;
        let baseline_cfg = BaselineTrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            learning_rate: config.learning_rate,
            weight_decay: config.weight_decay,
        };
        match self {
            Method::PopRec => TrainedMethod::Baseline(Box::new(PopRec::fit(train_sequences, num_items))),
            Method::Caser => {
                let cfg =
                    CaserConfig { d: config.d, seq_len: n_h, targets: n_p, vertical_filters: 2, horizontal_filters: 4 };
                TrainedMethod::Baseline(Box::new(Caser::fit(
                    train_sequences,
                    num_items,
                    &cfg,
                    &baseline_cfg,
                    config.seed,
                )))
            }
            Method::SasRec => {
                let cfg = SasRecConfig { d: config.d, seq_len: n_h.max(2), targets: n_p };
                TrainedMethod::Baseline(Box::new(SasRec::fit(
                    train_sequences,
                    num_items,
                    &cfg,
                    &baseline_cfg,
                    config.seed,
                )))
            }
            Method::Hgn => {
                let cfg = HgnConfig { d: config.d, seq_len: n_h, targets: n_p };
                TrainedMethod::Baseline(Box::new(Hgn::fit(
                    train_sequences,
                    num_items,
                    &cfg,
                    &baseline_cfg,
                    config.seed,
                )))
            }
            Method::Gru4Rec => {
                let cfg = Gru4RecConfig { d: config.d, seq_len: n_h, targets: n_p };
                TrainedMethod::Baseline(Box::new(Gru4Rec::fit(
                    train_sequences,
                    num_items,
                    &cfg,
                    &baseline_cfg,
                    config.seed,
                )))
            }
            Method::Ham(variant) => {
                let mut ham_cfg = HamConfig::for_variant(*variant);
                let order = if ham_cfg.uses_synergies() { p.max(2).min(n_h) } else { 1 };
                ham_cfg = ham_cfg.with_dimensions(config.d, n_h, n_l.min(n_h), n_p, order);
                if matches!(variant, HamVariant::HamSMNoLowOrder) {
                    ham_cfg.n_l = 0;
                }
                let train_cfg = TrainConfig {
                    epochs: config.epochs,
                    batch_size: config.batch_size,
                    learning_rate: config.learning_rate,
                    weight_decay: config.weight_decay,
                    ..TrainConfig::default()
                };
                TrainedMethod::Ham(train_ham(train_sequences, num_items, &ham_cfg, &train_cfg, config.seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_data::synthetic::DatasetProfile;

    #[test]
    fn paper_method_list_matches_table_columns() {
        let names: Vec<&str> = Method::paper_methods().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Caser", "SASRec", "HGN", "HAMx", "HAMm", "HAMs_x", "HAMs_m"]);
        assert!(Method::Ham(HamVariant::HamSM).is_ham());
        assert!(!Method::Hgn.is_ham());
        assert_eq!(Method::headline_methods().len(), 4);
    }

    #[test]
    fn every_method_trains_and_scores_on_a_tiny_dataset() {
        let data = DatasetProfile::tiny("methods-test").generate(3);
        let cfg = ExperimentConfig { epochs: 1, d: 8, batch_size: 64, ..ExperimentConfig::default() };
        for method in [Method::PopRec, Method::Hgn, Method::Ham(HamVariant::HamSM)] {
            let trained = method.fit(&data.sequences, data.num_items, (4, 2, 2, 2), &cfg);
            let scores = trained.score_all(0, &data.sequences[0]);
            assert_eq!(scores.len(), data.num_items, "{} returned the wrong score count", method.name());
            assert!(scores.iter().all(|s| s.is_finite()), "{} produced non-finite scores", method.name());
        }
    }

    #[test]
    fn deep_baselines_train_and_score_on_a_tiny_dataset() {
        let data = DatasetProfile::tiny("methods-deep").generate(5);
        let cfg = ExperimentConfig { epochs: 1, d: 8, batch_size: 64, ..ExperimentConfig::default() };
        for method in [Method::Caser, Method::SasRec, Method::Gru4Rec] {
            let trained = method.fit(&data.sequences, data.num_items, (4, 2, 2, 2), &cfg);
            let scores = trained.score_all(1, &data.sequences[1]);
            assert_eq!(scores.len(), data.num_items, "{}", method.name());
        }
        assert_eq!(Method::Gru4Rec.name(), "GRU4Rec");
        assert!(!Method::Gru4Rec.is_ham());
    }
}
