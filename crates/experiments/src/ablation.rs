//! The ablation study of Table 13: HAMs_m against HAMs_m-o (no low-order
//! term) and HAMs_m-u (no user general-preference term).

use crate::methods::Method;
use crate::runner::{prepare_dataset, run_methods, ExperimentConfig};
use ham_core::HamVariant;
use ham_data::split::EvalSetting;
use ham_data::synthetic::DatasetProfile;

/// One dataset row of Table 13.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Dataset name.
    pub dataset: String,
    /// `(model name, Recall@5, Recall@10)` for the full model and the two
    /// ablations.
    pub entries: Vec<(String, f64, f64)>,
}

/// The three models of Table 13.
pub fn ablation_methods() -> Vec<Method> {
    vec![Method::Ham(HamVariant::HamSM), Method::Ham(HamVariant::HamSMNoLowOrder), Method::Ham(HamVariant::HamSMNoUser)]
}

/// Runs the ablation study in 80-20-CUT on the given dataset profiles.
pub fn run_ablation(profiles: &[DatasetProfile], config: &ExperimentConfig) -> Vec<AblationRow> {
    profiles
        .iter()
        .map(|profile| {
            let dataset = prepare_dataset(profile, config);
            let results = run_methods(&dataset, EvalSetting::Cut8020, &ablation_methods(), config);
            AblationRow {
                dataset: dataset.name.clone(),
                entries: results
                    .into_iter()
                    .map(|r| (r.method, r.report.mean.recall_at_5, r.report.mean.recall_at_10))
                    .collect(),
            }
        })
        .collect()
}

/// Renders the study in the layout of Table 13.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::from("=== Ablation study of HAMs_m in 80-20-CUT (Table 13) ===\n");
    out.push_str(&format!("{:<12} {:<12} {:>10} {:>10}\n", "Dataset", "model", "Recall@5", "Recall@10"));
    for row in rows {
        for (model, r5, r10) in &row.entries {
            out.push_str(&format!("{:<12} {:<12} {:>10.4} {:>10.4}\n", row.dataset, model, r5, r10));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_method_names_match_table13() {
        let names: Vec<&str> = ablation_methods().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["HAMs_m", "HAMs_m-o", "HAMs_m-u"]);
    }

    #[test]
    fn render_lists_every_model_per_dataset() {
        let rows = vec![AblationRow {
            dataset: "CDs".into(),
            entries: vec![
                ("HAMs_m".into(), 0.04, 0.06),
                ("HAMs_m-o".into(), 0.03, 0.05),
                ("HAMs_m-u".into(), 0.035, 0.055),
            ],
        }];
        let text = render_ablation(&rows);
        assert!(text.contains("HAMs_m-o"));
        assert!(text.contains("HAMs_m-u"));
        assert!(text.contains("0.0400"));
    }

    #[test]
    fn ablation_end_to_end_smoke() {
        let profiles = vec![DatasetProfile::tiny("ablation-smoke")];
        let cfg = ExperimentConfig {
            scale: 1.0,
            max_users: 25,
            max_seq_len: 25,
            d: 8,
            epochs: 1,
            batch_size: 64,
            eval_threads: 1,
            ..ExperimentConfig::default()
        };
        let rows = run_ablation(&profiles, &cfg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].entries.len(), 3);
        // the ablated variants are genuinely different models
        let full = rows[0].entries[0].2;
        assert!((0.0..=1.0).contains(&full));
    }
}
