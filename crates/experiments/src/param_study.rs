//! The HAMs_m parameter study (Tables 10–12): vary one hyper-parameter at a
//! time around the best configuration and report Recall@5 / Recall@10.

use crate::runner::{evaluate_trained, paper_windows, prepare_dataset, ExperimentConfig};
use ham_core::{train, HamConfig, HamVariant, TrainConfig};
use ham_data::split::{split_dataset, EvalSetting};
use ham_data::synthetic::DatasetProfile;
use ham_eval::protocol::EvalConfig;

/// One row of a parameter-study table.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamStudyRow {
    /// Which hyper-parameter this row varies (`"d"`, `"n_h"`, `"n_l"`, `"n_p"`, `"p"`).
    pub parameter: &'static str,
    /// The full configuration of the row.
    pub d: usize,
    /// High-order window.
    pub n_h: usize,
    /// Low-order window.
    pub n_l: usize,
    /// Training targets.
    pub n_p: usize,
    /// Synergy order.
    pub p: usize,
    /// Recall@5 on the test set.
    pub recall_at_5: f64,
    /// Recall@10 on the test set.
    pub recall_at_10: f64,
}

/// Runs the Tables 10–12 parameter study of HAMs_m on one dataset profile in
/// 80-20-CUT: for each studied parameter, sweep the listed values while
/// holding the others at the base configuration.
pub fn run_param_study(profile: &DatasetProfile, config: &ExperimentConfig) -> Vec<ParamStudyRow> {
    let dataset = prepare_dataset(profile, config);
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let train_sequences = split.train_with_val();
    let (base_nh, base_nl, base_np, base_p) = paper_windows(&dataset.name, EvalSetting::Cut8020);
    let base_d = config.d;
    let eval_cfg = EvalConfig { num_threads: config.eval_threads, ..EvalConfig::default() };

    let mut rows = Vec::new();
    let mut run_one = |parameter: &'static str, d: usize, n_h: usize, n_l: usize, n_p: usize, p: usize| {
        let p = p.clamp(1, n_h);
        let n_l = n_l.min(n_h);
        let ham_cfg = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(d, n_h, n_l, n_p, p.max(1));
        // n_l == 0 is a legitimate study point (ablating the low-order term)
        let ham_cfg = HamConfig { n_l, ..ham_cfg };
        let train_cfg = TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            learning_rate: config.learning_rate,
            weight_decay: config.weight_decay,
            ..TrainConfig::default()
        };
        let model = train(&train_sequences, split.num_items, &ham_cfg, &train_cfg, config.seed);
        let report = evaluate_trained(&crate::methods::TrainedMethod::Ham(model), &split, &eval_cfg);
        rows.push(ParamStudyRow {
            parameter,
            d,
            n_h,
            n_l,
            n_p,
            p,
            recall_at_5: report.mean.recall_at_5,
            recall_at_10: report.mean.recall_at_10,
        });
    };

    // The sweeps mirror the row blocks of Tables 10–12, scaled to the smaller
    // embedding dimensions of the laptop runs.
    for d in [base_d / 2, base_d, base_d * 2] {
        run_one("d", d.max(4), base_nh, base_nl, base_np, base_p);
    }
    for n_h in [base_nh.saturating_sub(1).max(2), base_nh, base_nh + 1] {
        run_one("n_h", base_d, n_h, base_nl, base_np, base_p);
    }
    for n_l in [0, 1, base_nl, base_nl + 1] {
        run_one("n_l", base_d, base_nh, n_l, base_np, base_p);
    }
    for n_p in [base_np.saturating_sub(1).max(1), base_np, base_np + 1] {
        run_one("n_p", base_d, base_nh, base_nl, n_p, base_p);
    }
    for p in [1, 2, 3, 4] {
        run_one("p", base_d, base_nh, base_nl, base_np, p);
    }
    rows
}

/// Renders the study in the layout of Tables 10–12.
pub fn render_param_study(dataset: &str, rows: &[ParamStudyRow]) -> String {
    let mut out = format!("=== Parameter study of HAMs_m on {dataset} in 80-20-CUT ===\n");
    out.push_str(&format!(
        "{:<10} {:>5} {:>5} {:>5} {:>5} {:>3} {:>10} {:>10}\n",
        "parameter", "d", "n_h", "n_l", "n_p", "p", "Recall@5", "Recall@10"
    ));
    let mut current = "";
    for row in rows {
        if row.parameter != current {
            current = row.parameter;
            out.push_str(&format!("--- varying {current} ---\n"));
        }
        out.push_str(&format!(
            "{:<10} {:>5} {:>5} {:>5} {:>5} {:>3} {:>10.4} {:>10.4}\n",
            row.parameter, row.d, row.n_h, row.n_l, row.n_p, row.p, row.recall_at_5, row.recall_at_10
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_groups_rows_by_parameter() {
        let rows = vec![
            ParamStudyRow { parameter: "d", d: 16, n_h: 5, n_l: 2, n_p: 3, p: 2, recall_at_5: 0.1, recall_at_10: 0.2 },
            ParamStudyRow {
                parameter: "d",
                d: 32,
                n_h: 5,
                n_l: 2,
                n_p: 3,
                p: 2,
                recall_at_5: 0.12,
                recall_at_10: 0.22,
            },
            ParamStudyRow {
                parameter: "p",
                d: 32,
                n_h: 5,
                n_l: 2,
                n_p: 3,
                p: 3,
                recall_at_5: 0.13,
                recall_at_10: 0.23,
            },
        ];
        let text = render_param_study("CDs", &rows);
        assert!(text.contains("varying d"));
        assert!(text.contains("varying p"));
        assert!(text.contains("0.1300"));
    }

    /// A heavily reduced end-to-end run covering the whole sweep machinery.
    #[test]
    fn param_study_end_to_end_smoke() {
        let profile = DatasetProfile::tiny("param-smoke");
        let cfg = ExperimentConfig {
            scale: 1.0,
            max_users: 25,
            max_seq_len: 25,
            d: 8,
            epochs: 1,
            batch_size: 64,
            eval_threads: 1,
            ..ExperimentConfig::default()
        };
        let rows = run_param_study(&profile, &cfg);
        // 3 (d) + 3 (n_h) + 4 (n_l) + 3 (n_p) + 4 (p) rows
        assert_eq!(rows.len(), 17);
        assert!(rows.iter().all(|r| r.recall_at_10 >= 0.0 && r.recall_at_10 <= 1.0));
        // the p sweep must include the no-synergy configuration p = 1
        assert!(rows.iter().any(|r| r.parameter == "p" && r.p == 1));
    }
}
