//! The run-time performance study in testing (Table 14): mean per-user
//! scoring latency of every method and the speed-up of HAMs_m.

use crate::methods::Method;
use crate::runner::{paper_windows, prepare_dataset, ExperimentConfig};
use ham_data::split::{split_dataset, EvalSetting};
use ham_data::synthetic::DatasetProfile;
use ham_eval::timing::{measure_scoring_time, TimingReport};

/// One dataset row of Table 14.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Dataset name.
    pub dataset: String,
    /// `(method name, timing)` per compared method.
    pub timings: Vec<(String, TimingReport)>,
}

impl RuntimeRow {
    /// The speed-up of the fastest method over the second fastest — the
    /// `speedup` column of Table 14.
    pub fn best_speedup(&self) -> f64 {
        let mut sorted: Vec<&TimingReport> = self.timings.iter().map(|(_, t)| t).collect();
        sorted.sort_by(|a, b| a.seconds_per_user.partial_cmp(&b.seconds_per_user).unwrap_or(std::cmp::Ordering::Equal));
        if sorted.len() < 2 {
            return 1.0;
        }
        sorted[0].speedup_over(sorted[1]).max(sorted[1].seconds_per_user / sorted[0].seconds_per_user)
    }

    /// The speed-up of `ours` over `theirs`, by method name.
    pub fn speedup_of(&self, ours: &str, theirs: &str) -> Option<f64> {
        let find = |name: &str| self.timings.iter().find(|(m, _)| m == name).map(|(_, t)| t);
        Some(find(ours)?.speedup_over(find(theirs)?))
    }
}

/// Trains each method briefly, then measures the mean wall-clock time to score
/// the full catalogue for each test user (the paper's Table 14 protocol).
pub fn run_runtime_study(
    profiles: &[DatasetProfile],
    methods: &[Method],
    config: &ExperimentConfig,
) -> Vec<RuntimeRow> {
    profiles
        .iter()
        .map(|profile| {
            let dataset = prepare_dataset(profile, config);
            let split = split_dataset(&dataset, EvalSetting::Cut8020);
            let train_sequences = split.train_with_val();
            let windows = paper_windows(&dataset.name, EvalSetting::Cut8020);
            let users: Vec<(usize, Vec<usize>)> = (0..split.num_users())
                .filter(|&u| !split.test[u].is_empty() && !train_sequences[u].is_empty())
                .map(|u| (u, train_sequences[u].clone()))
                .collect();

            let timings = methods
                .iter()
                .map(|method| {
                    let trained = method.fit(&train_sequences, split.num_items, windows, config);
                    let timing = measure_scoring_time(&users, |user, history| trained.score_all(user, history));
                    (method.name().to_string(), timing)
                })
                .collect();
            RuntimeRow { dataset: dataset.name.clone(), timings }
        })
        .collect()
}

/// Renders the study in the layout of Table 14.
pub fn render_runtime(rows: &[RuntimeRow]) -> String {
    let mut out = String::from("=== Testing run-time per user in 80-20-CUT (Table 14, seconds) ===\n");
    if rows.is_empty() {
        return out;
    }
    out.push_str(&format!("{:<10}", "Dataset"));
    for (method, _) in &rows[0].timings {
        out.push_str(&format!(" {method:>10}"));
    }
    out.push_str(&format!(" {:>10}\n", "speedup"));
    for row in rows {
        out.push_str(&format!("{:<10}", row.dataset));
        for (_, timing) in &row.timings {
            out.push_str(&format!(" {:>10.2e}", timing.seconds_per_user));
        }
        out.push_str(&format!(" {:>10.1}\n", row.best_speedup()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_core::HamVariant;

    fn fake_row() -> RuntimeRow {
        let t = |secs: f64| TimingReport { seconds_per_user: secs, users_measured: 10, total_seconds: secs * 10.0 };
        RuntimeRow {
            dataset: "CDs".into(),
            timings: vec![
                ("Caser".into(), t(1.2e-1)),
                ("SASRec".into(), t(2.3e-2)),
                ("HGN".into(), t(1.5e-3)),
                ("HAMs_m".into(), t(6.3e-4)),
            ],
        }
    }

    #[test]
    fn speedups_match_table14_arithmetic() {
        let row = fake_row();
        // HAMs_m over HGN ≈ 2.4, over Caser ≈ 190
        assert!((row.speedup_of("HAMs_m", "HGN").unwrap() - 2.38).abs() < 0.05);
        assert!(row.speedup_of("HAMs_m", "Caser").unwrap() > 150.0);
        assert!((row.best_speedup() - 2.38).abs() < 0.05);
        assert!(row.speedup_of("HAMs_m", "Unknown").is_none());
    }

    #[test]
    fn render_contains_methods_and_speedup_column() {
        let text = render_runtime(&[fake_row()]);
        assert!(text.contains("HAMs_m"));
        assert!(text.contains("speedup"));
        assert!(text.contains("CDs"));
    }

    #[test]
    fn runtime_study_end_to_end_smoke() {
        let profiles = vec![DatasetProfile::tiny("runtime-smoke")];
        let cfg = ExperimentConfig {
            scale: 1.0,
            max_users: 20,
            max_seq_len: 20,
            d: 8,
            epochs: 1,
            batch_size: 64,
            eval_threads: 1,
            ..ExperimentConfig::default()
        };
        let methods = [Method::Hgn, Method::Ham(HamVariant::HamSM)];
        let rows = run_runtime_study(&profiles, &methods, &cfg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].timings.len(), 2);
        assert!(rows[0].timings.iter().all(|(_, t)| t.seconds_per_user > 0.0));
    }
}
