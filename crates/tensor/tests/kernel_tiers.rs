//! Tier-parity suite for the kernel layer: every explicit SIMD tier (AVX2,
//! AVX-512) must agree with the portable reference tier on every kernel —
//! ≤ 1e-5 on arbitrary floats, **bit-exact** on integer-valued inputs (whose
//! products and sums are exactly representable, so any accumulation order and
//! FMA contraction yield the same bits) — across tail lengths 0..40 and odd
//! shapes. Also pins the dispatch machinery: `HAM_KERNEL_TIER` forcing is
//! honored (verified in a subprocess so the one-time resolution actually runs
//! under the variable) and `force_tier` overrides in-process.

use ham_tensor::kernels::{
    active_tier, axpy_rows_with_tier, axpy_with_tier, dot_with_tier, matmul_transposed_with_tier, matmul_with_tier,
    matvec_transposed_into_with_tier, KernelTier,
};
use ham_tensor::Matrix;
use proptest::prelude::*;

/// The SIMD tiers under test, whichever this machine can run. Every parity
/// test is vacuously green on hardware without AVX2+FMA (the portable tier is
/// the reference — there is nothing to compare), which keeps the suite
/// portable; on AVX-512 hardware both SIMD tiers are checked.
fn simd_tiers() -> Vec<KernelTier> {
    [KernelTier::Avx2, KernelTier::Avx512].into_iter().filter(|t| t.supported()).collect()
}

/// ≤ 1e-5 agreement, scaled by magnitude: the tiers reassociate and fuse the
/// same ascending-k accumulation, so the divergence is rounding noise
/// proportional to the accumulated magnitude.
fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-5 * (1.0 + a.abs().max(b.abs()))
}

fn float_matrix(rows: usize, cols: usize, seed: &[f32]) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|i| seed[i % seed.len()] * ((i % 17) as f32 - 8.0)).collect())
}

/// Integer-valued matrix in a range where every product and partial sum is
/// exactly representable in f32.
fn integer_matrix(rows: usize, cols: usize, offset: usize) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|i| ((i + offset) % 19) as f32 - 9.0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_tiers_agree_on_floats(values in proptest::collection::vec(-4.0f32..4.0, 0..40)) {
        let a = values.clone();
        let b: Vec<f32> = values.iter().rev().map(|v| v * 0.75 + 0.125).collect();
        let portable = dot_with_tier(KernelTier::Portable, &a, &b);
        for simd in simd_tiers() {
            let fast = dot_with_tier(simd, &a, &b);
            prop_assert!(close(portable, fast), "{simd} len {}: {portable} vs {fast}", a.len());
        }
    }

    #[test]
    fn matvec_tiers_agree_on_floats(n in 1usize..70, d in 1usize..40, scale in 0.1f32..2.0) {
        let w = float_matrix(n, d, &[scale, -scale * 0.5, scale * 0.25]);
        let q: Vec<f32> = (0..d).map(|k| (k as f32 * 0.31).sin() * scale).collect();
        let mut reference = vec![0.0f32; n];
        matvec_transposed_into_with_tier(KernelTier::Portable, &w, &q, &mut reference);
        for simd in simd_tiers() {
            let mut fast = vec![0.0f32; n];
            matvec_transposed_into_with_tier(simd, &w, &q, &mut fast);
            for j in 0..n {
                prop_assert!(close(reference[j], fast[j]), "{simd} n={n} d={d} j={j}");
            }
        }
    }

    #[test]
    fn gemm_tiers_agree_on_floats(m in 1usize..12, n in 1usize..70, d in 1usize..40) {
        let a = float_matrix(m, d, &[0.7, -0.3, 1.1]);
        let b = float_matrix(n, d, &[0.4, 0.9, -0.6]);
        let reference = matmul_transposed_with_tier(KernelTier::Portable, &a, &b);
        for simd in simd_tiers() {
            let fast = matmul_transposed_with_tier(simd, &a, &b);
            for i in 0..m {
                for j in 0..n {
                    prop_assert!(close(reference.get(i, j), fast.get(i, j)), "{simd} ({m},{n},{d}) at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn matmul_tiers_agree_on_floats(m in 1usize..8, p in 1usize..20, n in 1usize..150) {
        let a = float_matrix(m, p, &[0.5, -1.2, 0.8]);
        let b = float_matrix(p, n, &[0.3, 0.9, -0.4]);
        let reference = matmul_with_tier(KernelTier::Portable, &a, &b);
        for simd in simd_tiers() {
            let fast = matmul_with_tier(simd, &a, &b);
            for i in 0..m {
                for j in 0..n {
                    prop_assert!(close(reference.get(i, j), fast.get(i, j)), "{simd} ({m},{p},{n}) at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn matmul_tiers_agree_on_sparse_rows(m in 1usize..6, p in 4usize..20, n in 1usize..150, hot in 0usize..4) {
        // One-hot / mostly-zero left rows take the zero-skip path in every
        // tier; results must be bit-identical to the dense classification
        // (integer inputs make the comparison exact).
        let mut a = Matrix::zeros(m, p);
        for i in 0..m {
            a.set(i, (hot + i) % p, (i + 2) as f32);
        }
        let b = integer_matrix(p, n, 3);
        let reference = matmul_with_tier(KernelTier::Portable, &a, &b);
        for simd in simd_tiers() {
            let fast = matmul_with_tier(simd, &a, &b);
            prop_assert_eq!(reference.as_slice(), fast.as_slice(), "{}", simd);
        }
    }

    #[test]
    fn axpy_tiers_agree_on_floats(values in proptest::collection::vec(-4.0f32..4.0, 0..40), alpha in -2.0f32..2.0) {
        let x = values.clone();
        let base: Vec<f32> = values.iter().rev().map(|v| v * 0.5 - 0.25).collect();
        let mut reference = base.clone();
        axpy_with_tier(KernelTier::Portable, &mut reference, alpha, &x);
        for simd in simd_tiers() {
            let mut fast = base.clone();
            axpy_with_tier(simd, &mut fast, alpha, &x);
            for j in 0..x.len() {
                prop_assert!(close(reference[j], fast[j]), "{simd} len {} j={j}: {} vs {}", x.len(), reference[j], fast[j]);
            }
        }
    }

    #[test]
    fn axpy_rows_tiers_agree_on_floats(rows in 1usize..12, d in 1usize..40, pairs in 1usize..24, seed in 0usize..64) {
        let src = float_matrix(rows, d, &[0.6, -0.4, 1.2]);
        // pseudo-random scatter pattern with deliberate duplicate destinations
        let dst_rows: Vec<usize> = (0..pairs).map(|p| (p * 7 + seed) % rows).collect();
        let src_rows: Vec<usize> = (0..pairs).map(|p| (p * 5 + seed / 2) % rows).collect();
        let scales: Vec<f32> = (0..pairs).map(|p| ((p + seed) as f32 * 0.37).sin()).collect();
        let base = float_matrix(rows, d, &[0.2, 0.9, -0.7]);
        let mut reference = base.clone();
        axpy_rows_with_tier(KernelTier::Portable, &mut reference, &dst_rows, &scales, &src, &src_rows);
        for simd in simd_tiers() {
            let mut fast = base.clone();
            axpy_rows_with_tier(simd, &mut fast, &dst_rows, &scales, &src, &src_rows);
            for i in 0..rows {
                for c in 0..d {
                    prop_assert!(close(reference.get(i, c), fast.get(i, c)), "{simd} ({rows},{d},{pairs}) at ({i},{c})");
                }
            }
        }
    }
}

/// Bit-exactness on integer-valued inputs, all four kernels, every tail
/// length 0..40 (dot/matvec) and a sweep of odd shapes (GEMM/matmul).
#[test]
fn tiers_are_bit_exact_on_integer_values() {
    for simd in simd_tiers() {
        for len in 0..40 {
            let a: Vec<f32> = (0..len).map(|i| (i % 11) as f32 - 5.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i % 7) as f32 - 3.0).collect();
            let portable = dot_with_tier(KernelTier::Portable, &a, &b);
            let fast = dot_with_tier(simd, &a, &b);
            assert_eq!(portable.to_bits(), fast.to_bits(), "{simd} dot len {len}");

            let mut axpy_ref = b.clone();
            let mut axpy_fast = b.clone();
            axpy_with_tier(KernelTier::Portable, &mut axpy_ref, 3.0, &a);
            axpy_with_tier(simd, &mut axpy_fast, 3.0, &a);
            assert_eq!(axpy_ref, axpy_fast, "{simd} axpy len {len}");
        }
        for (m, n, d) in [(1, 1, 1), (3, 17, 5), (4, 33, 39), (5, 130, 8), (7, 40, 32), (2, 16, 16)] {
            let a = integer_matrix(m, d, 1);
            let b = integer_matrix(n, d, 7);
            let q: Vec<f32> = (0..d).map(|k| (k % 5) as f32 - 2.0).collect();

            let mut mv_ref = vec![0.0f32; n];
            let mut mv_fast = vec![0.0f32; n];
            matvec_transposed_into_with_tier(KernelTier::Portable, &b, &q, &mut mv_ref);
            matvec_transposed_into_with_tier(simd, &b, &q, &mut mv_fast);
            assert_eq!(mv_ref, mv_fast, "{simd} matvec ({n},{d})");

            let gemm_ref = matmul_transposed_with_tier(KernelTier::Portable, &a, &b);
            let gemm_fast = matmul_transposed_with_tier(simd, &a, &b);
            assert_eq!(gemm_ref.as_slice(), gemm_fast.as_slice(), "{simd} gemm ({m},{n},{d})");

            let bb = integer_matrix(d, n, 5);
            let mm_ref = matmul_with_tier(KernelTier::Portable, &a, &bb);
            let mm_fast = matmul_with_tier(simd, &a, &bb);
            assert_eq!(mm_ref.as_slice(), mm_fast.as_slice(), "{simd} matmul ({m},{d},{n})");
        }
    }
}

/// Within each SIMD tier, a GEMV row's bits must not depend on the shard it
/// sits in — the property the serving layer's exactness rests on.
#[test]
fn simd_gemv_rows_are_position_independent() {
    for simd in simd_tiers() {
        let w = float_matrix(57, 23, &[0.9, -0.2, 0.6]);
        let q: Vec<f32> = (0..23).map(|k| (k as f32 * 0.17).cos()).collect();
        let mut full = vec![0.0f32; 57];
        matvec_transposed_into_with_tier(simd, &w, &q, &mut full);
        for (start, len) in [(0usize, 10usize), (10, 21), (31, 26), (56, 1)] {
            let shard = Matrix::from_vec(len, 23, w.as_slice()[start * 23..(start + len) * 23].to_vec());
            let mut part = vec![0.0f32; len];
            matvec_transposed_into_with_tier(simd, &shard, &q, &mut part);
            for j in 0..len {
                assert_eq!(part[j].to_bits(), full[start + j].to_bits(), "{simd} shard {start}+{len} row {j}");
            }
        }
    }
}

/// Prints the resolved tier; run as a subprocess by
/// `env_var_forcing_is_honored` so the one-time dispatch resolution actually
/// happens under a controlled `HAM_KERNEL_TIER`.
#[test]
fn tier_probe() {
    println!("active-tier={}", active_tier());
}

/// `HAM_KERNEL_TIER` must win over auto-detection. The resolution is cached
/// in a process-wide atomic, so the honest test is a fresh process: re-run
/// this same test binary filtered to `tier_probe` with the variable set and
/// check what the probe printed.
#[test]
fn env_var_forcing_is_honored() {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cases = vec![("scalar", KernelTier::Portable), ("portable", KernelTier::Portable)];
    if KernelTier::Avx2.supported() {
        cases.push(("avx2", KernelTier::Avx2));
        cases.push(("simd", KernelTier::Avx2));
    }
    if KernelTier::Avx512.supported() {
        cases.push(("avx512", KernelTier::Avx512));
    }
    for (value, expected) in cases {
        let output = std::process::Command::new(&exe)
            .args(["tier_probe", "--exact", "--nocapture", "--test-threads", "1"])
            .env("HAM_KERNEL_TIER", value)
            .output()
            .expect("failed to re-run the test binary");
        assert!(output.status.success(), "probe run failed for {value}");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains(&format!("active-tier={expected}")),
            "HAM_KERNEL_TIER={value} resolved wrongly; probe output:\n{stdout}"
        );
    }
}

/// `force_tier` overrides the dispatched tier in-process and `None` clears
/// the override back to auto-resolution — for every supported tier.
#[test]
fn force_tier_round_trip() {
    ham_tensor::kernels::force_tier(Some(KernelTier::Portable));
    assert_eq!(active_tier(), KernelTier::Portable);
    for simd in simd_tiers() {
        ham_tensor::kernels::force_tier(Some(simd));
        assert_eq!(active_tier(), simd);
    }
    ham_tensor::kernels::force_tier(None);
    assert!(active_tier().supported());
}
