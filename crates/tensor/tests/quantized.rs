//! Property suite for the int8 quantized scoring path: the a-priori error
//! bound (scaled by the per-row magnitude through `scale_r`), exact
//! integer-accumulation bit-identity across tiers, and round-trip behaviour
//! of the affine scheme on arbitrary inputs.

use ham_tensor::kernels::{
    quantized_dot_with_tier, quantized_matmul_transposed_into_with_tier, quantized_matvec_into_with_tier, KernelTier,
};
use ham_tensor::quant::score_error_bound;
use ham_tensor::{Matrix, QuantizedMatrix, QuantizedQuery};
use proptest::prelude::*;

/// Every tier runnable on this machine; the quantized kernels must agree
/// bit-for-bit across all of them (integer accumulation is exact).
fn all_tiers() -> Vec<KernelTier> {
    [KernelTier::Portable, KernelTier::Avx2, KernelTier::Avx512].into_iter().filter(|t| t.supported()).collect()
}

fn exact_score(row: &[f32], q: &[f32]) -> f32 {
    row.iter().zip(q).map(|(w, x)| (*w as f64) * (*x as f64)).sum::<f64>() as f32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The quantized score of every row stays within the a-priori bound of
    /// the exact score — the bound scales with the per-row magnitude
    /// (`scale_r = (max − min)/255`), so large-magnitude rows are allowed
    /// proportionally more absolute error and small rows almost none.
    #[test]
    fn quantized_score_respects_the_error_bound(
        rows in proptest::collection::vec(proptest::collection::vec(-8.0f32..8.0, 12..13), 1..12),
        q in proptest::collection::vec(-3.0f32..3.0, 12..13),
    ) {
        let n = rows.len();
        let w = Matrix::from_vec(n, 12, rows.concat());
        let qw = QuantizedMatrix::quantize(&w);
        let qq = QuantizedQuery::quantize(&q);
        let mut scores = vec![0.0f32; n];
        quantized_matvec_into_with_tier(KernelTier::Portable, &qw, &qq, &mut scores);
        for (j, &score) in scores.iter().enumerate() {
            let exact = exact_score(w.row(j), &q);
            let bound = score_error_bound(w.row(j), &q);
            prop_assert!(
                (exact - score).abs() <= bound,
                "row {j}: |{exact} - {score}| > bound {bound}"
            );
        }
    }

    /// Scaling a row scales its permitted error: the bound itself must be
    /// (close to) homogeneous in the row magnitude, which pins the
    /// "scaled by per-row magnitude" property directly.
    #[test]
    fn error_bound_scales_with_row_magnitude(
        row in proptest::collection::vec(-4.0f32..4.0, 1..24),
        q in proptest::collection::vec(-2.0f32..2.0, 24..25),
        factor in 2.0f32..16.0,
    ) {
        let q = &q[..row.len()];
        let scaled: Vec<f32> = row.iter().map(|v| v * factor).collect();
        let base = score_error_bound(&row, q);
        let grown = score_error_bound(&scaled, q);
        // The |w|·scale_q terms scale exactly; the scale_r terms scale
        // exactly too — the whole bound is homogeneous degree 1 in the row.
        prop_assert!(
            (grown - factor * base).abs() <= 1e-3 * (1.0 + grown.abs()),
            "bound {base} scaled by {factor} gave {grown}"
        );
    }

    /// Quantized scores are bit-identical across every supported tier and
    /// across row groupings (integer accumulation is associative), for all
    /// three kernel entry points.
    #[test]
    fn quantized_kernels_are_bit_identical_across_tiers(
        n in 1usize..20,
        d in 1usize..48,
        seed in 0usize..32,
    ) {
        let w = Matrix::from_vec(
            n, d,
            (0..n * d).map(|i| (((i * 31 + seed * 7) % 41) as f32 - 20.0) * 0.21).collect(),
        );
        let qf: Vec<f32> = (0..d).map(|k| ((k * 13 + seed) % 23) as f32 * 0.17 - 1.9).collect();
        let qw = QuantizedMatrix::quantize(&w);
        let qq = QuantizedQuery::quantize(&qf);
        let mut reference = vec![0.0f32; n];
        quantized_matvec_into_with_tier(KernelTier::Portable, &qw, &qq, &mut reference);
        for tier in all_tiers() {
            let mut fast = vec![f32::NAN; n];
            quantized_matvec_into_with_tier(tier, &qw, &qq, &mut fast);
            for j in 0..n {
                prop_assert_eq!(fast[j].to_bits(), reference[j].to_bits(), "{} matvec row {}", tier, j);
                let single = quantized_dot_with_tier(tier, &qw, j, &qq);
                prop_assert_eq!(single.to_bits(), reference[j].to_bits(), "{} dot row {}", tier, j);
            }
            let mut batch = Matrix::zeros(2, n);
            quantized_matmul_transposed_into_with_tier(tier, &[qq.clone(), qq.clone()], &qw, &mut batch);
            for b in 0..2 {
                for (j, r) in reference.iter().enumerate() {
                    prop_assert_eq!(batch.get(b, j).to_bits(), r.to_bits(), "{} gemm ({},{})", tier, b, j);
                }
            }
        }
    }

    /// Row-grouping independence: scoring a slice of the rows alone gives the
    /// same bits as the corresponding entries of the full panel — the
    /// property the sharded quantized pre-selection rests on.
    #[test]
    fn quantized_scores_are_position_independent(split in 1usize..19) {
        let (n, d) = (20usize, 24usize);
        let w = Matrix::from_vec(n, d, (0..n * d).map(|i| ((i * 37) % 29) as f32 * 0.13 - 1.8).collect());
        let qf: Vec<f32> = (0..d).map(|k| (k as f32 * 0.23).sin()).collect();
        let qq = QuantizedQuery::quantize(&qf);
        let full = QuantizedMatrix::quantize(&w);
        let mut full_scores = vec![0.0f32; n];
        quantized_matvec_into_with_tier(KernelTier::Portable, &full, &qq, &mut full_scores);
        for (start, len) in [(0, split), (split, n - split)] {
            let shard = Matrix::from_vec(len, d, w.as_slice()[start * d..(start + len) * d].to_vec());
            let panel = QuantizedMatrix::quantize(&shard);
            let mut part = vec![0.0f32; len];
            for tier in all_tiers() {
                quantized_matvec_into_with_tier(tier, &panel, &qq, &mut part);
                for j in 0..len {
                    prop_assert_eq!(
                        part[j].to_bits(), full_scores[start + j].to_bits(),
                        "{} shard {}+{} row {}", tier, start, len, j
                    );
                }
            }
        }
    }

    /// Affine round-trip: every dequantized element lands within one step of
    /// the original (half a step from rounding, up to another half from
    /// clamping at the nudged range edge).
    #[test]
    fn round_trip_is_within_one_step(row in proptest::collection::vec(-10.0f32..10.0, 1..40)) {
        let w = Matrix::from_vec(1, row.len(), row.clone());
        let qw = QuantizedMatrix::quantize(&w);
        let back = qw.dequantize_row(0);
        for (k, (&orig, &deq)) in row.iter().zip(&back).enumerate() {
            prop_assert!(
                (orig - deq).abs() <= qw.scale(0) + 1e-6,
                "col {k}: {orig} vs {deq} (scale {})", qw.scale(0)
            );
        }
    }
}
