//! Per-tier kernel dispatch accounting.
//!
//! Every kernel call notes (tier, effective operand bytes) here, so which
//! tier actually served traffic is a runtime fact readable from a snapshot —
//! not an assumption derived from `HAM_KERNEL_TIER`. The counters live in
//! this crate (not `ham-telemetry`) so the kernel layer stays dependency-
//! free; the telemetry snapshot pulls them in via its `push_counter` hook at
//! exposition time.
//!
//! Accounting is wait-free and striped: each tier owns a small set of
//! cache-line-padded slots and recording threads are spread across them
//! round-robin (same scheme as the telemetry histogram shards), so pool
//! workers hammering the GEMM inside a parallel shard scan never contend on
//! one line. Reads sum the stripes — the totals are exact once callers
//! quiesce.

use super::KernelTier;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const TIERS: usize = 3;
const STRIPES: usize = 8;

#[repr(align(128))]
#[derive(Default)]
struct Stripe {
    calls: AtomicU64,
    bytes: AtomicU64,
}

struct TierCells {
    stripes: [Stripe; STRIPES],
}

impl TierCells {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const STRIPE: Stripe = Stripe { calls: AtomicU64::new(0), bytes: AtomicU64::new(0) };
        Self { stripes: [STRIPE; STRIPES] }
    }
}

static CELLS: [TierCells; TIERS] = [TierCells::new(), TierCells::new(), TierCells::new()];

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn thread_stripe() -> usize {
    THREAD_STRIPE.with(|slot| {
        let cached = slot.get();
        if cached != usize::MAX {
            return cached;
        }
        let assigned = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
        slot.set(assigned);
        assigned
    })
}

#[inline]
fn tier_index(tier: KernelTier) -> usize {
    match tier {
        KernelTier::Portable => 0,
        KernelTier::Avx2 => 1,
        KernelTier::Avx512 => 2,
    }
}

/// Notes one kernel invocation on `tier` touching `bytes` of operand data.
/// Called by every `*_impl` dispatch body; two relaxed adds on this thread's
/// stripe.
#[inline]
pub(super) fn note(tier: KernelTier, bytes: u64) {
    let stripe = &CELLS[tier_index(tier)].stripes[thread_stripe()];
    stripe.calls.fetch_add(1, Ordering::Relaxed);
    stripe.bytes.fetch_add(bytes, Ordering::Relaxed);
}

/// One tier's accumulated dispatch totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierCounters {
    /// The tier these totals belong to.
    pub tier: KernelTier,
    /// Kernel invocations dispatched to this tier.
    pub calls: u64,
    /// Effective operand bytes those invocations touched (inputs + outputs,
    /// quantized payloads at 1 byte/element).
    pub bytes: u64,
}

/// Current totals for every tier (zero entries included, portable first).
pub fn snapshot() -> [TierCounters; TIERS] {
    let read = |tier: KernelTier| {
        let cells = &CELLS[tier_index(tier)];
        let mut calls = 0u64;
        let mut bytes = 0u64;
        for stripe in &cells.stripes {
            calls += stripe.calls.load(Ordering::Relaxed);
            bytes += stripe.bytes.load(Ordering::Relaxed);
        }
        TierCounters { tier, calls, bytes }
    };
    [read(KernelTier::Portable), read(KernelTier::Avx2), read(KernelTier::Avx512)]
}

/// Zeroes every stripe (benchmark setup). Concurrent recorders may land
/// adds on either side of the sweep; quiesce callers first for exact zeros.
pub fn reset() {
    for cells in &CELLS {
        for stripe in &cells.stripes {
            stripe.calls.store(0, Ordering::Relaxed);
            stripe.bytes.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates_and_snapshot_sums_stripes() {
        // Counters are process-global, so assert on deltas.
        let before = snapshot()[tier_index(KernelTier::Portable)];
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        note(KernelTier::Portable, 64);
                    }
                });
            }
        });
        let after = snapshot()[tier_index(KernelTier::Portable)];
        assert_eq!(after.calls - before.calls, 400);
        assert_eq!(after.bytes - before.bytes, 400 * 64);
        assert_eq!(after.tier, KernelTier::Portable);
    }
}
