//! Batched linear-algebra kernels: the hot-path substrate behind scoring,
//! training and evaluation — now a tiered subsystem with one-time runtime
//! dispatch.
//!
//! The HAM scorer is `r_ij = q_i · w_j`: one query vector per user against
//! every row of the candidate-embedding matrix `W ∈ R^{n×d}`. Done naively
//! (one [`dot`] per item) that walk is latency-bound — each row's accumulator
//! chain serialises the FMAs and `W` is streamed once per user. The kernels
//! here restructure the same arithmetic for instruction- and cache-level
//! parallelism while keeping every per-element accumulation in ascending-`k`
//! order, so results stay within float-rounding distance (≤ 1e-5) of the
//! scalar loops they replace:
//!
//! * [`dot`] — multi-accumulator dot product (eight scalar partial sums on
//!   the portable tier, four 8-wide FMA chains on AVX2).
//! * [`matvec_transposed`] / [`matvec_transposed_into`] — `W · q` for one
//!   query against the whole catalogue in one fused pass over `W` (one user,
//!   all items: the serving fast path; the `_into` variant writes a caller
//!   buffer so the serving loop allocates nothing per request).
//! * [`matmul_transposed`] / [`matmul_transposed_into`] — packed-panel
//!   `A · Bᵀ` whose inner loop is a contiguous axpy over an L1-resident
//!   transposed panel of `B` (many users, all items: the `Q · Wᵀ`
//!   batched-evaluation fast path; register-blocked 4×16 FMA tiles on AVX2).
//! * [`matmul`] — cache-blocked `A · B` with a branch-free dense inner loop;
//!   rows that are mostly zero (the one-hot and masked matrices the autograd
//!   tape produces) take a bit-identical skip path instead.
//! * [`axpy`] / [`axpy_rows`] — scaled row update `out += α·x` and its
//!   batched scatter form `dst[i_p] += α_p · src[j_p]` (the rank-1 updates
//!   the mini-batched BPR trainer accumulates embedding gradients with: one
//!   call covers every (positive, negative) pair of a training batch).
//!
//! ## Tiers and runtime dispatch
//!
//! | tier | selected when | implementation |
//! |---|---|---|
//! | [`KernelTier::Portable`] | always available (the fallback) | safe multi-accumulator loops in `portable.rs`; vectorize under `-C target-cpu=native`, stay correct (scalar/SSE2) without it |
//! | [`KernelTier::Avx2`] | `x86_64` with `avx2`+`fma` detected at runtime | explicit `std::arch` microkernels in `avx2.rs`; need **no** `target-cpu=native` to emit vector FMAs |
//! | [`KernelTier::Avx512`] | `x86_64` with `avx512f`+`avx512bw` detected at runtime | 16-wide `std::arch` microkernels in `avx512.rs`; preferred over AVX2 when present |
//!
//! The dispatcher resolves the tier **once** per process (cached in an
//! atomic): the `HAM_KERNEL_TIER` environment variable wins if set
//! (`scalar`/`portable`, `avx2`/`simd`, `avx512`, or `auto`), otherwise
//! `is_x86_feature_detected!` picks the best supported tier
//! (avx512 > avx2 > portable). [`active_tier`]
//! reports the decision; [`force_tier`] overrides it in-process for tests
//! and benchmarks. `-C target-cpu=native` is no longer required for vector
//! speed — it still buys better codegen for the *portable* tier and for all
//! non-kernel code, but portable builds now hit the best SIMD tier at runtime.
//!
//! ## Quantized kernels
//!
//! The int8 candidate-scoring path ([`crate::quant`]) has its own kernel
//! family behind the same dispatcher: [`quantized_dot`],
//! [`quantized_matvec_into`] and [`quantized_matmul_transposed_into`] score
//! a [`QuantizedMatrix`] panel (1 byte/element instead of 4) against
//! [`QuantizedQuery`] vectors. Their integer accumulation is exact, so —
//! unlike the f32 kernels — quantized scores are **bit-identical across
//! every tier** and every shard/panel grouping by construction.
//!
//! ## Which entry point applies?
//!
//! | call site | kernel |
//! |---|---|
//! | score one user, few candidate items | [`dot`] per candidate |
//! | score one user, whole catalogue | [`matvec_transposed`] (serving: [`matvec_transposed_into`]) |
//! | score a user batch, whole catalogue | [`matmul_transposed`] (`Q·Wᵀ`) |
//! | dense forward/backward products | [`matmul`] |
//!
//! All kernels are exact for exactly-representable inputs (the unit tests
//! pin integer-valued cases bit-for-bit) and agree with the naive loops to
//! within accumulation-order rounding otherwise. Within one tier, an output
//! element's bits never depend on how rows are grouped into panels, shards
//! or register tiles — for the GEMMs every element is a single accumulation
//! chain in ascending-`k` order regardless of tile path, and for
//! [`dot`]/[`matvec_transposed`] each row uses one fixed multi-chain
//! reduction shape that depends only on the row's length, never its
//! position. That per-row/per-element position-independence is what keeps
//! the sharded serving layer bit-identical to the single-node path. (The two
//! properties differ: a new tier must match its *own* rows across groupings,
//! not reproduce another tier's chain shape.)

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
pub mod counters;
mod portable;

use crate::quant::{QuantizedMatrix, QuantizedQuery};
use crate::Matrix;
use std::sync::atomic::{AtomicU8, Ordering};

/// Column-panel width for the blocked [`matmul`]: the output row segment
/// (4 B/element) and the corresponding panel of `B` stay L1/L2-resident.
const MATMUL_J_BLOCK: usize = 128;

/// Row-panel height for the blocked [`matmul_transposed`]: a panel of `B`
/// rows is re-packed k-major and kept L1-resident while every row of `A` is
/// scored against it (`128 rows × d floats`; 16 KB at d = 32).
const GEMM_B_PANEL: usize = 128;

/// Number of independent partial sums in the portable [`dot`]: one full
/// vector register of accumulators, so the reduction vectorizes instead of
/// serialising on a single accumulator chain.
const DOT_LANES: usize = 8;

/// One implementation tier of the kernel layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Safe, architecture-independent loops (the reference implementation).
    Portable,
    /// Explicit x86_64 AVX2+FMA microkernels (runtime-detected).
    Avx2,
    /// Explicit x86_64 AVX-512 (F+BW) microkernels (runtime-detected).
    Avx512,
}

impl KernelTier {
    /// Whether this tier can run on the current CPU.
    pub fn supported(self) -> bool {
        match self {
            KernelTier::Portable => true,
            KernelTier::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelTier::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    /// The tier's canonical name (the value `HAM_KERNEL_TIER` accepts).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelTier::Portable => "portable",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    fn code(self) -> u8 {
        match self {
            KernelTier::Portable => TIER_PORTABLE,
            KernelTier::Avx2 => TIER_AVX2,
            KernelTier::Avx512 => TIER_AVX512,
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const TIER_UNRESOLVED: u8 = 0;
const TIER_PORTABLE: u8 = 1;
const TIER_AVX2: u8 = 2;
const TIER_AVX512: u8 = 3;

/// The process-wide tier decision: resolved on first kernel call, then a
/// single relaxed atomic load per dispatch.
static ACTIVE_TIER: AtomicU8 = AtomicU8::new(TIER_UNRESOLVED);

#[inline]
fn dispatch() -> KernelTier {
    match ACTIVE_TIER.load(Ordering::Relaxed) {
        TIER_PORTABLE => KernelTier::Portable,
        TIER_AVX2 => KernelTier::Avx2,
        TIER_AVX512 => KernelTier::Avx512,
        _ => resolve_tier(),
    }
}

/// One-time tier resolution: `HAM_KERNEL_TIER` wins, otherwise runtime
/// feature detection. Unknown values and unsupported requests degrade to
/// auto-detection with a warning rather than aborting a serving process.
#[cold]
fn resolve_tier() -> KernelTier {
    let requested = std::env::var("HAM_KERNEL_TIER").ok();
    let tier = match requested.as_deref() {
        Some("scalar") | Some("portable") => KernelTier::Portable,
        Some("avx2") | Some("simd") => {
            if KernelTier::Avx2.supported() {
                KernelTier::Avx2
            } else {
                eprintln!("HAM_KERNEL_TIER requested the avx2 tier but the CPU lacks avx2+fma; using portable");
                KernelTier::Portable
            }
        }
        Some("avx512") => {
            if KernelTier::Avx512.supported() {
                KernelTier::Avx512
            } else {
                eprintln!(
                    "HAM_KERNEL_TIER requested the avx512 tier but the CPU lacks avx512f+avx512bw; auto-detecting"
                );
                detect_tier()
            }
        }
        None | Some("") | Some("auto") => detect_tier(),
        Some(other) => {
            eprintln!("HAM_KERNEL_TIER={other:?} not recognised (expected scalar|avx2|avx512|auto); auto-detecting");
            detect_tier()
        }
    };
    // compare_exchange rather than store: a concurrent `force_tier` must not
    // be clobbered by a resolution that was already in flight — whoever wrote
    // first wins and this resolution adopts the winner.
    match ACTIVE_TIER.compare_exchange(TIER_UNRESOLVED, tier.code(), Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => tier,
        Err(TIER_AVX512) => KernelTier::Avx512,
        Err(TIER_AVX2) => KernelTier::Avx2,
        Err(_) => KernelTier::Portable,
    }
}

/// The best tier the current CPU supports (avx512 > avx2 > portable).
fn detect_tier() -> KernelTier {
    if KernelTier::Avx512.supported() {
        KernelTier::Avx512
    } else if KernelTier::Avx2.supported() {
        KernelTier::Avx2
    } else {
        KernelTier::Portable
    }
}

/// The tier the kernels currently dispatch to (resolving it if this is the
/// first kernel-layer touch of the process).
pub fn active_tier() -> KernelTier {
    dispatch()
}

/// Overrides the dispatched tier for this process (tests and benchmarks).
///
/// `Some(tier)` routes every subsequent kernel call to `tier`; `None` clears
/// the override so the next call re-resolves from `HAM_KERNEL_TIER` /
/// feature detection. Prefer the `*_with_tier` entry points for comparing
/// tiers side by side — they do not touch global state.
///
/// # Panics
/// Panics if the requested tier is not supported on this CPU.
pub fn force_tier(tier: Option<KernelTier>) {
    match tier {
        Some(t) => {
            assert!(t.supported(), "force_tier: the {t} tier is not supported on this CPU");
            ACTIVE_TIER.store(t.code(), Ordering::Relaxed);
        }
        None => ACTIVE_TIER.store(TIER_UNRESOLVED, Ordering::Relaxed),
    }
}

/// Packs `jw` rows of `b` (starting at row `j0`) k-major into `packed`:
/// `packed[k * jw + jj] = b[j0 + jj][k]` — the transposed panel both GEMM
/// tiers stream their inner loops over.
fn pack_panel_kmajor(b_data: &[f32], d: usize, j0: usize, jw: usize, packed: &mut [f32]) {
    for jj in 0..jw {
        let b_row = &b_data[(j0 + jj) * d..(j0 + jj + 1) * d];
        for (k, &bv) in b_row.iter().enumerate() {
            packed[k * jw + jj] = bv;
        }
    }
}

/// Classifies a row of the left operand of [`matmul`] as sparse: at least
/// half its entries are exactly zero, so the zero-skip loop beats the
/// branch-free dense loop. The one-hot and masked matrices the autograd tape
/// produces are almost entirely zero; dense model rows almost never contain
/// an exact 0.0. Both paths produce bit-identical results for finite inputs,
/// so the threshold affects speed only.
fn row_is_sparse(row: &[f32]) -> bool {
    let zeros = row.iter().filter(|&&v| v == 0.0).count();
    zeros * 2 >= row.len().max(1)
}

/// Turns the exact integer accumulator of a quantized dot into the
/// approximate f32 score:
/// `score ≈ scale_r · scale_q · (Σ p·s  −  zp_r · Σ s)`.
///
/// Shared by every tier so the (single) float rounding step is the identical
/// expression everywhere — together with the exact integer accumulation this
/// makes quantized scores bit-identical across tiers and row groupings.
#[inline]
fn quantized_score(acc: i32, zp: i32, scale_r: f32, q: &QuantizedQuery) -> f32 {
    (scale_r * q.scale()) * (acc - zp * q.sum()) as f32
}

/// Dot product of two equal-length slices (tier-dispatched).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_impl(dispatch(), a, b)
}

/// [`dot`] on an explicit tier (tier-parity tests and benchmarks).
///
/// # Panics
/// Panics on length mismatch or an unsupported tier.
pub fn dot_with_tier(tier: KernelTier, a: &[f32], b: &[f32]) -> f32 {
    dot_impl(checked(tier), a, b)
}

fn dot_impl(tier: KernelTier, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_dispatchable(tier);
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    counters::note(tier, 8 * a.len() as u64);
    match tier {
        KernelTier::Portable => portable::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // Avx2 after runtime detection, `checked()` asserts it, and the
        // `debug_assert_dispatchable` at the top of this function re-checks
        // it in debug builds — so the avx2+fma features this function
        // requires are present.
        KernelTier::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::dot(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    }
}

/// Scores one query against every row of `w`: returns `w · q`, i.e.
/// `out[j] = w.row(j) · q`, in a single fused pass over `w`.
///
/// This is the one-user/whole-catalogue fast path: `w` is streamed exactly
/// once while `q` stays register/L1-resident. Allocates the result; serving
/// loops that reuse a buffer should call [`matvec_transposed_into`].
///
/// # Panics
/// Panics if `q.len() != w.cols()`.
pub fn matvec_transposed(w: &Matrix, q: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; w.rows()];
    matvec_transposed_into(w, q, &mut out);
    out
}

/// [`matvec_transposed`] into a caller-provided buffer (overwritten), so the
/// serving hot path performs no per-request allocation.
///
/// # Panics
/// Panics if `q.len() != w.cols()` or `out.len() != w.rows()`.
#[inline]
pub fn matvec_transposed_into(w: &Matrix, q: &[f32], out: &mut [f32]) {
    matvec_transposed_into_impl(dispatch(), w, q, out)
}

/// [`matvec_transposed_into`] on an explicit tier.
///
/// # Panics
/// Panics on shape mismatch or an unsupported tier.
pub fn matvec_transposed_into_with_tier(tier: KernelTier, w: &Matrix, q: &[f32], out: &mut [f32]) {
    matvec_transposed_into_impl(checked(tier), w, q, out)
}

fn matvec_transposed_into_impl(tier: KernelTier, w: &Matrix, q: &[f32], out: &mut [f32]) {
    debug_assert_dispatchable(tier);
    let (n, d) = w.shape();
    assert_eq!(q.len(), d, "matvec_transposed: query length {} does not match {} columns", q.len(), d);
    assert_eq!(out.len(), n, "matvec_transposed_into: buffer holds {} scores for {} rows", out.len(), n);
    counters::note(tier, 4 * (n * d + d + n) as u64);
    match tier {
        KernelTier::Portable => portable::matvec_transposed_into(w, q, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // Avx2 after runtime detection, `checked()` asserts it, and the
        // `debug_assert_dispatchable` at the top of this function re-checks
        // it in debug builds — so the avx2+fma features this function
        // requires are present.
        KernelTier::Avx2 => unsafe { avx2::matvec_transposed_into(w, q, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::matvec_transposed_into(w, q, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    }
}

/// Blocked matrix product `a · bᵀ` (the batched `Q · Wᵀ` scoring GEMM).
///
/// `B` is processed in panels of `GEMM_B_PANEL` rows, each re-packed k-major
/// so the innermost loop streams contiguously over an L1-resident panel; the
/// AVX2 tier additionally register-blocks 4 rows × 16 columns of output per
/// FMA tile. `B` is streamed from memory exactly once regardless of the
/// batch size. Each output element accumulates in ascending-`k` order, so
/// results are bit-identical however the rows of `B` are grouped (the
/// sharded serving layer relies on this).
///
/// # Panics
/// Panics if the column dimensions do not agree.
pub fn matmul_transposed(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    matmul_transposed_into(a, b, &mut out);
    out
}

/// [`matmul_transposed`] into a caller-provided matrix (overwritten).
///
/// # Panics
/// Panics if the column dimensions do not agree or `out` is not
/// `a.rows() × b.rows()`.
#[inline]
pub fn matmul_transposed_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    matmul_transposed_into_impl(dispatch(), a, b, out)
}

/// [`matmul_transposed_into`] on an explicit tier.
///
/// # Panics
/// Panics on shape mismatch or an unsupported tier.
pub fn matmul_transposed_into_with_tier(tier: KernelTier, a: &Matrix, b: &Matrix, out: &mut Matrix) {
    matmul_transposed_into_impl(checked(tier), a, b, out)
}

fn matmul_transposed_into_impl(tier: KernelTier, a: &Matrix, b: &Matrix, out: &mut Matrix) {
    debug_assert_dispatchable(tier);
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transposed: column dimensions do not agree ({}x{} * ({}x{})^T)",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.rows()),
        "matmul_transposed_into: output is {}x{} for a {}x{} product",
        out.rows(),
        out.cols(),
        a.rows(),
        b.rows()
    );
    counters::note(tier, 4 * (a.rows() * a.cols() + b.rows() * b.cols() + a.rows() * b.rows()) as u64);
    match tier {
        KernelTier::Portable => portable::matmul_transposed_into(a, b, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // Avx2 after runtime detection, `checked()` asserts it, and the
        // `debug_assert_dispatchable` at the top of this function re-checks
        // it in debug builds — so the avx2+fma features this function
        // requires are present.
        KernelTier::Avx2 => unsafe { avx2::matmul_transposed_into(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::matmul_transposed_into(a, b, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    }
}

/// [`matmul_transposed`] on an explicit tier.
///
/// # Panics
/// Panics on shape mismatch or an unsupported tier.
pub fn matmul_transposed_with_tier(tier: KernelTier, a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    matmul_transposed_into_with_tier(tier, a, b, &mut out);
    out
}

/// Cache-blocked matrix product `a · b`.
///
/// The dense inner loop carries no zero test (a branch there inhibits
/// vectorization); rows of `a` that are at least half zero — the one-hot and
/// masked matrices the autograd tape produces — take a bit-identical
/// zero-skip path instead (see `row_is_sparse`).
///
/// # Panics
/// Panics if the inner dimensions do not agree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_impl(dispatch(), a, b)
}

/// [`matmul`] on an explicit tier.
///
/// # Panics
/// Panics on shape mismatch or an unsupported tier.
pub fn matmul_with_tier(tier: KernelTier, a: &Matrix, b: &Matrix) -> Matrix {
    matmul_impl(checked(tier), a, b)
}

fn matmul_impl(tier: KernelTier, a: &Matrix, b: &Matrix) -> Matrix {
    debug_assert_dispatchable(tier);
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions do not agree ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    counters::note(tier, 4 * (a.rows() * a.cols() + b.rows() * b.cols() + a.rows() * b.cols()) as u64);
    match tier {
        KernelTier::Portable => portable::matmul_into(a, b, &mut out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // Avx2 after runtime detection, `checked()` asserts it, and the
        // `debug_assert_dispatchable` at the top of this function re-checks
        // it in debug builds — so the avx2+fma features this function
        // requires are present.
        KernelTier::Avx2 => unsafe { avx2::matmul_into(a, b, &mut out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::matmul_into(a, b, &mut out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    }
    out
}

/// Scaled row update `out += alpha * x` (tier-dispatched).
///
/// The training-side sibling of the scoring kernels: the batched BPR trainer
/// uses it to fold `g · q` into embedding-gradient rows without materialising
/// scaled copies. Prefer [`axpy_rows`] when many updates land in one matrix.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    axpy_impl(dispatch(), out, alpha, x)
}

/// [`axpy`] on an explicit tier (tier-parity tests and benchmarks).
///
/// # Panics
/// Panics on length mismatch or an unsupported tier.
pub fn axpy_with_tier(tier: KernelTier, out: &mut [f32], alpha: f32, x: &[f32]) {
    axpy_impl(checked(tier), out, alpha, x)
}

fn axpy_impl(tier: KernelTier, out: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_dispatchable(tier);
    assert_eq!(out.len(), x.len(), "axpy: length mismatch {} vs {}", out.len(), x.len());
    counters::note(tier, 12 * x.len() as u64);
    match tier {
        KernelTier::Portable => portable::axpy(out, alpha, x),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // Avx2 after runtime detection, `checked()` asserts it, and the
        // `debug_assert_dispatchable` at the top of this function re-checks
        // it in debug builds — so the avx2+fma features this function
        // requires are present.
        KernelTier::Avx2 => unsafe { avx2::axpy(out, alpha, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::axpy(out, alpha, x) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    }
}

/// Batched scatter of rank-1 row updates:
/// `dst.row(dst_rows[p]) += scales[p] * src.row(src_rows[p])` for every `p`,
/// in order.
///
/// This is the gradient-accumulation kernel of the mini-batched BPR trainer:
/// with `src = Q` (the batch's query matrix) one call accumulates
/// `±g_p · q_i` into every candidate-gradient row of the batch, and with
/// `src` the gathered candidate rows the same call shape accumulates
/// `∂L/∂q`. Updates apply sequentially, so repeated `dst_rows` coalesce
/// deterministically in pair order.
///
/// # Panics
/// Panics if the index/scale lengths differ, the column counts differ, or an
/// index is out of bounds.
#[inline]
pub fn axpy_rows(dst: &mut Matrix, dst_rows: &[usize], scales: &[f32], src: &Matrix, src_rows: &[usize]) {
    axpy_rows_impl(dispatch(), dst, dst_rows, scales, src, src_rows)
}

/// [`axpy_rows`] on an explicit tier.
///
/// # Panics
/// Panics on shape mismatch or an unsupported tier.
pub fn axpy_rows_with_tier(
    tier: KernelTier,
    dst: &mut Matrix,
    dst_rows: &[usize],
    scales: &[f32],
    src: &Matrix,
    src_rows: &[usize],
) {
    axpy_rows_impl(checked(tier), dst, dst_rows, scales, src, src_rows)
}

fn axpy_rows_impl(
    tier: KernelTier,
    dst: &mut Matrix,
    dst_rows: &[usize],
    scales: &[f32],
    src: &Matrix,
    src_rows: &[usize],
) {
    debug_assert_dispatchable(tier);
    assert_eq!(dst.cols(), src.cols(), "axpy_rows: dst has {} columns, src has {}", dst.cols(), src.cols());
    assert!(
        dst_rows.len() == scales.len() && dst_rows.len() == src_rows.len(),
        "axpy_rows: {} destination rows, {} scales, {} source rows",
        dst_rows.len(),
        scales.len(),
        src_rows.len()
    );
    if let Some(&bad) = dst_rows.iter().find(|&&r| r >= dst.rows()) {
        panic!("axpy_rows: destination row {bad} out of bounds for {} rows", dst.rows());
    }
    if let Some(&bad) = src_rows.iter().find(|&&r| r >= src.rows()) {
        panic!("axpy_rows: source row {bad} out of bounds for {} rows", src.rows());
    }
    counters::note(tier, 12 * (dst_rows.len() * dst.cols()) as u64);
    match tier {
        KernelTier::Portable => portable::axpy_rows(dst, dst_rows, scales, src, src_rows),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // Avx2 after runtime detection, `checked()` asserts it, and the
        // `debug_assert_dispatchable` at the top of this function re-checks
        // it in debug builds — so the avx2+fma features this function
        // requires are present.
        KernelTier::Avx2 => unsafe { avx2::axpy_rows(dst, dst_rows, scales, src, src_rows) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::axpy_rows(dst, dst_rows, scales, src, src_rows) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    }
}

/// Scores one row of a quantized candidate panel against a quantized query:
/// `w.row(row) · q` reconstructed from the int8 payloads.
///
/// The integer accumulation is exact, so the result is bit-identical on every
/// tier; the only rounding is the final per-row scale fixup, which is the same
/// single f32 expression everywhere.
///
/// # Panics
/// Panics if `row` is out of bounds or the query length differs from
/// `w.cols()`.
#[inline]
pub fn quantized_dot(w: &QuantizedMatrix, row: usize, q: &QuantizedQuery) -> f32 {
    quantized_dot_impl(dispatch(), w, row, q)
}

/// [`quantized_dot`] on an explicit tier (tier-parity tests and benchmarks).
///
/// # Panics
/// Panics on shape mismatch or an unsupported tier.
pub fn quantized_dot_with_tier(tier: KernelTier, w: &QuantizedMatrix, row: usize, q: &QuantizedQuery) -> f32 {
    quantized_dot_impl(checked(tier), w, row, q)
}

fn quantized_dot_impl(tier: KernelTier, w: &QuantizedMatrix, row: usize, q: &QuantizedQuery) -> f32 {
    debug_assert_dispatchable(tier);
    assert!(row < w.rows(), "quantized_dot: row {row} out of bounds for {} rows", w.rows());
    assert_eq!(q.len(), w.cols(), "quantized_dot: query length {} does not match {} columns", q.len(), w.cols());
    counters::note(tier, 2 * w.cols() as u64);
    let p = w.row(row);
    let acc = match tier {
        KernelTier::Portable => portable::quantized_dot_i32(p, q.payload()),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // a SIMD tier after runtime detection, `checked()` asserts it, and
        // the `debug_assert_dispatchable` at the top of this function
        // re-checks it in debug builds — so the features each arm requires
        // are present.
        KernelTier::Avx2 => unsafe { avx2::quantized_dot_i32(p, q.payload()) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::quantized_dot_i32(p, q.payload()) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    };
    quantized_score(acc, w.zero_point(row), w.scale(row), q)
}

/// Quantized one-query/whole-panel scoring: `out[j] ≈ w.row(j) · q` from the
/// int8 payloads, streaming 1 byte per catalogue element instead of 4 — the
/// bandwidth-bound serving GEMV at a quarter of the memory traffic.
///
/// # Panics
/// Panics if `q.len() != w.cols()` or `out.len() != w.rows()`.
#[inline]
pub fn quantized_matvec_into(w: &QuantizedMatrix, q: &QuantizedQuery, out: &mut [f32]) {
    quantized_matvec_into_impl(dispatch(), w, q, out)
}

/// [`quantized_matvec_into`] on an explicit tier.
///
/// # Panics
/// Panics on shape mismatch or an unsupported tier.
pub fn quantized_matvec_into_with_tier(tier: KernelTier, w: &QuantizedMatrix, q: &QuantizedQuery, out: &mut [f32]) {
    quantized_matvec_into_impl(checked(tier), w, q, out)
}

fn quantized_matvec_into_impl(tier: KernelTier, w: &QuantizedMatrix, q: &QuantizedQuery, out: &mut [f32]) {
    debug_assert_dispatchable(tier);
    let (n, d) = w.shape();
    assert_eq!(q.len(), d, "quantized_matvec: query length {} does not match {} columns", q.len(), d);
    assert_eq!(out.len(), n, "quantized_matvec_into: buffer holds {} scores for {} rows", out.len(), n);
    counters::note(tier, (n * d + d + 4 * n) as u64);
    match tier {
        KernelTier::Portable => portable::quantized_matvec_into(w, q, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // a SIMD tier after runtime detection, `checked()` asserts it, and
        // the `debug_assert_dispatchable` at the top of this function
        // re-checks it in debug builds — so the features each arm requires
        // are present.
        KernelTier::Avx2 => unsafe { avx2::quantized_matvec_into(w, q, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::quantized_matvec_into(w, q, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    }
}

/// Quantized batched scoring `out[b][j] ≈ queries[b] · w.row(j)`: the int8
/// candidate panel is streamed from memory exactly once (outer loop over
/// rows) while every quantized query scores the L1-resident row.
///
/// # Panics
/// Panics if any query length differs from `w.cols()` or `out` is not
/// `queries.len() × w.rows()`.
#[inline]
pub fn quantized_matmul_transposed_into(queries: &[QuantizedQuery], w: &QuantizedMatrix, out: &mut Matrix) {
    quantized_matmul_transposed_into_impl(dispatch(), queries, w, out)
}

/// [`quantized_matmul_transposed_into`] on an explicit tier.
///
/// # Panics
/// Panics on shape mismatch or an unsupported tier.
pub fn quantized_matmul_transposed_into_with_tier(
    tier: KernelTier,
    queries: &[QuantizedQuery],
    w: &QuantizedMatrix,
    out: &mut Matrix,
) {
    quantized_matmul_transposed_into_impl(checked(tier), queries, w, out)
}

fn quantized_matmul_transposed_into_impl(
    tier: KernelTier,
    queries: &[QuantizedQuery],
    w: &QuantizedMatrix,
    out: &mut Matrix,
) {
    debug_assert_dispatchable(tier);
    let (n, d) = w.shape();
    for (b, q) in queries.iter().enumerate() {
        assert_eq!(q.len(), d, "quantized_matmul_transposed: query {b} length {} for {} columns", q.len(), d);
    }
    assert_eq!(
        out.shape(),
        (queries.len(), n),
        "quantized_matmul_transposed_into: output is {}x{} for a {}x{} product",
        out.rows(),
        out.cols(),
        queries.len(),
        n
    );
    counters::note(tier, (n * d + queries.len() * d + 4 * queries.len() * n) as u64);
    match tier {
        KernelTier::Portable => portable::quantized_matmul_transposed_into(queries, w, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every caller validated the tier — `dispatch()` only yields
        // a SIMD tier after runtime detection, `checked()` asserts it, and
        // the `debug_assert_dispatchable` at the top of this function
        // re-checks it in debug builds — so the features each arm requires
        // are present.
        KernelTier::Avx2 => unsafe { avx2::quantized_matmul_transposed_into(queries, w, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx512f+avx512bw were detected or asserted.
        KernelTier::Avx512 => unsafe { avx512::quantized_matmul_transposed_into(queries, w, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx512 => unreachable!("SIMD tiers are never selected off x86_64"),
    }
}

/// Validates an explicitly requested tier (the `*_with_tier` entry points)
/// before routing to it; the internal `dispatch()` path skips this — it can
/// only yield a tier that passed runtime detection.
#[inline]
fn checked(tier: KernelTier) -> KernelTier {
    assert!(tier.supported(), "kernels: the {tier} tier is not supported on this CPU");
    tier
}

/// The debug-build backstop behind every `*_impl` SAFETY comment: re-verify
/// at the dispatch boundary that the selected tier's CPU features were
/// actually detected before any arm executes a `#[target_feature]` kernel.
/// Release builds rely on the structural argument alone (`dispatch()` only
/// yields detected tiers, `checked()` asserts explicit ones) and compile
/// this away.
#[inline]
fn debug_assert_dispatchable(tier: KernelTier) {
    debug_assert!(tier.supported(), "kernel dispatch reached the {tier} tier without CPU support");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn arange_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|i| ((i % 13) as f32 - 6.0) * scale).collect())
    }

    /// The tiers runnable on this machine (portable everywhere, AVX2 and
    /// AVX-512 when the CPU has them) — dispatch-level tests run every kernel
    /// on each.
    fn available_tiers() -> Vec<KernelTier> {
        let mut tiers = vec![KernelTier::Portable];
        if KernelTier::Avx2.supported() {
            tiers.push(KernelTier::Avx2);
        }
        if KernelTier::Avx512.supported() {
            tiers.push(KernelTier::Avx512);
        }
        tiers
    }

    #[test]
    fn dot_matches_naive_for_all_tail_lengths() {
        for tier in available_tiers() {
            for len in 0..40 {
                let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
                let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.73).cos()).collect();
                let fast = dot_with_tier(tier, &a, &b);
                let slow = naive_dot(&a, &b);
                assert!((fast - slow).abs() < 1e-5, "{tier} len {len}: {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn dot_is_exact_on_integer_values() {
        let a: Vec<f32> = (0..23).map(|i| (i % 7) as f32).collect();
        let b: Vec<f32> = (0..23).map(|i| (i % 5) as f32 - 2.0).collect();
        for tier in available_tiers() {
            assert_eq!(dot_with_tier(tier, &a, &b), naive_dot(&a, &b), "{tier}");
        }
    }

    #[test]
    fn matvec_transposed_matches_per_row_dot() {
        for tier in available_tiers() {
            for n in [1, 3, 4, 5, 17, 64] {
                for d in [1, 7, 8, 32] {
                    let w = arange_matrix(n, d, 0.25);
                    let q: Vec<f32> = (0..d).map(|k| (k as f32 * 0.11).sin()).collect();
                    let mut fast = vec![0.0f32; n];
                    matvec_transposed_into_with_tier(tier, &w, &q, &mut fast);
                    for (j, &f) in fast.iter().enumerate() {
                        let slow = naive_dot(w.row(j), &q);
                        assert!((f - slow).abs() < 1e-5, "{tier} n={n} d={d} j={j}");
                    }
                }
            }
        }
    }

    #[test]
    fn matmul_transposed_matches_naive_for_odd_shapes() {
        for tier in available_tiers() {
            for (m, n, d) in [(1, 1, 1), (2, 3, 5), (4, 4, 8), (5, 9, 6), (7, 13, 3), (8, 16, 32), (6, 37, 7)] {
                let a = arange_matrix(m, d, 0.5);
                let b = arange_matrix(n, d, 0.125);
                let fast = matmul_transposed_with_tier(tier, &a, &b);
                assert_eq!(fast.shape(), (m, n));
                for i in 0..m {
                    for j in 0..n {
                        let slow = naive_dot(a.row(i), b.row(j));
                        assert_eq!(fast.get(i, j), slow, "{tier} ({m},{n},{d}) at ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn matmul_matches_naive_across_block_boundary() {
        // n spans the column-panel width so both the full-panel and the
        // partial-panel paths run.
        for tier in available_tiers() {
            for (m, p, n) in [(1, 1, 1), (3, 4, 5), (2, 8, MATMUL_J_BLOCK - 1), (2, 3, MATMUL_J_BLOCK + 7)] {
                let a = arange_matrix(m, p, 0.5);
                let b = arange_matrix(p, n, 0.25);
                let fast = matmul_with_tier(tier, &a, &b);
                assert_eq!(fast.shape(), (m, n));
                for i in 0..m {
                    for j in 0..n {
                        let slow: f32 = (0..p).map(|k| a.get(i, k) * b.get(k, j)).sum();
                        assert_eq!(fast.get(i, j), slow, "{tier} ({m},{p},{n}) at ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_rows_of_a_produce_zero_output() {
        let a = Matrix::zeros(3, 4);
        let b = arange_matrix(4, 200, 1.0);
        for tier in available_tiers() {
            assert!(matmul_with_tier(tier, &a, &b).as_slice().iter().all(|&v| v == 0.0), "{tier}");
        }
    }

    #[test]
    fn sparse_and_dense_matmul_rows_agree_bit_for_bit() {
        // `row_is_sparse` is an internal heuristic, so verify the observable
        // contract: a one-hot row (zero-skip path) and a fully-dense row
        // (branch-free path) both match the naive ascending-k accumulation
        // exactly on representable inputs.
        let p = 9;
        let n = MATMUL_J_BLOCK + 3;
        let b = arange_matrix(p, n, 0.25);
        let mut one_hot = vec![0.0f32; p];
        one_hot[4] = 2.0;
        let dense: Vec<f32> = (0..p).map(|k| (k as f32) - 3.0).collect();
        for row in [one_hot, dense] {
            let a = Matrix::from_vec(1, p, row);
            for tier in available_tiers() {
                let fast = matmul_with_tier(tier, &a, &b);
                for j in 0..n {
                    let slow: f32 = (0..p).map(|k| a.get(0, k) * b.get(k, j)).sum();
                    assert_eq!(fast.get(0, j), slow, "{tier} j={j}");
                }
            }
        }
    }

    #[test]
    fn into_variants_overwrite_stale_buffers() {
        let w = arange_matrix(10, 6, 0.5);
        let q: Vec<f32> = (0..6).map(|k| k as f32 * 0.25).collect();
        for tier in available_tiers() {
            let mut buf = vec![f32::NAN; 10];
            matvec_transposed_into_with_tier(tier, &w, &q, &mut buf);
            let naive: Vec<f32> = (0..10).map(|j| naive_dot(w.row(j), &q)).collect();
            assert_eq!(buf, naive, "{tier}");

            let a = arange_matrix(3, 6, 0.5);
            let mut out = Matrix::from_vec(3, 10, vec![f32::NAN; 30]);
            matmul_transposed_into_with_tier(tier, &a, &w, &mut out);
            let fresh = matmul_transposed_with_tier(tier, &a, &w);
            assert_eq!(out.as_slice(), fresh.as_slice(), "{tier}");
        }
    }

    #[test]
    fn axpy_matches_naive_for_all_tail_lengths() {
        for tier in available_tiers() {
            for len in 0..40 {
                let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.41).sin()).collect();
                let mut out: Vec<f32> = (0..len).map(|i| (i as f32 * 0.19).cos()).collect();
                let expected: Vec<f32> = out.iter().zip(&x).map(|(o, v)| o + 0.75 * v).collect();
                axpy_with_tier(tier, &mut out, 0.75, &x);
                for (j, (got, want)) in out.iter().zip(&expected).enumerate() {
                    assert!((got - want).abs() < 1e-5, "{tier} len {len} j={j}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn axpy_is_exact_on_integer_values() {
        let x: Vec<f32> = (0..23).map(|i| (i % 7) as f32 - 3.0).collect();
        for tier in available_tiers() {
            let mut out: Vec<f32> = (0..23).map(|i| (i % 5) as f32).collect();
            axpy_with_tier(tier, &mut out, 2.0, &x);
            for (j, o) in out.iter().enumerate() {
                assert_eq!(*o, (j % 5) as f32 + 2.0 * ((j % 7) as f32 - 3.0), "{tier} j={j}");
            }
        }
    }

    #[test]
    fn axpy_rows_scatters_and_coalesces_duplicates() {
        let src = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]]);
        for tier in available_tiers() {
            let mut dst = Matrix::zeros(4, 3);
            // two updates land on row 2 (coalesce in order), one on row 0
            axpy_rows_with_tier(tier, &mut dst, &[2, 0, 2], &[1.0, 0.5, -2.0], &src, &[0, 1, 1]);
            assert_eq!(dst.row(0), &[5.0, 10.0, 15.0], "{tier}");
            assert_eq!(dst.row(2), &[1.0 - 20.0, 2.0 - 40.0, 3.0 - 60.0], "{tier}");
            assert_eq!(dst.row(1), &[0.0; 3], "{tier}");
            assert_eq!(dst.row(3), &[0.0; 3], "{tier}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn axpy_rows_rejects_out_of_range_destination() {
        let src = Matrix::zeros(1, 2);
        let mut dst = Matrix::zeros(2, 2);
        axpy_rows(&mut dst, &[2], &[1.0], &src, &[0]);
    }

    #[test]
    fn force_tier_overrides_and_clears() {
        // Serialise against other tests by only asserting reversible state.
        force_tier(Some(KernelTier::Portable));
        assert_eq!(active_tier(), KernelTier::Portable);
        force_tier(None);
        // After clearing, the tier re-resolves to something supported.
        assert!(active_tier().supported());
    }

    #[test]
    fn quantized_kernels_are_bit_identical_across_tiers() {
        // Integer accumulation is exact and associative, so every tier must
        // produce the very same bits — for all tail lengths around the 16-
        // and 32-byte SIMD strides.
        for d in [1, 3, 15, 16, 17, 31, 32, 33, 40, 64] {
            let w = QuantizedMatrix::quantize(&arange_matrix(9, d, 0.37));
            let qf: Vec<f32> = (0..d).map(|k| (k as f32 * 0.29).sin()).collect();
            let q = QuantizedQuery::quantize(&qf);
            let mut reference = vec![0.0f32; 9];
            quantized_matvec_into_with_tier(KernelTier::Portable, &w, &q, &mut reference);
            for tier in available_tiers() {
                let mut out = vec![f32::NAN; 9];
                quantized_matvec_into_with_tier(tier, &w, &q, &mut out);
                for (j, (got, want)) in out.iter().zip(&reference).enumerate() {
                    assert_eq!(got.to_bits(), want.to_bits(), "{tier} d={d} j={j}");
                }
                for (j, want) in reference.iter().enumerate() {
                    let got = quantized_dot_with_tier(tier, &w, j, &q);
                    assert_eq!(got.to_bits(), want.to_bits(), "{tier} dot d={d} j={j}");
                }
                let mut batch = Matrix::from_vec(2, 9, vec![f32::NAN; 18]);
                quantized_matmul_transposed_into_with_tier(tier, &[q.clone(), q.clone()], &w, &mut batch);
                for b in 0..2 {
                    for (j, want) in reference.iter().enumerate() {
                        assert_eq!(batch.get(b, j).to_bits(), want.to_bits(), "{tier} gemm d={d} b={b} j={j}");
                    }
                }
            }
        }
    }

    #[test]
    fn quantized_scores_track_exact_scores() {
        let w = arange_matrix(20, 24, 0.31);
        let qw = QuantizedMatrix::quantize(&w);
        let qf: Vec<f32> = (0..24).map(|k| (k as f32 * 0.41).cos()).collect();
        let q = QuantizedQuery::quantize(&qf);
        for j in 0..20 {
            let exact: f32 = w.row(j).iter().zip(&qf).map(|(x, y)| x * y).sum();
            let approx = quantized_dot(&qw, j, &q);
            let bound = crate::quant::score_error_bound(w.row(j), &qf);
            assert!((exact - approx).abs() <= bound, "row {j}: |{exact} - {approx}| > {bound}");
        }
    }

    #[test]
    fn gemm_is_bit_identical_across_row_groupings() {
        // The serving layer's exactness proof in one unit test: scoring a
        // row block of B alone must give the same bits as scoring it inside
        // the full matrix, for every tier.
        let a = arange_matrix(5, 12, 0.3);
        let b = arange_matrix(40, 12, 0.7);
        for tier in available_tiers() {
            let full = matmul_transposed_with_tier(tier, &a, &b);
            for (start, len) in [(0usize, 7usize), (7, 13), (20, 20), (33, 7)] {
                let shard = Matrix::from_vec(len, 12, b.as_slice()[start * 12..(start + len) * 12].to_vec());
                let part = matmul_transposed_with_tier(tier, &a, &shard);
                for i in 0..5 {
                    for j in 0..len {
                        assert_eq!(
                            part.get(i, j).to_bits(),
                            full.get(i, start + j).to_bits(),
                            "{tier} row block {start}+{len} at ({i},{j})"
                        );
                    }
                }
            }
        }
    }
}
