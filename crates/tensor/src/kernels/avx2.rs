//! The explicit x86_64 AVX2+FMA tier: `std::arch` microkernels that do not
//! depend on auto-vectorization or `-C target-cpu=native`.
//!
//! Every function here is compiled with `#[target_feature(enable =
//! "avx2,fma")]`; the dispatcher in the parent module only routes to this
//! tier after `is_x86_feature_detected!` confirmed both features at runtime
//! (or after `force_tier` asserted support), which is what makes the
//! `unsafe` call sites sound.
//!
//! ## Determinism contract
//!
//! The sharded serving layer depends on scores being **bit-identical**
//! regardless of how catalogue rows are grouped into shards, panels or
//! register tiles. Every kernel here therefore accumulates each output
//! element as a single fused-multiply-add chain in ascending-`k` order: a
//! vector lane performing `acc = fma(a, b, acc)` per step is bit-identical
//! to the scalar `f32::mul_add` chain (IEEE FMA rounds once per step), so
//! the 16-wide, 8-wide and scalar-tail paths all produce the same bits for
//! the same row data — an element's value never depends on which path
//! computed it or where it sat in a tile.

use super::{pack_panel_kmajor, quantized_score, row_is_sparse, GEMM_B_PANEL};
use crate::quant::{QuantizedMatrix, QuantizedQuery};
use crate::Matrix;
use core::arch::x86_64::*;

/// Rows of `A` per register tile in the GEMM microkernel: 4 rows × two
/// 8-float accumulators each is 8 of the 16 ymm registers, leaving room for
/// the panel loads and the broadcast.
const GEMM_MR: usize = 4;

/// Dot product: four independent 8-wide FMA accumulator chains (32 floats in
/// flight), one fixed-order horizontal reduction, scalar-FMA tail.
#[target_feature(enable = "avx2,fma")]
// ham-lint: hot-path
pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "avx2::dot: length mismatch (the dispatcher asserts this)");
    let len = a.len().min(b.len());
    let mut acc = [_mm256_setzero_ps(); 4];
    let mut k = 0;
    let mut lane = 0;
    while k + 8 <= len {
        // SAFETY: `k + 8 <= len` bounds both 8-float unaligned loads.
        let (av, bv) = unsafe { (_mm256_loadu_ps(a.as_ptr().add(k)), _mm256_loadu_ps(b.as_ptr().add(k))) };
        acc[lane] = _mm256_fmadd_ps(av, bv, acc[lane]);
        lane = (lane + 1) & 3;
        k += 8;
    }
    let mut sum = hsum8(_mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3])));
    for (x, y) in a[k..len].iter().zip(&b[k..len]) {
        sum = x.mul_add(*y, sum);
    }
    sum
}

/// Horizontal sum of one 8-float vector in a fixed reduction order:
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
#[inline]
#[target_feature(enable = "avx2,fma")]
// ham-lint: hot-path
fn hsum8(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let q = _mm_add_ps(lo, hi);
    let h = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let s = _mm_add_ss(h, _mm_shuffle_ps::<0b01>(h, h));
    _mm_cvtss_f32(s)
}

/// `out[j] = w.row(j) · q`: the one-user/whole-catalogue GEMV. Each row is an
/// independent [`dot`], so a row's score never depends on which shard or
/// position it occupies.
#[target_feature(enable = "avx2,fma")]
// ham-lint: hot-path
pub(super) fn matvec_transposed_into(w: &Matrix, q: &[f32], out: &mut [f32]) {
    let d = w.cols();
    let data = w.as_slice();
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot(&data[j * d..(j + 1) * d], q);
    }
}

/// Register-blocked `a · bᵀ` into `out` (overwrites): the packed-panel
/// layout of the portable tier with an explicit [`GEMM_MR`]-row × 16-column
/// FMA register tile over the panel.
#[target_feature(enable = "avx2,fma")]
pub(super) fn matmul_transposed_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, d) = a.shape();
    let n = b.rows();
    if d == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();

    let mut packed = vec![0.0f32; GEMM_B_PANEL * d];
    let mut j0 = 0;
    while j0 < n {
        let jw = (n - j0).min(GEMM_B_PANEL);
        pack_panel_kmajor(b_data, d, j0, jw, &mut packed);
        let mut i0 = 0;
        while i0 + GEMM_MR <= m {
            gemm_panel_rows::<GEMM_MR>(&a_data[i0 * d..], d, &packed, jw, out_data, n, i0 * n + j0);
            i0 += GEMM_MR;
        }
        while i0 < m {
            gemm_panel_rows::<1>(&a_data[i0 * d..], d, &packed, jw, out_data, n, i0 * n + j0);
            i0 += 1;
        }
        j0 += jw;
    }
}

/// Scores `R` consecutive rows of `A` against one packed k-major panel,
/// writing `R × jw` output elements. Every element is one FMA chain in
/// ascending `k`, whichever of the 16-wide / 8-wide / scalar paths covers
/// its column.
#[inline]
#[target_feature(enable = "avx2,fma")]
// ham-lint: hot-path
fn gemm_panel_rows<const R: usize>(
    a_rows: &[f32], // at least R*d floats, row-major
    d: usize,
    packed: &[f32], // jw*d floats, k-major panel
    jw: usize,
    out: &mut [f32], // full output buffer
    out_stride: usize,
    out_base: usize, // index of this tile's (row 0, column 0) in `out`
) {
    let mut j = 0;
    while j + 16 <= jw {
        let mut acc = [[_mm256_setzero_ps(); 2]; R];
        for k in 0..d {
            // SAFETY: `j + 16 <= jw` and `k < d` bound both loads within the
            // `jw * d`-float packed panel.
            let (p0, p1) = unsafe {
                (_mm256_loadu_ps(packed.as_ptr().add(k * jw + j)), _mm256_loadu_ps(packed.as_ptr().add(k * jw + j + 8)))
            };
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(a_rows[r * d + k]);
                acc_r[0] = _mm256_fmadd_ps(av, p0, acc_r[0]);
                acc_r[1] = _mm256_fmadd_ps(av, p1, acc_r[1]);
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            let dst = out_base + r * out_stride + j;
            // SAFETY: `dst + 16 <= out.len()`: the tile's rows and columns
            // are in range by the caller's i0/j0 loop bounds.
            unsafe {
                _mm256_storeu_ps(out.as_mut_ptr().add(dst), acc_r[0]);
                _mm256_storeu_ps(out.as_mut_ptr().add(dst + 8), acc_r[1]);
            }
        }
        j += 16;
    }
    while j + 8 <= jw {
        let mut acc = [_mm256_setzero_ps(); R];
        for k in 0..d {
            // SAFETY: `j + 8 <= jw` and `k < d` bound the panel load.
            let p0 = unsafe { _mm256_loadu_ps(packed.as_ptr().add(k * jw + j)) };
            for (r, acc_r) in acc.iter_mut().enumerate() {
                *acc_r = _mm256_fmadd_ps(_mm256_set1_ps(a_rows[r * d + k]), p0, *acc_r);
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            // SAFETY: same bounds argument as the 16-wide store above.
            unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(out_base + r * out_stride + j), *acc_r) };
        }
        j += 8;
    }
    while j < jw {
        for r in 0..R {
            let mut acc = 0.0f32;
            for k in 0..d {
                // Scalar mul_add compiles to a hardware FMA here (the `fma`
                // target feature is enabled), so the tail chain is
                // bit-identical to a vector lane's chain.
                acc = a_rows[r * d + k].mul_add(packed[k * jw + j], acc);
            }
            out[out_base + r * out_stride + j] = acc;
        }
        j += 1;
    }
}

/// `out += alpha * x`: one FMA per 8-float lane with a scalar-FMA tail. Each
/// output element is a single `fma(alpha, x, out)` — there is no accumulation
/// chain to reassociate, so the update is position-independent by
/// construction.
#[target_feature(enable = "avx2,fma")]
// ham-lint: hot-path
pub(super) fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    let len = out.len().min(x.len());
    let av = _mm256_set1_ps(alpha);
    let mut k = 0;
    while k + 8 <= len {
        // SAFETY: `k + 8 <= len` bounds the two unaligned loads and the store.
        unsafe {
            let xv = _mm256_loadu_ps(x.as_ptr().add(k));
            let ov = _mm256_loadu_ps(out.as_ptr().add(k));
            _mm256_storeu_ps(out.as_mut_ptr().add(k), _mm256_fmadd_ps(av, xv, ov));
        }
        k += 8;
    }
    for (o, &xv) in out[k..len].iter_mut().zip(&x[k..len]) {
        *o = alpha.mul_add(xv, *o);
    }
}

/// Batched scatter of rank-1 row updates (see the portable tier); every row
/// update is one [`axpy`] over `d` columns.
#[target_feature(enable = "avx2,fma")]
// ham-lint: hot-path
pub(super) fn axpy_rows(dst: &mut Matrix, dst_rows: &[usize], scales: &[f32], src: &Matrix, src_rows: &[usize]) {
    let d = src.cols();
    let src_data = src.as_slice();
    let dst_data = dst.as_mut_slice();
    for ((&dr, &scale), &sr) in dst_rows.iter().zip(scales).zip(src_rows) {
        axpy(&mut dst_data[dr * d..(dr + 1) * d], scale, &src_data[sr * d..(sr + 1) * d]);
    }
}

/// Exact integer core of the quantized kernels: `Σ_k p[k] · s[k]` in `i32`,
/// 16 elements per step — zero-extend the `u8` payload and sign-extend the
/// `i8` query to `i16`, one widening multiply-add (`pmaddwd`) into 8 `i32`
/// lanes. The `i16` products (≤ 255·127) and pair sums cannot overflow, so
/// the accumulation is exact and, integer addition being associative,
/// bit-identical to every other tier.
#[target_feature(enable = "avx2")]
// ham-lint: hot-path
pub(super) fn quantized_dot_i32(p: &[u8], s: &[i8]) -> i32 {
    let len = p.len().min(s.len());
    let mut acc = _mm256_setzero_si256();
    let mut k = 0;
    while k + 16 <= len {
        // SAFETY: `k + 16 <= len` bounds both 16-byte unaligned loads.
        let (pv, sv) = unsafe {
            (_mm_loadu_si128(p.as_ptr().add(k) as *const __m128i), _mm_loadu_si128(s.as_ptr().add(k) as *const __m128i))
        };
        let prod = _mm256_madd_epi16(_mm256_cvtepu8_epi16(pv), _mm256_cvtepi8_epi16(sv));
        acc = _mm256_add_epi32(acc, prod);
        k += 16;
    }
    let mut sum = hsum_epi32(acc);
    for (&pv, &sv) in p[k..len].iter().zip(&s[k..len]) {
        sum += pv as i32 * sv as i32;
    }
    sum
}

/// Horizontal sum of 8 `i32` lanes (exact in any order).
#[inline]
#[target_feature(enable = "avx2")]
// ham-lint: hot-path
fn hsum_epi32(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256::<1>(v);
    let q = _mm_add_epi32(lo, hi);
    let h = _mm_add_epi32(q, _mm_shuffle_epi32::<0b0100_1110>(q));
    let s = _mm_add_epi32(h, _mm_shuffle_epi32::<0b0101_0101>(h));
    _mm_cvtsi128_si32(s)
}

/// Quantized GEMV from the int8 panel: one integer [`quantized_dot_i32`]
/// plus the zero-point fixup per catalogue row.
#[target_feature(enable = "avx2")]
// ham-lint: hot-path
pub(super) fn quantized_matvec_into(w: &QuantizedMatrix, q: &QuantizedQuery, out: &mut [f32]) {
    let d = w.cols();
    let payload = w.payload();
    for (j, o) in out.iter_mut().enumerate() {
        let acc = quantized_dot_i32(&payload[j * d..(j + 1) * d], q.payload());
        *o = quantized_score(acc, w.zero_point(j), w.scale(j), q);
    }
}

/// Rows per vertical group in the quantized GEMM: one ymm of 8 `i32`
/// accumulators scores 8 catalogue rows at once.
const QGEMM_GROUP: usize = 8;

/// Catalogue rows packed per panel block of the quantized GEMM (see the
/// AVX-512 tier — same cache story, 8-row groups instead of 16).
const QGEMM_ROW_BLOCK: usize = 2048;

/// Quantized batched scoring with a **vertical** integer microkernel: the
/// ymm mirror of the AVX-512 tier's kernel (see its doc comment for the
/// layout). The panel is repacked per row block in k-pair-major groups of
/// [`QGEMM_GROUP`] rows widened to `i16`; `vpmaddwd` against a broadcast
/// query `(s[2g], s[2g+1])` dword accumulates both `k` steps for 8 rows
/// vertically, so there are no horizontal reductions, and the score
/// epilogue is applied 8-wide with exactly the arithmetic of
/// [`quantized_score`] — integer accumulation is exact and the one f32
/// rounding is unchanged, keeping every element bit-identical to the
/// scalar and portable paths.
#[target_feature(enable = "avx2")]
pub(super) fn quantized_matmul_transposed_into(queries: &[QuantizedQuery], w: &QuantizedMatrix, out: &mut Matrix) {
    let d = w.cols();
    let n = w.rows();
    if queries.is_empty() || n == 0 {
        return;
    }
    if d == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    let payload = w.payload();
    let out_data = out.as_mut_slice();
    let kp = d.div_ceil(2); // i16 (k, k+1) pairs per row

    // Per-query broadcast operands: each dword is (s[2g] as i16, s[2g+1] as
    // i16), zero-padded past `d` (zero query padding multiplies against the
    // panel's zero padding, so padded lanes contribute exactly 0).
    let mut qpairs = vec![0i32; queries.len() * kp];
    for (qi, q) in queries.iter().enumerate() {
        let s = q.payload();
        for g in 0..kp {
            let lo = s[2 * g] as i16 as u16 as u32;
            let hi = if 2 * g + 1 < d { s[2 * g + 1] as i16 as u16 as u32 } else { 0 };
            qpairs[qi * kp + g] = (lo | (hi << 16)) as i32;
        }
    }

    let mut panel = vec![0i16; QGEMM_ROW_BLOCK.min(n.next_multiple_of(QGEMM_GROUP)) * kp * 2];
    let mut block_start = 0;
    while block_start < n {
        let block_rows = (n - block_start).min(QGEMM_ROW_BLOCK);
        let groups = block_rows.div_ceil(QGEMM_GROUP);
        // Pack: group-major, then k-pair-major, 8 rows' (lo, hi) i16 pairs
        // per slot; rows past `n` and the odd-`d` hi half stay zero.
        panel[..groups * kp * 2 * QGEMM_GROUP].fill(0);
        for g in 0..groups {
            for r in 0..QGEMM_GROUP {
                let j = block_start + g * QGEMM_GROUP + r;
                if j >= n {
                    break;
                }
                let row = &payload[j * d..(j + 1) * d];
                for kg in 0..kp {
                    let slot = (g * kp + kg) * 2 * QGEMM_GROUP + 2 * r;
                    panel[slot] = row[2 * kg] as i16;
                    if 2 * kg + 1 < d {
                        panel[slot + 1] = row[2 * kg + 1] as i16;
                    }
                }
            }
        }
        for (qi, q) in queries.iter().enumerate() {
            let qp = &qpairs[qi * kp..(qi + 1) * kp];
            let qsum_v = _mm256_set1_epi32(q.sum());
            let qscale_v = _mm256_set1_ps(q.scale());
            for g in 0..groups {
                let mut acc = _mm256_setzero_si256();
                let base = g * kp * 2 * QGEMM_GROUP;
                for (kg, &pair) in qp.iter().enumerate() {
                    // SAFETY: the slot index is within the `groups·kp` slots
                    // packed above, each 16 i16 = 32 bytes.
                    let pv = unsafe { _mm256_loadu_si256(panel.as_ptr().add(base + kg * 2 * QGEMM_GROUP) as *const _) };
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pv, _mm256_set1_epi32(pair)));
                }
                let j0 = block_start + g * QGEMM_GROUP;
                if j0 + QGEMM_GROUP <= n {
                    // SAFETY: `j0 + 8 <= n` bounds the zero-point/scale loads
                    // and the 8-float store into this query's row.
                    unsafe {
                        let zp_v = _mm256_loadu_si256(w.zero_points().as_ptr().add(j0) as *const _);
                        let sc_v = _mm256_loadu_ps(w.scales().as_ptr().add(j0));
                        let diff = _mm256_sub_epi32(acc, _mm256_mullo_epi32(zp_v, qsum_v));
                        let score = _mm256_mul_ps(_mm256_cvtepi32_ps(diff), _mm256_mul_ps(sc_v, qscale_v));
                        _mm256_storeu_ps(out_data.as_mut_ptr().add(qi * n + j0), score);
                    }
                } else {
                    let mut sums = [0i32; QGEMM_GROUP];
                    // SAFETY: `sums` is exactly one 32-byte ymm wide.
                    unsafe { _mm256_storeu_si256(sums.as_mut_ptr() as *mut _, acc) };
                    for (r, &sum) in sums.iter().enumerate().take(n - j0) {
                        out_data[qi * n + j0 + r] = quantized_score(sum, w.zero_point(j0 + r), w.scale(j0 + r), q);
                    }
                }
            }
        }
        block_start += block_rows;
    }
}

/// `a · b` into `out` (overwrites): per-row 32-wide FMA register tiles over
/// the output, with the same dense/sparse row split as the portable tier —
/// the dense inner loop has no zero test, sparse (one-hot / masked) rows
/// skip their zero entries, and the two are bit-identical for finite inputs.
#[target_feature(enable = "avx2,fma")]
pub(super) fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, p) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    for i in 0..m {
        let a_row = &a_data[i * p..(i + 1) * p];
        let out_row = &mut out_data[i * n..(i + 1) * n];
        if row_is_sparse(a_row) {
            matmul_row::<true>(a_row, b_data, n, out_row);
        } else {
            matmul_row::<false>(a_row, b_data, n, out_row);
        }
    }
}

/// One output row of [`matmul_into`]: `out_row[j] = Σ_k a_row[k] · b[k][j]`,
/// register-tiled 32 columns at a time. `SKIP_ZEROS` compiles the one-hot
/// fast path (skip `a_row[k] == 0.0`) without putting a branch in the dense
/// loop.
#[inline]
#[target_feature(enable = "avx2,fma")]
// ham-lint: hot-path
fn matmul_row<const SKIP_ZEROS: bool>(a_row: &[f32], b_data: &[f32], n: usize, out_row: &mut [f32]) {
    let mut j = 0;
    while j + 32 <= n {
        let mut acc = [_mm256_setzero_ps(); 4];
        for (k, &av) in a_row.iter().enumerate() {
            if SKIP_ZEROS && av == 0.0 {
                continue;
            }
            let avv = _mm256_set1_ps(av);
            for (l, acc_l) in acc.iter_mut().enumerate() {
                // SAFETY: `j + 32 <= n` and `k < p` bound the load within the
                // `p * n`-float `b`.
                let bv = unsafe { _mm256_loadu_ps(b_data.as_ptr().add(k * n + j + 8 * l)) };
                *acc_l = _mm256_fmadd_ps(avv, bv, *acc_l);
            }
        }
        for (l, acc_l) in acc.iter().enumerate() {
            // SAFETY: `j + 32 <= n == out_row.len()` bounds the four stores.
            unsafe { _mm256_storeu_ps(out_row.as_mut_ptr().add(j + 8 * l), *acc_l) };
        }
        j += 32;
    }
    while j + 8 <= n {
        let mut acc = _mm256_setzero_ps();
        for (k, &av) in a_row.iter().enumerate() {
            if SKIP_ZEROS && av == 0.0 {
                continue;
            }
            // SAFETY: `j + 8 <= n` and `k < p` bound the load.
            let bv = unsafe { _mm256_loadu_ps(b_data.as_ptr().add(k * n + j)) };
            acc = _mm256_fmadd_ps(_mm256_set1_ps(av), bv, acc);
        }
        // SAFETY: `j + 8 <= n == out_row.len()` bounds the store.
        unsafe { _mm256_storeu_ps(out_row.as_mut_ptr().add(j), acc) };
        j += 8;
    }
    while j < n {
        let mut acc = 0.0f32;
        for (k, &av) in a_row.iter().enumerate() {
            if SKIP_ZEROS && av == 0.0 {
                continue;
            }
            acc = av.mul_add(b_data[k * n + j], acc);
        }
        out_row[j] = acc;
        j += 1;
    }
}
