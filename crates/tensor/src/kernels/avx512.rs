//! The explicit x86_64 AVX-512 tier: 16-wide f32 microkernels plus the
//! int8 quantized kernels on 512-bit integer lanes.
//!
//! Every function here is compiled with `#[target_feature(enable =
//! "avx512f,avx512bw")]`; the dispatcher only routes to this tier after
//! `is_x86_feature_detected!` confirmed both features at runtime (or after
//! `force_tier` asserted support), which is what makes the `unsafe` call
//! sites sound. `avx512f` covers the f32 FMA kernels; `avx512bw` covers the
//! 512-bit byte/word conversions and the widening `pmaddwd` of the
//! quantized kernels (the `vl`/`dq` extensions the container also exposes
//! are not needed).
//!
//! ## Determinism contract
//!
//! Same contract as the AVX2 tier, independently satisfied: every f32
//! output element is one fused-multiply-add chain in ascending-`k` order —
//! a 16-wide lane's `fma` chain is bit-identical to the scalar
//! `f32::mul_add` chain — so within this tier an element's bits never
//! depend on which shard, panel or register tile computed it. (The chain
//! *shape* of [`dot`] differs from the AVX2 tier's — four 16-wide chains
//! instead of four 8-wide — so cross-tier agreement is the usual ≤ 1e-5 /
//! bit-exact-on-integers contract, while within-tier row grouping stays
//! bit-exact.) The quantized kernels accumulate in `i32`, which is exact:
//! their scores are bit-identical across **all** tiers.

use super::{pack_panel_kmajor, quantized_score, row_is_sparse, GEMM_B_PANEL};
use crate::quant::{QuantizedMatrix, QuantizedQuery};
use crate::Matrix;
use core::arch::x86_64::*;

/// Rows of `A` per register tile in the GEMM microkernel: 4 rows × two
/// 16-float accumulators each is 8 of the 32 zmm registers, leaving ample
/// room for panel loads and broadcasts.
const GEMM_MR: usize = 4;

/// Dot product: four independent 16-wide FMA accumulator chains (64 floats
/// in flight), one fixed-order horizontal reduction, scalar-FMA tail.
///
/// The accumulators are four named variables rather than a
/// rotating-index array: a dynamic `acc[lane]` index defeats register
/// allocation for 64-byte zmm values and the resulting spills made this
/// tier slower than the portable one at serving dimensions. The remainder
/// ladder below keeps the chain *shape* a pure function of the row length,
/// which is what the position-independence contract needs.
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "avx512::dot: length mismatch (the dispatcher asserts this)");
    let len = a.len().min(b.len());
    let mut acc0 = _mm512_setzero_ps();
    let mut acc1 = _mm512_setzero_ps();
    let mut acc2 = _mm512_setzero_ps();
    let mut acc3 = _mm512_setzero_ps();
    let mut k = 0;
    while k + 64 <= len {
        // SAFETY: the loop condition guarantees every unaligned 16-float
        // load at k..k+64 is in bounds on both slices.
        unsafe {
            acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a.as_ptr().add(k)), _mm512_loadu_ps(b.as_ptr().add(k)), acc0);
            acc1 =
                _mm512_fmadd_ps(_mm512_loadu_ps(a.as_ptr().add(k + 16)), _mm512_loadu_ps(b.as_ptr().add(k + 16)), acc1);
            acc2 =
                _mm512_fmadd_ps(_mm512_loadu_ps(a.as_ptr().add(k + 32)), _mm512_loadu_ps(b.as_ptr().add(k + 32)), acc2);
            acc3 =
                _mm512_fmadd_ps(_mm512_loadu_ps(a.as_ptr().add(k + 48)), _mm512_loadu_ps(b.as_ptr().add(k + 48)), acc3);
        }
        k += 64;
    }
    if k + 32 <= len {
        // SAFETY: the branch condition guarantees both 16-float loads at
        // k..k+32 are in bounds on both slices.
        unsafe {
            acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a.as_ptr().add(k)), _mm512_loadu_ps(b.as_ptr().add(k)), acc0);
            acc1 =
                _mm512_fmadd_ps(_mm512_loadu_ps(a.as_ptr().add(k + 16)), _mm512_loadu_ps(b.as_ptr().add(k + 16)), acc1);
        }
        k += 32;
    }
    if k + 16 <= len {
        // SAFETY: the branch condition guarantees the 16-float load at
        // k..k+16 is in bounds on both slices.
        unsafe {
            acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(a.as_ptr().add(k)), _mm512_loadu_ps(b.as_ptr().add(k)), acc2);
        }
        k += 16;
    }
    let mut sum = hsum16(_mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3)));
    for (x, y) in a[k..len].iter().zip(&b[k..len]) {
        sum = x.mul_add(*y, sum);
    }
    sum
}

/// Horizontal sum of one 16-float vector in a fixed reduction order: the
/// two 256-bit halves are added lane-wise, then reduced with the same
/// explicit shuffle tree as the AVX2 tier's `hsum8`.
#[inline]
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
fn hsum16(v: __m512) -> f32 {
    let lo = _mm512_castps512_ps256(v);
    // Extract the upper 256 bits via the f64 view: `_mm512_extractf64x4_pd`
    // only needs avx512f (the f32 flavour would pull in avx512dq).
    let hi = _mm256_castpd_ps(_mm512_extractf64x4_pd::<1>(_mm512_castps_pd(v)));
    let o = _mm256_add_ps(lo, hi);
    let q = _mm_add_ps(_mm256_castps256_ps128(o), _mm256_extractf128_ps::<1>(o));
    let h = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let s = _mm_add_ss(h, _mm_shuffle_ps::<0b01>(h, h));
    _mm_cvtss_f32(s)
}

/// `out[j] = w.row(j) · q`: the one-user/whole-catalogue GEMV. Each row is
/// an independent [`dot`], so a row's score never depends on which shard or
/// position it occupies.
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
pub(super) fn matvec_transposed_into(w: &Matrix, q: &[f32], out: &mut [f32]) {
    let d = w.cols();
    let data = w.as_slice();
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot(&data[j * d..(j + 1) * d], q);
    }
}

/// Register-blocked `a · bᵀ` into `out` (overwrites): the packed-panel
/// layout of the portable tier with an explicit [`GEMM_MR`]-row × 32-column
/// FMA register tile over the panel.
#[target_feature(enable = "avx512f,avx512bw")]
pub(super) fn matmul_transposed_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, d) = a.shape();
    let n = b.rows();
    if d == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();

    let mut packed = vec![0.0f32; GEMM_B_PANEL * d];
    let mut j0 = 0;
    while j0 < n {
        let jw = (n - j0).min(GEMM_B_PANEL);
        pack_panel_kmajor(b_data, d, j0, jw, &mut packed);
        let mut i0 = 0;
        while i0 + GEMM_MR <= m {
            gemm_panel_rows::<GEMM_MR>(&a_data[i0 * d..], d, &packed, jw, out_data, n, i0 * n + j0);
            i0 += GEMM_MR;
        }
        while i0 < m {
            gemm_panel_rows::<1>(&a_data[i0 * d..], d, &packed, jw, out_data, n, i0 * n + j0);
            i0 += 1;
        }
        j0 += jw;
    }
}

/// Scores `R` consecutive rows of `A` against one packed k-major panel,
/// writing `R × jw` output elements. Every element is one FMA chain in
/// ascending `k`, whichever of the 32-wide / 16-wide / scalar paths covers
/// its column.
#[inline]
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
fn gemm_panel_rows<const R: usize>(
    a_rows: &[f32], // at least R*d floats, row-major
    d: usize,
    packed: &[f32], // jw*d floats, k-major panel
    jw: usize,
    out: &mut [f32], // full output buffer
    out_stride: usize,
    out_base: usize, // index of this tile's (row 0, column 0) in `out`
) {
    let mut j = 0;
    while j + 32 <= jw {
        let mut acc = [[_mm512_setzero_ps(); 2]; R];
        for k in 0..d {
            // SAFETY: `j + 32 <= jw` and `k < d` bound both loads within the
            // `jw * d`-float packed panel.
            let (p0, p1) = unsafe {
                (
                    _mm512_loadu_ps(packed.as_ptr().add(k * jw + j)),
                    _mm512_loadu_ps(packed.as_ptr().add(k * jw + j + 16)),
                )
            };
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(a_rows[r * d + k]);
                acc_r[0] = _mm512_fmadd_ps(av, p0, acc_r[0]);
                acc_r[1] = _mm512_fmadd_ps(av, p1, acc_r[1]);
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            let dst = out_base + r * out_stride + j;
            // SAFETY: `dst + 32 <= out.len()`: the tile's rows and columns
            // are in range by the caller's i0/j0 loop bounds.
            unsafe {
                _mm512_storeu_ps(out.as_mut_ptr().add(dst), acc_r[0]);
                _mm512_storeu_ps(out.as_mut_ptr().add(dst + 16), acc_r[1]);
            }
        }
        j += 32;
    }
    while j + 16 <= jw {
        let mut acc = [_mm512_setzero_ps(); R];
        for k in 0..d {
            // SAFETY: `j + 16 <= jw` and `k < d` bound the panel load.
            let p0 = unsafe { _mm512_loadu_ps(packed.as_ptr().add(k * jw + j)) };
            for (r, acc_r) in acc.iter_mut().enumerate() {
                *acc_r = _mm512_fmadd_ps(_mm512_set1_ps(a_rows[r * d + k]), p0, *acc_r);
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            // SAFETY: same bounds argument as the 32-wide store above.
            unsafe { _mm512_storeu_ps(out.as_mut_ptr().add(out_base + r * out_stride + j), *acc_r) };
        }
        j += 16;
    }
    while j < jw {
        for r in 0..R {
            let mut acc = 0.0f32;
            for k in 0..d {
                // Scalar mul_add compiles to a hardware FMA here, so the
                // tail chain is bit-identical to a vector lane's chain.
                acc = a_rows[r * d + k].mul_add(packed[k * jw + j], acc);
            }
            out[out_base + r * out_stride + j] = acc;
        }
        j += 1;
    }
}

/// `out += alpha * x`: one FMA per 16-float lane with a scalar-FMA tail.
/// Each output element is a single `fma(alpha, x, out)` — no accumulation
/// chain to reassociate, so the update is position-independent by
/// construction.
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
pub(super) fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    let len = out.len().min(x.len());
    let av = _mm512_set1_ps(alpha);
    let mut k = 0;
    while k + 16 <= len {
        // SAFETY: `k + 16 <= len` bounds the two unaligned loads and the store.
        unsafe {
            let xv = _mm512_loadu_ps(x.as_ptr().add(k));
            let ov = _mm512_loadu_ps(out.as_ptr().add(k));
            _mm512_storeu_ps(out.as_mut_ptr().add(k), _mm512_fmadd_ps(av, xv, ov));
        }
        k += 16;
    }
    for (o, &xv) in out[k..len].iter_mut().zip(&x[k..len]) {
        *o = alpha.mul_add(xv, *o);
    }
}

/// Batched scatter of rank-1 row updates (see the portable tier); every row
/// update is one [`axpy`] over `d` columns.
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
pub(super) fn axpy_rows(dst: &mut Matrix, dst_rows: &[usize], scales: &[f32], src: &Matrix, src_rows: &[usize]) {
    let d = src.cols();
    let src_data = src.as_slice();
    let dst_data = dst.as_mut_slice();
    for ((&dr, &scale), &sr) in dst_rows.iter().zip(scales).zip(src_rows) {
        axpy(&mut dst_data[dr * d..(dr + 1) * d], scale, &src_data[sr * d..(sr + 1) * d]);
    }
}

/// `a · b` into `out` (overwrites): per-row 64-wide FMA register tiles over
/// the output, with the same dense/sparse row split as the other tiers —
/// the dense inner loop has no zero test, sparse (one-hot / masked) rows
/// skip their zero entries, and the two are bit-identical for finite inputs.
#[target_feature(enable = "avx512f,avx512bw")]
pub(super) fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, p) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    for i in 0..m {
        let a_row = &a_data[i * p..(i + 1) * p];
        let out_row = &mut out_data[i * n..(i + 1) * n];
        if row_is_sparse(a_row) {
            matmul_row::<true>(a_row, b_data, n, out_row);
        } else {
            matmul_row::<false>(a_row, b_data, n, out_row);
        }
    }
}

/// One output row of [`matmul_into`]: `out_row[j] = Σ_k a_row[k] · b[k][j]`,
/// register-tiled 64 columns at a time. `SKIP_ZEROS` compiles the one-hot
/// fast path (skip `a_row[k] == 0.0`) without putting a branch in the dense
/// loop.
#[inline]
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
fn matmul_row<const SKIP_ZEROS: bool>(a_row: &[f32], b_data: &[f32], n: usize, out_row: &mut [f32]) {
    let mut j = 0;
    while j + 64 <= n {
        let mut acc = [_mm512_setzero_ps(); 4];
        for (k, &av) in a_row.iter().enumerate() {
            if SKIP_ZEROS && av == 0.0 {
                continue;
            }
            let avv = _mm512_set1_ps(av);
            for (l, acc_l) in acc.iter_mut().enumerate() {
                // SAFETY: `j + 64 <= n` and `k < p` bound the load within
                // the `p * n`-float `b`.
                let bv = unsafe { _mm512_loadu_ps(b_data.as_ptr().add(k * n + j + 16 * l)) };
                *acc_l = _mm512_fmadd_ps(avv, bv, *acc_l);
            }
        }
        for (l, acc_l) in acc.iter().enumerate() {
            // SAFETY: `j + 64 <= n == out_row.len()` bounds the four stores.
            unsafe { _mm512_storeu_ps(out_row.as_mut_ptr().add(j + 16 * l), *acc_l) };
        }
        j += 64;
    }
    while j + 16 <= n {
        let mut acc = _mm512_setzero_ps();
        for (k, &av) in a_row.iter().enumerate() {
            if SKIP_ZEROS && av == 0.0 {
                continue;
            }
            // SAFETY: `j + 16 <= n` and `k < p` bound the load.
            let bv = unsafe { _mm512_loadu_ps(b_data.as_ptr().add(k * n + j)) };
            acc = _mm512_fmadd_ps(_mm512_set1_ps(av), bv, acc);
        }
        // SAFETY: `j + 16 <= n == out_row.len()` bounds the store.
        unsafe { _mm512_storeu_ps(out_row.as_mut_ptr().add(j), acc) };
        j += 16;
    }
    while j < n {
        let mut acc = 0.0f32;
        for (k, &av) in a_row.iter().enumerate() {
            if SKIP_ZEROS && av == 0.0 {
                continue;
            }
            acc = av.mul_add(b_data[k * n + j], acc);
        }
        out_row[j] = acc;
        j += 1;
    }
}

/// Exact integer core of the quantized kernels: `Σ_k p[k] · s[k]` in `i32`,
/// 32 elements per step — zero-/sign-extend 32 bytes to `i16` in one zmm,
/// one widening multiply-add (`vpmaddwd`) into 16 `i32` lanes. Exact for the
/// same reasons as the AVX2 version (no `i16` product can overflow), and
/// bit-identical to every other tier because integer addition is
/// associative.
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
pub(super) fn quantized_dot_i32(p: &[u8], s: &[i8]) -> i32 {
    let len = p.len().min(s.len());
    let mut acc = _mm512_setzero_si512();
    let mut k = 0;
    while k + 32 <= len {
        // SAFETY: `k + 32 <= len` bounds both 32-byte unaligned loads.
        let (pv, sv) = unsafe {
            (
                _mm256_loadu_si256(p.as_ptr().add(k) as *const __m256i),
                _mm256_loadu_si256(s.as_ptr().add(k) as *const __m256i),
            )
        };
        let prod = _mm512_madd_epi16(_mm512_cvtepu8_epi16(pv), _mm512_cvtepi8_epi16(sv));
        acc = _mm512_add_epi32(acc, prod);
        k += 32;
    }
    // Exact in any order: `_mm512_reduce_add_epi32` is integer addition.
    let mut sum = _mm512_reduce_add_epi32(acc);
    for (&pv, &sv) in p[k..len].iter().zip(&s[k..len]) {
        sum += pv as i32 * sv as i32;
    }
    sum
}

/// Quantized GEMV from the int8 panel: one integer [`quantized_dot_i32`]
/// plus the zero-point fixup per catalogue row.
#[target_feature(enable = "avx512f,avx512bw")]
// ham-lint: hot-path
pub(super) fn quantized_matvec_into(w: &QuantizedMatrix, q: &QuantizedQuery, out: &mut [f32]) {
    let d = w.cols();
    let payload = w.payload();
    for (j, o) in out.iter_mut().enumerate() {
        let acc = quantized_dot_i32(&payload[j * d..(j + 1) * d], q.payload());
        *o = quantized_score(acc, w.zero_point(j), w.scale(j), q);
    }
}

/// Rows per vertical group in the quantized GEMM: one zmm of 16 `i32`
/// accumulators scores 16 catalogue rows at once.
const QGEMM_GROUP: usize = 16;

/// Catalogue rows packed per panel block of the quantized GEMM: the block's
/// `i16` panel (`2·d` bytes per row) stays L2-resident while all queries
/// stream over it.
const QGEMM_ROW_BLOCK: usize = 2048;

/// Quantized batched scoring with a **vertical** integer microkernel: no
/// horizontal reductions at all (the reduce per (row, query) pair is what
/// capped the horizontal formulation at small `d`).
///
/// The panel is repacked per row block in k-pair-major groups of
/// [`QGEMM_GROUP`] rows, widened to `i16` once during packing: one zmm slot
/// holds `(p[2g], p[2g+1])` for 16 consecutive rows. Each query's `i8`
/// payload is padded into `(s[2g], s[2g+1])` dword pairs once per call;
/// `vpmaddwd` against the broadcast pair then accumulates both `k` steps
/// for 16 rows vertically, and the accumulator zmm *is* the 16 row sums.
/// The score epilogue `(scale_r · scale_q) · (acc − zp · Σs)` is applied
/// 16-wide with the exact arithmetic of [`quantized_score`] (same
/// operations, same order), so every element is bit-identical to the
/// scalar and portable paths — integer accumulation is exact, and the one
/// f32 rounding happens in the same place.
#[target_feature(enable = "avx512f,avx512bw")]
pub(super) fn quantized_matmul_transposed_into(queries: &[QuantizedQuery], w: &QuantizedMatrix, out: &mut Matrix) {
    let d = w.cols();
    let n = w.rows();
    if queries.is_empty() || n == 0 {
        return;
    }
    if d == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    let payload = w.payload();
    let out_data = out.as_mut_slice();
    let kp = d.div_ceil(2); // i16 (k, k+1) pairs per row

    // Per-query broadcast operands: each dword is (s[2g] as i16, s[2g+1] as
    // i16), zero-padded past `d`. Zero query padding multiplies against the
    // panel's zero padding, so padded lanes contribute exactly 0.
    let mut qpairs = vec![0i32; queries.len() * kp];
    for (qi, q) in queries.iter().enumerate() {
        let s = q.payload();
        for g in 0..kp {
            let lo = s[2 * g] as i16 as u16 as u32;
            let hi = if 2 * g + 1 < d { s[2 * g + 1] as i16 as u16 as u32 } else { 0 };
            qpairs[qi * kp + g] = (lo | (hi << 16)) as i32;
        }
    }

    let mut panel = vec![0i16; QGEMM_ROW_BLOCK.min(n.next_multiple_of(QGEMM_GROUP)) * kp * 2];
    let mut block_start = 0;
    while block_start < n {
        let block_rows = (n - block_start).min(QGEMM_ROW_BLOCK);
        let groups = block_rows.div_ceil(QGEMM_GROUP);
        // Pack: group-major, then k-pair-major, 16 rows' (lo, hi) i16 pairs
        // per slot; rows past `n` and the odd-`d` hi half stay zero.
        panel[..groups * kp * 2 * QGEMM_GROUP].fill(0);
        for g in 0..groups {
            for r in 0..QGEMM_GROUP {
                let j = block_start + g * QGEMM_GROUP + r;
                if j >= n {
                    break;
                }
                let row = &payload[j * d..(j + 1) * d];
                for kg in 0..kp {
                    let slot = (g * kp + kg) * 2 * QGEMM_GROUP + 2 * r;
                    panel[slot] = row[2 * kg] as i16;
                    if 2 * kg + 1 < d {
                        panel[slot + 1] = row[2 * kg + 1] as i16;
                    }
                }
            }
        }
        for (qi, q) in queries.iter().enumerate() {
            let qp = &qpairs[qi * kp..(qi + 1) * kp];
            let qsum_v = _mm512_set1_epi32(q.sum());
            let qscale_v = _mm512_set1_ps(q.scale());
            for g in 0..groups {
                let mut acc = _mm512_setzero_si512();
                let base = g * kp * 2 * QGEMM_GROUP;
                for (kg, &pair) in qp.iter().enumerate() {
                    // SAFETY: the slot index is within the `groups·kp` slots
                    // packed above, each 32 i16 = 64 bytes.
                    let pv = unsafe { _mm512_loadu_si512(panel.as_ptr().add(base + kg * 2 * QGEMM_GROUP) as *const _) };
                    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(pv, _mm512_set1_epi32(pair)));
                }
                let j0 = block_start + g * QGEMM_GROUP;
                if j0 + QGEMM_GROUP <= n {
                    // SAFETY: `j0 + 16 <= n` bounds the zero-point/scale
                    // loads and the 16-float store into this query's row.
                    unsafe {
                        let zp_v = _mm512_loadu_si512(w.zero_points().as_ptr().add(j0) as *const _);
                        let sc_v = _mm512_loadu_ps(w.scales().as_ptr().add(j0));
                        let diff = _mm512_sub_epi32(acc, _mm512_mullo_epi32(zp_v, qsum_v));
                        let score = _mm512_mul_ps(_mm512_cvtepi32_ps(diff), _mm512_mul_ps(sc_v, qscale_v));
                        _mm512_storeu_ps(out_data.as_mut_ptr().add(qi * n + j0), score);
                    }
                } else {
                    let mut sums = [0i32; QGEMM_GROUP];
                    // SAFETY: `sums` is exactly one 64-byte zmm wide.
                    unsafe { _mm512_storeu_si512(sums.as_mut_ptr() as *mut _, acc) };
                    for (r, &sum) in sums.iter().enumerate().take(n - j0) {
                        out_data[qi * n + j0 + r] = quantized_score(sum, w.zero_point(j0 + r), w.scale(j0 + r), q);
                    }
                }
            }
        }
        block_start += block_rows;
    }
}
