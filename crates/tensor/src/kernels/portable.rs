//! The portable reference tier: safe multi-accumulator loops that
//! auto-vectorize on any target the compiler knows how to vectorize for.
//!
//! These are the kernels every other tier is checked against (the tier-parity
//! suite in `tests/kernel_tiers.rs` pins agreement ≤ 1e-5, bit-exact on
//! integer-valued inputs). They contain no `unsafe` and no architecture
//! assumptions; with `-C target-cpu=native` the compiler turns the
//! multi-accumulator shapes into vector FMAs, without it they still beat the
//! naive single-accumulator loops on scalar/SSE2 codegen.
//!
//! Accumulation-order contract (shared with the AVX2 tier): every output
//! element is one accumulation chain in ascending-`k` order, so results do
//! not depend on how rows are grouped into panels or shards.

use super::{pack_panel_kmajor, quantized_score, row_is_sparse, DOT_LANES, GEMM_B_PANEL, MATMUL_J_BLOCK};
use crate::quant::{QuantizedMatrix, QuantizedQuery};
use crate::Matrix;

/// Dot product with [`DOT_LANES`] independent partial sums.
///
/// A single-accumulator reduction is a serial dependency chain the compiler
/// must not reassociate, so it can neither vectorize nor overlap the FMAs.
/// Eight explicit partial sums make the reassociation part of the program:
/// the loop body is lane-wise independent and compiles to vector FMAs, with
/// one horizontal reduction at the end.
// ham-lint: hot-path
pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; DOT_LANES];
    let mut a_chunks = a.chunks_exact(DOT_LANES);
    let mut b_chunks = b.chunks_exact(DOT_LANES);
    for (a8, b8) in a_chunks.by_ref().zip(b_chunks.by_ref()) {
        for l in 0..DOT_LANES {
            acc[l] += a8[l] * b8[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        tail += x * y;
    }
    let half: f32 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let other: f32 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    half + other + tail
}

/// `out[j] = w.row(j) · q` — one fused pass over `w` with the vectorizing
/// multi-accumulator [`dot`] per row.
// ham-lint: hot-path
pub(super) fn matvec_transposed_into(w: &Matrix, q: &[f32], out: &mut [f32]) {
    let d = w.cols();
    let data = w.as_slice();
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot(&data[j * d..(j + 1) * d], q);
    }
}

/// Blocked `a · bᵀ` into `out` (overwrites): panels of `b` rows are re-packed
/// k-major so the innermost loop is a contiguous axpy over the panel width,
/// and the packed panel stays L1-resident while every row of `a` is scored
/// against it. `b` is streamed from memory exactly once regardless of the
/// batch size; the packing cost is amortised over all rows of `a`.
pub(super) fn matmul_transposed_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, d) = a.shape();
    let n = b.rows();
    let out_data = out.as_mut_slice();
    out_data.fill(0.0);
    if d == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();

    let mut packed = vec![0.0f32; GEMM_B_PANEL * d];
    let mut j0 = 0;
    while j0 < n {
        let jw = (n - j0).min(GEMM_B_PANEL);
        pack_panel_kmajor(b_data, d, j0, jw, &mut packed);
        for i in 0..m {
            let a_row = &a_data[i * d..(i + 1) * d];
            let out_seg = &mut out_data[i * n + j0..i * n + j0 + jw];
            for (k, &av) in a_row.iter().enumerate() {
                let panel_row = &packed[k * jw..(k + 1) * jw];
                for (o, &bv) in out_seg.iter_mut().zip(panel_row) {
                    *o += av * bv;
                }
            }
        }
        j0 += jw;
    }
}

/// Cache-blocked `a · b` into `out` (which must be all-zero on entry).
///
/// Loop order is column-panel (`j` block) outermost, then output row, then
/// the inner dimension: the `B` panel of [`MATMUL_J_BLOCK`] columns is reused
/// across every row of `A`, and each output element accumulates in ascending
/// `k` order (bit-identical to the classic i-k-j loop).
///
/// Rows of `a` are classified once as dense or sparse ([`row_is_sparse`]):
/// the dense inner loop carries **no** zero test (a branch there inhibits
/// vectorization), while sparse rows — the one-hot and masked matrices the
/// autograd tape produces — skip their zero entries. The two paths are
/// bit-identical for finite inputs because skipping `k` is exactly
/// `out += 0.0 * b[k][j]`: the product is a signed zero and the accumulator
/// can never be `-0.0` (it starts at `+0.0` and `+0.0 + ±0.0 = +0.0` under
/// round-to-nearest), so adding it changes nothing.
pub(super) fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, p) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    let sparse: Vec<bool> = (0..m).map(|i| row_is_sparse(&a_data[i * p..(i + 1) * p])).collect();

    let mut j0 = 0;
    while j0 < n {
        let jw = (n - j0).min(MATMUL_J_BLOCK);
        for i in 0..m {
            let a_row = &a_data[i * p..(i + 1) * p];
            let out_seg = &mut out_data[i * n + j0..i * n + j0 + jw];
            if sparse[i] {
                for (k, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    axpy(out_seg, av, &b_data[k * n + j0..k * n + j0 + jw]);
                }
            } else {
                for (k, &av) in a_row.iter().enumerate() {
                    axpy(out_seg, av, &b_data[k * n + j0..k * n + j0 + jw]);
                }
            }
        }
        j0 += jw;
    }
}

/// `out += alpha * b` — the branch-free inner row update of [`matmul_into`]
/// and, as a public kernel through the dispatcher, the rank-1 row update the
/// batched BPR trainer accumulates its gradients with.
#[inline]
// ham-lint: hot-path
pub(super) fn axpy(out: &mut [f32], alpha: f32, b: &[f32]) {
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += alpha * bv;
    }
}

/// Batched scatter of rank-1 row updates:
/// `dst.row(dst_rows[p]) += scales[p] * src.row(src_rows[p])` for every `p`.
/// The shapes were validated by the dispatcher.
// ham-lint: hot-path
pub(super) fn axpy_rows(dst: &mut Matrix, dst_rows: &[usize], scales: &[f32], src: &Matrix, src_rows: &[usize]) {
    let d = src.cols();
    let src_data = src.as_slice();
    let dst_data = dst.as_mut_slice();
    for ((&dr, &scale), &sr) in dst_rows.iter().zip(scales).zip(src_rows) {
        axpy(&mut dst_data[dr * d..(dr + 1) * d], scale, &src_data[sr * d..(sr + 1) * d]);
    }
}

/// Exact integer core of the quantized kernels: `Σ_k p[k] · s[k]` in `i32`.
///
/// Four independent partial sums so the widening multiply-accumulate
/// auto-vectorizes; integer addition is associative, so every accumulation
/// shape yields the same value — quantized scores are bit-identical across
/// tiers by construction, not by a rounding argument.
// ham-lint: hot-path
pub(super) fn quantized_dot_i32(p: &[u8], s: &[i8]) -> i32 {
    let mut acc = [0i32; 4];
    let mut p_chunks = p.chunks_exact(4);
    let mut s_chunks = s.chunks_exact(4);
    for (p4, s4) in p_chunks.by_ref().zip(s_chunks.by_ref()) {
        for l in 0..4 {
            acc[l] += p4[l] as i32 * s4[l] as i32;
        }
    }
    let mut tail = 0i32;
    for (&pv, &sv) in p_chunks.remainder().iter().zip(s_chunks.remainder()) {
        tail += pv as i32 * sv as i32;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Quantized GEMV: `out[j] ≈ w.row(j) · q` from the int8 panel — one
/// integer dot plus the zero-point fixup per row, streaming 1 byte/element
/// instead of 4.
// ham-lint: hot-path
pub(super) fn quantized_matvec_into(w: &QuantizedMatrix, q: &QuantizedQuery, out: &mut [f32]) {
    let d = w.cols();
    let payload = w.payload();
    for (j, o) in out.iter_mut().enumerate() {
        let acc = quantized_dot_i32(&payload[j * d..(j + 1) * d], q.payload());
        *o = quantized_score(acc, w.zero_point(j), w.scale(j), q);
    }
}

/// Quantized batched scoring `out[b][j] ≈ queries[b] · w.row(j)`: the
/// candidate panel is streamed exactly once (outer loop over rows), each row
/// scored against every quantized query while it is L1-resident.
pub(super) fn quantized_matmul_transposed_into(queries: &[QuantizedQuery], w: &QuantizedMatrix, out: &mut Matrix) {
    let d = w.cols();
    let n = w.rows();
    let payload = w.payload();
    let out_data = out.as_mut_slice();
    for j in 0..n {
        let row = &payload[j * d..(j + 1) * d];
        let (zp, scale) = (w.zero_point(j), w.scale(j));
        for (b, q) in queries.iter().enumerate() {
            out_data[b * n + j] = quantized_score(quantized_dot_i32(row, q.payload()), zp, scale, q);
        }
    }
}
