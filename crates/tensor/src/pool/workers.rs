//! A reusable work-stealing thread pool with persistent workers.
//!
//! The evaluation protocol and the serving layer both fan work out over user
//! chunks or catalogue shards many thousands of times per run (grid searches
//! evaluate every configuration; a serving queue drains continuously). Paying
//! a `std::thread::spawn` per fan-out is measurable overhead and, worse,
//! unbounded thread churn under load. This pool spawns its workers once and
//! keeps them parked until work arrives.
//!
//! ## Design
//!
//! * One global injector queue for tasks submitted from outside the pool,
//!   plus one local deque per worker for tasks spawned *from* a worker
//!   (nested parallelism). Workers pop their own deque LIFO (cache-warm),
//!   then the injector FIFO, then steal FIFO from siblings — classic
//!   work-stealing, implemented with `std` primitives only because the build
//!   environment has no crates.io access.
//! * [`ThreadPool::scope`] lets tasks borrow from the caller's stack, like
//!   `std::thread::scope`: the scope joins every spawned task before it
//!   returns (even on panic, via a wait-guard), which is what makes the
//!   lifetime erasure inside sound.
//! * A thread waiting on a scope **helps**: it drains pool tasks while it
//!   waits instead of blocking, so nested scopes cannot deadlock even on a
//!   single-worker pool.
//! * Worker panics are caught per task and re-raised on the thread that owns
//!   the scope, mirroring `std::thread::scope` semantics.
//!
//! ## Example
//!
//! ```
//! use ham_tensor::pool::ThreadPool;
//!
//! let pool = ThreadPool::new(2);
//! let inputs = [1u64, 2, 3, 4];
//! let mut squares = [0u64; 4];
//! pool.scope(|scope| {
//!     for (out, &x) in squares.iter_mut().zip(&inputs) {
//!         scope.spawn(move || *out = x * x);
//!     }
//! });
//! assert_eq!(squares, [1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A unit of work queued on the pool. Tasks are `'static`; borrowing tasks go
/// through [`ThreadPool::scope`], which erases the lifetime only after
/// guaranteeing the join.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Index of the worker the current thread belongs to (`usize::MAX` when
    /// the thread is not a pool worker). Used to route nested spawns to the
    /// spawning worker's own deque and to let waiting threads help.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    /// `queues[0]` is the global injector; `queues[1 + w]` is worker `w`'s
    /// local deque.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Sleep lock paired with [`Self::work_available`]. Pushers notify under
    /// this lock so a worker can never miss a wake-up between its re-check
    /// and its wait.
    sleep: Mutex<()>,
    work_available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    /// Pops one task: own deque LIFO first (when called from worker
    /// `worker`), then the injector, then steals FIFO from the other workers.
    /// Non-worker threads (helping while they wait on a scope) pass
    /// `worker == usize::MAX` and have no own deque to pop or skip.
    fn pop_task(&self, worker: usize) -> Option<Task> {
        let own_queue = if worker == usize::MAX { usize::MAX } else { 1 + worker };
        if own_queue != usize::MAX {
            if let Some(task) = self.queues[own_queue].lock().expect("pool queue poisoned").pop_back() {
                return Some(task);
            }
        }
        if let Some(task) = self.queues[0].lock().expect("pool queue poisoned").pop_front() {
            return Some(task);
        }
        for (i, queue) in self.queues.iter().enumerate().skip(1) {
            if i == own_queue {
                continue;
            }
            if let Some(task) = queue.lock().expect("pool queue poisoned").pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// Pushes a task to the calling worker's deque (nested spawn) or the
    /// injector (external submit), then wakes one sleeper.
    fn push_task(&self, task: Task) {
        let worker = WORKER_INDEX.with(|w| w.get());
        let queue = if worker != usize::MAX { 1 + worker } else { 0 };
        self.queues[queue].lock().expect("pool queue poisoned").push_back(task);
        let _guard = self.sleep.lock().expect("pool sleep lock poisoned");
        self.work_available.notify_one();
    }
}

/// A fixed-size pool of persistent worker threads with work stealing.
///
/// See the [module docs](self) for the design; most callers want either the
/// process-wide [`global_pool`] or a dedicated pool sized for a benchmark.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool of `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..=threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ham-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a `'static` task for execution (fire-and-forget).
    ///
    /// Use [`Self::scope`] when the task needs to borrow from the caller's
    /// stack or the caller needs to wait for completion.
    ///
    /// A panicking detached task is caught by the executing thread (the
    /// default panic hook still reports it on stderr), so it can neither
    /// kill a pool worker nor poison the thread that ran it while helping —
    /// the pool keeps its full worker count for the life of the process.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        // Unlike scope tasks (which re-raise at the scope), a detached task
        // has no one to re-raise to: swallow the payload after the hook ran.
        self.shared.push_task(Box::new(move || drop(catch_unwind(AssertUnwindSafe(task)))));
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be spawned, and
    /// joins every spawned task before returning — the pool-backed equivalent
    /// of `std::thread::scope`, without the per-call thread spawns.
    ///
    /// If any task panics, the panic payload is re-raised here after all
    /// other tasks of the scope have finished.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState { pending: Mutex::new(0), done: Condvar::new(), panic: Mutex::new(None) });
        let scope = Scope { pool: self, state: Arc::clone(&state), _env: std::marker::PhantomData };
        // The wait-guard joins outstanding tasks even if `f` unwinds, so no
        // task can outlive the borrows it captured.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until_done(&state);
        if let Some(payload) = state.panic.lock().expect("scope panic slot poisoned").take() {
            resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Waits for a scope's tasks to finish, executing queued pool tasks while
    /// waiting (so a scope opened from inside a worker cannot deadlock the
    /// pool, and an external caller contributes a core instead of blocking).
    fn help_until_done(&self, state: &ScopeState) {
        let worker = WORKER_INDEX.with(|w| w.get());
        loop {
            if *state.pending.lock().expect("scope counter poisoned") == 0 {
                return;
            }
            if let Some(task) = self.shared.pop_task(worker) {
                task();
                continue;
            }
            let pending = state.pending.lock().expect("scope counter poisoned");
            if *pending == 0 {
                return;
            }
            // The remaining tasks are running on other workers; sleep with a
            // timeout as a lost-wakeup backstop.
            let _unused = state.done.wait_timeout(pending, Duration::from_millis(1)).expect("scope counter poisoned");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // ordering: SeqCst pairs with the workers' loads — the flag must be
        // globally visible before the notify below wakes them, or a worker
        // could re-sleep past the only wakeup it will ever get.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep.lock().expect("pool sleep lock poisoned");
            self.shared.work_available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _unused = worker.join();
        }
    }
}

/// Join state of one [`ThreadPool::scope`] call.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn task_finished(&self) {
        let mut pending = self.pending.lock().expect("scope counter poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]; tasks spawned
/// on it may borrow anything that outlives the scope (`'env`).
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the environment; the scope joins it
    /// before returning. The first panicking task's payload is re-raised by
    /// [`ThreadPool::scope`].
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        *self.state.pending.lock().expect("scope counter poisoned") += 1;
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = state.panic.lock().expect("scope panic slot poisoned");
                slot.get_or_insert(payload);
            }
            state.task_finished();
        });
        // SAFETY: the scope's wait-guard (`help_until_done`, run even when the
        // scope body unwinds) joins this task before `'env` can end, so the
        // borrows inside remain valid for the task's whole execution. This is
        // the same argument `std::thread::scope` makes; only the executor
        // differs (persistent pool workers instead of fresh threads).
        let erased: Task = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(wrapped) };
        self.pool.shared.push_task(erased);
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    WORKER_INDEX.with(|w| w.set(index));
    loop {
        if let Some(task) = shared.pop_task(index) {
            task();
            continue;
        }
        // ordering: SeqCst pairs with the store in `Drop` — a totally
        // ordered flag keeps the shutdown handshake obviously correct; this
        // load is once per idle transition, never in the task loop.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = shared.sleep.lock().expect("pool sleep lock poisoned");
        // Re-check under the sleep lock: pushers notify under the same lock,
        // so a task enqueued after the check cannot be missed.
        // ordering: SeqCst, same pairing as the pre-lock check above.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let has_work = shared.queues.iter().any(|q| !q.lock().expect("pool queue poisoned").is_empty());
        if !has_work {
            let _unused = shared.work_available.wait_timeout(guard, Duration::from_millis(50));
        }
    }
}

/// The process-wide shared pool, sized to the machine's available
/// parallelism. Created on first use; the threaded evaluation protocol and
/// the serving layer both run on it, so repeated evaluations and concurrent
/// requests share one set of persistent workers instead of spawning their
/// own.
pub fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        ThreadPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_joins_all_tasks_and_preserves_slot_order() {
        let pool = ThreadPool::new(3);
        let mut slots = vec![0usize; 64];
        pool.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || *slot = i * i);
            }
        });
        for (i, &v) in slots.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn spawn_runs_detached_tasks() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Joining through a scope flushes the queues: scope tasks are pushed
        // behind the detached ones and the scope waits for its own.
        pool.scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {});
            }
        });
        // The detached tasks may still be mid-flight on another worker for an
        // instant; poll briefly rather than assuming queue order.
        for _ in 0..1000 {
            if counter.load(Ordering::SeqCst) == 16 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn nested_scopes_do_not_deadlock_on_a_single_worker() {
        let pool = ThreadPool::new(1);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    /// A panicking detached task must not kill its worker: the pool keeps
    /// its full worker count and keeps executing later tasks.
    #[test]
    fn detached_panics_do_not_kill_workers() {
        let pool = ThreadPool::new(1);
        for _ in 0..3 {
            pool.spawn(|| panic!("detached boom"));
        }
        // If the single worker died, the scope would only complete via the
        // caller helping — also fine — but the worker must still be alive to
        // pick up queued work; completing a large fan-out promptly shows it.
        let total = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..32 {
                let total = &total;
                scope.spawn(move || {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 32);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn scope_propagates_worker_panics() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("boom in worker"));
            });
        }));
        let payload = result.expect_err("scope must re-raise the worker panic");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "boom in worker");
        // The pool stays usable after a panic.
        let mut v = 0;
        pool.scope(|scope| scope.spawn(|| v = 7));
        assert_eq!(v, 7);
    }

    /// Regression: a non-worker thread helping while it waits has no own
    /// deque; the steal scan must not compute `1 + usize::MAX`. Before the
    /// fix this overflowed (debug builds) whenever the caller reached the
    /// steal loop with the injector already drained — i.e. whenever a
    /// spawned task was still running when the scope began waiting.
    #[test]
    fn external_helper_with_drained_queues_does_not_overflow() {
        let pool = ThreadPool::new(2);
        pool.scope(|scope| {
            scope.spawn(|| std::thread::sleep(Duration::from_millis(20)));
        });
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global_pool();
        let b = global_pool();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn heavy_fan_out_completes() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..500 {
                let total = &total;
                scope.spawn(move || {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 500);
    }
}
