//! Pooling over the rows of a matrix, and the shared worker pool.
//!
//! Pooling is the core mechanism of HAM (Section 4.2.1 of the paper): the
//! embeddings of the previous `n_h` (high-order) or `n_l` (low-order) items
//! are aggregated into a single vector either by mean pooling or by max
//! pooling, instead of a parameterised attention/gating mechanism.
//!
//! The [`workers`] submodule hosts the other kind of pool: a reusable
//! work-stealing [`ThreadPool`] of persistent worker threads, replacing the
//! per-call `std::thread::scope` spawns the evaluation protocol used before.
//! The two share a module because both sit directly under the hot paths —
//! row pooling inside every query-vector build, the worker pool under every
//! threaded evaluation and the sharded serving layer.

pub mod workers;

pub use workers::{global_pool, Scope, ThreadPool};

use crate::Matrix;
use serde::{Deserialize, Serialize};

/// The pooling mechanism used to aggregate a window of item embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pooling {
    /// Arithmetic mean over the rows (HAMm / HAMs_m).
    Mean,
    /// Element-wise maximum over the rows (HAMx / HAMs_x).
    Max,
}

impl Pooling {
    /// Pools the rows of `m` into a single length-`cols` vector.
    ///
    /// For [`Pooling::Max`] the second return value of
    /// [`max_pool_rows`] (the arg-max rows) is discarded; use that function
    /// directly when the gradient routing information is needed.
    pub fn pool(&self, m: &Matrix) -> Vec<f32> {
        match self {
            Pooling::Mean => mean_pool_rows(m),
            Pooling::Max => max_pool_rows(m).0,
        }
    }

    /// Short lowercase name used in experiment configuration and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Pooling::Mean => "mean",
            Pooling::Max => "max",
        }
    }
}

/// Mean pooling over rows. An empty matrix pools to the all-zero vector of
/// width `cols` (the paper's models never pool an empty window, but ablated
/// models with `n_l = 0` conceptually contribute nothing).
pub fn mean_pool_rows(m: &Matrix) -> Vec<f32> {
    let (rows, cols) = m.shape();
    let mut out = vec![0.0f32; cols];
    if rows == 0 {
        return out;
    }
    for r in 0..rows {
        for (o, v) in out.iter_mut().zip(m.row(r)) {
            *o += v;
        }
    }
    let inv = 1.0 / rows as f32;
    for o in &mut out {
        *o *= inv;
    }
    out
}

/// Max pooling over rows. Returns the pooled vector and, per output column,
/// the row index that attained the maximum (needed to route gradients in the
/// manual backward pass). An empty matrix pools to zeros with arg-max 0.
pub fn max_pool_rows(m: &Matrix) -> (Vec<f32>, Vec<usize>) {
    let (rows, cols) = m.shape();
    if rows == 0 {
        return (vec![0.0; cols], vec![0; cols]);
    }
    let mut out = m.row(0).to_vec();
    let mut argmax = vec![0usize; cols];
    for r in 1..rows {
        for (c, &v) in m.row(r).iter().enumerate() {
            if v > out[c] {
                out[c] = v;
                argmax[c] = r;
            }
        }
    }
    (out, argmax)
}

/// Mean pooling over fixed-size row blocks: pools each consecutive group of
/// `block` rows of an `(b·block, d)` matrix into one output row, yielding a
/// `(b, d)` matrix. Row `i` of the output is `mean_pool_rows` of rows
/// `i·block .. (i+1)·block` — bit-identical to pooling each block alone,
/// which is what lets the mini-batched trainer pool every instance window of
/// a batch in one pass.
///
/// # Panics
/// Panics if `block == 0` or the row count is not a multiple of `block`.
pub fn mean_pool_row_blocks(m: &Matrix, block: usize) -> Matrix {
    assert!(block > 0, "mean_pool_row_blocks: block size must be positive");
    let (rows, cols) = m.shape();
    assert_eq!(rows % block, 0, "mean_pool_row_blocks: {rows} rows are not a multiple of block size {block}");
    let blocks = rows / block;
    let mut out = Matrix::zeros(blocks, cols);
    let inv = 1.0 / block as f32;
    for b in 0..blocks {
        let dst = out.row_mut(b);
        for r in b * block..(b + 1) * block {
            for (o, v) in dst.iter_mut().zip(m.row(r)) {
                *o += v;
            }
        }
        for o in dst.iter_mut() {
            *o *= inv;
        }
    }
    out
}

/// Max pooling over fixed-size row blocks (see [`mean_pool_row_blocks`]).
///
/// Returns the `(b, d)` pooled matrix and, per output element, the row
/// offset **within its block** (`0..block`) that attained the maximum —
/// `argmax[b·d + c]` routes the gradient of output `(b, c)` to input row
/// `b·block + argmax[b·d + c]`. Ties resolve to the earliest row, matching
/// [`max_pool_rows`].
///
/// # Panics
/// Panics if `block == 0` or the row count is not a multiple of `block`.
pub fn max_pool_row_blocks(m: &Matrix, block: usize) -> (Matrix, Vec<usize>) {
    assert!(block > 0, "max_pool_row_blocks: block size must be positive");
    let (rows, cols) = m.shape();
    assert_eq!(rows % block, 0, "max_pool_row_blocks: {rows} rows are not a multiple of block size {block}");
    let blocks = rows / block;
    let mut out = Matrix::zeros(blocks, cols);
    let mut argmax = vec![0usize; blocks * cols];
    for b in 0..blocks {
        out.row_mut(b).copy_from_slice(m.row(b * block));
        for off in 1..block {
            let row = m.row(b * block + off);
            let dst = out.row_mut(b);
            for (c, &v) in row.iter().enumerate() {
                if v > dst[c] {
                    dst[c] = v;
                    argmax[b * cols + c] = off;
                }
            }
        }
    }
    (out, argmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pool_simple() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 6.0]]);
        assert_eq!(mean_pool_rows(&m), vec![2.0, 4.0]);
    }

    #[test]
    fn mean_pool_single_row_is_identity() {
        let m = Matrix::from_rows(&[&[1.5, -2.0, 0.0]]);
        assert_eq!(mean_pool_rows(&m), vec![1.5, -2.0, 0.0]);
    }

    #[test]
    fn mean_pool_empty_is_zero() {
        let m = Matrix::zeros(0, 3);
        assert_eq!(mean_pool_rows(&m), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_picks_columnwise_max_and_argmax() {
        let m = Matrix::from_rows(&[&[1.0, 5.0, -1.0], &[2.0, 0.0, -3.0], &[0.0, 4.0, -2.0]]);
        let (pooled, argmax) = max_pool_rows(&m);
        assert_eq!(pooled, vec![2.0, 5.0, -1.0]);
        assert_eq!(argmax, vec![1, 0, 0]);
    }

    #[test]
    fn max_pool_handles_all_negative_values() {
        let m = Matrix::from_rows(&[&[-5.0, -1.0], &[-2.0, -4.0]]);
        let (pooled, argmax) = max_pool_rows(&m);
        assert_eq!(pooled, vec![-2.0, -1.0]);
        assert_eq!(argmax, vec![1, 0]);
    }

    #[test]
    fn pooling_enum_dispatch() {
        let m = Matrix::from_rows(&[&[1.0, 4.0], &[3.0, 2.0]]);
        assert_eq!(Pooling::Mean.pool(&m), vec![2.0, 3.0]);
        assert_eq!(Pooling::Max.pool(&m), vec![3.0, 4.0]);
        assert_eq!(Pooling::Mean.name(), "mean");
        assert_eq!(Pooling::Max.name(), "max");
    }

    #[test]
    fn block_pooling_matches_per_block_pooling() {
        // 3 blocks of 2 rows; each pooled block must match pooling the block
        // alone, bit for bit.
        let m = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 1.0], &[-1.0, -2.0], &[-4.0, 0.5], &[2.0, 2.0], &[2.0, 7.0]]);
        let mean = mean_pool_row_blocks(&m, 2);
        let (max, argmax) = max_pool_row_blocks(&m, 2);
        assert_eq!(mean.shape(), (3, 2));
        for b in 0..3 {
            let block = Matrix::from_rows(&[m.row(2 * b), m.row(2 * b + 1)]);
            assert_eq!(mean.row(b), mean_pool_rows(&block).as_slice(), "mean block {b}");
            let (alone, alone_arg) = max_pool_rows(&block);
            assert_eq!(max.row(b), alone.as_slice(), "max block {b}");
            assert_eq!(&argmax[2 * b..2 * b + 2], alone_arg.as_slice(), "argmax block {b}");
        }
    }

    #[test]
    fn block_pooling_with_block_one_is_identity() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(mean_pool_row_blocks(&m, 1), m);
        let (max, argmax) = max_pool_row_blocks(&m, 1);
        assert_eq!(max, m);
        assert!(argmax.iter().all(|&a| a == 0));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn block_pooling_rejects_ragged_blocks() {
        let _ = mean_pool_row_blocks(&Matrix::zeros(5, 2), 2);
    }

    #[test]
    fn matrix_convenience_methods_agree() {
        let m = Matrix::from_rows(&[&[1.0, 4.0], &[3.0, 2.0]]);
        assert_eq!(m.mean_rows(), Pooling::Mean.pool(&m));
        assert_eq!(m.max_rows(), Pooling::Max.pool(&m));
    }
}
