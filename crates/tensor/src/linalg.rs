//! Small linear-algebra helpers on top of [`Matrix`]: row norms, row
//! normalisation and cosine similarity. Used by the embedding-analysis
//! example and by tests that inspect learned item embeddings.

use crate::matrix::dot;
use crate::Matrix;

/// The Euclidean (L2) norm of a vector.
pub fn l2_norm(v: &[f32]) -> f32 {
    dot(v, v).sqrt()
}

/// Returns a copy of the matrix with every row scaled to unit L2 norm.
/// All-zero rows are left unchanged.
pub fn normalize_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let norm = l2_norm(out.row(r));
        if norm > 0.0 {
            for v in out.row_mut(r) {
                *v /= norm;
            }
        }
    }
    out
}

/// Cosine similarity between two vectors (0.0 when either has zero norm).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// The `k` rows of `embeddings` most cosine-similar to row `query` (excluding
/// the query row itself), as `(row index, similarity)` pairs sorted by
/// descending similarity.
pub fn most_similar_rows(embeddings: &Matrix, query: usize, k: usize) -> Vec<(usize, f32)> {
    assert!(query < embeddings.rows(), "most_similar_rows: query row out of bounds");
    let q = embeddings.row(query);
    let mut sims: Vec<(usize, f32)> =
        (0..embeddings.rows()).filter(|&r| r != query).map(|r| (r, cosine_similarity(q, embeddings.row(r)))).collect();
    sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    sims.truncate(k);
    sims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_and_normalisation() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = normalize_rows(&m);
        assert!((l2_norm(n.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(n.row(1), &[0.0, 0.0], "zero rows stay zero");
    }

    #[test]
    fn cosine_similarity_basic_identities() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 3.0])).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-5.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn most_similar_excludes_self_and_sorts() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0], &[-1.0, 0.0]]);
        let sims = most_similar_rows(&m, 0, 2);
        assert_eq!(sims.len(), 2);
        assert_eq!(sims[0].0, 1, "the nearly-parallel row must rank first");
        assert!(sims[0].1 > sims[1].1);
        assert!(sims.iter().all(|&(r, _)| r != 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn most_similar_rejects_bad_query() {
        let m = Matrix::zeros(2, 2);
        let _ = most_similar_rows(&m, 5, 1);
    }
}
