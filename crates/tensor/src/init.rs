//! Random initialisation of embedding and weight matrices.
//!
//! All constructors take an explicit RNG so that every training run in the
//! workspace is reproducible from a single seed.

use crate::Matrix;
use rand::Rng;

impl Matrix {
    /// Uniform initialisation in `[low, high)`.
    pub fn uniform(rows: usize, cols: usize, low: f32, high: f32, rng: &mut impl Rng) -> Self {
        assert!(low < high, "uniform: low must be < high (got {low} >= {high})");
        let data = (0..rows * cols).map(|_| rng.gen_range(low..high)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Xavier/Glorot uniform initialisation: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// This is the initialisation used for all embedding and weight matrices
    /// in the reproduction (the reference implementation uses PyTorch's
    /// default linear-layer initialisation, which is the same family).
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let a = (6.0 / (rows as f32 + cols as f32)).sqrt();
        Self::uniform(rows, cols, -a, a, rng)
    }

    /// Gaussian initialisation with the given mean and standard deviation,
    /// sampled with the Box–Muller transform (keeps the dependency surface to
    /// plain `Rng` without distribution helpers).
    pub fn normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        assert!(std >= 0.0, "normal: std must be non-negative");
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            let z0 = mag * (2.0 * std::f32::consts::PI * u2).cos();
            let z1 = mag * (2.0 * std::f32::consts::PI * u2).sin();
            data.push(mean + std * z0);
            if data.len() < rows * cols {
                data.push(mean + std * z1);
            }
        }
        Matrix::from_vec(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use crate::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = Matrix::xavier_uniform(4, 4, &mut rng);
        let large = Matrix::xavier_uniform(4000, 400, &mut rng);
        let max_small = small.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let max_large = large.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!(max_large < max_small, "larger fan-in should give smaller init range");
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Matrix::xavier_uniform(5, 7, &mut StdRng::seed_from_u64(42));
        let b = Matrix::xavier_uniform(5, 7, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::normal(200, 200, 1.0, 2.0, &mut rng);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} too far from 1.0");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {} too far from 2.0", var.sqrt());
    }

    #[test]
    fn normal_values_are_finite() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Matrix::normal(50, 3, 0.0, 1.0, &mut rng);
        assert!(m.all_finite());
    }
}
