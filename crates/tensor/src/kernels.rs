//! Batched linear-algebra kernels: the hot-path substrate behind scoring,
//! training and evaluation.
//!
//! The HAM scorer is `r_ij = q_i · w_j`: one query vector per user against
//! every row of the candidate-embedding matrix `W ∈ R^{n×d}`. Done naively
//! (one [`dot`] per item) that walk is latency-bound — each row's accumulator
//! chain serialises the FMAs and `W` is streamed once per user. The kernels
//! here restructure the same arithmetic for instruction- and cache-level
//! parallelism while keeping every per-element accumulation in ascending-`k`
//! order, so results stay within float-rounding distance (≤ 1e-5) of the
//! scalar loops they replace:
//!
//! * [`dot`] — multi-accumulator unrolled dot product. Eight independent
//!   partial sums break the single addition dependency chain so the loop
//!   compiles to vector FMAs instead of a serial reduction.
//! * [`matvec_transposed`] — `W · q` for one query against the whole
//!   catalogue in one fused pass over `W` (one user, all items: the serving
//!   fast path).
//! * [`matmul_transposed`] — packed-panel `A · Bᵀ` whose inner loop is a
//!   contiguous axpy over an L1-resident transposed panel of `B` (many
//!   users, all items: the `Q · Wᵀ` batched-evaluation fast path).
//! * [`matmul`] — cache-blocked `A · B` with a column-panel layout that keeps
//!   the output segment resident while streaming the inner dimension.
//!
//! ## Which entry point applies?
//!
//! | call site | kernel |
//! |---|---|
//! | score one user, few candidate items | [`dot`] per candidate |
//! | score one user, whole catalogue | [`matvec_transposed`] |
//! | score a user batch, whole catalogue | [`matmul_transposed`] (`Q·Wᵀ`) |
//! | dense forward/backward products | [`matmul`] |
//!
//! All kernels are exact for exactly-representable inputs (the unit tests
//! pin integer-valued cases bit-for-bit) and agree with the naive loops to
//! within accumulation-order rounding otherwise.

use crate::Matrix;

/// Column-panel width for the blocked [`matmul`]: the output row segment
/// (4 B/element) and the corresponding panel of `B` stay L1/L2-resident.
const MATMUL_J_BLOCK: usize = 128;

/// Row-panel height for the blocked [`matmul_transposed`]: a panel of `B`
/// rows is re-packed k-major and kept L1-resident while every row of `A` is
/// scored against it (`128 rows × d floats`; 16 KB at d = 32).
const GEMM_B_PANEL: usize = 128;

/// Number of independent partial sums in [`dot`]: one full vector register
/// of accumulators, so the reduction vectorizes instead of serialising on a
/// single accumulator chain.
const DOT_LANES: usize = 8;

/// Dot product of two equal-length slices with eight independent
/// accumulators.
///
/// A single-accumulator reduction is a serial dependency chain the compiler
/// must not reassociate, so it can neither vectorize nor overlap the FMAs.
/// Eight explicit partial sums make the reassociation part of the program:
/// the loop body is lane-wise independent and compiles to vector FMAs, with
/// one horizontal reduction at the end.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    let mut acc = [0.0f32; DOT_LANES];
    let mut a_chunks = a.chunks_exact(DOT_LANES);
    let mut b_chunks = b.chunks_exact(DOT_LANES);
    for (a8, b8) in a_chunks.by_ref().zip(b_chunks.by_ref()) {
        for l in 0..DOT_LANES {
            acc[l] += a8[l] * b8[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        tail += x * y;
    }
    let half: f32 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let other: f32 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    half + other + tail
}

/// Scores one query against every row of `w`: returns `w · q`, i.e.
/// `out[j] = w.row(j) · q`, in a single fused pass over `w`.
///
/// This is the one-user/whole-catalogue fast path: `w` is streamed exactly
/// once while `q` stays register/L1-resident, and each row reduction uses
/// the vectorizing multi-accumulator [`dot`].
///
/// # Panics
/// Panics if `q.len() != w.cols()`.
pub fn matvec_transposed(w: &Matrix, q: &[f32]) -> Vec<f32> {
    let (n, d) = w.shape();
    assert_eq!(q.len(), d, "matvec_transposed: query length {} does not match {} columns", q.len(), d);
    let data = w.as_slice();
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        out.push(dot(&data[j * d..(j + 1) * d], q));
    }
    out
}

/// Blocked matrix product `a · bᵀ` (the batched `Q · Wᵀ` scoring GEMM).
///
/// `B` is processed in panels of [`GEMM_B_PANEL`] rows. Each panel is
/// re-packed k-major (a transpose of the panel) so the innermost loop is a
/// contiguous `acc += a[k] · panel_row(k)` axpy over the panel width — pure
/// vector FMAs with no horizontal reductions — and the packed panel stays
/// L1-resident while every row of `A` is scored against it. `B` is streamed
/// from memory exactly once regardless of the batch size; the packing cost
/// (one extra pass over `B`) is amortised over all `m` rows of `A`.
///
/// Each output element accumulates in ascending-`k` order, matching the
/// naive loop's rounding behaviour (and the per-user path within 1e-5).
///
/// # Panics
/// Panics if the column dimensions do not agree.
pub fn matmul_transposed(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transposed: column dimensions do not agree ({}x{} * ({}x{})^T)",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, d) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    if d == 0 {
        return out;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();

    let mut packed = vec![0.0f32; GEMM_B_PANEL * d];
    let mut j0 = 0;
    while j0 < n {
        let jw = (n - j0).min(GEMM_B_PANEL);
        // Pack the panel k-major: packed[k][jj] = b[j0 + jj][k].
        for jj in 0..jw {
            let b_row = &b_data[(j0 + jj) * d..(j0 + jj + 1) * d];
            for (k, &bv) in b_row.iter().enumerate() {
                packed[k * jw + jj] = bv;
            }
        }
        for i in 0..m {
            let a_row = &a_data[i * d..(i + 1) * d];
            let out_seg = &mut out_data[i * n + j0..i * n + j0 + jw];
            for (k, &av) in a_row.iter().enumerate() {
                let panel_row = &packed[k * jw..(k + 1) * jw];
                for (o, &bv) in out_seg.iter_mut().zip(panel_row) {
                    *o += av * bv;
                }
            }
        }
        j0 += jw;
    }
    out
}

/// Cache-blocked matrix product `a · b`.
///
/// Loop order is column-panel (`j` block) outermost, then output row, then
/// the inner dimension: the `B` panel of `MATMUL_J_BLOCK` columns is reused
/// across every row of `A`, and each output element accumulates in ascending
/// `k` order (bit-identical to the classic i-k-j loop). Zero entries of `a`
/// skip their inner row update, which matters for the one-hot and masked
/// matrices the autograd tape produces.
///
/// # Panics
/// Panics if the inner dimensions do not agree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions do not agree ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, p) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();

    let mut j0 = 0;
    while j0 < n {
        let jw = (n - j0).min(MATMUL_J_BLOCK);
        for i in 0..m {
            let a_row = &a_data[i * p..(i + 1) * p];
            let out_seg = &mut out_data[i * n + j0..i * n + j0 + jw];
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_seg = &b_data[k * n + j0..k * n + j0 + jw];
                for (o, &bv) in out_seg.iter_mut().zip(b_seg) {
                    *o += av * bv;
                }
            }
        }
        j0 += jw;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn arange_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|i| ((i % 13) as f32 - 6.0) * scale).collect())
    }

    #[test]
    fn dot_matches_naive_for_all_tail_lengths() {
        for len in 0..40 {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.73).cos()).collect();
            let fast = dot(&a, &b);
            let slow = naive_dot(&a, &b);
            assert!((fast - slow).abs() < 1e-5, "len {len}: {fast} vs {slow}");
        }
    }

    #[test]
    fn dot_is_exact_on_integer_values() {
        let a: Vec<f32> = (0..23).map(|i| (i % 7) as f32).collect();
        let b: Vec<f32> = (0..23).map(|i| (i % 5) as f32 - 2.0).collect();
        assert_eq!(dot(&a, &b), naive_dot(&a, &b));
    }

    #[test]
    fn matvec_transposed_matches_per_row_dot() {
        for n in [1, 3, 4, 5, 17, 64] {
            for d in [1, 7, 8, 32] {
                let w = arange_matrix(n, d, 0.25);
                let q: Vec<f32> = (0..d).map(|k| (k as f32 * 0.11).sin()).collect();
                let fast = matvec_transposed(&w, &q);
                for (j, &f) in fast.iter().enumerate() {
                    let slow = naive_dot(w.row(j), &q);
                    assert!((f - slow).abs() < 1e-5, "n={n} d={d} j={j}");
                }
            }
        }
    }

    #[test]
    fn matmul_transposed_matches_naive_for_odd_shapes() {
        for (m, n, d) in [(1, 1, 1), (2, 3, 5), (4, 4, 8), (5, 9, 6), (7, 13, 3), (8, 16, 32)] {
            let a = arange_matrix(m, d, 0.5);
            let b = arange_matrix(n, d, 0.125);
            let fast = matmul_transposed(&a, &b);
            assert_eq!(fast.shape(), (m, n));
            for i in 0..m {
                for j in 0..n {
                    let slow = naive_dot(a.row(i), b.row(j));
                    assert_eq!(fast.get(i, j), slow, "({m},{n},{d}) at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn matmul_matches_naive_across_block_boundary() {
        // n spans the column-panel width so both the full-panel and the
        // partial-panel paths run.
        for (m, p, n) in [(1, 1, 1), (3, 4, 5), (2, 8, MATMUL_J_BLOCK - 1), (2, 3, MATMUL_J_BLOCK + 7)] {
            let a = arange_matrix(m, p, 0.5);
            let b = arange_matrix(p, n, 0.25);
            let fast = matmul(&a, &b);
            assert_eq!(fast.shape(), (m, n));
            for i in 0..m {
                for j in 0..n {
                    let slow: f32 = (0..p).map(|k| a.get(i, k) * b.get(k, j)).sum();
                    assert_eq!(fast.get(i, j), slow, "({m},{p},{n}) at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn zero_rows_of_a_produce_zero_output() {
        let a = Matrix::zeros(3, 4);
        let b = arange_matrix(4, 200, 1.0);
        assert!(matmul(&a, &b).as_slice().iter().all(|&v| v == 0.0));
    }
}
