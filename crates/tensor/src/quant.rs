//! Int8 affine quantization of candidate matrices and query vectors.
//!
//! Serving millions of candidate items per node is a memory-bandwidth
//! problem before it is a FLOP problem: every request streams the candidate
//! matrix `W` once, and at f32 that stream saturates the bus long before the
//! FMA units saturate. Quantizing `W` to 8 bits cuts the streamed bytes per
//! row 4x — the [`QuantizedMatrix`] here is the storage side of that trade,
//! and the `quantized_*` kernels in [`crate::kernels`] are the compute side.
//!
//! ## The scheme
//!
//! Each **candidate row** is quantized independently with the standard
//! asymmetric affine (scale + zero-point) int8 scheme:
//!
//! ```text
//! w[k] ≈ scale_r · (p[k] − zp_r)        p[k] ∈ [0, 255]
//! ```
//!
//! The quantization range of a row is `[min(w) ∪ 0, max(w) ∪ 0]` (nudged to
//! contain zero, so 0.0 always round-trips near-exactly and a degenerate
//! constant row still gets a positive scale). `p` is stored biased by the
//! zero-point into `u8` — the natural layout for the widening
//! unsigned×signed integer multiplies of the SIMD kernels; `zp_r` itself is
//! kept as `i32` so the integer dot can subtract it exactly.
//!
//! The **query** is quantized symmetrically to `i8` ([`QuantizedQuery`]):
//! `q[k] ≈ scale_q · s[k]`, `s[k] ∈ [−127, 127]`. A query is d elements —
//! quantizing it per request is nanoseconds next to streaming the catalogue.
//!
//! A quantized score then reduces to one integer dot product plus one
//! per-row fixup:
//!
//! ```text
//! r_j ≈ scale_r · scale_q · ( Σ_k p[k]·s[k]  −  zp_r · Σ_k s[k] )
//! ```
//!
//! `Σ s[k]` is computed once per query ([`QuantizedQuery::sum`]). The inner
//! sum is **exact integer arithmetic** — `u8·i8` products accumulated in
//! `i32` cannot overflow below d ≈ 66 000 and integer addition is
//! associative — so a quantized score is **bit-identical across tiers and
//! across shard/panel positions** by construction. The only rounding is the
//! final f32 multiply, identical everywhere. That determinism is what lets
//! the serving layer's quantized candidate-selection stage stay exact across
//! shard counts (the re-rank guardrail in `ham-serve` does the rest).
//!
//! ## Error bound
//!
//! Rounding to nearest bounds the per-element errors by half a step:
//! `|w[k] − ŵ[k]| ≤ scale_r / 2` and `|q[k] − q̂[k]| ≤ scale_q / 2`, so a
//! d-length score obeys
//!
//! ```text
//! |r − r̂| ≤ Σ_k ( |q[k]|·scale_r/2 + |w[k]|·scale_q/2 + scale_r·scale_q/4 )
//! ```
//!
//! — proportional to the per-row magnitude through `scale_r`. The property
//! suite in `tests/quantized.rs` pins this bound for every row.

use crate::Matrix;

/// A-priori upper bound on `|exact − quantized|` for scoring `w_row`
/// against `q` under this module's scheme, computed from the same
/// scale formulas the quantizers use.
///
/// The ideal-arithmetic bound (module docs) uses half a step per element;
/// this function doubles the per-element terms to absorb the two non-ideal
/// effects — payload clamping at the range edge can cost up to a full step
/// on an element, and the scales themselves are f32-rounded — so the
/// property suite can assert it unconditionally. Still proportional to the
/// per-row magnitude through `scale_r = (max−min)/255`.
pub fn score_error_bound(w_row: &[f32], q: &[f32]) -> f32 {
    let lo = w_row.iter().copied().fold(0.0f32, f32::min);
    let hi = w_row.iter().copied().fold(0.0f32, f32::max);
    let scale_r = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
    let amax = q.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale_q = if amax > 0.0 { amax / 127.0 } else { 1.0 };
    w_row.iter().zip(q).map(|(&w, &qv)| qv.abs() * scale_r + w.abs() * scale_q + scale_r * scale_q).sum()
}

/// A row-quantized int8 snapshot of a candidate matrix (see module docs).
///
/// Immutable by design: it is built once at publish time from a frozen f32
/// matrix and then only read by the scoring kernels. The f32 original stays
/// authoritative — exact re-ranking reads it, the quantized panel only
/// preselects.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Row-major zero-point-biased payload: `data[r*cols + k] ∈ [0, 255]`.
    data: Vec<u8>,
    /// Per-row dequantization scale (always > 0).
    scales: Vec<f32>,
    /// Per-row zero-point in payload space.
    zero_points: Vec<i32>,
}

impl QuantizedMatrix {
    /// Quantizes `w` row-by-row with the asymmetric affine scheme.
    pub fn quantize(w: &Matrix) -> Self {
        let (rows, cols) = w.shape();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        let mut zero_points = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = w.row(r);
            // Nudge the range to contain zero: 0.0 then maps (near-)exactly
            // to the zero-point, and a constant row keeps a positive scale.
            let lo = row.iter().copied().fold(0.0f32, f32::min);
            let hi = row.iter().copied().fold(0.0f32, f32::max);
            let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
            let zp = (-lo / scale).round() as i32;
            let zp = zp.clamp(0, 255);
            for &v in row {
                let p = (v / scale).round() as i32 + zp;
                data.push(p.clamp(0, 255) as u8);
            }
            scales.push(scale);
            zero_points.push(zp);
        }
        Self { rows, cols, data, scales, zero_points }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the embedding dimension).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The biased `u8` payload of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        assert!(r < self.rows, "QuantizedMatrix::row: index {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dequantization scale of row `r`.
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Zero-point of row `r` (payload space).
    #[inline]
    pub fn zero_point(&self, r: usize) -> i32 {
        self.zero_points[r]
    }

    /// The full row-major payload (kernel entry points).
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.data
    }

    /// Per-row scales (kernel entry points).
    #[inline]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Per-row zero-points (kernel entry points).
    #[inline]
    pub fn zero_points(&self) -> &[i32] {
        &self.zero_points
    }

    /// Reconstructs row `r` as f32 values (tests and diagnostics — the
    /// serving path never dequantizes, it re-ranks against the f32 original).
    pub fn dequantize_row(&self, r: usize) -> Vec<f32> {
        let scale = self.scales[r];
        let zp = self.zero_points[r];
        self.row(r).iter().map(|&p| scale * (p as i32 - zp) as f32).collect()
    }

    /// Bytes of payload streamed per full-catalogue pass (the bandwidth
    /// denominator reported by `kernel_report`; scales and zero-points ride
    /// along but are one read per row, not per element).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() + self.rows * (std::mem::size_of::<f32>() + std::mem::size_of::<i32>())
    }
}

/// A query vector quantized symmetrically to `i8` (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedQuery {
    /// Symmetric `i8` payload: `data[k] ∈ [−127, 127]`.
    data: Vec<i8>,
    /// Dequantization scale (always > 0).
    scale: f32,
    /// `Σ_k data[k]`, precomputed for the per-row zero-point fixup.
    sum: i32,
}

impl QuantizedQuery {
    /// Quantizes one query vector.
    pub fn quantize(q: &[f32]) -> Self {
        let mut out = Self { data: Vec::new(), scale: 1.0, sum: 0 };
        out.requantize(q);
        out
    }

    /// Re-quantizes `q` in place, reusing the payload allocation — the
    /// serving scratch holds one `QuantizedQuery` across requests.
    pub fn requantize(&mut self, q: &[f32]) {
        let amax = q.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if amax > 0.0 { amax / 127.0 } else { 1.0 };
        self.data.clear();
        let mut sum = 0i32;
        for &v in q {
            let s = ((v / scale).round() as i32).clamp(-127, 127);
            sum += s;
            self.data.push(s as i8);
        }
        self.scale = scale;
        self.sum = sum;
    }

    /// The `i8` payload.
    #[inline]
    pub fn payload(&self) -> &[i8] {
        &self.data
    }

    /// Dequantization scale.
    #[inline]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Precomputed payload sum.
    #[inline]
    pub fn sum(&self) -> i32 {
        self.sum
    }

    /// Query length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the query is empty (d = 0).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_matrix() -> Matrix {
        Matrix::from_rows(&[
            &[0.5, -1.25, 3.0, 0.0],
            &[-2.0, -2.0, -2.0, -2.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[1e-3, -1e-3, 5e-4, 0.0],
        ])
    }

    #[test]
    fn round_trip_error_is_within_half_a_step() {
        let w = toy_matrix();
        let qm = QuantizedMatrix::quantize(&w);
        for r in 0..w.rows() {
            let back = qm.dequantize_row(r);
            for (k, (&orig, &deq)) in w.row(r).iter().zip(&back).enumerate() {
                assert!(
                    (orig - deq).abs() <= qm.scale(r) * 0.5 + 1e-7,
                    "row {r} col {k}: {orig} vs {deq} (scale {})",
                    qm.scale(r)
                );
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_exact_zero() {
        let qm = QuantizedMatrix::quantize(&toy_matrix());
        assert!(qm.dequantize_row(2).iter().all(|&v| v == 0.0));
        // The nudged range keeps 0.0 representable in every row.
        for r in 0..4 {
            let zp = qm.zero_point(r);
            assert!((0..=255).contains(&zp), "row {r} zero point {zp}");
            assert_eq!(qm.scale(r) * (zp - zp) as f32, 0.0);
        }
    }

    #[test]
    fn constant_rows_keep_a_positive_scale() {
        let qm = QuantizedMatrix::quantize(&toy_matrix());
        for r in 0..4 {
            assert!(qm.scale(r) > 0.0, "row {r}");
        }
        let back = qm.dequantize_row(1);
        for &v in &back {
            assert!((v - -2.0).abs() <= qm.scale(1) * 0.5 + 1e-6, "{v}");
        }
    }

    #[test]
    fn query_quantization_is_symmetric_and_summed() {
        let q = [1.0f32, -0.5, 0.25, 0.0];
        let qq = QuantizedQuery::quantize(&q);
        assert_eq!(qq.len(), 4);
        assert_eq!(qq.payload()[0], 127);
        assert_eq!(qq.payload()[3], 0);
        assert_eq!(qq.sum(), qq.payload().iter().map(|&v| v as i32).sum::<i32>());
        for (k, &v) in q.iter().enumerate() {
            let deq = qq.scale() * qq.payload()[k] as f32;
            assert!((v - deq).abs() <= qq.scale() * 0.5 + 1e-7, "col {k}");
        }
    }

    #[test]
    fn zero_query_quantizes_cleanly() {
        let qq = QuantizedQuery::quantize(&[0.0; 8]);
        assert!(qq.payload().iter().all(|&v| v == 0));
        assert_eq!(qq.sum(), 0);
        assert!(qq.scale() > 0.0);
    }

    #[test]
    fn requantize_reuses_the_buffer() {
        let mut qq = QuantizedQuery::quantize(&[1.0, 2.0, 3.0]);
        qq.requantize(&[-4.0, 0.0]);
        assert_eq!(qq.len(), 2);
        assert_eq!(qq.payload()[0], -127);
        assert_eq!(qq.payload()[1], 0);
    }

    #[test]
    fn payload_bytes_counts_payload_plus_row_metadata() {
        let qm = QuantizedMatrix::quantize(&Matrix::zeros(10, 16));
        assert_eq!(qm.payload_bytes(), 10 * 16 + 10 * 8);
    }
}
