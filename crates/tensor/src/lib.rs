//! # ham-tensor
//!
//! Dense matrix and vector math substrate for the HAM reproduction.
//!
//! The HAM paper ("Hybrid Associations Models for Sequential Recommendation")
//! and the baselines it compares against (Caser, SASRec, HGN) are built from a
//! small set of dense linear-algebra primitives over embedding matrices:
//! matrix products, element-wise (Hadamard) products, mean/max pooling over
//! rows, sigmoid/softmax non-linearities and random initialisation.
//!
//! This crate provides exactly those primitives over a row-major [`Matrix`] of
//! `f32` values, with no external linear-algebra dependencies, so that every
//! higher layer of the workspace (autograd engine, the HAM models, the deep
//! baselines) is built from scratch as the reproduction requires.
//!
//! ## The kernel layer
//!
//! Everything hot funnels through the batched kernels in [`kernels`] — a
//! multi-accumulator [`kernels::dot`], the fused one-user catalogue pass
//! [`kernels::matvec_transposed`] (and its allocation-free
//! [`kernels::matvec_transposed_into`]), the packed-panel batched GEMM
//! [`kernels::matmul_transposed`] (`Q·Wᵀ`, the scorer behind
//! `evaluate_batch`) and the cache-blocked [`kernels::matmul`]. The kernel
//! layer is **tiered**: a portable safe reference tier and explicit
//! AVX2+FMA and AVX-512 tiers, selected once per process by runtime feature
//! detection (overridable via the `HAM_KERNEL_TIER` environment variable),
//! so vector speed no longer depends on `-C target-cpu=native`. The
//! [`Matrix`] methods of the same names delegate to the dispatched kernels,
//! so model code written against `Matrix` inherits the fast paths. See the
//! [`kernels`] module docs for the tier table and when each entry point
//! applies.
//!
//! ## Quantized candidate scoring
//!
//! [`quant`] adds an int8 serving-side path: [`QuantizedMatrix`] snapshots a
//! frozen candidate matrix at 1 byte/element (per-row scale + zero-point),
//! [`QuantizedQuery`] quantizes a request vector, and the `quantized_*`
//! kernels in [`kernels`] score the pair with exact integer accumulation —
//! quartering the memory traffic of the bandwidth-bound catalogue pass while
//! staying bit-identical across tiers and shard groupings.
//!
//! ## The worker pool
//!
//! [`pool::workers`] hosts a reusable work-stealing [`pool::ThreadPool`] of
//! persistent workers with a `std::thread::scope`-style borrowing API and a
//! process-wide [`pool::global_pool`]. The threaded evaluation protocol
//! (`ham-eval`) and the sharded serving layer (`ham-serve`) both fan out on
//! it instead of spawning scoped threads per call.
//!
//! ## Conventions
//!
//! * All matrices are row-major; an *embedding matrix* stores one embedding
//!   per row.
//! * Dimension mismatches are programming errors and panic with a descriptive
//!   message (mirroring `ndarray`); fallible, data-dependent operations return
//!   `Result` instead.
//! * Randomised constructors take an explicit `&mut impl rand::Rng` so every
//!   experiment in the workspace is reproducible from a seed.
//!
//! ## Example
//!
//! ```
//! use ham_tensor::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let v = Matrix::xavier_uniform(4, 8, &mut rng); // 4 item embeddings, d = 8
//! let pooled = v.mean_rows();                     // mean pooling over the items
//! assert_eq!(pooled.len(), 8);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cluster;
pub mod init;
pub mod kernels;
pub mod linalg;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod quant;
pub mod stats;

pub use cluster::{kmeans_rows, KMeansResult};
pub use matrix::Matrix;
pub use ops::{sigmoid, sigmoid_scalar, softmax_in_place};
pub use pool::Pooling;
pub use quant::{QuantizedMatrix, QuantizedQuery};
