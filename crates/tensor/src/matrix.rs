//! The dense row-major [`Matrix`] type and its core operations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// This is the single tensor type used throughout the workspace. Embedding
/// matrices store one embedding per row; batched sequences of embeddings are
/// represented as `(len, d)` matrices.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a `1 x n` row-vector matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a matrix from nested row slices (useful in tests).
    ///
    /// # Panics
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n_cols, "Matrix::from_rows: row {i} has inconsistent length");
            data.extend_from_slice(row);
        }
        Self { rows: n_rows, cols: n_cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Returns a new matrix containing only the selected rows, in order.
    ///
    /// This is the embedding-lookup ("gather") primitive.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Grows the matrix to `new_rows` rows, zero-filling the new rows.
    /// A no-op when the matrix already has `new_rows` rows.
    ///
    /// Embedding tables (and their optimizer moment matrices) grow row-wise
    /// when unseen users/items arrive in an online-training stream; existing
    /// rows keep their values and layout.
    ///
    /// # Panics
    /// Panics if `new_rows` is smaller than the current row count.
    pub fn resize_rows(&mut self, new_rows: usize) {
        assert!(new_rows >= self.rows, "Matrix::resize_rows: cannot shrink from {} to {new_rows} rows", self.rows);
        self.data.resize(new_rows * self.cols, 0.0);
        self.rows = new_rows;
    }

    /// Appends the rows of `other` below the rows of `self`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn append_rows(&mut self, other: &Matrix) {
        assert_eq!(self.cols, other.cols, "Matrix::append_rows: column mismatch ({} vs {})", self.cols, other.cols);
        self.data.extend_from_slice(other.as_slice());
        self.rows += other.rows;
    }

    /// Adds each row of `updates` into the row of `self` given by `indices`
    /// (the scatter-add primitive used by embedding gradients).
    ///
    /// # Panics
    /// Panics if shapes are inconsistent or an index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], updates: &Matrix) {
        assert_eq!(indices.len(), updates.rows(), "scatter_add_rows: index count must match update rows");
        assert_eq!(self.cols, updates.cols(), "scatter_add_rows: column mismatch");
        for (i, &idx) in indices.iter().enumerate() {
            let dst = self.row_mut(idx);
            let src = updates.row(i);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * other`, computed by the cache-blocked
    /// [`kernels::matmul`](crate::kernels::matmul).
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        crate::kernels::matmul(self, other)
    }

    /// Matrix product `self * other^T`, computed by the register-tiled
    /// [`kernels::matmul_transposed`](crate::kernels::matmul_transposed).
    ///
    /// Computing against a transposed right operand is the common case when
    /// scoring candidate items (`pooled · Wᵀ` / the batched `Q · Wᵀ`), and
    /// doing it directly avoids materialising the transpose.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        crate::kernels::matmul_transposed(self, other)
    }

    /// Scores one query vector against every row of `self` in a single fused
    /// pass: `out[j] = self.row(j) · q` (the one-user/whole-catalogue fast
    /// path; see [`kernels::matvec_transposed`](crate::kernels::matvec_transposed)).
    ///
    /// # Panics
    /// Panics if `q.len() != self.cols()`.
    pub fn matvec_transposed(&self, q: &[f32]) -> Vec<f32> {
        crate::kernels::matvec_transposed(self, q)
    }

    /// [`Self::matvec_transposed`] into a caller-provided buffer
    /// (overwritten), so serving loops can reuse one scratch allocation
    /// across requests; see
    /// [`kernels::matvec_transposed_into`](crate::kernels::matvec_transposed_into).
    ///
    /// # Panics
    /// Panics if `q.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_transposed_into(&self, q: &[f32], out: &mut [f32]) {
        crate::kernels::matvec_transposed_into(self, q, out)
    }

    /// [`Self::matmul_transposed`] into a caller-provided matrix
    /// (overwritten); see
    /// [`kernels::matmul_transposed_into`](crate::kernels::matmul_transposed_into).
    ///
    /// # Panics
    /// Panics if the column dimensions do not agree or `out` is not
    /// `self.rows() × other.rows()`.
    pub fn matmul_transposed_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::matmul_transposed_into(self, other, out)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns `self` scaled by a scalar.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// In-place scaling by a scalar.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Applies a function element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies a binary function element-wise against another matrix.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch {:?} vs {:?}", self.shape(), other.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Adds `row` (a length-`cols` slice) to every row of the matrix.
    pub fn add_row_broadcast(&self, row: &[f32]) -> Matrix {
        assert_eq!(row.len(), self.cols, "add_row_broadcast: length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, b) in out.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
        out
    }

    /// Mean of every element.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Sum of every element.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm (used by L2 regularisation).
    pub fn frobenius_norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Mean pooling over rows: returns a length-`cols` vector.
    pub fn mean_rows(&self) -> Vec<f32> {
        crate::pool::mean_pool_rows(self)
    }

    /// Max pooling over rows: returns a length-`cols` vector.
    pub fn max_rows(&self) -> Vec<f32> {
        crate::pool::max_pool_rows(self).0
    }

    /// Returns true when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Dot product of two equal-length slices (the multi-accumulator kernel from
/// [`crate::kernels`]).
///
/// # Panics
/// Panics if the slices differ in length.
pub use crate::kernels::dot;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 4).is_empty());
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 2.0, 2.0], &[0.0, 1.0, 0.0], &[3.0, -3.0, 3.0]]);
        let direct = a.matmul_transposed(&b);
        let via_transpose = a.matmul(&b.transpose());
        assert_eq!(direct, via_transpose);
        assert_eq!(direct.shape(), (2, 4));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_and_scatter_are_inverse_for_distinct_indices() {
        let table = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let picked = table.gather_rows(&[2, 0]);
        assert_eq!(picked.row(0), &[3.0, 3.0]);
        assert_eq!(picked.row(1), &[1.0, 1.0]);

        let mut grad = Matrix::zeros(3, 2);
        grad.scatter_add_rows(&[2, 0], &picked);
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert_eq!(grad.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn scatter_add_accumulates_duplicate_indices() {
        let mut acc = Matrix::zeros(2, 2);
        let upd = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        acc.scatter_add_rows(&[1, 1], &upd);
        assert_eq!(acc.row(1), &[4.0, 6.0]);
    }

    #[test]
    fn hadamard_and_add_sub() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 2.0], &[0.5, -1.0]]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2.0, 4.0, 1.5, -4.0]);
        assert_eq!(a.add(&b).as_slice(), &[3.0, 4.0, 3.5, 3.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-1.0, 0.0, 2.5, 5.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn broadcast_add_row() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let out = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.frobenius_norm_sq(), 30.0);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.all_finite());
        a.set(0, 1, f32::NAN);
        assert!(!a.all_finite());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn resize_rows_keeps_old_rows_and_zero_fills() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.resize_rows(4);
        assert_eq!(a.shape(), (4, 2));
        assert_eq!(a.row(0), &[1.0, 2.0]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.row(2), &[0.0, 0.0]);
        assert_eq!(a.row(3), &[0.0, 0.0]);
        // growing to the current size is a no-op
        a.resize_rows(4);
        assert_eq!(a.shape(), (4, 2));
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn resize_rows_refuses_to_shrink() {
        Matrix::zeros(3, 2).resize_rows(2);
    }

    #[test]
    fn append_rows_stacks_matrices() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        a.append_rows(&Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        assert_eq!(a.shape(), (3, 2));
        assert_eq!(a.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn append_rows_rejects_width_mismatch() {
        Matrix::zeros(1, 2).append_rows(&Matrix::zeros(1, 3));
    }
}
