//! Scalar and slice-level numerical operations shared across the workspace:
//! numerically stable sigmoid / log-sigmoid, softmax, and small helpers used
//! by both the manual-gradient trainer and the autograd engine.

use crate::Matrix;

/// Numerically stable scalar sigmoid `1 / (1 + exp(-x))`.
#[inline]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Numerically stable `log(sigmoid(x))`, used by the BPR loss
/// `-log σ(r_pos - r_neg)` without overflow for large negative margins.
#[inline]
pub fn log_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        -(1.0 + (-x).exp()).ln()
    } else {
        x - (1.0 + x.exp()).ln()
    }
}

/// Element-wise sigmoid of a matrix.
pub fn sigmoid(m: &Matrix) -> Matrix {
    m.map(sigmoid_scalar)
}

/// In-place, numerically stable softmax of a slice.
///
/// An empty slice is left untouched.
pub fn softmax_in_place(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in values.iter_mut() {
            *v /= sum;
        }
    }
}

/// Row-wise softmax of a matrix (each row sums to one).
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        softmax_in_place(out.row_mut(r));
    }
    out
}

/// Element-wise hyperbolic tangent.
pub fn tanh(m: &Matrix) -> Matrix {
    m.map(f32::tanh)
}

/// Element-wise rectified linear unit.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|v| v.max(0.0))
}

/// Returns the indices that would sort `scores` in descending order,
/// truncated to the top `k` entries. Ties are broken by the lower index,
/// which keeps evaluation deterministic.
///
/// For `k ≪ n` (ranking 10 recommendations out of a 50k catalogue) a bounded
/// min-heap scans the scores once without materialising the full `0..n`
/// index vector; otherwise the quickselect-then-sort path is used. Both
/// paths order identically for NaN-free inputs (`-inf` masks included);
/// with NaN present the ordering is unspecified on either path (the
/// comparator treats NaN as equal to everything, which is not a total
/// order), but the heap path never lets a NaN displace a real score.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    top_k_by_score(scores.len(), k, |i| scores[i])
}

/// Fused "mask + select" top-k: ranks `scores` exactly as [`top_k_indices`]
/// would after setting `scores[i] = -inf` for every `i` with `masked[i]`,
/// but without writing to (or copying) the score buffer.
///
/// Masked items are not skipped outright — they participate with an
/// effective score of `-inf` — so the result is bit-identical to the
/// mask-then-select path, including the degenerate cases where fewer than
/// `k` items are unmasked and masked items pad the tail of the ranking (in
/// ascending index order, the `-inf` tie-break). Because the buffer stays
/// immutable, a caller can rank straight out of a shared score matrix (one
/// row of a batched `Q·Wᵀ` block) without cloning the row first, and a
/// serving loop can reuse one seen-bitmap across requests with O(history)
/// mark/clear instead of O(catalogue) restores.
///
/// # Panics
/// Panics if `masked` and `scores` differ in length.
pub fn top_k_indices_masked(scores: &[f32], k: usize, masked: &[bool]) -> Vec<usize> {
    assert_eq!(
        masked.len(),
        scores.len(),
        "top_k_indices_masked: {} mask bits for {} scores",
        masked.len(),
        scores.len()
    );
    top_k_by_score(scores.len(), k, |i| if masked[i] { f32::NEG_INFINITY } else { scores[i] })
}

/// Closure-masked variant of [`top_k_indices_masked`]: ranks `scores` exactly
/// as [`top_k_indices`] would after overwriting `scores[i] = -inf` for every
/// `i` with `masked(i)`, but the mask is an arbitrary predicate instead of a
/// pre-materialised bitmap slice.
///
/// This exists for ranking *permuted* score buffers against a bitmap laid out
/// in a different index space: an inverted-file cluster panel stores catalogue
/// rows gathered out of order, so its score buffer cannot be masked by slicing
/// the per-shard seen bitmap — the predicate translates the panel-local index
/// to the bitmap's space instead (`|j| seen[ids[j]]`). Semantics otherwise
/// match [`top_k_indices_masked`] bit for bit: masked items participate at
/// `-inf` and pad the tail in ascending index order when fewer than `k`
/// survive.
pub fn top_k_indices_masked_with(scores: &[f32], k: usize, masked: impl Fn(usize) -> bool) -> Vec<usize> {
    top_k_by_score(scores.len(), k, |i| if masked(i) { f32::NEG_INFINITY } else { scores[i] })
}

/// Shared body of [`top_k_indices`] / [`top_k_indices_masked`]: ranks the
/// indices `0..n` by the effective score `score(i)` (descending, ties to the
/// lower index).
fn top_k_by_score(n: usize, k: usize, score: impl Fn(usize) -> f32) -> Vec<usize> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    // Heap-based partial selection: O(n log k) time, O(k) extra space.
    if k * 8 <= n {
        return top_k_by_heap(n, k, &score);
    }
    let cmp =
        |a: &usize, b: &usize| score(*b).partial_cmp(&score(*a)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b));
    let mut idx: Vec<usize> = (0..n).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_by(cmp);
    idx
}

/// A score/index pair ordered by "better recommendation": higher score wins,
/// ties go to the lower index. NaN compares equal to everything, mirroring
/// the comparator of the full-sort path.
struct RankedCandidate {
    score: f32,
    index: usize,
}

impl RankedCandidate {
    fn better_than(&self, other: &Self) -> std::cmp::Ordering {
        self.score.partial_cmp(&other.score).unwrap_or(std::cmp::Ordering::Equal).then(other.index.cmp(&self.index))
    }
}

impl PartialEq for RankedCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.better_than(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for RankedCandidate {}
impl PartialOrd for RankedCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RankedCandidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.better_than(other)
    }
}

/// Partial top-k selection with a bounded min-heap (the `k ≪ n` fast path of
/// [`top_k_by_score`]).
fn top_k_by_heap(n: usize, k: usize, score: &impl Fn(usize) -> f32) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // `Reverse` turns the max-heap into a min-heap over "betterness", so the
    // root is always the worst candidate currently kept. NaN scores are
    // skipped entirely: if one seeded the heap, the `score > worst_score`
    // fast filter below would stick at NaN (always false) and silently drop
    // every later real score.
    let mut heap: BinaryHeap<Reverse<RankedCandidate>> = BinaryHeap::with_capacity(k + 1);
    // Hot loop: indices only grow, so a candidate tied with the current worst
    // can never displace it — once the heap is full, a plain
    // `score > worst_score` filter is exact and keeps the scan
    // branch-predictable.
    let mut worst_score = f32::NEG_INFINITY;
    for index in 0..n {
        let score = score(index);
        if score.is_nan() {
            continue;
        }
        if heap.len() < k {
            heap.push(Reverse(RankedCandidate { score, index }));
            if heap.len() == k {
                worst_score = heap.peek().map_or(f32::NEG_INFINITY, |Reverse(c)| c.score);
            }
        } else if score > worst_score {
            heap.pop();
            heap.push(Reverse(RankedCandidate { score, index }));
            worst_score = heap.peek().map_or(f32::NEG_INFINITY, |Reverse(c)| c.score);
        }
    }
    if heap.len() < k {
        // Rare: NaNs left fewer than k usable scores. Fall back to the full
        // sort path, which pads the ranking with the NaN indices.
        let cmp = |a: &usize, b: &usize| {
            score(*b).partial_cmp(&score(*a)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b))
        };
        let mut idx: Vec<usize> = (0..n).collect();
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
        idx.sort_by(cmp);
        return idx;
    }
    let mut kept: Vec<RankedCandidate> = heap.into_iter().map(|Reverse(c)| c).collect();
    // Descending by betterness = descending score, ascending index on ties.
    kept.sort_by(|a, b| b.better_than(a));
    kept.into_iter().map(|c| c.index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn sigmoid_symmetry_and_midpoint() {
        assert!(close(sigmoid_scalar(0.0), 0.5));
        assert!(close(sigmoid_scalar(3.0) + sigmoid_scalar(-3.0), 1.0));
    }

    #[test]
    fn sigmoid_is_stable_for_extreme_inputs() {
        assert!(sigmoid_scalar(1e4).is_finite());
        assert!(sigmoid_scalar(-1e4).is_finite());
        assert!(close(sigmoid_scalar(1e4), 1.0));
        assert!(close(sigmoid_scalar(-1e4), 0.0));
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let naive = sigmoid_scalar(x).ln();
            assert!(close(log_sigmoid(x), naive), "x = {x}");
        }
    }

    #[test]
    fn log_sigmoid_is_stable_for_large_negative_margin() {
        let v = log_sigmoid(-100.0);
        assert!(v.is_finite());
        assert!(close(v, -100.0));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = softmax_rows(&m);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            assert!(close(sum, 1.0));
        }
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
        assert!(close(s.get(1, 0), 1.0 / 3.0));
    }

    #[test]
    fn softmax_handles_large_values_without_overflow() {
        let mut v = vec![1000.0, 1000.0, 0.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(close(v[0], 0.5));
        assert!(close(v[2], 0.0));
    }

    #[test]
    fn softmax_empty_slice_is_noop() {
        let mut v: Vec<f32> = vec![];
        softmax_in_place(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn relu_and_tanh() {
        let m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        assert_eq!(relu(&m).as_slice(), &[0.0, 2.0]);
        assert!(close(tanh(&m).get(0, 0), (-1.0f32).tanh()));
    }

    #[test]
    fn top_k_returns_descending_indices() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 10), vec![1, 3, 2, 0]);
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn top_k_is_deterministic_on_ties() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn heap_and_select_paths_agree() {
        // 200 scores with deliberate ties; k = 5 takes the heap path,
        // k = 150 the quickselect path. Cross-check against a full sort.
        let scores: Vec<f32> = (0..200).map(|i| ((i * 7919) % 23) as f32 * 0.5).collect();
        let full_order = {
            let mut idx: Vec<usize> = (0..scores.len()).collect();
            idx.sort_by(|a, b| scores[*b].partial_cmp(&scores[*a]).unwrap().then(a.cmp(b)));
            idx
        };
        for k in [1, 5, 10, 24, 150, 200] {
            assert_eq!(top_k_indices(&scores, k), full_order[..k], "k = {k}");
        }
    }

    #[test]
    fn heap_path_is_not_poisoned_by_nan_scores() {
        // A NaN inside the first k elements must not become a sticky heap
        // root that blocks every later (real) score.
        let mut scores = vec![0.0f32; 100];
        for (i, s) in scores.iter_mut().enumerate().take(8) {
            *s = if i == 3 { f32::NAN } else { i as f32 };
        }
        scores[50] = 100.0;
        let top = top_k_indices(&scores, 3);
        assert_eq!(top, vec![50, 7, 6]);

        // All-NaN input still returns k indices (fallback path).
        let all_nan = vec![f32::NAN; 64];
        assert_eq!(top_k_indices(&all_nan, 4).len(), 4);
    }

    /// The fused mask+select path must agree with "write -inf, then select"
    /// bit for bit on both the heap and the quickselect path, including when
    /// the mask leaves fewer than k items and masked indices pad the tail.
    #[test]
    fn masked_top_k_matches_write_then_select() {
        let scores: Vec<f32> = (0..120).map(|i| ((i * 37) % 41) as f32 * 0.25).collect();
        for mask_every in [2, 3, 7] {
            let masked: Vec<bool> = (0..scores.len()).map(|i| i % mask_every == 0).collect();
            let mut written = scores.clone();
            for (w, &m) in written.iter_mut().zip(&masked) {
                if m {
                    *w = f32::NEG_INFINITY;
                }
            }
            for k in [1, 5, 10, 40, 110, 120] {
                assert_eq!(
                    top_k_indices_masked(&scores, k, &masked),
                    top_k_indices(&written, k),
                    "mask_every = {mask_every}, k = {k}"
                );
            }
        }
    }

    /// The predicate-masked variant agrees bit for bit with the bitmap
    /// variant when the predicate is a plain bitmap lookup, and supports
    /// translated index spaces (the permuted-panel use case).
    #[test]
    fn predicate_masked_top_k_matches_bitmap_variant() {
        let scores: Vec<f32> = (0..90).map(|i| ((i * 53) % 37) as f32 * 0.5).collect();
        let masked: Vec<bool> = (0..scores.len()).map(|i| i % 4 == 1).collect();
        for k in [1, 3, 11, 80, 90] {
            assert_eq!(
                top_k_indices_masked_with(&scores, k, |i| masked[i]),
                top_k_indices_masked(&scores, k, &masked),
                "k = {k}"
            );
        }
        // Translated index space: panel order [2, 0, 1] over a 3-item bitmap.
        // Global id 0 (panel position 1, the best raw score) is seen, so the
        // panel positions holding ids 2 and 1 win in score order.
        let ids = [2usize, 0, 1];
        let panel_scores = [3.0f32, 9.0, 1.0];
        let seen = [true, false, false];
        assert_eq!(top_k_indices_masked_with(&panel_scores, 2, |j| seen[ids[j]]), vec![0, 2]);
    }

    #[test]
    fn masked_top_k_pads_with_masked_items_when_k_exceeds_unmasked() {
        let scores = [5.0f32, 4.0, 3.0, 2.0];
        let masked = [true, false, true, true];
        // 1 is the only unmasked item; the rest tie at -inf and break by index.
        assert_eq!(top_k_indices_masked(&scores, 4, &masked), vec![1, 0, 2, 3]);
    }

    #[test]
    fn all_masked_still_returns_k_indices() {
        let scores = [1.0f32, 2.0, 3.0];
        assert_eq!(top_k_indices_masked(&scores, 2, &[true; 3]), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "mask bits")]
    fn masked_top_k_rejects_length_mismatch() {
        let _ = top_k_indices_masked(&[1.0, 2.0], 1, &[false]);
    }

    #[test]
    fn heap_path_handles_negative_infinity_masks() {
        let mut scores = vec![1.0f32; 100];
        for s in scores.iter_mut().take(90) {
            *s = f32::NEG_INFINITY;
        }
        scores[95] = 2.0;
        let top = top_k_indices(&scores, 3);
        assert_eq!(top, vec![95, 90, 91]);
    }
}
