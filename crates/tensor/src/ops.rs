//! Scalar and slice-level numerical operations shared across the workspace:
//! numerically stable sigmoid / log-sigmoid, softmax, and small helpers used
//! by both the manual-gradient trainer and the autograd engine.

use crate::Matrix;

/// Numerically stable scalar sigmoid `1 / (1 + exp(-x))`.
#[inline]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Numerically stable `log(sigmoid(x))`, used by the BPR loss
/// `-log σ(r_pos - r_neg)` without overflow for large negative margins.
#[inline]
pub fn log_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        -(1.0 + (-x).exp()).ln()
    } else {
        x - (1.0 + x.exp()).ln()
    }
}

/// Element-wise sigmoid of a matrix.
pub fn sigmoid(m: &Matrix) -> Matrix {
    m.map(sigmoid_scalar)
}

/// In-place, numerically stable softmax of a slice.
///
/// An empty slice is left untouched.
pub fn softmax_in_place(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in values.iter_mut() {
            *v /= sum;
        }
    }
}

/// Row-wise softmax of a matrix (each row sums to one).
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        softmax_in_place(out.row_mut(r));
    }
    out
}

/// Element-wise hyperbolic tangent.
pub fn tanh(m: &Matrix) -> Matrix {
    m.map(f32::tanh)
}

/// Element-wise rectified linear unit.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|v| v.max(0.0))
}

/// Returns the indices that would sort `scores` in descending order,
/// truncated to the top `k` entries. Ties are broken by the lower index,
/// which keeps evaluation deterministic.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &usize, b: &usize| {
        scores[*b]
            .partial_cmp(&scores[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    };
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_by(cmp);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn sigmoid_symmetry_and_midpoint() {
        assert!(close(sigmoid_scalar(0.0), 0.5));
        assert!(close(sigmoid_scalar(3.0) + sigmoid_scalar(-3.0), 1.0));
    }

    #[test]
    fn sigmoid_is_stable_for_extreme_inputs() {
        assert!(sigmoid_scalar(1e4).is_finite());
        assert!(sigmoid_scalar(-1e4).is_finite());
        assert!(close(sigmoid_scalar(1e4), 1.0));
        assert!(close(sigmoid_scalar(-1e4), 0.0));
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let naive = sigmoid_scalar(x).ln();
            assert!(close(log_sigmoid(x), naive), "x = {x}");
        }
    }

    #[test]
    fn log_sigmoid_is_stable_for_large_negative_margin() {
        let v = log_sigmoid(-100.0);
        assert!(v.is_finite());
        assert!(close(v, -100.0));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = softmax_rows(&m);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            assert!(close(sum, 1.0));
        }
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
        assert!(close(s.get(1, 0), 1.0 / 3.0));
    }

    #[test]
    fn softmax_handles_large_values_without_overflow() {
        let mut v = vec![1000.0, 1000.0, 0.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(close(v[0], 0.5));
        assert!(close(v[2], 0.0));
    }

    #[test]
    fn softmax_empty_slice_is_noop() {
        let mut v: Vec<f32> = vec![];
        softmax_in_place(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn relu_and_tanh() {
        let m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        assert_eq!(relu(&m).as_slice(), &[0.0, 2.0]);
        assert!(close(tanh(&m).get(0, 0), (-1.0f32).tanh()));
    }

    #[test]
    fn top_k_returns_descending_indices() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 10), vec![1, 3, 2, 0]);
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn top_k_is_deterministic_on_ties() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }
}
