//! Small descriptive-statistics helpers used by the evaluation crate and the
//! dataset-statistics experiments (Table 2, Figure 3, Figure 4 of the paper).

/// Arithmetic mean of a slice (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample variance (0.0 for fewer than two values).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// The `q`-th percentile (0.0..=1.0) using linear interpolation between
/// closest ranks. Returns 0.0 for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!((0.0..=1.0).contains(&q), "percentile: q must be in [0, 1], got {q}");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-width histogram over `[min, max]` with `bins` buckets, returning
/// the fraction of values falling in each bucket. Values outside the range
/// are clamped into the first / last bucket. Used to reproduce the weight- and
/// frequency-distribution figures (Fig. 3 and Fig. 4).
pub fn histogram(values: &[f64], min: f64, max: f64, bins: usize) -> Vec<f64> {
    assert!(bins > 0, "histogram: bins must be > 0");
    assert!(max > min, "histogram: max must be > min");
    let mut counts = vec![0usize; bins];
    for &v in values {
        let t = ((v - min) / (max - min)).clamp(0.0, 1.0);
        let mut b = (t * bins as f64) as usize;
        if b == bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    let total = values.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known_values() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let v = [0.05, 0.15, 0.15, 0.95, 1.5, -0.5];
        let h = histogram(&v, 0.0, 1.0, 10);
        assert_eq!(h.len(), 10);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // out-of-range values are clamped into first / last buckets
        assert!(h[0] > 0.0 && h[9] > 0.0);
        assert!((h[1] - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bins must be > 0")]
    fn histogram_zero_bins_panics() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }
}
