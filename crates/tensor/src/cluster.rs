//! Seeded, deterministic k-means over embedding rows — the index-build half
//! of the inverted-file (IVF) retrieval tier.
//!
//! [`kmeans_rows`] partitions the rows of an item embedding matrix into `k`
//! clusters with Lloyd's algorithm. The assignment step is the catalogue-side
//! GEMM this workspace already optimises — `rows · centroidsᵀ` through the
//! tiered kernels in [`crate::kernels`] — so index builds ride the same
//! AVX2/AVX-512 paths as serving and training.
//!
//! Determinism contract: the entire build is a pure function of
//! `(rows, k, max_iters, seed)` *and the active kernel tier*. Initial
//! centroids are sampled with a splitmix64-driven partial Fisher–Yates (no
//! global RNG), the argmax tie-break is the lower cluster id, and the
//! centroid update accumulates rows in ascending row order, so two builds
//! with the same inputs produce bit-identical centroids and assignments
//! regardless of how many threads the process has — the kernels themselves
//! never fan out; only callers do. Bits may differ *across* kernel tiers
//! (different accumulation orders), matching the workspace-wide convention
//! for every other GEMM consumer.

use crate::kernels;
use crate::Matrix;

/// The output of [`kmeans_rows`]: `k × d` centroids, one cluster id per input
/// row, and the number of Lloyd iterations actually executed.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centres, one per row; `clamped_k × d` where `clamped_k =
    /// k.clamp(1, n)` (empty input yields zero rows).
    pub centroids: Matrix,
    /// `assignments[i]` is the cluster id of input row `i`, in
    /// `0..centroids.rows()`.
    pub assignments: Vec<usize>,
    /// Lloyd iterations executed before convergence or the `max_iters` cap.
    pub iterations: usize,
}

/// SplitMix64 step: a tiny, high-quality seeded generator (the PCG paper's
/// recommended seeder), enough to drive the Fisher–Yates init without
/// touching the workspace RNG plumbing.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Picks `k` distinct indices out of `0..n` with a seeded partial
/// Fisher–Yates shuffle.
fn sample_distinct(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut state = seed ^ 0x51AF_D822_9C39_71C4;
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + (splitmix64(&mut state) % (n - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Seeded Lloyd k-means over the rows of `rows`.
///
/// `k` is clamped to `1..=n`; an empty input returns zero centroids and no
/// assignments. Each iteration scores every row against every centroid with
/// one `rows · centroidsᵀ` GEMM and assigns row `i` to the cluster maximising
/// `dot(x_i, c_j) − ½‖c_j‖²` (the nearest centroid in squared Euclidean
/// distance, since `‖x_i‖²` is constant per row), ties to the lower cluster
/// id. Clusters that end an iteration empty keep their previous centroid —
/// they are never re-seeded, which keeps the build deterministic and lets the
/// index layer drop them. Iteration stops when assignments stop changing or
/// after `max_iters` rounds.
pub fn kmeans_rows(rows: &Matrix, k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    let (n, d) = rows.shape();
    if n == 0 {
        return KMeansResult { centroids: Matrix::zeros(0, d), assignments: Vec::new(), iterations: 0 };
    }
    let k = k.clamp(1, n);
    let mut centroids = rows.gather_rows(&sample_distinct(n, k, seed));
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;

    let mut half_norms = vec![0.0f32; k];
    for _ in 0..max_iters {
        iterations += 1;
        for (j, hn) in half_norms.iter_mut().enumerate() {
            let c = centroids.row(j);
            *hn = 0.5 * kernels::dot(c, c);
        }
        // The assignment GEMM: n×k scores through the tiered kernel layer.
        let scores = rows.matmul_transposed(&centroids);
        let mut changed = false;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let row_scores = scores.row(i);
            let mut best = 0usize;
            let mut best_score = row_scores[0] - half_norms[0];
            for j in 1..k {
                let s = row_scores[j] - half_norms[j];
                // Strict `>` keeps the lower cluster id on ties (NaN never
                // displaces a real score either).
                if s > best_score {
                    best = j;
                    best_score = s;
                }
            }
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
        // Centroid update, accumulated in ascending row order so the f32 sums
        // are reproducible. Empty clusters keep their previous centre.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            let src = rows.row(i);
            let dst = sums.row_mut(c);
            for (acc, &v) in dst.iter_mut().zip(src) {
                *acc += v;
            }
            counts[c] += 1;
        }
        for (j, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f32;
                let dst = centroids.row_mut(j);
                for (out, &acc) in dst.iter_mut().zip(sums.row(j)) {
                    *out = acc * inv;
                }
            }
        }
        if !changed {
            break;
        }
    }
    KMeansResult { centroids, assignments, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_matrix() -> Matrix {
        // Two well-separated blobs of 8 rows each in 4-d.
        let mut data = Vec::new();
        for i in 0..16 {
            let centre = if i < 8 { 10.0 } else { -10.0 };
            for c in 0..4 {
                data.push(centre + ((i * 7 + c * 3) % 5) as f32 * 0.1);
            }
        }
        Matrix::from_vec(16, 4, data)
    }

    #[test]
    fn same_seed_is_bit_identical_across_runs_and_threads() {
        let rows = blob_matrix();
        let a = kmeans_rows(&rows, 3, 10, 42);
        let b = kmeans_rows(&rows, 3, 10, 42);
        assert_eq!(a.centroids.as_slice(), b.centroids.as_slice());
        assert_eq!(a.assignments, b.assignments);
        // The build never touches the worker pool, so running it from a
        // different thread (or a process with a different pool size) cannot
        // change a bit.
        let rows2 = rows.clone();
        let c = std::thread::spawn(move || kmeans_rows(&rows2, 3, 10, 42)).join().unwrap();
        assert_eq!(a.centroids.as_slice(), c.centroids.as_slice());
        assert_eq!(a.assignments, c.assignments);
    }

    #[test]
    fn different_seeds_pick_different_initialisations() {
        let rows = blob_matrix();
        let a = kmeans_rows(&rows, 5, 1, 1);
        let b = kmeans_rows(&rows, 5, 1, 2);
        // One Lloyd step from different inits: assignments or centroids must
        // differ for at least one seed pair on this asymmetric input.
        assert!(a.centroids.as_slice() != b.centroids.as_slice() || a.assignments != b.assignments);
    }

    #[test]
    fn separated_blobs_are_split_cleanly() {
        let rows = blob_matrix();
        let result = kmeans_rows(&rows, 2, 20, 7);
        let first = result.assignments[0];
        assert!(result.assignments[..8].iter().all(|&a| a == first));
        assert!(result.assignments[8..].iter().all(|&a| a != first));
        // Centroids land on the blob means (coordinates near ±10).
        for j in 0..2 {
            let mean = result.centroids.row(j).iter().sum::<f32>() / 4.0;
            assert!(mean.abs() > 9.0, "centroid {j} mean = {mean}");
        }
    }

    #[test]
    fn k_is_clamped_to_row_count() {
        let rows = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let result = kmeans_rows(&rows, 10, 5, 3);
        assert_eq!(result.centroids.rows(), 3);
        assert_eq!(result.assignments.len(), 3);
        // With k = n every row gets its own cluster after convergence.
        let mut seen = result.assignments.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);

        let zero = kmeans_rows(&rows, 0, 5, 3);
        assert_eq!(zero.centroids.rows(), 1);
        assert!(zero.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let rows = Matrix::zeros(0, 4);
        let result = kmeans_rows(&rows, 4, 5, 9);
        assert_eq!(result.centroids.rows(), 0);
        assert!(result.assignments.is_empty());
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn identical_rows_leave_empty_clusters_with_stable_centroids() {
        // All rows identical: every row scores equally against every (equal)
        // initial centroid, the tie-break sends them all to cluster 0, and
        // clusters 1..k keep their initial centres bit-for-bit.
        let rows = Matrix::full(6, 3, 2.5);
        let result = kmeans_rows(&rows, 3, 8, 11);
        assert!(result.assignments.iter().all(|&a| a == 0));
        for j in 0..3 {
            assert_eq!(result.centroids.row(j), &[2.5, 2.5, 2.5]);
        }
    }

    #[test]
    fn max_iters_zero_returns_initial_sampling() {
        let rows = blob_matrix();
        let result = kmeans_rows(&rows, 2, 0, 5);
        assert_eq!(result.iterations, 0);
        assert_eq!(result.centroids.rows(), 2);
        // Assignments default to cluster 0 when no iteration ran.
        assert!(result.assignments.iter().all(|&a| a == 0));
    }
}
