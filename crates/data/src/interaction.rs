//! Raw user–item interactions, the input of the preprocessing pipeline.

use serde::{Deserialize, Serialize};

/// A single user–item interaction (a purchase, rating or review event).
///
/// `rating` follows the paper's datasets: explicit ratings are on a 1–5 star
/// scale and implicit feedback is recorded as 5.0 (always positive after
/// binarization). `timestamp` only needs to be monotone within a user to
/// establish chronological order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interaction {
    /// User identifier (not necessarily contiguous before preprocessing).
    pub user: u64,
    /// Item identifier (not necessarily contiguous before preprocessing).
    pub item: u64,
    /// Chronological position of the interaction.
    pub timestamp: u64,
    /// Rating value in `[1, 5]`; implicit feedback should use 5.0.
    pub rating: f32,
}

impl Interaction {
    /// Creates a new interaction record.
    pub fn new(user: u64, item: u64, timestamp: u64, rating: f32) -> Self {
        Self { user, item, timestamp, rating }
    }

    /// Whether this interaction is positive after the paper's binarization
    /// rule (ratings of 4 and 5 become 1, lower ratings become 0).
    pub fn is_positive(&self, threshold: f32) -> bool {
        self.rating >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binarization_threshold() {
        let good = Interaction::new(1, 2, 3, 4.0);
        let bad = Interaction::new(1, 2, 3, 3.5);
        assert!(good.is_positive(4.0));
        assert!(!bad.is_positive(4.0));
    }

    #[test]
    fn construction_preserves_fields() {
        let i = Interaction::new(7, 11, 13, 5.0);
        assert_eq!((i.user, i.item, i.timestamp, i.rating), (7, 11, 13, 5.0));
    }
}
