//! Mini-batch assembly for BPR training: shuffling, negative sampling and
//! packing of sliding-window instances into fixed-size batches.
//!
//! [`BatchSampler`] owns everything the training loop needs per epoch — the
//! sliding windows, one [`NegativeSampler`] per user and one seeded RNG
//! stream — and packs [`PreparedInstance`]s into reusable buffers, so batch
//! assembly performs **no per-instance allocation** after the first epoch
//! (negatives are drawn through [`NegativeSampler::sample_batch`] into the
//! retained buffers).
//!
//! ## Determinism contract
//!
//! For a fixed seed the shuffled instance order and the negative-sample
//! stream are drawn once per epoch, in instance order, independent of the
//! batch size: changing `batch_size` only regroups the same instance stream
//! into different batches. That is what makes batch-size-invariance testable
//! — `batch_size = 1` and `batch_size = 256` train on identical
//! (window, negatives) sequences.

use crate::append::DeltaView;
use crate::dataset::ItemId;
use crate::negative::NegativeSampler;
use crate::window::{sliding_windows, TrainingInstance};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// One sliding-window instance with its low-order sub-window and sampled
/// negatives, ready for a gradient step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreparedInstance {
    /// Dense user id.
    pub user: usize,
    /// The `n_h` input items.
    pub input: Vec<ItemId>,
    /// The last `n_l` input items (empty when the low-order term is ablated).
    pub low: Vec<ItemId>,
    /// The `n_p` positive target items.
    pub targets: Vec<ItemId>,
    /// One sampled negative per target.
    pub negatives: Vec<ItemId>,
}

/// Shuffles sliding-window instances and packs them into fixed-size
/// mini-batches with freshly sampled negatives.
///
/// Users who interacted with the whole catalogue (no negative exists) are
/// excluded at construction; all remaining windows are visited exactly once
/// per epoch.
#[derive(Debug)]
pub struct BatchSampler {
    windows: Vec<TrainingInstance>,
    /// Per-user negative samplers, indexed by dense user id; `None` for
    /// users whose windows were excluded.
    samplers: Vec<Option<NegativeSampler>>,
    n_l: usize,
    batch_size: usize,
    rng: StdRng,
    order: Vec<usize>,
    cursor: usize,
    /// Reused instance buffers (capacity `batch_size`).
    batch: Vec<PreparedInstance>,
    /// Maps the (possibly compacted) window user index to the user id the
    /// emitted instances carry. `None` = identity (the common full-dataset
    /// case); `Some` for delta views, whose sequences are compacted to the
    /// users with fresh windows.
    user_ids: Option<Vec<usize>>,
}

impl BatchSampler {
    /// Creates a sampler over the sliding windows of `train_sequences`
    /// (window sizes `n_h`/`n_p`, low-order sub-window `n_l`), drawing
    /// shuffle order and negatives from one RNG stream seeded with `seed`.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`, `n_h == 0`, `n_p == 0`, `n_l > n_h` or
    /// `num_items == 0`.
    pub fn new(
        train_sequences: &[Vec<ItemId>],
        num_items: usize,
        n_h: usize,
        n_p: usize,
        n_l: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        Self::with_parts(train_sequences, None, None, num_items, n_h, n_p, n_l, batch_size, seed)
    }

    /// Creates a sampler over the fresh windows of a
    /// [`DeltaView`](crate::append::DeltaView): windows come from the
    /// compacted delta sub-sequences, negatives are drawn against each
    /// user's **full** seen set, and the emitted instances carry the real
    /// (global) user ids — so an incremental trainer indexes the same
    /// embedding rows a full retrain would.
    ///
    /// # Panics
    /// As [`Self::new`].
    pub fn over_delta(
        delta: &DeltaView,
        num_items: usize,
        n_h: usize,
        n_p: usize,
        n_l: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        Self::with_parts(
            &delta.sequences,
            Some(&delta.seen),
            Some(delta.users.clone()),
            num_items,
            n_h,
            n_p,
            n_l,
            batch_size,
            seed,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn with_parts(
        train_sequences: &[Vec<ItemId>],
        seen_override: Option<&[Vec<ItemId>]>,
        user_ids: Option<Vec<usize>>,
        num_items: usize,
        n_h: usize,
        n_p: usize,
        n_l: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0, "BatchSampler: batch_size must be positive");
        assert!(n_l <= n_h, "BatchSampler: n_l ({n_l}) must not exceed n_h ({n_h})");
        assert!(num_items > 0, "BatchSampler: num_items must be positive");
        let seen_sequences = seen_override.unwrap_or(train_sequences);
        assert_eq!(seen_sequences.len(), train_sequences.len(), "BatchSampler: one seen set per sequence");
        let samplers: Vec<Option<NegativeSampler>> = seen_sequences
            .iter()
            .map(|seq| {
                let distinct: HashSet<ItemId> = seq.iter().copied().collect();
                (distinct.len() < num_items).then(|| NegativeSampler::new(num_items, distinct))
            })
            .collect();
        let windows: Vec<TrainingInstance> =
            sliding_windows(train_sequences, n_h, n_p).into_iter().filter(|w| samplers[w.user].is_some()).collect();
        let order: Vec<usize> = (0..windows.len()).collect();
        Self {
            windows,
            samplers,
            n_l,
            batch_size,
            rng: StdRng::seed_from_u64(seed),
            order,
            cursor: 0,
            batch: Vec::new(),
            user_ids,
        }
    }

    /// Number of training instances per epoch.
    pub fn num_instances(&self) -> usize {
        self.windows.len()
    }

    /// Number of batches per epoch (the last batch may be smaller).
    pub fn num_batches(&self) -> usize {
        self.windows.len().div_ceil(self.batch_size)
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Reshuffles the instance order and rewinds to the first batch.
    pub fn start_epoch(&mut self) {
        self.order.shuffle(&mut self.rng);
        self.cursor = 0;
    }

    /// Packs the next mini-batch into the reused buffers and returns it, or
    /// `None` when the epoch is exhausted.
    pub fn next_batch(&mut self) -> Option<&[PreparedInstance]> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let take = self.batch_size.min(self.order.len() - self.cursor);
        while self.batch.len() < take {
            self.batch.push(PreparedInstance::default());
        }
        for (slot, &idx) in self.batch.iter_mut().zip(&self.order[self.cursor..self.cursor + take]) {
            let window = &self.windows[idx];
            let sampler = self.samplers[window.user].as_ref().expect("samplerless windows are filtered out");
            slot.user = self.user_ids.as_ref().map_or(window.user, |ids| ids[window.user]);
            slot.input.clear();
            slot.input.extend_from_slice(&window.input);
            slot.low.clear();
            if self.n_l > 0 {
                slot.low.extend_from_slice(&window.input[window.input.len() - self.n_l..]);
            }
            slot.targets.clear();
            slot.targets.extend_from_slice(&window.targets);
            slot.negatives.resize(window.targets.len(), 0);
            sampler.sample_batch(&mut slot.negatives, &mut self.rng);
        }
        self.cursor += take;
        Some(&self.batch[..take])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequences() -> Vec<Vec<ItemId>> {
        vec![(0..9).collect(), (3..12).collect(), vec![0, 5, 2, 7, 4, 9, 6], vec![1, 2]]
    }

    fn collect_epoch(sampler: &mut BatchSampler) -> Vec<PreparedInstance> {
        sampler.start_epoch();
        let mut all = Vec::new();
        while let Some(batch) = sampler.next_batch() {
            all.extend_from_slice(batch);
        }
        all
    }

    #[test]
    fn epoch_visits_every_window_exactly_once() {
        let mut sampler = BatchSampler::new(&sequences(), 12, 4, 2, 2, 5, 9);
        let expected = sampler.num_instances();
        let all = collect_epoch(&mut sampler);
        assert_eq!(all.len(), expected);
        assert_eq!(sampler.num_batches(), expected.div_ceil(5));
        // instances carry the right shapes
        for inst in &all {
            assert_eq!(inst.input.len(), 4);
            assert_eq!(inst.low, inst.input[2..].to_vec());
            assert_eq!(inst.targets.len(), 2);
            assert_eq!(inst.negatives.len(), 2);
        }
    }

    #[test]
    fn negatives_are_never_seen_items() {
        let seqs = sequences();
        let mut sampler = BatchSampler::new(&seqs, 12, 4, 2, 2, 3, 11);
        for inst in collect_epoch(&mut sampler) {
            let seen: HashSet<ItemId> = seqs[inst.user].iter().copied().collect();
            for &n in &inst.negatives {
                assert!(!seen.contains(&n), "user {} drew seen negative {n}", inst.user);
            }
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_batches() {
        let mut a = BatchSampler::new(&sequences(), 12, 4, 2, 2, 4, 77);
        let mut b = BatchSampler::new(&sequences(), 12, 4, 2, 2, 4, 77);
        assert_eq!(collect_epoch(&mut a), collect_epoch(&mut b));
        // and the second epoch reshuffles but still matches across samplers
        assert_eq!(collect_epoch(&mut a), collect_epoch(&mut b));
    }

    #[test]
    fn instance_stream_is_independent_of_batch_size() {
        let mut small = BatchSampler::new(&sequences(), 12, 4, 2, 1, 1, 5);
        let mut large = BatchSampler::new(&sequences(), 12, 4, 2, 1, 7, 5);
        assert_eq!(collect_epoch(&mut small), collect_epoch(&mut large));
    }

    #[test]
    fn saturated_users_are_excluded() {
        // user 0 interacted with every item: no negatives exist
        let seqs = vec![vec![0, 1, 2, 0, 1, 2], vec![0, 1, 0, 1, 0]];
        let sampler = BatchSampler::new(&seqs, 3, 2, 1, 1, 2, 1);
        assert!(sampler.num_instances() > 0);
        let mut sampler = sampler;
        for inst in collect_epoch(&mut sampler) {
            assert_eq!(inst.user, 1);
        }
    }

    #[test]
    fn low_order_window_is_empty_when_ablated() {
        let mut sampler = BatchSampler::new(&sequences(), 12, 4, 2, 0, 4, 3);
        for inst in collect_epoch(&mut sampler) {
            assert!(inst.low.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        let _ = BatchSampler::new(&sequences(), 12, 4, 2, 2, 0, 1);
    }

    #[test]
    fn delta_sampler_emits_global_user_ids_and_only_fresh_windows() {
        let mut data = crate::append::AppendableDataset::from_sequences(sequences(), 12);
        data.mark_trained();
        // user 2 gains two fresh interactions; everyone else is untouched
        data.append(2, 10);
        data.append(2, 11);
        let delta = data.delta_view(4, 2);
        let mut sampler = BatchSampler::over_delta(&delta, data.num_items(), 4, 2, 2, 3, 17);
        assert_eq!(sampler.num_instances(), 2, "one fresh window per appended interaction");
        let all = collect_epoch(&mut sampler);
        let seen: HashSet<ItemId> = data.sequences()[2].iter().copied().collect();
        for inst in &all {
            assert_eq!(inst.user, 2, "compact indices must map back to the global user id");
            assert!(inst.targets.iter().any(|t| *t >= 10), "every fresh window ends past the watermark");
            for n in &inst.negatives {
                assert!(!seen.contains(n), "negatives must respect the FULL history, not just the delta");
            }
        }
    }

    #[test]
    fn delta_sampler_over_everything_fresh_matches_the_full_sampler() {
        let data = crate::append::AppendableDataset::from_sequences(sequences(), 12);
        let delta = data.delta_view(4, 2);
        let mut full = BatchSampler::new(&sequences(), 12, 4, 2, 2, 5, 9);
        let mut fresh = BatchSampler::over_delta(&delta, 12, 4, 2, 2, 5, 9);
        assert_eq!(collect_epoch(&mut full), collect_epoch(&mut fresh));
    }
}
