//! Synthetic benchmark-dataset generators.
//!
//! The six public datasets used in the paper (Amazon CDs/Books, Goodreads
//! Children/Comics, MovieLens 1M/20M) are not available in this environment,
//! so experiments run on synthetic datasets generated here. Each
//! [`DatasetProfile`] matches the corresponding row of Table 2 (user count,
//! item count, mean sequence length and sparsity) at a configurable scale, and
//! the generative process plants exactly the structure the paper's models are
//! designed to exploit:
//!
//! * per-user **long-term preferences** over item clusters (→ the `u·wᵀ` term),
//! * **low-order and high-order sequential associations**: the next item's
//!   cluster depends on the clusters of the previous one and two items
//!   (→ the pooled `o` and `h` terms),
//! * **item synergies**: designated cluster pairs co-occurring in the recent
//!   window shift the next-item distribution (→ the Hadamard-product term),
//! * **Zipfian item popularity** inside each cluster, which produces the
//!   long-tailed frequency distributions of Figure 3, and
//! * uniform noise interactions controlling sparsity/difficulty.

mod generator;
mod markov;
mod profile;

pub use generator::generate;
pub use markov::ClusterDynamics;
pub use profile::DatasetProfile;
