//! Latent cluster dynamics: the sequential-association and synergy structure
//! planted in the synthetic datasets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The latent dynamics over item clusters used by the generator:
/// a first-order transition matrix, a second-order transition map and a set of
/// synergy cluster pairs.
#[derive(Debug, Clone)]
pub struct ClusterDynamics {
    num_clusters: usize,
    /// `order1[c]` is a probability distribution over the next cluster given
    /// that the previous item came from cluster `c`.
    order1: Vec<Vec<f64>>,
    /// `order2[a][b]` is the preferred next cluster given the clusters of the
    /// item two steps back (`a`) and one step back (`b`).
    order2: Vec<Vec<usize>>,
    /// `(a, b) → c` synergy triggers: when clusters `a` and `b` both appear in
    /// the recent window, cluster `c` gets an extra boost.
    synergies: Vec<(usize, usize, usize)>,
}

impl ClusterDynamics {
    /// Builds the dynamics for `num_clusters` clusters and `num_synergy_pairs`
    /// synergy triggers, deterministically from `seed`.
    pub fn new(num_clusters: usize, num_synergy_pairs: usize, seed: u64) -> Self {
        assert!(num_clusters >= 2, "ClusterDynamics: need at least 2 clusters");
        let mut rng = StdRng::seed_from_u64(seed);

        // First-order: every cluster strongly prefers its "successor" cluster
        // (a chain, like sequels / series), keeps some self-transition mass and
        // spreads a small remainder over two random clusters.
        let mut order1 = vec![vec![0.0f64; num_clusters]; num_clusters];
        for (c, row) in order1.iter_mut().enumerate() {
            let successor = (c + 1) % num_clusters;
            row[successor] += 0.55;
            row[c] += 0.25;
            for _ in 0..2 {
                row[rng.gen_range(0..num_clusters)] += 0.10;
            }
            let sum: f64 = row.iter().sum();
            row.iter_mut().for_each(|v| *v /= sum);
        }

        // Second-order: the pair (a, b) of the two previous clusters prefers a
        // deterministic third cluster, sampled once per pair.
        let order2 =
            (0..num_clusters).map(|_| (0..num_clusters).map(|_| rng.gen_range(0..num_clusters)).collect()).collect();

        // Synergy triggers over distinct cluster pairs.
        let mut synergies = Vec::with_capacity(num_synergy_pairs);
        for _ in 0..num_synergy_pairs {
            let a = rng.gen_range(0..num_clusters);
            let mut b = rng.gen_range(0..num_clusters);
            if b == a {
                b = (b + 1) % num_clusters;
            }
            let c = rng.gen_range(0..num_clusters);
            synergies.push((a, b, c));
        }

        Self { num_clusters, order1, order2, synergies }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// The synergy triggers.
    pub fn synergies(&self) -> &[(usize, usize, usize)] {
        &self.synergies
    }

    /// First-order transition distribution out of cluster `c`.
    pub fn order1_row(&self, c: usize) -> &[f64] {
        &self.order1[c]
    }

    /// Preferred next cluster given the clusters two steps back and one step
    /// back.
    pub fn order2_target(&self, two_back: usize, one_back: usize) -> usize {
        self.order2[two_back][one_back]
    }

    /// Builds the unnormalised next-cluster weights for one generation step.
    ///
    /// * `user_pref` — the user's long-term preference distribution,
    /// * `recent_clusters` — clusters of the most recent items, newest last,
    /// * the `weight_*` arguments mirror [`super::DatasetProfile`].
    pub fn next_cluster_weights(
        &self,
        user_pref: &[f64],
        recent_clusters: &[usize],
        weight_user: f64,
        weight_order1: f64,
        weight_order2: f64,
        weight_synergy: f64,
    ) -> Vec<f64> {
        assert_eq!(user_pref.len(), self.num_clusters, "user_pref length mismatch");
        let mut weights: Vec<f64> = user_pref.iter().map(|p| p * weight_user).collect();

        if let Some(&last) = recent_clusters.last() {
            for (c, w) in weights.iter_mut().enumerate() {
                *w += weight_order1 * self.order1[last][c];
            }
        }
        if recent_clusters.len() >= 2 {
            let two_back = recent_clusters[recent_clusters.len() - 2];
            let one_back = recent_clusters[recent_clusters.len() - 1];
            weights[self.order2_target(two_back, one_back)] += weight_order2;
        }
        for &(a, b, c) in &self.synergies {
            if recent_clusters.contains(&a) && recent_clusters.contains(&b) {
                weights[c] += weight_synergy;
            }
        }
        weights
    }
}

/// Samples an index from unnormalised non-negative weights.
pub fn sample_weighted(weights: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "sample_weighted: weights must not be all zero");
    let mut draw = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if draw < w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order1_rows_are_distributions() {
        let d = ClusterDynamics::new(8, 4, 3);
        for c in 0..8 {
            let sum: f64 = d.order1_row(c).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(d.order1_row(c).iter().all(|&v| v >= 0.0));
        }
        assert_eq!(d.num_clusters(), 8);
        assert_eq!(d.synergies().len(), 4);
    }

    #[test]
    fn dynamics_are_deterministic_in_the_seed() {
        let a = ClusterDynamics::new(6, 3, 42);
        let b = ClusterDynamics::new(6, 3, 42);
        assert_eq!(a.order1_row(2), b.order1_row(2));
        assert_eq!(a.synergies(), b.synergies());
        assert_eq!(a.order2_target(1, 4), b.order2_target(1, 4));
    }

    #[test]
    fn successor_cluster_dominates_first_order() {
        let d = ClusterDynamics::new(10, 0, 7);
        for c in 0..10 {
            let row = d.order1_row(c);
            let successor = (c + 1) % 10;
            assert!(row[successor] >= 0.35, "successor mass too low for cluster {c}");
        }
    }

    #[test]
    fn next_cluster_weights_reflect_all_components() {
        let d = ClusterDynamics::new(4, 0, 1);
        let uniform = vec![0.25; 4];
        // no history: only the user preference contributes
        let w = d.next_cluster_weights(&uniform, &[], 1.0, 1.0, 1.0, 1.0);
        assert!(w.iter().all(|&x| (x - 0.25).abs() < 1e-9));
        // with history the successor of the last cluster gains mass
        let w = d.next_cluster_weights(&uniform, &[0], 0.0, 1.0, 0.0, 0.0);
        let successor_mass = w[1];
        assert!(successor_mass > w[3]);
    }

    #[test]
    fn synergy_boost_applies_when_both_clusters_present() {
        let mut d = ClusterDynamics::new(5, 1, 9);
        // overwrite with a known synergy for the test
        d.synergies = vec![(0, 1, 4)];
        let uniform = vec![0.2; 5];
        let with_pair = d.next_cluster_weights(&uniform, &[0, 1], 0.0, 0.0, 0.0, 1.0);
        let without_pair = d.next_cluster_weights(&uniform, &[0, 2], 0.0, 0.0, 0.0, 1.0);
        assert!(with_pair[4] > without_pair[4]);
    }

    #[test]
    fn weighted_sampling_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = sample_weighted(&[0.0, 1.0, 0.0], &mut rng);
            assert_eq!(s, 1);
        }
    }
}
