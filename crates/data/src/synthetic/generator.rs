//! The synthetic interaction-sequence generator.

use super::markov::{sample_weighted, ClusterDynamics};
use super::profile::DatasetProfile;
use crate::dataset::SequenceDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Items of one cluster together with the cumulative Zipf popularity weights
/// used to sample an item inside the cluster.
#[derive(Debug, Clone)]
struct ClusterItems {
    items: Vec<usize>,
    cumulative: Vec<f64>,
}

impl ClusterItems {
    fn new(items: Vec<usize>, zipf_exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(items.len());
        let mut acc = 0.0;
        for rank in 0..items.len() {
            acc += 1.0 / ((rank + 1) as f64).powf(zipf_exponent);
            cumulative.push(acc);
        }
        Self { items, cumulative }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("cluster must not be empty");
        let draw = rng.gen_range(0.0..total);
        let pos = self.cumulative.partition_point(|&c| c < draw);
        self.items[pos.min(self.items.len() - 1)]
    }
}

/// Generates a synthetic [`SequenceDataset`] for `profile`, deterministically
/// from `seed`.
pub fn generate(profile: &DatasetProfile, seed: u64) -> SequenceDataset {
    let num_users = profile.scaled_users();
    let num_items = profile.scaled_items();
    let num_clusters = profile.num_clusters.min(num_items).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let dynamics = ClusterDynamics::new(num_clusters, profile.num_synergy_pairs, seed ^ 0x5eed);

    // Assign items to clusters round-robin so clusters have near-equal size,
    // then build Zipf popularity inside each cluster.
    let mut cluster_members: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
    for item in 0..num_items {
        cluster_members[item % num_clusters].push(item);
    }
    let clusters: Vec<ClusterItems> =
        cluster_members.iter().map(|members| ClusterItems::new(members.clone(), profile.zipf_exponent)).collect();
    let item_cluster: Vec<usize> = (0..num_items).map(|item| item % num_clusters).collect();

    // The window length the synergy / association structure looks back over;
    // matches the order of associations the paper reports as significant.
    let recent_len = 4usize;

    let mut sequences = Vec::with_capacity(num_users);
    for _ in 0..num_users {
        // Long-term preference: a small number of preferred clusters.
        let num_preferred = rng.gen_range(2..=4usize.min(num_clusters));
        let mut preference = vec![0.05f64; num_clusters];
        for _ in 0..num_preferred {
            preference[rng.gen_range(0..num_clusters)] += 1.0;
        }
        let total: f64 = preference.iter().sum();
        preference.iter_mut().for_each(|p| *p /= total);

        // Sequence length: exponential around the profile mean, clamped below
        // by the preprocessing minimum.
        let mean = profile.mean_seq_len.max(profile.min_seq_len as f64);
        let draw: f64 = rng.gen_range(f64::EPSILON..1.0);
        let length = (-draw.ln() * mean).round() as usize;
        let length = length.clamp(profile.min_seq_len, (mean * 4.0) as usize);

        let mut seq: Vec<usize> = Vec::with_capacity(length);
        let mut recent_clusters: Vec<usize> = Vec::with_capacity(recent_len);
        for _ in 0..length {
            let item = if rng.gen_bool(profile.noise_prob) {
                rng.gen_range(0..num_items)
            } else {
                let weights = dynamics.next_cluster_weights(
                    &preference,
                    &recent_clusters,
                    profile.weight_user,
                    profile.weight_order1,
                    profile.weight_order2,
                    profile.weight_synergy,
                );
                let cluster = sample_weighted(&weights, &mut rng);
                clusters[cluster].sample(&mut rng)
            };
            seq.push(item);
            recent_clusters.push(item_cluster[item]);
            if recent_clusters.len() > recent_len {
                recent_clusters.remove(0);
            }
        }
        sequences.push(seq);
    }

    SequenceDataset::new(profile.name.clone(), sequences, num_items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatasetProfile {
        DatasetProfile::tiny("tiny")
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate(&tiny(), 7);
        let b = generate(&tiny(), 7);
        assert_eq!(a.sequences, b.sequences);
        let c = generate(&tiny(), 8);
        assert_ne!(a.sequences, c.sequences);
    }

    #[test]
    fn generated_counts_match_profile() {
        let p = tiny();
        let d = generate(&p, 1);
        assert_eq!(d.num_users(), p.scaled_users());
        assert_eq!(d.num_items, p.scaled_items());
        // every user respects the minimum sequence length
        assert!(d.sequences.iter().all(|s| s.len() >= p.min_seq_len));
    }

    #[test]
    fn mean_sequence_length_is_in_the_right_ballpark() {
        let p = DatasetProfile::tiny("t").with_scale(4.0); // more users => tighter mean
        let d = generate(&p, 3);
        let mean = d.interactions_per_user();
        assert!(
            mean > p.mean_seq_len * 0.5 && mean < p.mean_seq_len * 2.0,
            "mean sequence length {mean} too far from profile mean {}",
            p.mean_seq_len
        );
    }

    #[test]
    fn item_popularity_is_long_tailed() {
        let d = generate(&DatasetProfile::tiny("t").with_scale(4.0), 5);
        let mut freqs = d.item_frequencies();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = freqs.iter().take(freqs.len() / 10).sum();
        let total: usize = freqs.iter().sum();
        assert!(
            top_decile as f64 > total as f64 * 0.2,
            "top 10% of items should hold well over 10% of interactions (got {top_decile}/{total})"
        );
    }

    #[test]
    fn sequential_structure_is_present() {
        // Transitions between items should be far from uniform: measure how
        // often the next item's cluster equals the successor of the previous
        // item's cluster, which the first-order dynamics prefer.
        let p = tiny();
        let d = generate(&p, 11);
        let num_clusters = p.num_clusters.min(d.num_items).max(2);
        let cluster_of = |item: usize| item % num_clusters;
        let mut successor_hits = 0usize;
        let mut transitions = 0usize;
        for seq in &d.sequences {
            for pair in seq.windows(2) {
                transitions += 1;
                if cluster_of(pair[1]) == (cluster_of(pair[0]) + 1) % num_clusters
                    || cluster_of(pair[1]) == cluster_of(pair[0])
                {
                    successor_hits += 1;
                }
            }
        }
        let rate = successor_hits as f64 / transitions as f64;
        let chance = 2.0 / num_clusters as f64;
        assert!(rate > chance * 1.5, "sequential structure too weak: successor rate {rate:.3} vs chance {chance:.3}");
    }
}
