//! Per-dataset generation profiles matching Table 2 of the paper.

use super::generate;
use crate::dataset::SequenceDataset;
use serde::{Deserialize, Serialize};

/// Parameters describing one synthetic benchmark dataset.
///
/// The six constructors ([`DatasetProfile::cds`] …) reproduce the user/item
/// counts and mean sequence lengths of Table 2; [`DatasetProfile::with_scale`]
/// shrinks the user and item counts proportionally so the full experiment
/// suite can run on a laptop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's tables.
    pub name: String,
    /// Number of users at scale 1.0.
    pub num_users: usize,
    /// Number of items at scale 1.0.
    pub num_items: usize,
    /// Mean interactions per user (`#intrns/u` in Table 2).
    pub mean_seq_len: f64,
    /// Minimum interactions per user (the preprocessing keeps users with at
    /// least 10 interactions).
    pub min_seq_len: usize,
    /// Number of latent item clusters used by the generator.
    pub num_clusters: usize,
    /// Zipf exponent of item popularity inside a cluster (larger → more
    /// head-heavy, i.e. the frequent items dominate).
    pub zipf_exponent: f64,
    /// Probability that an interaction is uniform noise rather than
    /// structure-driven.
    pub noise_prob: f64,
    /// Mixture weight of the user's long-term cluster preference.
    pub weight_user: f64,
    /// Mixture weight of the first-order (last item) association.
    pub weight_order1: f64,
    /// Mixture weight of the second-order (two items back) association.
    pub weight_order2: f64,
    /// Additional boost applied when a synergy pair is present in the recent
    /// window.
    pub weight_synergy: f64,
    /// Number of cluster pairs that act as synergy triggers.
    pub num_synergy_pairs: usize,
    /// Scale factor applied to `num_users` and `num_items`.
    pub scale: f64,
}

impl DatasetProfile {
    fn base(
        name: &str,
        num_users: usize,
        num_items: usize,
        mean_seq_len: f64,
        noise_prob: f64,
        zipf_exponent: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            num_users,
            num_items,
            mean_seq_len,
            min_seq_len: 10,
            num_clusters: 32,
            zipf_exponent,
            noise_prob,
            weight_user: 0.35,
            weight_order1: 0.35,
            weight_order2: 0.15,
            weight_synergy: 0.15,
            num_synergy_pairs: 16,
            scale: 1.0,
        }
    }

    /// Amazon-CDs: the sparsest dataset (27.7 interactions/user).
    pub fn cds() -> Self {
        Self::base("CDs", 17_052, 35_118, 27.7, 0.30, 1.05)
    }

    /// Amazon-Books (35.4 interactions/user); users have strong long-term
    /// preferences, mirroring the paper's observation that SASRec does well
    /// on Books.
    pub fn books() -> Self {
        let mut p = Self::base("Books", 52_406, 41_264, 35.4, 0.25, 1.1);
        p.weight_user = 0.5;
        p.weight_order1 = 0.25;
        p.weight_order2 = 0.1;
        p
    }

    /// Goodreads-Children (57.6 interactions/user), moderately sparse.
    pub fn children() -> Self {
        Self::base("Children", 48_296, 32_871, 57.6, 0.20, 1.1)
    }

    /// Goodreads-Comics (70.0 interactions/user), moderately sparse with
    /// strong sequential structure (series are read in order).
    pub fn comics() -> Self {
        let mut p = Self::base("Comics", 34_445, 33_121, 70.0, 0.15, 1.1);
        p.weight_user = 0.25;
        p.weight_order1 = 0.40;
        p.weight_order2 = 0.20;
        p
    }

    /// MovieLens-20M: dense, popularity-dominated.
    pub fn ml_20m() -> Self {
        Self::base("ML-20M", 129_780, 13_663, 76.5, 0.20, 1.3)
    }

    /// MovieLens-1M: the densest dataset (96.4 interactions/user).
    pub fn ml_1m() -> Self {
        Self::base("ML-1M", 5_950, 3_125, 96.4, 0.15, 1.25)
    }

    /// All six benchmark profiles in the order used by the paper's tables.
    pub fn all() -> Vec<Self> {
        vec![Self::cds(), Self::books(), Self::children(), Self::comics(), Self::ml_20m(), Self::ml_1m()]
    }

    /// A tiny profile used by unit/integration tests across the workspace.
    pub fn tiny(name: &str) -> Self {
        let mut p = Self::base(name, 60, 120, 30.0, 0.2, 1.1);
        p.num_clusters = 8;
        p.num_synergy_pairs = 4;
        p
    }

    /// Returns a copy with the user and item counts scaled by `scale`
    /// (clamped so at least 20 users and 40 items remain).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "with_scale: scale must be positive");
        self.scale = scale;
        self
    }

    /// Number of users after applying the scale factor.
    pub fn scaled_users(&self) -> usize {
        ((self.num_users as f64 * self.scale).round() as usize).max(20)
    }

    /// Number of items after applying the scale factor.
    pub fn scaled_items(&self) -> usize {
        ((self.num_items as f64 * self.scale).round() as usize).max(40)
    }

    /// Generates the synthetic dataset for this profile with the given seed.
    pub fn generate(&self, seed: u64) -> SequenceDataset {
        generate(self, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table2_counts() {
        assert_eq!(DatasetProfile::cds().num_users, 17_052);
        assert_eq!(DatasetProfile::ml_1m().num_items, 3_125);
        assert_eq!(DatasetProfile::all().len(), 6);
        let names: Vec<String> = DatasetProfile::all().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["CDs", "Books", "Children", "Comics", "ML-20M", "ML-1M"]);
    }

    #[test]
    fn scaling_shrinks_counts_with_floor() {
        let p = DatasetProfile::cds().with_scale(0.01);
        assert_eq!(p.scaled_users(), 171);
        assert_eq!(p.scaled_items(), 351);
        let tiny = DatasetProfile::cds().with_scale(1e-9);
        assert_eq!(tiny.scaled_users(), 20);
        assert_eq!(tiny.scaled_items(), 40);
    }

    #[test]
    fn mixture_weights_are_a_distribution_up_to_synergy() {
        for p in DatasetProfile::all() {
            let total = p.weight_user + p.weight_order1 + p.weight_order2 + p.weight_synergy;
            assert!((total - 1.0).abs() < 1e-9, "{}: weights sum to {total}", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = DatasetProfile::cds().with_scale(0.0);
    }
}
