//! # ham-data
//!
//! Data substrate for the HAM reproduction: interaction datasets, the
//! preprocessing protocol of the paper, the three experimental splits
//! (80-20-CUT, 80-3-CUT, 3-LOS), sliding-window training instances, negative
//! sampling, dataset statistics, and synthetic generators standing in for the
//! six public benchmark datasets (Amazon CDs/Books, Goodreads
//! Children/Comics, MovieLens 1M/20M).
//!
//! ## Why synthetic data
//!
//! The original benchmark datasets cannot be downloaded in this environment.
//! [`synthetic::DatasetProfile`] generates interaction sequences whose
//! aggregate statistics match Table 2 of the paper at a configurable scale and
//! whose generative process contains exactly the structure the HAM models
//! exploit: per-user long-term preferences over item clusters, low- and
//! high-order sequential (Markov) associations, item-pair synergies and
//! Zipfian item popularity. See DESIGN.md §4 for the full substitution
//! rationale.
//!
//! ## Example
//!
//! ```
//! use ham_data::synthetic::DatasetProfile;
//! use ham_data::split::{EvalSetting, split_dataset};
//! use ham_data::window::sliding_windows;
//!
//! let dataset = DatasetProfile::cds().with_scale(0.01).generate(42);
//! let split = split_dataset(&dataset, EvalSetting::Cut8020);
//! let instances = sliding_windows(&split.train, 5, 3);
//! assert!(!instances.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod append;
pub mod batch;
pub mod dataset;
pub mod interaction;
pub mod loader;
pub mod negative;
pub mod preprocess;
pub mod sampling;
pub mod split;
pub mod stats;
pub mod synthetic;
pub mod window;

pub use append::{AppendableDataset, DeltaView};
pub use batch::{BatchSampler, PreparedInstance};
pub use dataset::SequenceDataset;
pub use interaction::Interaction;
pub use negative::NegativeSampler;
pub use split::{split_dataset, DataSplit, EvalSetting};
pub use stats::DatasetStats;
pub use window::{sliding_windows, TrainingInstance};
