//! The preprocessing protocol of the paper (Section 5.2), applied to raw
//! [`Interaction`] records:
//!
//! 1. binarize ratings (4 and 5 stars → positive, lower → dropped),
//! 2. keep only users with at least `min_user_interactions` positive
//!    interactions and items with at least `min_item_interactions`,
//! 3. order every user's interactions chronologically,
//! 4. remap user and item ids to dense `0..n` ranges.

use crate::dataset::SequenceDataset;
use crate::interaction::Interaction;
use std::collections::HashMap;

/// Configuration of the preprocessing pipeline. The defaults follow HGN and
/// the HAM paper: at least 10 interactions per user, 5 per item, ratings of 4
/// or more treated as positive.
#[derive(Debug, Clone, Copy)]
pub struct PreprocessConfig {
    /// Minimum number of positive interactions a user must have.
    pub min_user_interactions: usize,
    /// Minimum number of positive interactions an item must have.
    pub min_item_interactions: usize,
    /// Ratings at or above this threshold are kept as positive feedback.
    pub positive_threshold: f32,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self { min_user_interactions: 10, min_item_interactions: 5, positive_threshold: 4.0 }
    }
}

/// Applies the paper's preprocessing protocol and returns a dense
/// [`SequenceDataset`].
///
/// Filtering is applied in a single pass each for items and then users (the
/// same order used by the HGN preprocessing scripts the paper reuses); it is
/// not iterated to a fixed point.
pub fn preprocess(name: &str, interactions: &[Interaction], config: PreprocessConfig) -> SequenceDataset {
    // 1. binarize
    let positives: Vec<&Interaction> =
        interactions.iter().filter(|i| i.is_positive(config.positive_threshold)).collect();

    // 2a. item filter
    let mut item_counts: HashMap<u64, usize> = HashMap::new();
    for i in &positives {
        *item_counts.entry(i.item).or_default() += 1;
    }
    let kept_items: Vec<&Interaction> =
        positives.into_iter().filter(|i| item_counts[&i.item] >= config.min_item_interactions).collect();

    // 2b. user filter
    let mut user_counts: HashMap<u64, usize> = HashMap::new();
    for i in &kept_items {
        *user_counts.entry(i.user).or_default() += 1;
    }
    let kept: Vec<&Interaction> =
        kept_items.into_iter().filter(|i| user_counts[&i.user] >= config.min_user_interactions).collect();

    // 3. group by user, sort chronologically
    let mut by_user: HashMap<u64, Vec<&Interaction>> = HashMap::new();
    for i in kept {
        by_user.entry(i.user).or_default().push(i);
    }
    let mut user_ids: Vec<u64> = by_user.keys().copied().collect();
    user_ids.sort_unstable();

    // 4. dense remapping
    let mut item_map: HashMap<u64, usize> = HashMap::new();
    let mut sequences = Vec::with_capacity(user_ids.len());
    for uid in user_ids {
        let mut events = by_user.remove(&uid).expect("user must exist");
        events.sort_by_key(|i| i.timestamp);
        let seq: Vec<usize> = events
            .into_iter()
            .map(|i| {
                let next = item_map.len();
                *item_map.entry(i.item).or_insert(next)
            })
            .collect();
        sequences.push(seq);
    }
    let num_items = item_map.len();
    SequenceDataset::new(name, sequences, num_items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(user: u64, items: &[(u64, f32)]) -> Vec<Interaction> {
        items.iter().enumerate().map(|(t, &(item, rating))| Interaction::new(user, item, t as u64, rating)).collect()
    }

    #[test]
    fn binarization_drops_low_ratings() {
        let mut data = raw(1, &[(10, 5.0), (11, 2.0), (12, 4.0)]);
        data.extend(raw(2, &[(10, 5.0), (12, 5.0)]));
        let cfg = PreprocessConfig { min_user_interactions: 1, min_item_interactions: 1, positive_threshold: 4.0 };
        let ds = preprocess("t", &data, cfg);
        // item 11 disappears entirely (rating 2.0)
        assert_eq!(ds.num_items, 2);
        assert_eq!(ds.num_interactions(), 4);
    }

    #[test]
    fn user_and_item_minimum_filters() {
        // item 99 appears once -> dropped; user 3 then has 1 interaction -> dropped
        let mut data = Vec::new();
        for u in 0..3u64 {
            data.extend(raw(u, &[(1, 5.0), (2, 5.0), (3, 5.0)]));
        }
        data.extend(raw(3, &[(99, 5.0), (1, 5.0)]));
        let cfg = PreprocessConfig { min_user_interactions: 2, min_item_interactions: 2, positive_threshold: 4.0 };
        let ds = preprocess("t", &data, cfg);
        assert_eq!(ds.num_users(), (4 - 1)); // user 3 keeps only item 1 -> below min 2 -> dropped
        assert_eq!(ds.num_items, 3);
    }

    #[test]
    fn sequences_are_chronological_and_dense() {
        let data = vec![
            Interaction::new(5, 100, 30, 5.0),
            Interaction::new(5, 200, 10, 5.0),
            Interaction::new(5, 300, 20, 5.0),
        ];
        let cfg = PreprocessConfig { min_user_interactions: 1, min_item_interactions: 1, positive_threshold: 4.0 };
        let ds = preprocess("t", &data, cfg);
        assert_eq!(ds.num_users(), 1);
        // chronological order: 200 (t=10), 300 (t=20), 100 (t=30); ids assigned in that order
        assert_eq!(ds.sequence(0), &[0, 1, 2]);
        assert_eq!(ds.num_items, 3);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = PreprocessConfig::default();
        assert_eq!(cfg.min_user_interactions, 10);
        assert_eq!(cfg.min_item_interactions, 5);
        assert_eq!(cfg.positive_threshold, 4.0);
    }
}
