//! The preprocessed, sequence-oriented dataset representation used by every
//! model and experiment in the workspace.

use serde::{Deserialize, Serialize};

/// Item identifier after preprocessing: a dense index in `0..num_items`.
pub type ItemId = usize;

/// User identifier after preprocessing: a dense index in `0..num_users`.
pub type UserId = usize;

/// A preprocessed dataset: one chronological item sequence per user, with
/// dense, contiguous user and item ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceDataset {
    /// Human-readable dataset name (e.g. `"CDs"`, `"ML-1M"`).
    pub name: String,
    /// `sequences[u]` is the chronological item sequence of user `u`.
    pub sequences: Vec<Vec<ItemId>>,
    /// Number of distinct items; every item id is `< num_items`.
    pub num_items: usize,
}

impl SequenceDataset {
    /// Creates a dataset from per-user sequences.
    ///
    /// # Panics
    /// Panics if any item id is `>= num_items`.
    pub fn new(name: impl Into<String>, sequences: Vec<Vec<ItemId>>, num_items: usize) -> Self {
        for (u, seq) in sequences.iter().enumerate() {
            for &item in seq {
                assert!(item < num_items, "item id {item} of user {u} is >= num_items {num_items}");
            }
        }
        Self { name: name.into(), sequences, num_items }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.sequences.len()
    }

    /// Total number of interactions across all users.
    pub fn num_interactions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Average sequence length (interactions per user).
    pub fn interactions_per_user(&self) -> f64 {
        if self.sequences.is_empty() {
            return 0.0;
        }
        self.num_interactions() as f64 / self.num_users() as f64
    }

    /// Average number of interactions per item.
    pub fn interactions_per_item(&self) -> f64 {
        if self.num_items == 0 {
            return 0.0;
        }
        self.num_interactions() as f64 / self.num_items as f64
    }

    /// How many times each item occurs in the dataset.
    pub fn item_frequencies(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.num_items];
        for seq in &self.sequences {
            for &item in seq {
                freq[item] += 1;
            }
        }
        freq
    }

    /// The sequence of a single user.
    pub fn sequence(&self, user: UserId) -> &[ItemId] {
        &self.sequences[user]
    }

    /// Density of the interaction matrix (`#interactions / (#users · #items)`).
    pub fn density(&self) -> f64 {
        let cells = self.num_users() as f64 * self.num_items as f64;
        if cells == 0.0 {
            return 0.0;
        }
        self.num_interactions() as f64 / cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SequenceDataset {
        SequenceDataset::new("toy", vec![vec![0, 1, 2], vec![2, 3], vec![0]], 4)
    }

    #[test]
    fn counts_and_averages() {
        let d = toy();
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_items, 4);
        assert_eq!(d.num_interactions(), 6);
        assert!((d.interactions_per_user() - 2.0).abs() < 1e-12);
        assert!((d.interactions_per_item() - 1.5).abs() < 1e-12);
        assert!((d.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn item_frequencies_count_occurrences() {
        let d = toy();
        assert_eq!(d.item_frequencies(), vec![2, 1, 2, 1]);
    }

    #[test]
    fn empty_dataset_edge_cases() {
        let d = SequenceDataset::new("empty", vec![], 0);
        assert_eq!(d.interactions_per_user(), 0.0);
        assert_eq!(d.interactions_per_item(), 0.0);
        assert_eq!(d.density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "num_items")]
    fn out_of_range_item_panics() {
        let _ = SequenceDataset::new("bad", vec![vec![5]], 3);
    }
}
