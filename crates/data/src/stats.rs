//! Dataset statistics (Table 2 of the paper) and the item-frequency
//! distribution used by Figure 3.

use crate::dataset::SequenceDataset;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a dataset, matching the columns of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Number of interactions.
    pub num_interactions: usize,
    /// Average interactions per user (`#intrns/u`).
    pub interactions_per_user: f64,
    /// Average interactions per item (`#u/i`).
    pub interactions_per_item: f64,
    /// Density of the interaction matrix.
    pub density: f64,
}

impl DatasetStats {
    /// Computes the statistics of a dataset.
    pub fn compute(dataset: &SequenceDataset) -> Self {
        Self {
            name: dataset.name.clone(),
            num_users: dataset.num_users(),
            num_items: dataset.num_items,
            num_interactions: dataset.num_interactions(),
            interactions_per_user: dataset.interactions_per_user(),
            interactions_per_item: dataset.interactions_per_item(),
            density: dataset.density(),
        }
    }

    /// Formats the statistics as one row of a Table 2-style report.
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:>8} {:>8} {:>10} {:>10.1} {:>8.1}",
            self.name,
            self.num_users,
            self.num_items,
            self.num_interactions,
            self.interactions_per_user,
            self.interactions_per_item
        )
    }
}

/// The Figure 3 study: item frequencies, log-transformed and expressed as
/// percentiles, bucketed into a histogram of item fractions.
///
/// Returns `(percentile grid in [0, 1], fraction of items at each grid cell)`.
pub fn item_frequency_distribution(dataset: &SequenceDataset, bins: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(bins > 0, "item_frequency_distribution: bins must be positive");
    let freqs = dataset.item_frequencies();
    let logs: Vec<f64> = freqs.iter().filter(|&&f| f > 0).map(|&f| (f as f64).ln()).collect();
    if logs.is_empty() {
        return ((0..bins).map(|b| b as f64 / bins as f64).collect(), vec![0.0; bins]);
    }
    let max = logs.iter().cloned().fold(f64::MIN, f64::max);
    let min = logs.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    let normalized: Vec<f64> = logs.iter().map(|&l| (l - min) / span).collect();
    let hist = ham_tensor::stats::histogram(&normalized, 0.0, 1.0, bins);
    let grid = (0..bins).map(|b| (b as f64 + 0.5) / bins as f64).collect();
    (grid, hist)
}

/// Fraction of items whose frequency is at most `threshold` interactions;
/// used in the discussion of attention weights on infrequent items (Fig. 4).
pub fn infrequent_item_fraction(dataset: &SequenceDataset, threshold: usize) -> f64 {
    let freqs = dataset.item_frequencies();
    if freqs.is_empty() {
        return 0.0;
    }
    freqs.iter().filter(|&&f| f <= threshold).count() as f64 / freqs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SequenceDataset {
        SequenceDataset::new("toy", vec![vec![0, 1, 2, 0], vec![0, 3], vec![0, 0, 1]], 4)
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = DatasetStats::compute(&toy());
        assert_eq!(s.num_users, 3);
        assert_eq!(s.num_items, 4);
        assert_eq!(s.num_interactions, 9);
        assert!((s.interactions_per_user - 3.0).abs() < 1e-12);
        assert!((s.interactions_per_item - 2.25).abs() < 1e-12);
        assert!(s.table_row().contains("toy"));
    }

    #[test]
    fn frequency_distribution_sums_to_one() {
        let (grid, hist) = item_frequency_distribution(&toy(), 10);
        assert_eq!(grid.len(), 10);
        assert!((hist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_distribution_on_empty_dataset() {
        let empty = SequenceDataset::new("e", vec![], 0);
        let (_, hist) = item_frequency_distribution(&empty, 5);
        assert_eq!(hist, vec![0.0; 5]);
    }

    #[test]
    fn infrequent_fraction() {
        // frequencies: item0 = 5, item1 = 2, item2 = 1, item3 = 1
        let f = infrequent_item_fraction(&toy(), 1);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(infrequent_item_fraction(&SequenceDataset::new("e", vec![], 0), 1), 0.0);
    }
}
