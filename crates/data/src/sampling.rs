//! Alternative negative-sampling strategies.
//!
//! The paper (and the uniform [`crate::negative::NegativeSampler`]) samples
//! negatives uniformly over the catalogue. Popularity-proportional sampling is
//! a widely used alternative that produces harder negatives on long-tailed
//! catalogues; it is provided here as an opt-in extension and exercised by the
//! ablation benches.

use crate::dataset::ItemId;
use rand::Rng;
use std::collections::HashSet;

/// Samples negatives proportionally to `frequency^exponent`, rejecting items
/// the user has interacted with.
#[derive(Debug, Clone)]
pub struct PopularityNegativeSampler {
    cumulative: Vec<f64>,
    seen: HashSet<ItemId>,
}

impl PopularityNegativeSampler {
    /// Creates a sampler from per-item interaction counts.
    ///
    /// `exponent` controls the skew: `1.0` samples proportionally to raw
    /// popularity, `0.0` degenerates to uniform sampling over items with
    /// non-zero weight, and values around `0.75` are the word2vec-style
    /// compromise. Items with zero frequency receive a small floor weight so
    /// every item remains reachable.
    ///
    /// # Panics
    /// Panics if `frequencies` is empty, `exponent` is negative, or the user
    /// has seen every item.
    pub fn new(frequencies: &[usize], exponent: f64, seen: impl IntoIterator<Item = ItemId>) -> Self {
        assert!(!frequencies.is_empty(), "PopularityNegativeSampler: catalogue must not be empty");
        assert!(exponent >= 0.0, "PopularityNegativeSampler: exponent must be non-negative");
        let seen: HashSet<ItemId> = seen.into_iter().collect();
        assert!(
            seen.len() < frequencies.len(),
            "PopularityNegativeSampler: the user interacted with every item; no negatives exist"
        );
        let mut cumulative = Vec::with_capacity(frequencies.len());
        let mut acc = 0.0f64;
        for &f in frequencies {
            let weight = (f as f64).max(0.5).powf(exponent);
            acc += weight;
            cumulative.push(acc);
        }
        Self { cumulative, seen }
    }

    /// Number of items in the catalogue.
    pub fn num_items(&self) -> usize {
        self.cumulative.len()
    }

    /// Samples one negative item for the user.
    pub fn sample(&self, rng: &mut impl Rng) -> ItemId {
        let total = *self.cumulative.last().expect("catalogue is non-empty");
        for _ in 0..64 {
            let draw = rng.gen_range(0.0..total);
            let item = self.cumulative.partition_point(|&c| c <= draw);
            let item = item.min(self.cumulative.len() - 1);
            if !self.seen.contains(&item) {
                return item;
            }
        }
        // Fallback: first unseen item (the rejection loop is overwhelmingly
        // unlikely to get here on realistic catalogues).
        (0..self.cumulative.len())
            .find(|i| !self.seen.contains(i))
            .expect("at least one negative exists by construction")
    }

    /// Samples `k` negatives.
    pub fn sample_many(&self, k: usize, rng: &mut impl Rng) -> Vec<ItemId> {
        (0..k).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn popular_items_are_sampled_more_often() {
        // item 0 is 9x more popular than item 2; item 1 is seen and never sampled
        let sampler = PopularityNegativeSampler::new(&[90, 50, 10], 1.0, vec![1]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "seen items must never be sampled");
        assert!(counts[0] > counts[2] * 4, "popular item should dominate: {counts:?}");
        assert_eq!(sampler.num_items(), 3);
    }

    #[test]
    fn zero_exponent_is_close_to_uniform() {
        let sampler = PopularityNegativeSampler::new(&[1000, 1, 1, 1], 0.0, Vec::<usize>::new());
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1000..3000).contains(&c), "counts should be roughly uniform: {counts:?}");
        }
    }

    #[test]
    fn zero_frequency_items_remain_reachable() {
        let sampler = PopularityNegativeSampler::new(&[0, 100], 1.0, vec![1]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let sampler = PopularityNegativeSampler::new(&[5, 5, 5, 5], 0.75, vec![0]);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sampler.sample_many(20, &mut rng);
        assert_eq!(samples.len(), 20);
        assert!(samples.iter().all(|&i| i != 0 && i < 4));
    }

    #[test]
    #[should_panic(expected = "no negatives exist")]
    fn fully_seen_catalogue_panics() {
        let _ = PopularityNegativeSampler::new(&[1, 1], 1.0, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_catalogue_panics() {
        let _ = PopularityNegativeSampler::new(&[], 1.0, Vec::<usize>::new());
    }
}
