//! An appendable dataset view for online/incremental training.
//!
//! A serving process that retrains periodically does not want to revisit the
//! whole interaction log every round: almost all sliding windows were already
//! trained in earlier rounds. [`AppendableDataset`] wraps the per-user
//! sequences with a **trained watermark** — the sequence prefix length the
//! trainer has already consumed — and exposes the *delta* between the
//! watermark and the current log as a [`DeltaView`]: the minimal per-user
//! sub-sequences whose sliding windows are exactly the windows not yet
//! trained. Feeding the delta to
//! [`BatchSampler::over_delta`](crate::batch::BatchSampler::over_delta)
//! makes an incremental round cost proportional to the *fresh* data, not the
//! cumulative stream.
//!
//! Appends may reference brand-new users (any `user >= num_users` grows the
//! user space) and brand-new items (`item >= num_items` grows the item
//! space); the online trainer grows the embedding tables to match before the
//! round starts.

use crate::dataset::{ItemId, SequenceDataset, UserId};

/// Per-user interaction sequences that grow over time, with a per-user
/// watermark separating already-trained prefixes from fresh interactions.
#[derive(Debug, Clone, Default)]
pub struct AppendableDataset {
    sequences: Vec<Vec<ItemId>>,
    /// `trained_len[u]`: prefix of user `u`'s sequence already consumed by
    /// training (see [`Self::mark_trained`]).
    trained_len: Vec<usize>,
    num_items: usize,
}

/// The untrained slice of an [`AppendableDataset`], compacted to the users
/// with fresh windows. Index `i` of every field refers to the same user.
#[derive(Debug, Clone, Default)]
pub struct DeltaView {
    /// The minimal sub-sequence of each affected user whose sliding windows
    /// are exactly that user's untrained windows.
    pub sequences: Vec<Vec<ItemId>>,
    /// Each affected user's **full** sequence — the seen-item sets negative
    /// sampling must exclude (a sub-sequence alone would let negatives
    /// collide with items the user interacted with outside the delta).
    pub seen: Vec<Vec<ItemId>>,
    /// The real (global) user id behind each compact index.
    pub users: Vec<UserId>,
}

impl DeltaView {
    /// Whether no user has fresh windows.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

impl AppendableDataset {
    /// An empty log over a catalogue of `num_items` items (may be `0`; the
    /// item space grows with appends).
    pub fn new(num_items: usize) -> Self {
        Self { sequences: Vec::new(), trained_len: Vec::new(), num_items }
    }

    /// Wraps existing per-user sequences; everything counts as fresh (the
    /// watermark is zero), so the first round trains the full history.
    ///
    /// # Panics
    /// Panics if any item id is `>= num_items`.
    pub fn from_sequences(sequences: Vec<Vec<ItemId>>, num_items: usize) -> Self {
        for (u, seq) in sequences.iter().enumerate() {
            for &item in seq {
                assert!(item < num_items, "AppendableDataset: item {item} of user {u} is >= num_items {num_items}");
            }
        }
        let trained_len = vec![0; sequences.len()];
        Self { sequences, trained_len, num_items }
    }

    /// Wraps a [`SequenceDataset`] (everything fresh, as in
    /// [`Self::from_sequences`]).
    pub fn from_dataset(dataset: &SequenceDataset) -> Self {
        Self::from_sequences(dataset.sequences.clone(), dataset.num_items)
    }

    /// Appends one interaction to `user`'s sequence. Unknown users and items
    /// grow the respective id spaces (intermediate users get empty
    /// sequences).
    pub fn append(&mut self, user: UserId, item: ItemId) {
        if user >= self.sequences.len() {
            self.sequences.resize_with(user + 1, Vec::new);
            self.trained_len.resize(user + 1, 0);
        }
        self.num_items = self.num_items.max(item + 1);
        self.sequences[user].push(item);
    }

    /// Number of users (including appended ones).
    pub fn num_users(&self) -> usize {
        self.sequences.len()
    }

    /// Number of items (grown by appends of unseen item ids).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total interactions across all users.
    pub fn num_interactions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Interactions appended since the last [`Self::mark_trained`].
    pub fn fresh_interactions(&self) -> usize {
        self.sequences.iter().zip(&self.trained_len).map(|(seq, &t)| seq.len() - t).sum()
    }

    /// The full per-user sequences (training watermark not applied).
    pub fn sequences(&self) -> &[Vec<ItemId>] {
        &self.sequences
    }

    /// The minimal per-user sub-sequences whose sliding windows (window
    /// sizes `n_h` input / `n_p` target items) are exactly the windows not
    /// yet covered by a [`Self::mark_trained`] round.
    ///
    /// For a user whose trained prefix `L₀` already spans a full window
    /// (`L₀ >= n_h + n_p`), the delta is the suffix starting at position
    /// `L₀ + 1 - (n_h + n_p)`: its windows are precisely the windows ending
    /// beyond the watermark. A shorter trained prefix means the user's
    /// earlier windows were formed under front-padding (or didn't exist at
    /// all), so the full sequence is emitted and those windows are revisited
    /// — deterministic, and bounded by the padded window count.
    pub fn delta_view(&self, n_h: usize, n_p: usize) -> DeltaView {
        assert!(n_h > 0, "delta_view: n_h must be positive");
        assert!(n_p > 0, "delta_view: n_p must be positive");
        let window = n_h + n_p;
        let mut delta = DeltaView::default();
        for (user, (seq, &trained)) in self.sequences.iter().zip(&self.trained_len).enumerate() {
            if seq.len() == trained || seq.len() < n_p + 1 {
                // Nothing fresh, or still too short to form any window.
                continue;
            }
            let sub = if trained < window { seq.clone() } else { seq[trained + 1 - window..].to_vec() };
            delta.sequences.push(sub);
            delta.seen.push(seq.clone());
            delta.users.push(user);
        }
        delta
    }

    /// Advances every user's watermark to the current sequence end: the next
    /// [`Self::delta_view`] only covers interactions appended after this
    /// call. The trainer calls this once per completed round.
    pub fn mark_trained(&mut self) {
        for (t, seq) in self.trained_len.iter_mut().zip(&self.sequences) {
            *t = seq.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{sliding_windows, user_windows, TrainingInstance};

    /// The delta view's windows, mapped back to global user ids.
    fn delta_windows(data: &AppendableDataset, n_h: usize, n_p: usize) -> Vec<TrainingInstance> {
        let delta = data.delta_view(n_h, n_p);
        let mut out = Vec::new();
        for (i, seq) in delta.sequences.iter().enumerate() {
            for mut w in user_windows(0, seq, n_h, n_p) {
                w.user = delta.users[i];
                out.push(w);
            }
        }
        out
    }

    #[test]
    fn first_delta_is_the_full_window_set() {
        let seqs = vec![(0..9).collect::<Vec<_>>(), (2..7).collect(), vec![1]];
        let data = AppendableDataset::from_sequences(seqs.clone(), 9);
        assert_eq!(delta_windows(&data, 3, 2), sliding_windows(&seqs, 3, 2));
    }

    #[test]
    fn delta_after_mark_trained_is_exactly_the_new_windows() {
        let mut data = AppendableDataset::from_sequences(vec![(0..10).collect(), (0..8).collect()], 16);
        data.mark_trained();
        assert!(data.delta_view(3, 2).is_empty());
        // user 0 gains three interactions, user 1 none
        for item in [10, 11, 12] {
            data.append(0, item);
        }
        let full: Vec<_> = sliding_windows(data.sequences(), 3, 2).into_iter().filter(|w| w.user == 0).collect();
        let fresh = delta_windows(&data, 3, 2);
        // the delta must be exactly the windows of user 0 that end beyond
        // the old sequence length (10): one new window per fresh interaction
        assert_eq!(fresh.len(), 3);
        assert_eq!(fresh, full[full.len() - 3..].to_vec());
        assert_eq!(data.fresh_interactions(), 3);
    }

    #[test]
    fn short_trained_prefix_revisits_padded_windows() {
        // trained at length 3 with window 3+2: the old windows were padded,
        // so the whole sequence comes back once it grows
        let mut data = AppendableDataset::from_sequences(vec![vec![5, 6, 7]], 12);
        data.mark_trained();
        data.append(0, 8);
        data.append(0, 9);
        let delta = data.delta_view(3, 2);
        assert_eq!(delta.sequences, vec![vec![5, 6, 7, 8, 9]]);
        assert_eq!(delta_windows(&data, 3, 2), sliding_windows(data.sequences(), 3, 2));
    }

    #[test]
    fn appends_grow_users_and_items() {
        let mut data = AppendableDataset::from_sequences(vec![vec![0, 1]], 2);
        data.append(3, 7);
        assert_eq!(data.num_users(), 4);
        assert_eq!(data.num_items(), 8);
        assert_eq!(data.sequences()[2], Vec::<ItemId>::new());
        assert_eq!(data.sequences()[3], vec![7]);
        assert_eq!(data.num_interactions(), 3);
    }

    #[test]
    fn too_short_users_are_left_out_of_the_delta() {
        let mut data = AppendableDataset::new(4);
        data.append(0, 1); // length 1 < n_p + 1
        let delta = data.delta_view(2, 1);
        assert!(delta.is_empty());
        // once long enough, the full (previously windowless) sequence shows up
        data.mark_trained();
        data.append(0, 2);
        let delta = data.delta_view(2, 1);
        assert_eq!(delta.sequences, vec![vec![1, 2]]);
        assert_eq!(delta.seen, vec![vec![1, 2]]);
        assert_eq!(delta.users, vec![0]);
    }

    #[test]
    fn seen_sets_cover_the_full_history_not_just_the_delta() {
        let mut data = AppendableDataset::from_sequences(vec![(0..10).collect()], 12);
        data.mark_trained();
        data.append(0, 11);
        let delta = data.delta_view(3, 2);
        assert_eq!(delta.sequences[0].len(), 3 + 2); // minimal suffix
        assert_eq!(delta.seen[0].len(), 11); // full history
    }

    #[test]
    #[should_panic(expected = "num_items")]
    fn out_of_range_initial_item_panics() {
        let _ = AppendableDataset::from_sequences(vec![vec![5]], 3);
    }
}
