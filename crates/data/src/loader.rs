//! Loading and saving datasets.
//!
//! Real benchmark data (if available to a downstream user) can be loaded from
//! a simple tab/comma-separated text format of `user, item, timestamp,
//! rating` records and pushed through [`crate::preprocess::preprocess`];
//! preprocessed [`SequenceDataset`]s can be saved to and loaded from JSON so
//! experiments do not need to regenerate them.

use crate::dataset::SequenceDataset;
use crate::interaction::Interaction;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors produced when loading or saving datasets.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line in a text interaction file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            LoadError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<serde_json::Error> for LoadError {
    fn from(e: serde_json::Error) -> Self {
        LoadError::Json(e)
    }
}

/// Parses interactions from text where each non-empty, non-`#` line holds
/// `user<sep>item<sep>timestamp[<sep>rating]`, with `sep` either a tab or a
/// comma. A missing rating defaults to 5.0 (implicit feedback).
pub fn parse_interactions(text: &str) -> Result<Vec<Interaction>, LoadError> {
    let mut out = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(['\t', ',']).map(str::trim).collect();
        if fields.len() < 3 {
            return Err(LoadError::Parse {
                line: idx + 1,
                message: format!("expected at least 3 fields, found {}", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<u64, LoadError> {
            s.parse::<u64>().map_err(|_| LoadError::Parse { line: idx + 1, message: format!("invalid {what}: {s:?}") })
        };
        let user = parse(fields[0], "user id")?;
        let item = parse(fields[1], "item id")?;
        let timestamp = parse(fields[2], "timestamp")?;
        let rating = if fields.len() > 3 {
            fields[3]
                .parse::<f32>()
                .map_err(|_| LoadError::Parse { line: idx + 1, message: format!("invalid rating: {:?}", fields[3]) })?
        } else {
            5.0
        };
        out.push(Interaction::new(user, item, timestamp, rating));
    }
    Ok(out)
}

/// Reads interactions from a file (see [`parse_interactions`] for the format).
pub fn load_interactions(path: impl AsRef<Path>) -> Result<Vec<Interaction>, LoadError> {
    let text = fs::read_to_string(path)?;
    parse_interactions(&text)
}

/// Saves a preprocessed dataset as JSON.
pub fn save_dataset(dataset: &SequenceDataset, path: impl AsRef<Path>) -> Result<(), LoadError> {
    let json = serde_json::to_string(dataset)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a preprocessed dataset from JSON.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<SequenceDataset, LoadError> {
    let text = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tab_and_comma_separated_lines() {
        let text = "# comment\n1\t10\t100\t4.5\n2,20,200\n\n3\t30\t300\t2.0\n";
        let parsed = parse_interactions(text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].rating, 4.5);
        assert_eq!(parsed[1].rating, 5.0); // default implicit rating
        assert_eq!(parsed[2].user, 3);
    }

    #[test]
    fn reports_line_numbers_for_bad_input() {
        let err = parse_interactions("1\t2\t3\nbad line here").unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_non_numeric_ids() {
        let err = parse_interactions("a\t2\t3").unwrap_err();
        assert!(err.to_string().contains("user id"));
    }

    #[test]
    fn dataset_json_roundtrip() {
        let dir = std::env::temp_dir().join("ham_data_loader_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.json");
        let ds = SequenceDataset::new("toy", vec![vec![0, 1], vec![1, 2, 0]], 3);
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.name, "toy");
        assert_eq!(loaded.sequences, ds.sequences);
        assert_eq!(loaded.num_items, 3);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_dataset("/definitely/not/a/real/path.json").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }
}
