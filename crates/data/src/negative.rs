//! Negative sampling for the BPR objective.
//!
//! Following the paper (Section 4.4) and the reference implementations of HGN
//! and Caser, one negative item is sampled uniformly for every positive
//! target item, rejecting items that appear anywhere in the user's training
//! sequence.

use crate::dataset::ItemId;
use rand::Rng;
use std::collections::HashSet;

/// Samples negative items for a user, rejecting items the user has already
/// interacted with.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    num_items: usize,
    seen: HashSet<ItemId>,
}

impl NegativeSampler {
    /// Creates a sampler for a user whose interaction history is `seen`.
    ///
    /// # Panics
    /// Panics if `num_items == 0` or the user has interacted with every item
    /// (no negative exists).
    pub fn new(num_items: usize, seen: impl IntoIterator<Item = ItemId>) -> Self {
        assert!(num_items > 0, "NegativeSampler: num_items must be positive");
        let seen: HashSet<ItemId> = seen.into_iter().collect();
        assert!(seen.len() < num_items, "NegativeSampler: the user interacted with every item; no negatives exist");
        Self { num_items, seen }
    }

    /// Number of candidate items that could be sampled.
    pub fn num_candidates(&self) -> usize {
        self.num_items - self.seen.len()
    }

    /// Samples one item the user has not interacted with.
    pub fn sample(&self, rng: &mut impl Rng) -> ItemId {
        // Rejection sampling: the seen set is tiny compared to the catalogue
        // in every recommendation dataset, so this terminates almost surely
        // after one or two draws; a safety fallback scans linearly.
        for _ in 0..64 {
            let candidate = rng.gen_range(0..self.num_items);
            if !self.seen.contains(&candidate) {
                return candidate;
            }
        }
        (0..self.num_items).find(|i| !self.seen.contains(i)).expect("at least one negative exists by construction")
    }

    /// Samples `k` negatives (with replacement across draws).
    pub fn sample_many(&self, k: usize, rng: &mut impl Rng) -> Vec<ItemId> {
        (0..k).map(|_| self.sample(rng)).collect()
    }

    /// Fills a caller-provided buffer with one negative per slot (with
    /// replacement across draws). The allocation-free form of
    /// [`Self::sample_many`]: batch assembly reuses one buffer per instance
    /// slot instead of allocating a fresh `Vec` per training window.
    ///
    /// Draws items from the same stream as [`Self::sample`], so filling a
    /// buffer of `k` slots consumes exactly the randomness of `k` single
    /// draws.
    pub fn sample_batch(&self, out: &mut [ItemId], rng: &mut impl Rng) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// Whether the user has interacted with `item`.
    pub fn is_seen(&self, item: ItemId) -> bool {
        self.seen.contains(&item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_items_are_never_seen() {
        let sampler = NegativeSampler::new(50, vec![1, 2, 3, 4, 5]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let s = sampler.sample(&mut rng);
            assert!(!sampler.is_seen(s));
            assert!(s < 50);
        }
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let sampler = NegativeSampler::new(10, vec![0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.sample_many(7, &mut rng).len(), 7);
        assert_eq!(sampler.num_candidates(), 9);
    }

    #[test]
    fn sample_batch_fills_buffer_from_the_same_stream() {
        let sampler = NegativeSampler::new(50, vec![1, 2, 3, 4, 5]);
        let mut buf = [0usize; 7];
        let mut rng = StdRng::seed_from_u64(3);
        sampler.sample_batch(&mut buf, &mut rng);
        assert!(buf.iter().all(|&s| !sampler.is_seen(s) && s < 50));
        // identical stream to sample_many under the same seed
        let mut rng2 = StdRng::seed_from_u64(3);
        assert_eq!(buf.to_vec(), sampler.sample_many(7, &mut rng2));
    }

    #[test]
    fn works_when_almost_everything_is_seen() {
        // only item 7 is unseen; the fallback path must find it
        let sampler = NegativeSampler::new(8, (0..8).filter(|&i| i != 7));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert_eq!(sampler.sample(&mut rng), 7);
        }
    }

    #[test]
    #[should_panic(expected = "no negatives exist")]
    fn all_items_seen_panics() {
        let _ = NegativeSampler::new(3, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "num_items must be positive")]
    fn zero_items_panics() {
        let _ = NegativeSampler::new(0, Vec::<usize>::new());
    }
}
