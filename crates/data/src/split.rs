//! The three experimental settings of the paper (Section 5.3) as per-user
//! train / validation / test splits.
//!
//! * **80-20-CUT** — first 70% of each user's sequence is training, next 10%
//!   validation, last 20% test.
//! * **80-3-CUT** — same training/validation prefix, but only the 3 items
//!   immediately after the validation set are tested.
//! * **3-LOS** — the last 3 items are the test set, the 3 before them the
//!   validation set, everything earlier the training set.

use crate::dataset::{ItemId, SequenceDataset};
use serde::{Deserialize, Serialize};

/// The experimental setting used to split each user sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalSetting {
    /// 80-20-cut-off: train 70%, validation 10%, test the remaining 20%.
    Cut8020,
    /// 80-3-cut-off: train 70%, validation 10%, test the next 3 items.
    Cut803,
    /// Leave-3-out: test the last 3 items, validate on the 3 before them.
    Los3,
}

impl EvalSetting {
    /// The name used in the paper and in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            EvalSetting::Cut8020 => "80-20-CUT",
            EvalSetting::Cut803 => "80-3-CUT",
            EvalSetting::Los3 => "3-LOS",
        }
    }

    /// All three settings, in the order the paper reports them.
    pub fn all() -> [EvalSetting; 3] {
        [EvalSetting::Cut8020, EvalSetting::Cut803, EvalSetting::Los3]
    }
}

/// A per-user split of the dataset into train / validation / test segments.
///
/// Per the paper's protocol, after hyper-parameter selection the final model
/// is retrained on *train + validation*; [`DataSplit::train_with_val`] returns
/// that combined sequence set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataSplit {
    /// Name of the source dataset.
    pub dataset_name: String,
    /// Setting used to produce this split.
    pub setting: EvalSetting,
    /// Number of items in the source dataset.
    pub num_items: usize,
    /// Training prefix of each user.
    pub train: Vec<Vec<ItemId>>,
    /// Validation segment of each user (may be empty for short sequences).
    pub val: Vec<Vec<ItemId>>,
    /// Test segment of each user (may be empty for short sequences).
    pub test: Vec<Vec<ItemId>>,
}

impl DataSplit {
    /// Number of users in the split.
    pub fn num_users(&self) -> usize {
        self.train.len()
    }

    /// Per-user concatenation of training and validation segments, used to
    /// retrain the final model after hyper-parameter selection.
    pub fn train_with_val(&self) -> Vec<Vec<ItemId>> {
        self.train
            .iter()
            .zip(&self.val)
            .map(|(t, v)| {
                let mut s = t.clone();
                s.extend_from_slice(v);
                s
            })
            .collect()
    }

    /// Number of users with a non-empty test segment.
    pub fn users_with_test_items(&self) -> usize {
        self.test.iter().filter(|t| !t.is_empty()).count()
    }

    /// Total number of test interactions.
    pub fn num_test_interactions(&self) -> usize {
        self.test.iter().map(Vec::len).sum()
    }
}

/// Splits every user sequence of `dataset` according to `setting`.
pub fn split_dataset(dataset: &SequenceDataset, setting: EvalSetting) -> DataSplit {
    let mut train = Vec::with_capacity(dataset.num_users());
    let mut val = Vec::with_capacity(dataset.num_users());
    let mut test = Vec::with_capacity(dataset.num_users());

    for seq in &dataset.sequences {
        let (t, v, s) = split_sequence(seq, setting);
        train.push(t);
        val.push(v);
        test.push(s);
    }

    DataSplit { dataset_name: dataset.name.clone(), setting, num_items: dataset.num_items, train, val, test }
}

/// Splits a single user sequence. Exposed for tests and for streaming use.
pub fn split_sequence(seq: &[ItemId], setting: EvalSetting) -> (Vec<ItemId>, Vec<ItemId>, Vec<ItemId>) {
    let n = seq.len();
    match setting {
        EvalSetting::Cut8020 => {
            let train_end = (n as f64 * 0.7).round() as usize;
            let val_end = (n as f64 * 0.8).round() as usize;
            let train_end = train_end.min(n);
            let val_end = val_end.clamp(train_end, n);
            (seq[..train_end].to_vec(), seq[train_end..val_end].to_vec(), seq[val_end..].to_vec())
        }
        EvalSetting::Cut803 => {
            let train_end = (n as f64 * 0.7).round() as usize;
            let val_end = (n as f64 * 0.8).round() as usize;
            let train_end = train_end.min(n);
            let val_end = val_end.clamp(train_end, n);
            let test_end = (val_end + 3).min(n);
            (seq[..train_end].to_vec(), seq[train_end..val_end].to_vec(), seq[val_end..test_end].to_vec())
        }
        EvalSetting::Los3 => {
            if n <= 3 {
                // Too short to hold out anything: everything is training.
                return (seq.to_vec(), Vec::new(), Vec::new());
            }
            let test_start = n - 3;
            let val_start = test_start.saturating_sub(3);
            (seq[..val_start].to_vec(), seq[val_start..test_start].to_vec(), seq[test_start..].to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<ItemId> {
        (0..n).collect()
    }

    #[test]
    fn cut_8020_proportions() {
        let (t, v, s) = split_sequence(&seq(100), EvalSetting::Cut8020);
        assert_eq!(t.len(), 70);
        assert_eq!(v.len(), 10);
        assert_eq!(s.len(), 20);
        // chronological ordering is preserved
        assert_eq!(t[69], 69);
        assert_eq!(v[0], 70);
        assert_eq!(s[19], 99);
    }

    #[test]
    fn cut_803_limits_test_to_three() {
        let (t, v, s) = split_sequence(&seq(100), EvalSetting::Cut803);
        assert_eq!(t.len(), 70);
        assert_eq!(v.len(), 10);
        assert_eq!(s, vec![80, 81, 82]);
    }

    #[test]
    fn cut_803_and_8020_share_training_sets() {
        let s = seq(57);
        let (t1, v1, _) = split_sequence(&s, EvalSetting::Cut8020);
        let (t2, v2, _) = split_sequence(&s, EvalSetting::Cut803);
        assert_eq!(t1, t2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn los3_uses_last_items() {
        let (t, v, s) = split_sequence(&seq(20), EvalSetting::Los3);
        assert_eq!(s, vec![17, 18, 19]);
        assert_eq!(v, vec![14, 15, 16]);
        assert_eq!(t.len(), 14);
    }

    #[test]
    fn short_sequences_do_not_panic() {
        for n in 0..8 {
            for setting in EvalSetting::all() {
                let (t, v, s) = split_sequence(&seq(n), setting);
                assert!(t.len() + v.len() + s.len() <= n.max(t.len() + v.len() + s.len()));
                // pieces concatenate back to a prefix of the original sequence
                let mut joined = t.clone();
                joined.extend(v);
                joined.extend(s);
                assert_eq!(&joined[..], &seq(n)[..joined.len()]);
            }
        }
    }

    #[test]
    fn los3_very_short_sequence_is_all_training() {
        let (t, v, s) = split_sequence(&seq(3), EvalSetting::Los3);
        assert_eq!(t.len(), 3);
        assert!(v.is_empty() && s.is_empty());
    }

    #[test]
    fn split_dataset_covers_all_users() {
        let ds = SequenceDataset::new("t", vec![seq(30), seq(10), seq(2)], 30);
        let split = split_dataset(&ds, EvalSetting::Cut8020);
        assert_eq!(split.num_users(), 3);
        assert_eq!(split.dataset_name, "t");
        assert!(split.users_with_test_items() >= 2);
        let joined = split.train_with_val();
        assert_eq!(joined[0].len(), split.train[0].len() + split.val[0].len());
        assert!(split.num_test_interactions() > 0);
    }

    #[test]
    fn setting_names_match_paper() {
        assert_eq!(EvalSetting::Cut8020.name(), "80-20-CUT");
        assert_eq!(EvalSetting::Cut803.name(), "80-3-CUT");
        assert_eq!(EvalSetting::Los3.name(), "3-LOS");
    }
}
