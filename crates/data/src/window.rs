//! Sliding-window training instances (Fig. 1 / Fig. 2 of the paper).
//!
//! During training each user sequence is swept with a window of size
//! `n_h + n_p`: the first `n_h` items are the model input and the following
//! `n_p` items are the prediction targets. Windows slide item by item and
//! therefore overlap.

use crate::dataset::ItemId;

/// One training instance: a user, the `n_h` input items and the `n_p` target
/// items immediately following them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainingInstance {
    /// Dense user id.
    pub user: usize,
    /// The `n_h` most recent items before the targets (chronological order).
    pub input: Vec<ItemId>,
    /// The `n_p` items to be predicted.
    pub targets: Vec<ItemId>,
}

/// Generates all sliding-window training instances from per-user training
/// sequences.
///
/// Users whose training sequence is shorter than `n_h + n_p` are padded by
/// repeating their earliest item, mirroring the zero-padding used by the
/// reference implementations (repeating the earliest item keeps every padded
/// position a valid item id so no special-case embedding is needed).
pub fn sliding_windows(train: &[Vec<ItemId>], n_h: usize, n_p: usize) -> Vec<TrainingInstance> {
    assert!(n_h > 0, "sliding_windows: n_h must be positive");
    assert!(n_p > 0, "sliding_windows: n_p must be positive");
    let mut out = Vec::new();
    for (user, seq) in train.iter().enumerate() {
        out.extend(user_windows(user, seq, n_h, n_p));
    }
    out
}

/// Sliding windows for a single user (see [`sliding_windows`]).
pub fn user_windows(user: usize, seq: &[ItemId], n_h: usize, n_p: usize) -> Vec<TrainingInstance> {
    let window = n_h + n_p;
    if seq.is_empty() || seq.len() < n_p + 1 {
        // Need at least one input item and n_p targets to form an instance.
        return Vec::new();
    }
    let padded: Vec<ItemId> = if seq.len() < window {
        let mut p = vec![seq[0]; window - seq.len()];
        p.extend_from_slice(seq);
        p
    } else {
        seq.to_vec()
    };
    let mut out = Vec::new();
    for start in 0..=(padded.len() - window) {
        out.push(TrainingInstance {
            user,
            input: padded[start..start + n_h].to_vec(),
            targets: padded[start + n_h..start + window].to_vec(),
        });
    }
    out
}

/// The most recent `n_h` items of a sequence, padded at the front by
/// repeating the earliest item when the sequence is shorter than `n_h`.
/// This is the inference-time input window.
pub fn recent_window(seq: &[ItemId], n_h: usize) -> Vec<ItemId> {
    assert!(n_h > 0, "recent_window: n_h must be positive");
    if seq.is_empty() {
        return Vec::new();
    }
    if seq.len() >= n_h {
        seq[seq.len() - n_h..].to_vec()
    } else {
        let mut out = vec![seq[0]; n_h - seq.len()];
        out.extend_from_slice(seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_slide_item_by_item() {
        let seq: Vec<usize> = (0..6).collect();
        let w = user_windows(0, &seq, 3, 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].input, vec![0, 1, 2]);
        assert_eq!(w[0].targets, vec![3, 4]);
        assert_eq!(w[1].input, vec![1, 2, 3]);
        assert_eq!(w[1].targets, vec![4, 5]);
    }

    #[test]
    fn short_sequences_are_front_padded() {
        let seq = vec![7, 8, 9];
        let w = user_windows(3, &seq, 4, 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].user, 3);
        assert_eq!(w[0].input, vec![7, 7, 7, 7]);
        assert_eq!(w[0].targets, vec![8, 9]);
    }

    #[test]
    fn too_short_sequences_produce_no_instances() {
        assert!(user_windows(0, &[1, 2], 3, 2).is_empty());
        assert!(user_windows(0, &[], 3, 2).is_empty());
    }

    #[test]
    fn sliding_windows_aggregates_all_users() {
        let train = vec![(0..6).collect::<Vec<_>>(), (0..4).collect(), vec![]];
        let w = sliding_windows(&train, 3, 2);
        let users: Vec<usize> = w.iter().map(|i| i.user).collect();
        assert!(users.contains(&0) && users.contains(&1));
        assert!(!users.contains(&2));
    }

    #[test]
    fn instance_count_matches_formula_for_long_sequences() {
        let seq: Vec<usize> = (0..50).collect();
        let (n_h, n_p) = (5, 3);
        let w = user_windows(0, &seq, n_h, n_p);
        assert_eq!(w.len(), 50 - (n_h + n_p) + 1);
    }

    #[test]
    fn recent_window_takes_suffix_and_pads() {
        assert_eq!(recent_window(&[1, 2, 3, 4, 5], 3), vec![3, 4, 5]);
        assert_eq!(recent_window(&[9, 8], 4), vec![9, 9, 9, 8]);
        assert!(recent_window(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "n_h must be positive")]
    fn zero_window_panics() {
        let _ = sliding_windows(&[vec![1, 2, 3]], 0, 1);
    }
}
